#!/usr/bin/env sh
# Tier-1 verification: build, tests, gated suites, formatting, lints.
# Offline-safe — no network access, no external dev-dependencies.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test (tier-1, incl. differential fuzzy-vs-crisp suite)"
cargo test -q --workspace

echo "==> cargo test --no-default-features (observability compiled out)"
cargo test -q --workspace --no-default-features

echo "==> cargo test --features proptest (randomized property suites)"
cargo test -q --workspace --features proptest

echo "==> cargo build --features bench (harness benches compile)"
cargo build -q --features bench -p flames-bench --benches

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

# Runs one gated experiment binary. Keeps the previous BENCH_*.json
# around so a gate failure prints the old speedups next to the new ones
# instead of a bare assert message.
run_gate() {
    bin="$1"
    json="$2"
    if [ -f "$json" ]; then
        cp "$json" "$json.prev"
    fi
    if ! cargo run -q --release -p flames-bench --bin "$bin"; then
        echo "!! $bin gate failed"
        if [ -f "$json.prev" ] && [ -f "$json" ]; then
            echo "!! speedups, previous run ($json.prev) vs this run ($json):"
            grep -n '"speedup"' "$json.prev" | sed 's/^/!!   prev /' || true
            grep -n '"speedup"' "$json" | sed 's/^/!!   new  /' || true
        fi
        exit 1
    fi
    rm -f "$json.prev"
}

echo "==> exp_perf (ATMS kernel gate: results equal, >= 2x on every workload)"
run_gate exp_perf BENCH_atms.json

echo "==> exp_batch (serving gate: byte-identical reports, warm pool >= 1.5x cold)"
run_gate exp_batch BENCH_batch.json

echo "==> exp_dc (conflict gate: closed-form Dc exact and >= 3x PWL, lanes byte-identical, no regression)"
run_gate exp_dc BENCH_dc.json

echo "==> exp_strategy (planning gate: incremental candidates and probe planning >= 3x, byte-identical across threads, full loop no-regression)"
run_gate exp_strategy BENCH_strategy.json

echo "==> exp_shard (scaling gate: 5k-component board, candidates byte-identical across shard counts, sparse 1->4 >= 2x, dense no-regression)"
run_gate exp_shard BENCH_shard.json

echo "==> exp_serve (HTTP gate: served bytes == in-process wave reference, coalesced >= 1.5x one-request-per-wave)"
run_gate exp_serve BENCH_serve.json

echo "==> serve_http example with observability compiled out (server must serve with no-op metrics)"
cargo run -q --example serve_http --no-default-features

echo "verify: OK"
