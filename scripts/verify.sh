#!/usr/bin/env sh
# Tier-1 verification: build, tests, gated suites, formatting, lints.
# Offline-safe — no network access, no external dev-dependencies.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test (tier-1, incl. differential fuzzy-vs-crisp suite)"
cargo test -q --workspace

echo "==> cargo test --no-default-features (observability compiled out)"
cargo test -q --workspace --no-default-features

echo "==> cargo test --features proptest (randomized property suites)"
cargo test -q --workspace --features proptest

echo "==> cargo build --features bench (harness benches compile)"
cargo build -q --features bench -p flames-bench --benches

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> exp_perf (ATMS kernel gate: results equal, >= 2x on every workload)"
cargo run -q --release -p flames-bench --bin exp_perf

echo "==> exp_batch (serving gate: byte-identical reports, warm pool >= 1.5x cold)"
cargo run -q --release -p flames-bench --bin exp_batch

echo "==> exp_dc (conflict gate: closed-form Dc exact and >= 3x PWL, lanes byte-identical, no regression)"
cargo run -q --release -p flames-bench --bin exp_dc

echo "verify: OK"
