//! Property-based / metamorphic tests for the diagnosis engine:
//! soundness of fuzzy propagation (derived values contain the physical
//! truth for any in-tolerance board), zero false alarms on healthy
//! boards, detection monotonicity in fault severity, and
//! order-insensitivity of incremental measurement.

use flames_circuit::fault::{inject_faults, Fault};
use flames_circuit::predict::{measure_all, TestPoint};
use flames_circuit::solve::solve_dc;
use flames_circuit::{Net, Netlist};
use flames_core::{Diagnoser, DiagnoserConfig};
use proptest::prelude::*;

/// A three-resistor chain with probes at both internal nodes.
fn chain() -> (Netlist, Diagnoser, [Net; 2]) {
    let mut nl = Netlist::new();
    let vin = nl.add_net("vin");
    let mid = nl.add_net("mid");
    let out = nl.add_net("out");
    nl.add_voltage_source("V", vin, Net::GROUND, 12.0).unwrap();
    let r1 = nl.add_resistor("R1", vin, mid, 2_000.0, 0.05).unwrap();
    let r2 = nl.add_resistor("R2", mid, out, 1_000.0, 0.05).unwrap();
    let r3 = nl.add_resistor("R3", out, Net::GROUND, 3_000.0, 0.05).unwrap();
    let points = vec![
        TestPoint::new(mid, "Vmid", vec![r1, r2, r3]),
        TestPoint::new(out, "Vout", vec![r1, r2, r3]),
    ];
    let d = Diagnoser::from_netlist(&nl, points, DiagnoserConfig::default()).unwrap();
    (nl, d, [mid, out])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn near_nominal_boards_raise_only_weak_suspicion(f1 in 0.99..1.01f64,
                                                     f2 in 0.99..1.01f64,
                                                     f3 in 0.99..1.01f64) {
        // Possibilistic semantics (the paper's §4.2): even in-tolerance
        // deviations carry a membership-graded suspicion — but for a
        // board close to nominal every conflict must stay weak, so the
        // degree-filtered refinement has nothing strong to report.
        let (nl, d, nets) = chain();
        let ids: Vec<_> = ["R1", "R2", "R3"]
            .iter()
            .map(|n| nl.component_by_name(n).unwrap())
            .collect();
        let board = inject_faults(&nl, &[
            (ids[0], Fault::ParamFactor(f1)),
            (ids[1], Fault::ParamFactor(f2)),
            (ids[2], Fault::ParamFactor(f3)),
        ]).unwrap();
        let readings = measure_all(&board, &nets, 0.01).unwrap();
        let mut s = d.session();
        s.measure("Vmid", readings[0]).unwrap();
        s.measure("Vout", readings[1]).unwrap();
        s.propagate();
        let strongest = s
            .propagator()
            .atms()
            .nogoods()
            .iter()
            .map(|n| n.degree)
            .fold(0.0f64, f64::max);
        prop_assert!(
            strongest < 0.5,
            "near-nominal board ({f1:.3},{f2:.3},{f3:.3}) raised a strong conflict ({strongest:.2})"
        );
        // And the exact-nominal board raises nothing at all.
        let exact = measure_all(&nl, &nets, 0.01).unwrap();
        let mut s = d.session();
        s.measure("Vmid", exact[0]).unwrap();
        s.measure("Vout", exact[1]).unwrap();
        s.propagate();
        prop_assert!(s.candidates(2, 16).is_empty());
    }

    #[test]
    fn derived_values_contain_truth(f1 in 0.95..1.05f64,
                                    f2 in 0.95..1.05f64,
                                    f3 in 0.95..1.05f64) {
        // Soundness: after measuring one point of an in-tolerance board,
        // the best derived value of the *other* point contains its true
        // voltage.
        let (nl, d, nets) = chain();
        let ids: Vec<_> = ["R1", "R2", "R3"]
            .iter()
            .map(|n| nl.component_by_name(n).unwrap())
            .collect();
        let board = inject_faults(&nl, &[
            (ids[0], Fault::ParamFactor(f1)),
            (ids[1], Fault::ParamFactor(f2)),
            (ids[2], Fault::ParamFactor(f3)),
        ]).unwrap();
        let op = solve_dc(&board).unwrap();
        let readings = measure_all(&board, &nets, 0.01).unwrap();
        let mut s = d.session();
        s.measure("Vmid", readings[0]).unwrap();
        s.propagate();
        let q_out = d.network().voltage_quantity(nets[1]);
        let best = s.best_value(q_out).expect("out is derivable from mid");
        let truth = op.voltage(nets[1]);
        prop_assert!(
            best.value.support_lo() <= truth + 1e-9
                && truth <= best.value.support_hi() + 1e-9,
            "truth {truth} escapes {} (env {})",
            best.value,
            best.env
        );
    }

    #[test]
    fn detection_is_monotone_in_severity(base in 1.3..1.6f64) {
        // If a smaller deviation of R2 is flagged, a larger one is too,
        // with at-least-as-strong nogoods.
        let (nl, d, nets) = chain();
        let r2 = nl.component_by_name("R2").unwrap();
        let run = |factor: f64| {
            let board = inject_faults(&nl, &[(r2, Fault::ParamFactor(factor))]).unwrap();
            let readings = measure_all(&board, &nets, 0.01).unwrap();
            let mut s = d.session();
            s.measure("Vmid", readings[0]).unwrap();
            s.measure("Vout", readings[1]).unwrap();
            s.propagate();
            s.propagator()
                .atms()
                .nogoods()
                .iter()
                .map(|n| n.degree)
                .fold(0.0f64, f64::max)
        };
        let small = run(base);
        let large = run(base + 0.4);
        prop_assert!(small > 0.0, "a {base:.2}× shift must be flagged");
        prop_assert!(large >= small - 1e-9);
    }

    #[test]
    fn measurement_order_does_not_change_the_verdict(factor in 1.4..2.0f64,
                                                     first in 0usize..2) {
        let (nl, d, nets) = chain();
        let r1 = nl.component_by_name("R1").unwrap();
        let board = inject_faults(&nl, &[(r1, Fault::ParamFactor(factor))]).unwrap();
        let readings = measure_all(&board, &nets, 0.01).unwrap();
        let order: [usize; 2] = if first == 0 { [0, 1] } else { [1, 0] };
        let mut s = d.session();
        for &k in &order {
            s.measure_point(k, readings[k]).unwrap();
            s.propagate();
        }
        let cands = s.candidates(2, 32);
        prop_assert!(!cands.is_empty());
        // R1 must be implicated regardless of probing order.
        prop_assert!(
            cands.iter().any(|c| c.members.iter().any(|m| m == "R1")),
            "{cands:?} (order {order:?})"
        );
    }

    #[test]
    fn suspicions_are_degrees(factor in 0.3..3.0f64) {
        let (nl, d, nets) = chain();
        let r3 = nl.component_by_name("R3").unwrap();
        let board = inject_faults(&nl, &[(r3, Fault::ParamFactor(factor))]).unwrap();
        let readings = measure_all(&board, &nets, 0.01).unwrap();
        let mut s = d.session();
        s.measure("Vmid", readings[0]).unwrap();
        s.measure("Vout", readings[1]).unwrap();
        s.propagate();
        for name in ["R1", "R2", "R3"] {
            let susp = s.suspicion(name).unwrap();
            prop_assert!((0.0..=1.0).contains(&susp));
        }
        for c in s.candidates(2, 32) {
            prop_assert!((0.0..=1.0).contains(&c.degree));
        }
        for (_, e) in s.estimations() {
            prop_assert!(e.support_lo() >= -1e-9 && e.support_hi() <= 1.0 + 1e-9);
        }
    }
}
