//! Randomized / metamorphic tests for the diagnosis engine:
//! soundness of fuzzy propagation (derived values contain the physical
//! truth for any in-tolerance board), zero false alarms on healthy
//! boards, detection monotonicity in fault severity, and
//! order-insensitivity of incremental measurement.
//!
//! Dependency-free: cases are generated with an inline SplitMix64 and
//! checked with plain `assert!`. Gated behind `--features proptest`
//! (the historical feature name) because the suites are slow, not
//! because they need the external crate.

use flames_circuit::fault::{inject_faults, Fault};
use flames_circuit::predict::{measure_all, TestPoint};
use flames_circuit::solve::solve_dc;
use flames_circuit::{Net, Netlist};
use flames_core::{Diagnoser, DiagnoserConfig};

/// SplitMix64 — the same mixer as `flames_bench::rng`, inlined because
/// integration tests cannot depend on the bench crate.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }

    fn below(&mut self, bound: u64) -> u64 {
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// A three-resistor chain with probes at both internal nodes.
fn chain() -> (Netlist, Diagnoser, [Net; 2]) {
    let mut nl = Netlist::new();
    let vin = nl.add_net("vin");
    let mid = nl.add_net("mid");
    let out = nl.add_net("out");
    nl.add_voltage_source("V", vin, Net::GROUND, 12.0).unwrap();
    let r1 = nl.add_resistor("R1", vin, mid, 2_000.0, 0.05).unwrap();
    let r2 = nl.add_resistor("R2", mid, out, 1_000.0, 0.05).unwrap();
    let r3 = nl
        .add_resistor("R3", out, Net::GROUND, 3_000.0, 0.05)
        .unwrap();
    let points = vec![
        TestPoint::new(mid, "Vmid", vec![r1, r2, r3]),
        TestPoint::new(out, "Vout", vec![r1, r2, r3]),
    ];
    let d = Diagnoser::from_netlist(&nl, points, DiagnoserConfig::default()).unwrap();
    (nl, d, [mid, out])
}

const CASES: usize = 32;

#[test]
fn near_nominal_boards_raise_only_weak_suspicion() {
    let mut r = Rng(1);
    for _ in 0..CASES {
        let f1 = r.range(0.99, 1.01);
        let f2 = r.range(0.99, 1.01);
        let f3 = r.range(0.99, 1.01);
        // Possibilistic semantics (the paper's §4.2): even in-tolerance
        // deviations carry a membership-graded suspicion — but for a
        // board close to nominal every conflict must stay weak, so the
        // degree-filtered refinement has nothing strong to report.
        let (nl, d, nets) = chain();
        let ids: Vec<_> = ["R1", "R2", "R3"]
            .iter()
            .map(|n| nl.component_by_name(n).unwrap())
            .collect();
        let board = inject_faults(
            &nl,
            &[
                (ids[0], Fault::ParamFactor(f1)),
                (ids[1], Fault::ParamFactor(f2)),
                (ids[2], Fault::ParamFactor(f3)),
            ],
        )
        .unwrap();
        let readings = measure_all(&board, &nets, 0.01).unwrap();
        let mut s = d.session();
        s.measure("Vmid", readings[0]).unwrap();
        s.measure("Vout", readings[1]).unwrap();
        s.propagate();
        let strongest = s
            .propagator()
            .atms()
            .nogoods()
            .iter()
            .map(|n| n.degree)
            .fold(0.0f64, f64::max);
        assert!(
            strongest < 0.5,
            "near-nominal board ({f1:.3},{f2:.3},{f3:.3}) raised a strong conflict ({strongest:.2})"
        );
        // And the exact-nominal board raises nothing at all.
        let exact = measure_all(&nl, &nets, 0.01).unwrap();
        let mut s = d.session();
        s.measure("Vmid", exact[0]).unwrap();
        s.measure("Vout", exact[1]).unwrap();
        s.propagate();
        assert!(s.candidates(2, 16).is_empty());
    }
}

#[test]
fn derived_values_contain_truth() {
    let mut r = Rng(2);
    for _ in 0..CASES {
        let f1 = r.range(0.95, 1.05);
        let f2 = r.range(0.95, 1.05);
        let f3 = r.range(0.95, 1.05);
        // Soundness: after measuring one point of an in-tolerance board,
        // the best derived value of the *other* point contains its true
        // voltage.
        let (nl, d, nets) = chain();
        let ids: Vec<_> = ["R1", "R2", "R3"]
            .iter()
            .map(|n| nl.component_by_name(n).unwrap())
            .collect();
        let board = inject_faults(
            &nl,
            &[
                (ids[0], Fault::ParamFactor(f1)),
                (ids[1], Fault::ParamFactor(f2)),
                (ids[2], Fault::ParamFactor(f3)),
            ],
        )
        .unwrap();
        let op = solve_dc(&board).unwrap();
        let readings = measure_all(&board, &nets, 0.01).unwrap();
        let mut s = d.session();
        s.measure("Vmid", readings[0]).unwrap();
        s.propagate();
        let q_out = d.network().voltage_quantity(nets[1]);
        let best = s.best_value(q_out).expect("out is derivable from mid");
        let truth = op.voltage(nets[1]);
        assert!(
            best.value.support_lo() <= truth + 1e-9 && truth <= best.value.support_hi() + 1e-9,
            "truth {truth} escapes {} (env {})",
            best.value,
            best.env
        );
    }
}

#[test]
fn detection_is_monotone_in_severity() {
    let mut r = Rng(3);
    for _ in 0..CASES {
        let base = r.range(1.3, 1.6);
        // If a smaller deviation of R2 is flagged, a larger one is too,
        // with at-least-as-strong nogoods.
        let (nl, d, nets) = chain();
        let r2 = nl.component_by_name("R2").unwrap();
        let run = |factor: f64| {
            let board = inject_faults(&nl, &[(r2, Fault::ParamFactor(factor))]).unwrap();
            let readings = measure_all(&board, &nets, 0.01).unwrap();
            let mut s = d.session();
            s.measure("Vmid", readings[0]).unwrap();
            s.measure("Vout", readings[1]).unwrap();
            s.propagate();
            s.propagator()
                .atms()
                .nogoods()
                .iter()
                .map(|n| n.degree)
                .fold(0.0f64, f64::max)
        };
        let small = run(base);
        let large = run(base + 0.4);
        assert!(small > 0.0, "a {base:.2}× shift must be flagged");
        assert!(large >= small - 1e-9);
    }
}

#[test]
fn measurement_order_does_not_change_the_verdict() {
    let mut r = Rng(4);
    for _ in 0..CASES {
        let factor = r.range(1.4, 2.0);
        let first = r.below(2) as usize;
        let (nl, d, nets) = chain();
        let r1 = nl.component_by_name("R1").unwrap();
        let board = inject_faults(&nl, &[(r1, Fault::ParamFactor(factor))]).unwrap();
        let readings = measure_all(&board, &nets, 0.01).unwrap();
        let order: [usize; 2] = if first == 0 { [0, 1] } else { [1, 0] };
        let mut s = d.session();
        for &k in &order {
            s.measure_point(k, readings[k]).unwrap();
            s.propagate();
        }
        let cands = s.candidates(2, 32);
        assert!(!cands.is_empty());
        // R1 must be implicated regardless of probing order.
        assert!(
            cands.iter().any(|c| c.members.iter().any(|m| m == "R1")),
            "{cands:?} (order {order:?})"
        );
    }
}

#[test]
fn suspicions_are_degrees() {
    let mut r = Rng(5);
    for _ in 0..CASES {
        let factor = r.range(0.3, 3.0);
        let (nl, d, nets) = chain();
        let r3 = nl.component_by_name("R3").unwrap();
        let board = inject_faults(&nl, &[(r3, Fault::ParamFactor(factor))]).unwrap();
        let readings = measure_all(&board, &nets, 0.01).unwrap();
        let mut s = d.session();
        s.measure("Vmid", readings[0]).unwrap();
        s.measure("Vout", readings[1]).unwrap();
        s.propagate();
        for name in ["R1", "R2", "R3"] {
            let susp = s.suspicion(name).unwrap();
            assert!((0.0..=1.0).contains(&susp));
        }
        for c in s.candidates(2, 32) {
            assert!((0.0..=1.0).contains(&c.degree));
        }
        for (_, e) in s.estimations() {
            assert!(e.support_lo() >= -1e-9 && e.support_hi() <= 1.0 + 1e-9);
        }
    }
}
