//! End-to-end validation of the paper's Fig. 7 experiment flow on the
//! three-stage amplifier: inject each defect, measure Vs (then V1, V2),
//! and check that the diagnosis narrows the way the paper's table does.
//!
//! Fault magnitudes are calibrated to this reconstruction (see
//! EXPERIMENTS.md): the feedback-biased stage rejects the paper's ±1.5 %/
//! −3 % parametric faults below any realistic tolerance band, so the
//! "slightly high R2" row uses 14 kΩ and the "β2 low" row uses β = 40 —
//! the smallest deviations that produce the paper's graded-Dc signature
//! at 2 % component tolerance.

use flames_circuit::circuits::{three_stage, ThreeStage};
use flames_circuit::fault::{inject_faults, open_connection};
use flames_circuit::predict::measure_all;
use flames_circuit::{Fault, Netlist};
use flames_core::{Diagnoser, DiagnoserConfig};

const MEAS_IMPRECISION: f64 = 0.05;

fn diagnoser(ts: &ThreeStage) -> Diagnoser {
    Diagnoser::from_netlist(
        &ts.netlist,
        ts.test_points.clone(),
        DiagnoserConfig::default(),
    )
    .unwrap()
}

/// Runs a full three-point probing session against a faulty board and
/// returns the ranked single/double-fault candidates' member lists.
fn diagnose(ts: &ThreeStage, board: &Netlist) -> (Vec<Vec<String>>, flames_core::Report) {
    let d = diagnoser(ts);
    let nets = [ts.vs, ts.v1, ts.v2];
    let readings = measure_all(board, &nets, MEAS_IMPRECISION).unwrap();
    let mut session = d.session();
    session.measure("Vs", readings[0]).unwrap();
    session.measure("V1", readings[1]).unwrap();
    session.measure("V2", readings[2]).unwrap();
    session.propagate();
    let report = session.report();
    let members = report
        .candidates
        .iter()
        .map(|c| c.members.clone())
        .collect();
    (members, report)
}

fn top_contains(cands: &[Vec<String>], name: &str, within: usize) -> bool {
    cands
        .iter()
        .take(within)
        .any(|c| c.iter().any(|m| m == name))
}

#[test]
fn healthy_board_raises_no_candidates() {
    let ts = three_stage(0.02);
    let (cands, report) = diagnose(&ts, &ts.netlist);
    assert!(
        cands.is_empty(),
        "healthy board produced candidates: {report}"
    );
    for p in &report.points {
        let dc = p.consistency.expect("all points probed");
        assert!(
            dc.is_consistent(),
            "{} inconsistent on healthy board",
            p.name
        );
    }
}

#[test]
fn short_r2_is_diagnosed() {
    let ts = three_stage(0.02);
    let board = inject_faults(&ts.netlist, &[(ts.r2, Fault::Short)]).unwrap();
    let (cands, report) = diagnose(&ts, &board);
    // The single-fault refinement points into stage 1, R2 included
    // (paper: "{R1, R2, R3, T1} ==> {R1} {R2} {R3}").
    let refined: Vec<Vec<String>> = report.refined.iter().map(|c| c.members.clone()).collect();
    assert!(
        top_contains(&refined, "R2", 4),
        "R2 missing from refined candidates: {report}"
    );
    assert!(
        cands.iter().flatten().any(|m| m == "R2"),
        "R2 missing from the candidate lattice: {report}"
    );
    // V1 pinned at the rail: total conflict, deviation high.
    let v1 = report.points.iter().find(|p| p.name == "V1").unwrap();
    let dc = v1.consistency.unwrap();
    assert!(dc.degree() < 0.05, "short is a hard fault: {dc}");
    assert_eq!(dc.direction(), flames_fuzzy::Direction::High);
}

#[test]
fn slightly_high_r2_yields_partial_conflict() {
    let ts = three_stage(0.02);
    let board = inject_faults(&ts.netlist, &[(ts.r2, Fault::Param(14_000.0))]).unwrap();
    let (cands, report) = diagnose(&ts, &board);
    // The soft fault must be detected at all (the crisp baseline misses it).
    assert!(
        !cands.is_empty(),
        "slightly-high R2 went undetected: {report}"
    );
    assert!(
        top_contains(&cands, "R2", 4),
        "R2 missing from top candidates: {report}"
    );
    // At least one probed point shows a graded (not total) inconsistency —
    // the Dc machinery at work (paper: Dc ≈ 0.89).
    let graded = report
        .points
        .iter()
        .filter_map(|p| p.consistency)
        .any(|dc| dc.degree() > 0.0 && dc.degree() < 1.0);
    assert!(graded, "expected a graded Dc: {report}");
}

#[test]
fn slightly_low_beta2_points_at_stage2() {
    let ts = three_stage(0.02);
    let board = inject_faults(&ts.netlist, &[(ts.t2, Fault::Param(40.0))]).unwrap();
    let (cands, report) = diagnose(&ts, &board);
    assert!(
        !cands.is_empty(),
        "slightly-low beta2 went undetected: {report}"
    );
    // V1 stays nearly consistent (only the base-current loading shifts
    // it) while V2 deviates much more strongly — the graded-Dc
    // localization signal; T2 (or its stage partners R4/R5) must surface.
    let v1 = report.points.iter().find(|p| p.name == "V1").unwrap();
    let v2 = report.points.iter().find(|p| p.name == "V2").unwrap();
    let (dc1, dc2) = (v1.consistency.unwrap(), v2.consistency.unwrap());
    assert!(dc1.degree() > 0.85, "{report}");
    assert!(dc2.degree() < dc1.degree(), "{report}");
    let refined: Vec<Vec<String>> = report.refined.iter().map(|c| c.members.clone()).collect();
    let stage2_named = top_contains(&refined, "T2", 4)
        || top_contains(&refined, "R4", 4)
        || top_contains(&refined, "R5", 4);
    assert!(
        stage2_named,
        "stage-2 members missing from refined: {report}"
    );
    let _ = cands;
}

#[test]
fn open_r3_shows_low_deviation_on_v1() {
    let ts = three_stage(0.02);
    let board = inject_faults(&ts.netlist, &[(ts.r3, Fault::Open)]).unwrap();
    let (cands, report) = diagnose(&ts, &board);
    let v1 = report.points.iter().find(|p| p.name == "V1").unwrap();
    let dc = v1.consistency.unwrap();
    // The paper's signature: Dc(V1) = −1, i.e. total conflict deviating low.
    assert!(dc.is_total_conflict(), "{report}");
    assert_eq!(dc.direction(), flames_fuzzy::Direction::Low);
    assert!(
        top_contains(&cands, "R3", 4) || top_contains(&cands, "R2", 4),
        "paper: 'R2 is very low or R3 is very high': {report}"
    );
}

#[test]
fn open_n1_connection_is_diagnosable() {
    let ts = three_stage(0.02);
    let board = open_connection(&ts.netlist, ts.r3, ts.n1).unwrap();
    let (cands, report) = diagnose(&ts, &board);
    assert!(!cands.is_empty(), "open N1 went undetected: {report}");
    // Same electrical signature as R3 → ∞ (the paper maps it to "R3 very
    // high"); with connection assumptions the interconnect itself may also
    // surface.
    let plausible = top_contains(&cands, "R3", 5)
        || top_contains(&cands, "R2", 5)
        || cands
            .iter()
            .take(5)
            .any(|c| c.iter().any(|m| m.starts_with("conn:")));
    assert!(plausible, "{report}");
}

#[test]
fn vs_alone_suspects_every_stage() {
    // "This is a single path circuit so measuring Vs to be faulty
    // suspects all the modules with the same degree."
    let ts = three_stage(0.02);
    let board = inject_faults(&ts.netlist, &[(ts.r2, Fault::Short)]).unwrap();
    let d = diagnoser(&ts);
    let readings = measure_all(&board, &[ts.vs], MEAS_IMPRECISION).unwrap();
    let mut session = d.session();
    session.measure("Vs", readings[0]).unwrap();
    session.propagate();
    let cands = session.candidates(1, 64);
    let names: Vec<&str> = cands
        .iter()
        .flat_map(|c| c.members.iter().map(String::as_str))
        .collect();
    // Members of all three stages appear among single-fault candidates.
    assert!(names.contains(&"R2"), "{names:?}");
    assert!(
        names.contains(&"T2") || names.contains(&"R4") || names.contains(&"R5"),
        "{names:?}"
    );
    assert!(names.contains(&"T3") || names.contains(&"R6"), "{names:?}");
}
