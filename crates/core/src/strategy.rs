//! Best-test strategies (§8 of the paper).
//!
//! "We want FLAMES to be able to recommend at any point the next best
//! test to make, from a set of predefined available tests." The fuzzy
//! strategy scores each unprobed test point by the **expected fuzzy
//! entropy** of the component-faultiness estimations after the
//! measurement, moving away from "the probabilistic approach with its
//! heavy calculus and hard assumptions"; that probabilistic (GDE-style)
//! approach is kept as a baseline, alongside a naive fixed-order probing.

use crate::engine::Session;
use flames_fuzzy::entropy::{expected_entropy, fuzzy_entropy, shannon_entropy};
use flames_fuzzy::FuzzyInterval;
use std::fmt;

/// Which selection policy to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Policy {
    /// Fuzzy-entropy-guided (the paper's §8 proposal).
    FuzzyEntropy,
    /// GDE-style probabilistic expected Shannon entropy (the baseline the
    /// paper moves away from).
    Probabilistic,
    /// Probe test points in declaration order (naive baseline).
    FixedOrder,
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Policy::FuzzyEntropy => write!(f, "fuzzy-entropy"),
            Policy::Probabilistic => write!(f, "probabilistic"),
            Policy::FixedOrder => write!(f, "fixed-order"),
        }
    }
}

/// A scored recommendation for one unprobed test point.
#[derive(Debug, Clone, PartialEq)]
pub struct TestChoice {
    /// Index of the test point in the diagnoser's declaration order.
    pub point: usize,
    /// The point's name.
    pub name: String,
    /// Expected post-measurement entropy (fuzzy for the fuzzy policy, a
    /// crisp number wrapped as a point for the baselines).
    pub expected_entropy: FuzzyInterval,
    /// Final score: defuzzified expected entropy + `λ · cost`
    /// (lower is better).
    pub score: f64,
    /// The probing cost of the point.
    pub cost: f64,
}

/// Posterior estimation of a support-cone component when the probe comes
/// back consistent: (close to) correct.
fn posterior_consistent() -> FuzzyInterval {
    FuzzyInterval::new(0.0, 0.05, 0.0, 0.05).expect("static")
}

/// Posterior estimation of a support-cone component when the probe
/// deviates: at least as suspect as before, and clearly suspect.
fn posterior_deviating(prior: &FuzzyInterval) -> FuzzyInterval {
    let suspect = FuzzyInterval::new(0.6, 0.8, 0.1, 0.1).expect("static");
    prior.max_ext(&suspect)
}

/// Ranks the unprobed test points of a session under the given policy;
/// the best choice (lowest score) comes first. `lambda_cost` trades
/// information against probing cost (the paper's "expected total cost").
///
/// Returns an empty list when every point has been probed.
#[must_use]
pub fn recommend(session: &Session<'_>, policy: Policy, lambda_cost: f64) -> Vec<TestChoice> {
    let probed = session.probed();
    let estimations = session.estimations();
    let diagnoser = session.diagnoser();
    let mut out = Vec::new();
    for (idx, tp) in diagnoser.test_points().iter().enumerate() {
        if probed[idx] {
            continue;
        }
        let in_support: Vec<bool> = diagnoser
            .netlist()
            .components()
            .map(|(id, _)| tp.support.contains(&id))
            .collect();
        let (expected, info_score) = match policy {
            Policy::FuzzyEntropy => {
                // Outcome "consistent": the cone is exonerated.
                let post_cons: Vec<FuzzyInterval> = estimations
                    .iter()
                    .enumerate()
                    .map(|(k, (_, e))| {
                        if in_support[k] {
                            posterior_consistent()
                        } else {
                            *e
                        }
                    })
                    .collect();
                // Outcome "deviates": the cone is implicated.
                let post_dev: Vec<FuzzyInterval> = estimations
                    .iter()
                    .enumerate()
                    .map(|(k, (_, e))| {
                        if in_support[k] {
                            posterior_deviating(e)
                        } else {
                            *e
                        }
                    })
                    .collect();
                let ent_cons =
                    fuzzy_entropy(&post_cons).unwrap_or_else(|_| FuzzyInterval::crisp(0.0));
                let ent_dev =
                    fuzzy_entropy(&post_dev).unwrap_or_else(|_| FuzzyInterval::crisp(0.0));
                // Outcome possibilities: the share of the current
                // suspicion mass sitting inside the point's cone — a
                // mid-cone probe splits the mass and gets informative
                // weights on both outcomes.
                let total_mass: f64 = estimations.iter().map(|(_, e)| e.centroid()).sum();
                let cone_mass: f64 = estimations
                    .iter()
                    .enumerate()
                    .filter(|(k, _)| in_support[*k])
                    .map(|(_, (_, e))| e.centroid())
                    .sum();
                let w_dev = if total_mass > 0.0 {
                    (cone_mass / total_mass).clamp(0.05, 0.95)
                } else {
                    0.5
                };
                let expected = expected_entropy(&[(1.0 - w_dev, ent_cons), (w_dev, ent_dev)]);
                let score = expected.centroid();
                (expected, score)
            }
            Policy::Probabilistic => {
                // GDE-style: candidates predict the probe outcome by
                // whether they intersect the point's support cone; the
                // expected Shannon entropy of the split scores the test.
                let candidates = session.candidates(2, 64);
                if candidates.is_empty() {
                    // Fall back to cone-size heuristic: larger cones first.
                    let h = 1.0 / (tp.support.len().max(1) as f64);
                    (FuzzyInterval::crisp(h), h)
                } else {
                    let support_assumptions: Vec<_> = tp
                        .support
                        .iter()
                        .map(|c| session.propagator().component_assumption(c.index()))
                        .collect();
                    let (mut hit, mut miss): (Vec<f64>, Vec<f64>) = (Vec::new(), Vec::new());
                    for c in &candidates {
                        let predicts_deviation =
                            support_assumptions.iter().any(|a| c.env.contains(*a));
                        if predicts_deviation {
                            hit.push(c.degree.max(1e-3));
                        } else {
                            miss.push(c.degree.max(1e-3));
                        }
                    }
                    let w_hit: f64 = hit.iter().sum();
                    let w_miss: f64 = miss.iter().sum();
                    let total = (w_hit + w_miss).max(1e-12);
                    let h = (w_hit / total) * shannon_entropy(&hit)
                        + (w_miss / total) * shannon_entropy(&miss);
                    (FuzzyInterval::crisp(h), h)
                }
            }
            Policy::FixedOrder => {
                let h = idx as f64;
                (FuzzyInterval::crisp(h), h)
            }
        };
        out.push(TestChoice {
            point: idx,
            name: tp.name.clone(),
            expected_entropy: expected,
            score: info_score + lambda_cost * tp.cost,
            cost: tp.cost,
        });
    }
    out.sort_by(|a, b| {
        a.score
            .partial_cmp(&b.score)
            .expect("finite scores")
            .then_with(|| a.point.cmp(&b.point))
    });
    out
}

/// Outcome of a guided probing run ([`probe_until_isolated`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeRun {
    /// Probed point names, in order.
    pub probes: Vec<String>,
    /// Total probing cost.
    pub cost: f64,
    /// The top candidate's members at the end (empty when no conflict was
    /// ever observed).
    pub top_candidate: Vec<String>,
    /// Whether the run ended with a unique top single-component candidate.
    pub isolated: bool,
}

/// Drives a session to completion under a policy: repeatedly recommend,
/// probe (readings supplied by `read`, indexed like the diagnoser's test
/// points), and propagate — until the top candidate is a clearly ranked
/// single component or every point has been probed.
///
/// # Errors
///
/// Propagates measurement errors from the session.
pub fn probe_until_isolated(
    session: &mut Session<'_>,
    policy: Policy,
    lambda_cost: f64,
    read: &dyn Fn(usize) -> FuzzyInterval,
) -> crate::Result<ProbeRun> {
    let mut probes = Vec::new();
    let mut cost = 0.0;
    loop {
        let choices = recommend(session, policy, lambda_cost);
        let Some(choice) = choices.first() else {
            break;
        };
        session.measure_point(choice.point, read(choice.point))?;
        session.propagate();
        probes.push(choice.name.clone());
        cost += choice.cost;
        if isolated(session) {
            break;
        }
    }
    let cands = session.candidates(2, 16);
    let top_candidate = cands.first().map(|c| c.members.clone()).unwrap_or_default();
    Ok(ProbeRun {
        probes,
        cost,
        top_candidate,
        isolated: isolated(session),
    })
}

/// A session is *isolated* when its best candidate is a single component
/// strictly outranking every other candidate.
fn isolated(session: &Session<'_>) -> bool {
    let cands = session.candidates(2, 16);
    match cands.as_slice() {
        [] => false,
        [only] => only.members.len() == 1,
        [first, second, ..] => first.members.len() == 1 && first.degree > second.degree + 1e-9,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Diagnoser, DiagnoserConfig};
    use flames_circuit::predict::TestPoint;
    use flames_circuit::{Net, Netlist};

    /// Two independent dividers sharing a source: probing one cone says
    /// nothing about the other.
    fn two_branch() -> (Netlist, Diagnoser) {
        let mut nl = Netlist::new();
        let vin = nl.add_net("vin");
        let a = nl.add_net("a");
        let b = nl.add_net("b");
        nl.add_voltage_source("V", vin, Net::GROUND, 10.0).unwrap();
        let r1 = nl.add_resistor("R1", vin, a, 1e3, 0.05).unwrap();
        let r2 = nl.add_resistor("R2", a, Net::GROUND, 1e3, 0.05).unwrap();
        let r3 = nl.add_resistor("R3", vin, b, 1e3, 0.05).unwrap();
        let r4 = nl.add_resistor("R4", b, Net::GROUND, 1e3, 0.05).unwrap();
        let points = vec![
            TestPoint::new(a, "Va", vec![r1, r2]),
            TestPoint::new(b, "Vb", vec![r3, r4]).with_cost(3.0),
        ];
        let d = Diagnoser::from_netlist(&nl, points, DiagnoserConfig::default()).unwrap();
        (nl, d)
    }

    #[test]
    fn recommend_covers_unprobed_points_only() {
        let (_, d) = two_branch();
        let mut s = d.session();
        let all = recommend(&s, Policy::FuzzyEntropy, 0.0);
        assert_eq!(all.len(), 2);
        s.measure("Va", FuzzyInterval::crisp(5.0).widened(0.05).unwrap())
            .unwrap();
        s.propagate();
        let rest = recommend(&s, Policy::FuzzyEntropy, 0.0);
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].name, "Vb");
        s.measure("Vb", FuzzyInterval::crisp(5.0).widened(0.05).unwrap())
            .unwrap();
        assert!(recommend(&s, Policy::FuzzyEntropy, 0.0).is_empty());
    }

    #[test]
    fn cost_weight_flips_preference() {
        let (_, d) = two_branch();
        let s = d.session();
        // Symmetric information; Vb costs 3×. With λ > 0 the cheap probe
        // must rank first.
        let ranked = recommend(&s, Policy::FuzzyEntropy, 1.0);
        assert_eq!(ranked[0].name, "Va");
        assert!(ranked[0].score < ranked[1].score);
    }

    #[test]
    fn fixed_order_is_declaration_order() {
        let (_, d) = two_branch();
        let s = d.session();
        let ranked = recommend(&s, Policy::FixedOrder, 0.0);
        assert_eq!(ranked[0].name, "Va");
        assert_eq!(ranked[1].name, "Vb");
    }

    #[test]
    fn probabilistic_uses_candidate_split() {
        let (nl, d) = two_branch();
        let mut s = d.session();
        // Fault in branch A: candidates concentrate on R1/R2.
        let r1 = nl.component_by_name("R1").unwrap();
        let bad = flames_circuit::fault::inject_faults(
            &nl,
            &[(r1, flames_circuit::Fault::ParamFactor(1.5))],
        )
        .unwrap();
        let reading =
            flames_circuit::predict::measure(&bad, nl.net_by_name("a").unwrap(), 0.02).unwrap();
        s.measure("Va", reading).unwrap();
        s.propagate();
        let ranked = recommend(&s, Policy::Probabilistic, 0.0);
        // Only Vb remains; its score reflects the candidate split.
        assert_eq!(ranked.len(), 1);
        assert!(ranked[0].score.is_finite());
    }

    #[test]
    fn probe_run_isolates_single_branch_fault() {
        let (nl, d) = two_branch();
        let r1 = nl.component_by_name("R1").unwrap();
        let bad = flames_circuit::fault::inject_faults(
            &nl,
            &[(r1, flames_circuit::Fault::ParamFactor(2.0))],
        )
        .unwrap();
        let nets = [nl.net_by_name("a").unwrap(), nl.net_by_name("b").unwrap()];
        let readings: Vec<FuzzyInterval> = nets
            .iter()
            .map(|&n| flames_circuit::predict::measure(&bad, n, 0.02).unwrap())
            .collect();
        let mut s = d.session();
        let run =
            probe_until_isolated(&mut s, Policy::FuzzyEntropy, 0.1, &|i| readings[i]).unwrap();
        assert!(!run.probes.is_empty());
        assert!(run.cost > 0.0);
        // The fault lives in branch A; the top candidate names R1 or R2.
        assert!(
            run.top_candidate.iter().any(|m| m == "R1" || m == "R2"),
            "{run:?}"
        );
    }

    #[test]
    fn policies_display() {
        assert_eq!(Policy::FuzzyEntropy.to_string(), "fuzzy-entropy");
        assert_eq!(Policy::Probabilistic.to_string(), "probabilistic");
        assert_eq!(Policy::FixedOrder.to_string(), "fixed-order");
    }
}
