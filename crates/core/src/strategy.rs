//! Best-test strategies (§8 of the paper).
//!
//! "We want FLAMES to be able to recommend at any point the next best
//! test to make, from a set of predefined available tests." The fuzzy
//! strategy scores each unprobed test point by the **expected fuzzy
//! entropy** of the component-faultiness estimations after the
//! measurement, moving away from "the probabilistic approach with its
//! heavy calculus and hard assumptions"; that probabilistic (GDE-style)
//! approach is kept as a baseline, alongside a naive fixed-order probing.
//!
//! # Planning fast path
//!
//! Scoring a probe evaluates the posterior entropy of every component
//! estimation under each hypothetical outcome — `O(points × components)`
//! trapezoid-entropy evaluations per [`recommend`] call, repeated on
//! every iteration of [`probe_until_isolated`]. Three layers keep that
//! affordable while staying byte-identical to the direct computation:
//!
//! * per-component entropy *terms* are memoized in an [`EntropyMemo`]
//!   keyed on the exact bit pattern of the estimation, so each distinct
//!   posterior is evaluated once per planning run instead of once per
//!   point — and, via [`probe_until_isolated_with`], once per *run*
//!   rather than once per iteration;
//! * candidate queries go through the session's nogood-epoch-tagged
//!   cache ([`Session::candidates`]), so the hitting-set work is not
//!   redone between propagation waves;
//! * point evaluations are data-parallel: [`recommend_with`] fans the
//!   unprobed points out over scoped threads in contiguous chunks and
//!   merges by index, so the ranking is byte-identical for every thread
//!   count.
//!
//! The pre-optimization path is retained verbatim as
//! [`recommend_oracle`] / [`probe_until_isolated_oracle`] — the
//! differential suites and the `exp_strategy` benchmark gate assert the
//! fast path reproduces it bit for bit.

use crate::engine::{Diagnoser, Session, SessionPool};
use flames_atms::Assumption;
use flames_fuzzy::entropy::{expected_entropy, fuzzy_entropy, shannon_entropy, EntropyMemo};
use flames_fuzzy::FuzzyInterval;
use std::fmt;

/// Which selection policy to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Policy {
    /// Fuzzy-entropy-guided (the paper's §8 proposal).
    FuzzyEntropy,
    /// GDE-style probabilistic expected Shannon entropy (the baseline the
    /// paper moves away from).
    Probabilistic,
    /// Probe test points in declaration order (naive baseline).
    FixedOrder,
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Policy::FuzzyEntropy => write!(f, "fuzzy-entropy"),
            Policy::Probabilistic => write!(f, "probabilistic"),
            Policy::FixedOrder => write!(f, "fixed-order"),
        }
    }
}

/// How many candidates the planner asks the ATMS for.
///
/// One named budget shared by every strategy-layer candidate query —
/// scoring ([`Policy::Probabilistic`]), the isolation test, and the
/// final [`ProbeRun`] report — so the fast and oracle paths compare the
/// same slice of the hitting-set antichain. (Historically the scorer
/// used `(2, 64)` while the probe loop used `(2, 16)`; the union is the
/// generous one.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CandidateBudget {
    /// Largest candidate (multi-fault) size considered.
    pub max_size: usize,
    /// Most candidates retained after ranking.
    pub max_count: usize,
}

/// The planner's single candidate budget: double faults, top 64.
pub const CANDIDATE_BUDGET: CandidateBudget = CandidateBudget {
    max_size: 2,
    max_count: 64,
};

/// A scored recommendation for one unprobed test point.
#[derive(Debug, Clone, PartialEq)]
pub struct TestChoice {
    /// Index of the test point in the diagnoser's declaration order.
    pub point: usize,
    /// The point's name.
    pub name: String,
    /// Expected post-measurement entropy (fuzzy for the fuzzy policy, a
    /// crisp number wrapped as a point for the baselines).
    pub expected_entropy: FuzzyInterval,
    /// Final score: defuzzified expected entropy + `λ · cost`
    /// (lower is better).
    pub score: f64,
    /// The probing cost of the point.
    pub cost: f64,
}

/// Posterior estimation of a support-cone component when the probe comes
/// back consistent: (close to) correct.
fn posterior_consistent() -> FuzzyInterval {
    FuzzyInterval::new(0.0, 0.05, 0.0, 0.05).expect("static")
}

/// Posterior estimation of a support-cone component when the probe
/// deviates: at least as suspect as before, and clearly suspect.
fn posterior_deviating(prior: &FuzzyInterval) -> FuzzyInterval {
    let suspect = FuzzyInterval::new(0.6, 0.8, 0.1, 0.1).expect("static");
    prior.max_ext(&suspect)
}

/// Everything one hypothetical-point evaluation needs, detached from the
/// session so the evaluations can run on worker threads.
struct PointCtx {
    point: usize,
    name: String,
    cost: f64,
    /// Per-component membership in the point's support cone, netlist
    /// order ([`Policy::FuzzyEntropy`]).
    in_support: Vec<bool>,
    /// The support cone's component assumptions
    /// ([`Policy::Probabilistic`]).
    support_assumptions: Vec<Assumption>,
    support_len: usize,
}

/// Memoized per-component entropy terms shared by every point evaluation
/// of one [`recommend_with_memo`] call. `None` marks an estimation whose
/// entropy errored; folding collapses to a crisp 0 then, exactly as the
/// direct `fuzzy_entropy(..).unwrap_or_else(..)` did.
struct FuzzyCtx {
    term_cons: Option<FuzzyInterval>,
    terms_base: Vec<Option<FuzzyInterval>>,
    terms_dev: Vec<Option<FuzzyInterval>>,
    centroids: Vec<f64>,
    total_mass: f64,
}

/// Candidate split inputs for the probabilistic baseline, hoisted out of
/// the per-point loop (the epoch-tagged session cache makes the repeated
/// query cheap; hoisting makes it free).
struct ProbCtx {
    /// `(env, degree)` of each candidate under [`CANDIDATE_BUDGET`].
    candidates: Vec<(flames_atms::Env, f64)>,
}

/// Sums precomputed entropy terms in component order — the same fold
/// `fuzzy_entropy` performs, so the result is bit-identical to the
/// unmemoized computation.
fn fold_terms<'a>(terms: impl Iterator<Item = &'a Option<FuzzyInterval>>) -> FuzzyInterval {
    let mut acc = FuzzyInterval::crisp(0.0);
    for term in terms {
        match term {
            Some(h) => acc = acc + *h,
            None => return FuzzyInterval::crisp(0.0),
        }
    }
    acc
}

/// Scores one unprobed point from precomputed context. Pure: safe to run
/// on any worker thread, identical output regardless of placement.
fn eval_point(
    policy: Policy,
    pt: &PointCtx,
    fuzzy: Option<&FuzzyCtx>,
    prob: Option<&ProbCtx>,
    lambda_cost: f64,
) -> TestChoice {
    flames_obs::metrics().probe_evals.incr();
    let (expected, info_score) = match policy {
        Policy::FuzzyEntropy => {
            let ctx = fuzzy.expect("fuzzy context prepared");
            // Outcome "consistent": the cone is exonerated.
            let ent_cons = fold_terms(ctx.terms_base.iter().enumerate().map(|(k, base)| {
                if pt.in_support[k] {
                    &ctx.term_cons
                } else {
                    base
                }
            }));
            // Outcome "deviates": the cone is implicated.
            let ent_dev = fold_terms(ctx.terms_base.iter().enumerate().map(|(k, base)| {
                if pt.in_support[k] {
                    &ctx.terms_dev[k]
                } else {
                    base
                }
            }));
            // Outcome possibilities: the share of the current suspicion
            // mass sitting inside the point's cone — a mid-cone probe
            // splits the mass and gets informative weights on both
            // outcomes.
            let cone_mass: f64 = ctx
                .centroids
                .iter()
                .enumerate()
                .filter(|(k, _)| pt.in_support[*k])
                .map(|(_, c)| *c)
                .sum();
            let w_dev = if ctx.total_mass > 0.0 {
                (cone_mass / ctx.total_mass).clamp(0.05, 0.95)
            } else {
                0.5
            };
            let expected = expected_entropy(&[(1.0 - w_dev, ent_cons), (w_dev, ent_dev)]);
            let score = expected.centroid();
            (expected, score)
        }
        Policy::Probabilistic => {
            // GDE-style: candidates predict the probe outcome by whether
            // they intersect the point's support cone; the expected
            // Shannon entropy of the split scores the test.
            let ctx = prob.expect("probabilistic context prepared");
            if ctx.candidates.is_empty() {
                // Fall back to cone-size heuristic: larger cones first.
                let h = 1.0 / (pt.support_len.max(1) as f64);
                (FuzzyInterval::crisp(h), h)
            } else {
                let (mut hit, mut miss): (Vec<f64>, Vec<f64>) = (Vec::new(), Vec::new());
                for (env, degree) in &ctx.candidates {
                    let predicts_deviation =
                        pt.support_assumptions.iter().any(|a| env.contains(*a));
                    if predicts_deviation {
                        hit.push(degree.max(1e-3));
                    } else {
                        miss.push(degree.max(1e-3));
                    }
                }
                let w_hit: f64 = hit.iter().sum();
                let w_miss: f64 = miss.iter().sum();
                let total = (w_hit + w_miss).max(1e-12);
                let h = (w_hit / total) * shannon_entropy(&hit)
                    + (w_miss / total) * shannon_entropy(&miss);
                (FuzzyInterval::crisp(h), h)
            }
        }
        Policy::FixedOrder => {
            let h = pt.point as f64;
            (FuzzyInterval::crisp(h), h)
        }
    };
    TestChoice {
        point: pt.point,
        name: pt.name.clone(),
        expected_entropy: expected,
        score: info_score + lambda_cost * pt.cost,
        cost: pt.cost,
    }
}

/// Ranks the unprobed test points of a session under the given policy;
/// the best choice (lowest score) comes first. `lambda_cost` trades
/// information against probing cost (the paper's "expected total cost").
///
/// Returns an empty list when every point has been probed.
#[must_use]
pub fn recommend(session: &Session<'_>, policy: Policy, lambda_cost: f64) -> Vec<TestChoice> {
    recommend_with(session, policy, lambda_cost, 1)
}

/// [`recommend`] with the hypothetical-outcome evaluations fanned out
/// over `threads` scoped worker threads. Contiguous chunks written back
/// by index make the merge deterministic: the ranking is byte-identical
/// for every thread count (the serving suite asserts 1/2/4/8 agree).
#[must_use]
pub fn recommend_with(
    session: &Session<'_>,
    policy: Policy,
    lambda_cost: f64,
    threads: usize,
) -> Vec<TestChoice> {
    let mut memo = EntropyMemo::new();
    recommend_with_memo(session, policy, lambda_cost, threads, &mut memo)
}

/// [`recommend_with`] reusing a caller-held [`EntropyMemo`], so a probe
/// loop pays for each distinct posterior entropy once per *run* instead
/// of once per iteration. The memo is keyed on exact bit patterns, so
/// reuse cannot change any score.
#[must_use]
pub fn recommend_with_memo(
    session: &Session<'_>,
    policy: Policy,
    lambda_cost: f64,
    threads: usize,
    memo: &mut EntropyMemo,
) -> Vec<TestChoice> {
    let probed = session.probed();
    let diagnoser = session.diagnoser();
    let netlist = diagnoser.netlist();

    // Detach everything a point evaluation needs from the session.
    let points: Vec<PointCtx> = diagnoser
        .test_points()
        .iter()
        .enumerate()
        .filter(|(idx, _)| !probed[*idx])
        .map(|(idx, tp)| PointCtx {
            point: idx,
            name: tp.name.clone(),
            cost: tp.cost,
            in_support: match policy {
                Policy::FuzzyEntropy => netlist
                    .components()
                    .map(|(id, _)| tp.support.contains(&id))
                    .collect(),
                _ => Vec::new(),
            },
            support_assumptions: match policy {
                Policy::Probabilistic => tp
                    .support
                    .iter()
                    .map(|c| session.propagator().component_assumption(c.index()))
                    .collect(),
                _ => Vec::new(),
            },
            support_len: tp.support.len(),
        })
        .collect();
    if points.is_empty() {
        return Vec::new();
    }

    let fuzzy = match policy {
        Policy::FuzzyEntropy => {
            let estimations = session.estimations();
            let term_cons = memo.point_entropy(&posterior_consistent());
            let terms_base: Vec<_> = estimations
                .iter()
                .map(|(_, e)| memo.point_entropy(e))
                .collect();
            let terms_dev: Vec<_> = estimations
                .iter()
                .map(|(_, e)| memo.point_entropy(&posterior_deviating(e)))
                .collect();
            let centroids: Vec<f64> = estimations.iter().map(|(_, e)| e.centroid()).collect();
            let total_mass: f64 = centroids.iter().sum();
            Some(FuzzyCtx {
                term_cons,
                terms_base,
                terms_dev,
                centroids,
                total_mass,
            })
        }
        _ => None,
    };
    let prob = match policy {
        Policy::Probabilistic => Some(ProbCtx {
            candidates: session
                .candidates(CANDIDATE_BUDGET.max_size, CANDIDATE_BUDGET.max_count)
                .into_iter()
                .map(|c| (c.env, c.degree))
                .collect(),
        }),
        _ => None,
    };

    let threads = threads.max(1).min(points.len());
    let mut out: Vec<Option<TestChoice>> = Vec::new();
    out.resize_with(points.len(), || None);
    if threads <= 1 {
        for (slot, pt) in out.iter_mut().zip(&points) {
            *slot = Some(eval_point(
                policy,
                pt,
                fuzzy.as_ref(),
                prob.as_ref(),
                lambda_cost,
            ));
        }
    } else {
        let chunk = points.len().div_ceil(threads);
        let fuzzy = fuzzy.as_ref();
        let prob = prob.as_ref();
        std::thread::scope(|scope| {
            let mut rest: &mut [Option<TestChoice>] = &mut out;
            for batch in points.chunks(chunk) {
                let (head, tail) = rest.split_at_mut(batch.len());
                rest = tail;
                scope.spawn(move || {
                    for (slot, pt) in head.iter_mut().zip(batch) {
                        *slot = Some(eval_point(policy, pt, fuzzy, prob, lambda_cost));
                    }
                });
            }
        });
    }

    let mut out: Vec<TestChoice> = out
        .into_iter()
        .map(|c| c.expect("every point evaluated"))
        .collect();
    out.sort_by(|a, b| {
        a.score
            .partial_cmp(&b.score)
            .expect("finite scores")
            .then_with(|| a.point.cmp(&b.point))
    });
    out
}

/// The pre-optimization [`recommend`]: no entropy memo, no candidate
/// cache (every probabilistic score re-enumerates the hitting sets via
/// [`Session::candidates_uncached`]), no parallelism. Kept verbatim as
/// the differential oracle; `exp_strategy` gates on the fast path
/// matching it byte for byte.
#[must_use]
pub fn recommend_oracle(
    session: &Session<'_>,
    policy: Policy,
    lambda_cost: f64,
) -> Vec<TestChoice> {
    let probed = session.probed();
    let estimations = session.estimations();
    let diagnoser = session.diagnoser();
    let mut out = Vec::new();
    for (idx, tp) in diagnoser.test_points().iter().enumerate() {
        if probed[idx] {
            continue;
        }
        let in_support: Vec<bool> = diagnoser
            .netlist()
            .components()
            .map(|(id, _)| tp.support.contains(&id))
            .collect();
        let (expected, info_score) = match policy {
            Policy::FuzzyEntropy => {
                // Outcome "consistent": the cone is exonerated.
                let post_cons: Vec<FuzzyInterval> = estimations
                    .iter()
                    .enumerate()
                    .map(|(k, (_, e))| {
                        if in_support[k] {
                            posterior_consistent()
                        } else {
                            *e
                        }
                    })
                    .collect();
                // Outcome "deviates": the cone is implicated.
                let post_dev: Vec<FuzzyInterval> = estimations
                    .iter()
                    .enumerate()
                    .map(|(k, (_, e))| {
                        if in_support[k] {
                            posterior_deviating(e)
                        } else {
                            *e
                        }
                    })
                    .collect();
                let ent_cons =
                    fuzzy_entropy(&post_cons).unwrap_or_else(|_| FuzzyInterval::crisp(0.0));
                let ent_dev =
                    fuzzy_entropy(&post_dev).unwrap_or_else(|_| FuzzyInterval::crisp(0.0));
                let total_mass: f64 = estimations.iter().map(|(_, e)| e.centroid()).sum();
                let cone_mass: f64 = estimations
                    .iter()
                    .enumerate()
                    .filter(|(k, _)| in_support[*k])
                    .map(|(_, (_, e))| e.centroid())
                    .sum();
                let w_dev = if total_mass > 0.0 {
                    (cone_mass / total_mass).clamp(0.05, 0.95)
                } else {
                    0.5
                };
                let expected = expected_entropy(&[(1.0 - w_dev, ent_cons), (w_dev, ent_dev)]);
                let score = expected.centroid();
                (expected, score)
            }
            Policy::Probabilistic => {
                let candidates = session
                    .candidates_uncached(CANDIDATE_BUDGET.max_size, CANDIDATE_BUDGET.max_count);
                if candidates.is_empty() {
                    let h = 1.0 / (tp.support.len().max(1) as f64);
                    (FuzzyInterval::crisp(h), h)
                } else {
                    let support_assumptions: Vec<_> = tp
                        .support
                        .iter()
                        .map(|c| session.propagator().component_assumption(c.index()))
                        .collect();
                    let (mut hit, mut miss): (Vec<f64>, Vec<f64>) = (Vec::new(), Vec::new());
                    for c in &candidates {
                        let predicts_deviation =
                            support_assumptions.iter().any(|a| c.env.contains(*a));
                        if predicts_deviation {
                            hit.push(c.degree.max(1e-3));
                        } else {
                            miss.push(c.degree.max(1e-3));
                        }
                    }
                    let w_hit: f64 = hit.iter().sum();
                    let w_miss: f64 = miss.iter().sum();
                    let total = (w_hit + w_miss).max(1e-12);
                    let h = (w_hit / total) * shannon_entropy(&hit)
                        + (w_miss / total) * shannon_entropy(&miss);
                    (FuzzyInterval::crisp(h), h)
                }
            }
            Policy::FixedOrder => {
                let h = idx as f64;
                (FuzzyInterval::crisp(h), h)
            }
        };
        out.push(TestChoice {
            point: idx,
            name: tp.name.clone(),
            expected_entropy: expected,
            score: info_score + lambda_cost * tp.cost,
            cost: tp.cost,
        });
    }
    out.sort_by(|a, b| {
        a.score
            .partial_cmp(&b.score)
            .expect("finite scores")
            .then_with(|| a.point.cmp(&b.point))
    });
    out
}

/// Outcome of a guided probing run ([`probe_until_isolated`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeRun {
    /// Probed point names, in order.
    pub probes: Vec<String>,
    /// Total probing cost.
    pub cost: f64,
    /// The top candidate's members at the end (empty when no conflict was
    /// ever observed).
    pub top_candidate: Vec<String>,
    /// Whether the run ended with a unique top single-component candidate.
    pub isolated: bool,
}

/// Drives a session to completion under a policy: repeatedly recommend,
/// probe (readings supplied by `read`, indexed like the diagnoser's test
/// points), and propagate — until the top candidate is a clearly ranked
/// single component or every point has been probed.
///
/// # Errors
///
/// Propagates measurement errors from the session.
pub fn probe_until_isolated(
    session: &mut Session<'_>,
    policy: Policy,
    lambda_cost: f64,
    read: &dyn Fn(usize) -> FuzzyInterval,
) -> crate::Result<ProbeRun> {
    probe_until_isolated_with(session, policy, lambda_cost, read, 1)
}

/// [`probe_until_isolated`] with `threads`-wide point evaluation on every
/// planning step, holding one [`EntropyMemo`] across iterations (the
/// posterior entropies of the unimplicated components carry over from
/// wave to wave). Byte-identical to the single-threaded and oracle runs.
///
/// # Errors
///
/// Propagates measurement errors from the session.
pub fn probe_until_isolated_with(
    session: &mut Session<'_>,
    policy: Policy,
    lambda_cost: f64,
    read: &dyn Fn(usize) -> FuzzyInterval,
    threads: usize,
) -> crate::Result<ProbeRun> {
    let mut memo = EntropyMemo::new();
    let mut probes = Vec::new();
    let mut cost = 0.0;
    loop {
        let choices = recommend_with_memo(session, policy, lambda_cost, threads, &mut memo);
        let Some(choice) = choices.first() else {
            break;
        };
        session.measure_point(choice.point, read(choice.point))?;
        session.propagate();
        probes.push(choice.name.clone());
        cost += choice.cost;
        if isolated(session) {
            break;
        }
    }
    let cands = session.candidates(CANDIDATE_BUDGET.max_size, CANDIDATE_BUDGET.max_count);
    let top_candidate = cands.first().map(|c| c.members.clone()).unwrap_or_default();
    Ok(ProbeRun {
        probes,
        cost,
        top_candidate,
        isolated: isolated(session),
    })
}

/// The pre-optimization probe loop: [`recommend_oracle`] for planning,
/// uncached re-enumerated candidates for the isolation test and the
/// final report. The differential baseline `exp_strategy` times the fast
/// loop against.
///
/// # Errors
///
/// Propagates measurement errors from the session.
pub fn probe_until_isolated_oracle(
    session: &mut Session<'_>,
    policy: Policy,
    lambda_cost: f64,
    read: &dyn Fn(usize) -> FuzzyInterval,
) -> crate::Result<ProbeRun> {
    let mut probes = Vec::new();
    let mut cost = 0.0;
    loop {
        let choices = recommend_oracle(session, policy, lambda_cost);
        let Some(choice) = choices.first() else {
            break;
        };
        session.measure_point(choice.point, read(choice.point))?;
        session.propagate();
        probes.push(choice.name.clone());
        cost += choice.cost;
        if isolated_oracle(session) {
            break;
        }
    }
    let cands = session.candidates_uncached(CANDIDATE_BUDGET.max_size, CANDIDATE_BUDGET.max_count);
    let top_candidate = cands.first().map(|c| c.members.clone()).unwrap_or_default();
    Ok(ProbeRun {
        probes,
        cost,
        top_candidate,
        isolated: isolated_oracle(session),
    })
}

/// A session is *isolated* when its best candidate is a single component
/// strictly outranking every other candidate.
fn isolated(session: &Session<'_>) -> bool {
    let cands = session.candidates(CANDIDATE_BUDGET.max_size, CANDIDATE_BUDGET.max_count);
    isolated_in(&cands)
}

/// [`isolated`] on uncached, re-enumerated candidates (oracle loop).
fn isolated_oracle(session: &Session<'_>) -> bool {
    let cands = session.candidates_uncached(CANDIDATE_BUDGET.max_size, CANDIDATE_BUDGET.max_count);
    isolated_in(&cands)
}

fn isolated_in(cands: &[crate::engine::Candidate]) -> bool {
    match cands {
        [] => false,
        [only] => only.members.len() == 1,
        [first, second, ..] => first.members.len() == 1 && first.degree > second.degree + 1e-9,
    }
}

/// Full per-point readings for one board under guided probing, indexed
/// like the diagnoser's test points (the probe loop decides which ones
/// it actually consumes).
pub type BoardReadings = Vec<FuzzyInterval>;

/// Runs [`probe_until_isolated`] for a fleet of boards on `threads`
/// scoped worker threads, each worker recycling sessions through its own
/// [`SessionPool`] (the serve-many pattern of `diagnose_batch`). Results
/// come back in board order regardless of thread count.
///
/// # Errors
///
/// Returns the first per-board error.
///
/// # Panics
///
/// Panics if a worker thread panics.
pub fn probe_batch(
    diagnoser: &Diagnoser,
    boards: &[BoardReadings],
    policy: Policy,
    lambda_cost: f64,
    threads: usize,
) -> crate::Result<Vec<ProbeRun>> {
    let threads = threads.max(1).min(boards.len().max(1));
    let mut results: Vec<Option<ProbeRun>> = Vec::new();
    results.resize_with(boards.len(), || None);
    let run_one = |pool: &mut SessionPool<'_>, readings: &BoardReadings| {
        let mut session = pool.acquire();
        let run = probe_until_isolated(&mut session, policy, lambda_cost, &|i| readings[i]);
        pool.release(session);
        run
    };
    if threads <= 1 {
        let mut pool = SessionPool::new(diagnoser);
        for (slot, readings) in results.iter_mut().zip(boards) {
            *slot = Some(run_one(&mut pool, readings)?);
        }
    } else {
        let chunk = boards.len().div_ceil(threads);
        std::thread::scope(|scope| -> crate::Result<()> {
            let mut handles = Vec::new();
            let mut rest: &mut [Option<ProbeRun>] = &mut results;
            for batch in boards.chunks(chunk) {
                let (head, tail) = rest.split_at_mut(batch.len());
                rest = tail;
                handles.push(scope.spawn(move || -> crate::Result<()> {
                    let mut pool = SessionPool::new(diagnoser);
                    for (slot, readings) in head.iter_mut().zip(batch) {
                        *slot = Some(run_one(&mut pool, readings)?);
                    }
                    Ok(())
                }));
            }
            for handle in handles {
                handle.join().expect("probe worker panicked")?;
            }
            Ok(())
        })?;
    }
    Ok(results
        .into_iter()
        .map(|r| r.expect("every board probed"))
        .collect())
}

/// [`probe_batch`] with board-lane propagation: each worker drives its
/// boards in lanes of up to `lane_width` live sessions, planning each
/// session's next probe individually but propagating the whole lane
/// jointly ([`Session::propagate_lane`]) so one schedule traversal per
/// wave is amortised over the lane. Sessions retire from the lane as
/// they isolate. Runs are byte-identical to [`probe_batch`] — the lane
/// runner preserves each board's solo propagation order exactly.
///
/// # Errors
///
/// Returns the first per-board error.
///
/// # Panics
///
/// Panics if a worker thread panics.
pub fn probe_batch_lanes(
    diagnoser: &Diagnoser,
    boards: &[BoardReadings],
    policy: Policy,
    lambda_cost: f64,
    threads: usize,
    lane_width: usize,
) -> crate::Result<Vec<ProbeRun>> {
    let lane_width = lane_width.clamp(1, 64);
    let threads = threads.max(1).min(boards.len().max(1));
    let mut results: Vec<Option<ProbeRun>> = Vec::new();
    results.resize_with(boards.len(), || None);
    if threads <= 1 {
        let mut pool = SessionPool::new(diagnoser);
        for (lane, out) in boards
            .chunks(lane_width)
            .zip(results.chunks_mut(lane_width))
        {
            probe_lane_into(&mut pool, lane, policy, lambda_cost, out)?;
        }
    } else {
        let chunk = boards.len().div_ceil(threads);
        std::thread::scope(|scope| -> crate::Result<()> {
            let mut handles = Vec::new();
            let mut rest: &mut [Option<ProbeRun>] = &mut results;
            for batch in boards.chunks(chunk) {
                let (head, tail) = rest.split_at_mut(batch.len());
                rest = tail;
                handles.push(scope.spawn(move || -> crate::Result<()> {
                    let mut pool = SessionPool::new(diagnoser);
                    for (lane, out) in batch.chunks(lane_width).zip(head.chunks_mut(lane_width)) {
                        probe_lane_into(&mut pool, lane, policy, lambda_cost, out)?;
                    }
                    Ok(())
                }));
            }
            for handle in handles {
                handle.join().expect("probe worker panicked")?;
            }
            Ok(())
        })?;
    }
    Ok(results
        .into_iter()
        .map(|r| r.expect("every board probed"))
        .collect())
}

/// Drives one lane of boards in lock step: plan each live session's next
/// probe, measure, propagate the lane jointly, retire isolated sessions.
fn probe_lane_into<'d>(
    pool: &mut SessionPool<'d>,
    lane: &[BoardReadings],
    policy: Policy,
    lambda_cost: f64,
    out: &mut [Option<ProbeRun>],
) -> crate::Result<()> {
    debug_assert_eq!(lane.len(), out.len());
    struct Live<'d> {
        session: Session<'d>,
        slot: usize,
        memo: EntropyMemo,
        probes: Vec<String>,
        cost: f64,
    }
    let mut live: Vec<Live<'d>> = lane
        .iter()
        .enumerate()
        .map(|(slot, _)| Live {
            session: pool.acquire(),
            slot,
            memo: EntropyMemo::new(),
            probes: Vec::new(),
            cost: 0.0,
        })
        .collect();
    while !live.is_empty() {
        // Plan and measure each live session's next probe; sessions with
        // nothing left to probe finish immediately.
        let mut still = Vec::with_capacity(live.len());
        for mut l in live {
            let choices = recommend_with_memo(&l.session, policy, lambda_cost, 1, &mut l.memo);
            match choices.first() {
                Some(choice) => {
                    l.session
                        .measure_point(choice.point, lane[l.slot][choice.point])?;
                    l.probes.push(choice.name.clone());
                    l.cost += choice.cost;
                    still.push(l);
                }
                None => out[l.slot] = Some(finish_probe_run(pool, l.session, l.probes, l.cost)),
            }
        }
        live = still;
        // One joint propagation wave over the lane.
        {
            let mut sessions: Vec<&mut Session<'d>> =
                live.iter_mut().map(|l| &mut l.session).collect();
            Session::propagate_lane(&mut sessions);
        }
        // Retire sessions that isolated on this wave.
        let mut still = Vec::with_capacity(live.len());
        for l in live {
            if isolated(&l.session) {
                out[l.slot] = Some(finish_probe_run(pool, l.session, l.probes, l.cost));
            } else {
                still.push(l);
            }
        }
        live = still;
    }
    Ok(())
}

/// Renders a finished session's [`ProbeRun`] and recycles the session.
fn finish_probe_run<'d>(
    pool: &mut SessionPool<'d>,
    session: Session<'d>,
    probes: Vec<String>,
    cost: f64,
) -> ProbeRun {
    let cands = session.candidates(CANDIDATE_BUDGET.max_size, CANDIDATE_BUDGET.max_count);
    let top_candidate = cands.first().map(|c| c.members.clone()).unwrap_or_default();
    let run = ProbeRun {
        probes,
        cost,
        top_candidate,
        isolated: isolated(&session),
    };
    pool.release(session);
    run
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Diagnoser, DiagnoserConfig};
    use flames_circuit::predict::TestPoint;
    use flames_circuit::{Net, Netlist};

    /// Two independent dividers sharing a source: probing one cone says
    /// nothing about the other.
    fn two_branch() -> (Netlist, Diagnoser) {
        let mut nl = Netlist::new();
        let vin = nl.add_net("vin");
        let a = nl.add_net("a");
        let b = nl.add_net("b");
        nl.add_voltage_source("V", vin, Net::GROUND, 10.0).unwrap();
        let r1 = nl.add_resistor("R1", vin, a, 1e3, 0.05).unwrap();
        let r2 = nl.add_resistor("R2", a, Net::GROUND, 1e3, 0.05).unwrap();
        let r3 = nl.add_resistor("R3", vin, b, 1e3, 0.05).unwrap();
        let r4 = nl.add_resistor("R4", b, Net::GROUND, 1e3, 0.05).unwrap();
        let points = vec![
            TestPoint::new(a, "Va", vec![r1, r2]),
            TestPoint::new(b, "Vb", vec![r3, r4]).with_cost(3.0),
        ];
        let d = Diagnoser::from_netlist(&nl, points, DiagnoserConfig::default()).unwrap();
        (nl, d)
    }

    #[test]
    fn recommend_covers_unprobed_points_only() {
        let (_, d) = two_branch();
        let mut s = d.session();
        let all = recommend(&s, Policy::FuzzyEntropy, 0.0);
        assert_eq!(all.len(), 2);
        s.measure("Va", FuzzyInterval::crisp(5.0).widened(0.05).unwrap())
            .unwrap();
        s.propagate();
        let rest = recommend(&s, Policy::FuzzyEntropy, 0.0);
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].name, "Vb");
        s.measure("Vb", FuzzyInterval::crisp(5.0).widened(0.05).unwrap())
            .unwrap();
        assert!(recommend(&s, Policy::FuzzyEntropy, 0.0).is_empty());
    }

    #[test]
    fn cost_weight_flips_preference() {
        let (_, d) = two_branch();
        let s = d.session();
        // Symmetric information; Vb costs 3×. With λ > 0 the cheap probe
        // must rank first.
        let ranked = recommend(&s, Policy::FuzzyEntropy, 1.0);
        assert_eq!(ranked[0].name, "Va");
        assert!(ranked[0].score < ranked[1].score);
    }

    #[test]
    fn fixed_order_is_declaration_order() {
        let (_, d) = two_branch();
        let s = d.session();
        let ranked = recommend(&s, Policy::FixedOrder, 0.0);
        assert_eq!(ranked[0].name, "Va");
        assert_eq!(ranked[1].name, "Vb");
    }

    #[test]
    fn probabilistic_uses_candidate_split() {
        let (nl, d) = two_branch();
        let mut s = d.session();
        // Fault in branch A: candidates concentrate on R1/R2.
        let r1 = nl.component_by_name("R1").unwrap();
        let bad = flames_circuit::fault::inject_faults(
            &nl,
            &[(r1, flames_circuit::Fault::ParamFactor(1.5))],
        )
        .unwrap();
        let reading =
            flames_circuit::predict::measure(&bad, nl.net_by_name("a").unwrap(), 0.02).unwrap();
        s.measure("Va", reading).unwrap();
        s.propagate();
        let ranked = recommend(&s, Policy::Probabilistic, 0.0);
        // Only Vb remains; its score reflects the candidate split.
        assert_eq!(ranked.len(), 1);
        assert!(ranked[0].score.is_finite());
    }

    #[test]
    fn probe_run_isolates_single_branch_fault() {
        let (nl, d) = two_branch();
        let r1 = nl.component_by_name("R1").unwrap();
        let bad = flames_circuit::fault::inject_faults(
            &nl,
            &[(r1, flames_circuit::Fault::ParamFactor(2.0))],
        )
        .unwrap();
        let nets = [nl.net_by_name("a").unwrap(), nl.net_by_name("b").unwrap()];
        let readings: Vec<FuzzyInterval> = nets
            .iter()
            .map(|&n| flames_circuit::predict::measure(&bad, n, 0.02).unwrap())
            .collect();
        let mut s = d.session();
        let run =
            probe_until_isolated(&mut s, Policy::FuzzyEntropy, 0.1, &|i| readings[i]).unwrap();
        assert!(!run.probes.is_empty());
        assert!(run.cost > 0.0);
        // The fault lives in branch A; the top candidate names R1 or R2.
        assert!(
            run.top_candidate.iter().any(|m| m == "R1" || m == "R2"),
            "{run:?}"
        );
    }

    #[test]
    fn fast_paths_match_oracle() {
        let (nl, d) = two_branch();
        let r1 = nl.component_by_name("R1").unwrap();
        let bad = flames_circuit::fault::inject_faults(
            &nl,
            &[(r1, flames_circuit::Fault::ParamFactor(2.0))],
        )
        .unwrap();
        let nets = [nl.net_by_name("a").unwrap(), nl.net_by_name("b").unwrap()];
        let readings: Vec<FuzzyInterval> = nets
            .iter()
            .map(|&n| flames_circuit::predict::measure(&bad, n, 0.02).unwrap())
            .collect();
        for policy in [
            Policy::FuzzyEntropy,
            Policy::Probabilistic,
            Policy::FixedOrder,
        ] {
            let fast = {
                let mut s = d.session();
                probe_until_isolated(&mut s, policy, 0.1, &|i| readings[i]).unwrap()
            };
            let oracle = {
                let mut s = d.session();
                probe_until_isolated_oracle(&mut s, policy, 0.1, &|i| readings[i]).unwrap()
            };
            assert_eq!(
                format!("{fast:?}"),
                format!("{oracle:?}"),
                "policy {policy}"
            );
        }
    }

    #[test]
    fn recommend_is_thread_count_invariant() {
        let (_, d) = two_branch();
        let s = d.session();
        for policy in [
            Policy::FuzzyEntropy,
            Policy::Probabilistic,
            Policy::FixedOrder,
        ] {
            let solo = recommend_with(&s, policy, 0.3, 1);
            for threads in [2, 4, 8] {
                let multi = recommend_with(&s, policy, 0.3, threads);
                assert_eq!(format!("{solo:?}"), format!("{multi:?}"), "{policy}");
            }
        }
    }

    #[test]
    fn probe_batch_matches_solo_runs() {
        let (nl, d) = two_branch();
        let mut boards: Vec<BoardReadings> = Vec::new();
        for (name, factor) in [("R1", 2.0), ("R3", 0.5), ("R2", 3.0), ("R4", 1.7)] {
            let c = nl.component_by_name(name).unwrap();
            let bad = flames_circuit::fault::inject_faults(
                &nl,
                &[(c, flames_circuit::Fault::ParamFactor(factor))],
            )
            .unwrap();
            boards.push(
                ["a", "b"]
                    .iter()
                    .map(|n| {
                        flames_circuit::predict::measure(&bad, nl.net_by_name(n).unwrap(), 0.02)
                            .unwrap()
                    })
                    .collect(),
            );
        }
        let solo: Vec<ProbeRun> = boards
            .iter()
            .map(|readings| {
                let mut s = d.session();
                probe_until_isolated(&mut s, Policy::FuzzyEntropy, 0.1, &|i| readings[i]).unwrap()
            })
            .collect();
        for threads in [1, 2, 4] {
            let batch = probe_batch(&d, &boards, Policy::FuzzyEntropy, 0.1, threads).unwrap();
            assert_eq!(
                format!("{solo:?}"),
                format!("{batch:?}"),
                "{threads} threads"
            );
        }
        for (threads, lane_width) in [(1, 2), (2, 2), (1, 4)] {
            let lanes =
                probe_batch_lanes(&d, &boards, Policy::FuzzyEntropy, 0.1, threads, lane_width)
                    .unwrap();
            assert_eq!(
                format!("{solo:?}"),
                format!("{lanes:?}"),
                "{threads} threads, lane {lane_width}"
            );
        }
    }

    #[test]
    fn policies_display() {
        assert_eq!(Policy::FuzzyEntropy.to_string(), "fuzzy-entropy");
        assert_eq!(Policy::Probabilistic.to_string(), "probabilistic");
        assert_eq!(Policy::FixedOrder.to_string(), "fixed-order");
    }
}
