//! Diagnosis traces: a [`Session`]'s belief history as a deterministic
//! [`flames_obs::Trace`].
//!
//! # Schema
//!
//! One trace per session, on flames-obs's logical clock (timestamps are
//! derivation order, not wall time — identical work yields a
//! byte-identical export, which is what lets the cold/compiled/pooled
//! serving paths be cross-checked at the trace level).
//!
//! | event | ph | cat | args |
//! |---|---|---|---|
//! | `wave N` | `X` | `core` | `steps`, `coincidences`, `nogoods` (totals after the wave) |
//! | `corroboration` / `split` / `partial_conflict` / `total_conflict` | `i` | `core` | `quantity`, `dc`, `direction`, `env` |
//! | `nogood` | `i` | `atms` | `env`, `degree` (final store, strongest first) |
//! | `candidate` | `i` | `rank` | `members`, `degree` (minimal hitting sets, rank order) |
//! | `refined` | `i` | `rank` | `members`, `degree` (single-fault refinement, rank order) |
//!
//! Coincidence instants are nested inside the wave span that recorded
//! them (the propagator's coincidence log is append-only, so the
//! per-wave cumulative counts slice it exactly). Nogood instants come
//! after all waves: the graded store is Pareto-minimized in place, so
//! a per-wave attribution would show entries that later dominance
//! sweeps removed.
//!
//! Export with [`flames_obs::Trace::to_chrome_json`] and load the
//! result in `about:tracing` or Perfetto.

use crate::engine::Session;
use crate::propagation::CoincidenceKind;
use flames_obs::{ArgValue, Trace};

/// One [`Session::propagate`] call: the work it did and the cumulative
/// state it left behind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaveRecord {
    /// Constraint applications performed by this wave.
    pub steps: usize,
    /// Total coincidences recorded after this wave (the coincidence log
    /// is append-only, so consecutive totals delimit each wave's slice).
    pub coincidences_total: usize,
    /// Total graded nogoods in the store after this wave (the store is
    /// Pareto-minimal, so this can shrink between waves).
    pub nogoods_total: usize,
}

/// Builds the diagnosis trace of a session (see the module docs for the
/// event schema). Pure read: the session is not mutated, and calling it
/// twice yields equal traces.
#[must_use]
pub fn diagnosis_trace(session: &Session<'_>) -> Trace {
    let mut trace = Trace::new();
    let prop = session.propagator();
    let network = session.diagnoser().network();
    let coincidences = prop.coincidences();
    let mut seen = 0usize;
    for (i, wave) in session.waves().iter().enumerate() {
        let start = trace.now();
        for record in &coincidences[seen..wave.coincidences_total.min(coincidences.len())] {
            let name = match record.kind {
                CoincidenceKind::Corroboration => "corroboration",
                CoincidenceKind::Split => "split",
                CoincidenceKind::PartialConflict => "partial_conflict",
                CoincidenceKind::TotalConflict => "total_conflict",
            };
            trace.instant(
                name,
                "core",
                vec![
                    (
                        "quantity".into(),
                        network.quantity_name(record.quantity).into(),
                    ),
                    ("dc".into(), record.consistency.degree().into()),
                    (
                        "direction".into(),
                        record.consistency.direction().to_string().into(),
                    ),
                    ("env".into(), prop.pool().render(record.env.iter()).into()),
                ],
            );
        }
        seen = wave.coincidences_total.min(coincidences.len());
        trace.complete(
            format!("wave {i}"),
            "core",
            start,
            vec![
                ("steps".into(), ArgValue::U64(wave.steps as u64)),
                (
                    "coincidences".into(),
                    ArgValue::U64(wave.coincidences_total as u64),
                ),
                ("nogoods".into(), ArgValue::U64(wave.nogoods_total as u64)),
            ],
        );
    }
    for nogood in prop.atms().sorted_nogoods() {
        trace.instant(
            "nogood",
            "atms",
            vec![
                ("env".into(), prop.pool().render(nogood.env.iter()).into()),
                ("degree".into(), nogood.degree.into()),
            ],
        );
    }
    // Candidate ranking, mirroring Session::report's cuts.
    for candidate in session.candidates(3, 64) {
        trace.instant(
            "candidate",
            "rank",
            vec![
                ("members".into(), candidate.members.join(", ").into()),
                ("degree".into(), candidate.degree.into()),
            ],
        );
    }
    for candidate in session.refined_candidates(16, 0.5) {
        trace.instant(
            "refined",
            "rank",
            vec![
                ("members".into(), candidate.members.join(", ").into()),
                ("degree".into(), candidate.degree.into()),
            ],
        );
    }
    trace
}
