//! The assembled FLAMES expert system — the paper's Fig. 3.
//!
//! [`Flames`] wires the five units of the architecture diagram around one
//! circuit:
//!
//! * the **fuzzy-ATMS unit** (kernel): propagation, coincidences, graded
//!   nogoods, ranked candidates ([`crate::propagation`], [`crate::engine`]);
//! * the **database unit**: extracted models and tolerance-aware
//!   predictions ([`Diagnoser`]);
//! * the **knowledge-base unit**: fuzzy qualitative rules and component
//!   fault models ([`crate::rules`], [`crate::fault_model`]);
//! * the **search-strategy unit**: best-test recommendation
//!   ([`crate::strategy`]);
//! * the **learning unit**: symptom→failure rules built from confirmed
//!   diagnoses ([`crate::learning`]).
//!
//! "Since we want to keep FLAMES as an open system, an expert can
//! interact with each of its main units": every unit is a public field or
//! builder knob, a priori estimations enter through
//! [`FlamesConfig::priors`], and [`Flames::confirm`] is the expert's
//! accept button that feeds the learning loop.

use crate::engine::{Diagnoser, DiagnoserConfig, Report, Session};
use crate::fault_model::{infer_fault_mode, standard_modes, FaultMode};
use crate::learning::{symptoms_of, KnowledgeBase, Suggestion};
use crate::rules::{bjt_region_rules, RuleBase, RuleTarget};
use crate::strategy::{probe_until_isolated, Policy, ProbeRun};
use crate::Result;
use flames_circuit::predict::TestPoint;
use flames_circuit::{CompId, Netlist};
use flames_fuzzy::FuzzyInterval;
use std::fmt;

/// Configuration of the assembled system.
#[derive(Debug, Clone)]
pub struct FlamesConfig {
    /// Engine configuration (propagator + extraction).
    pub diagnoser: DiagnoserConfig,
    /// Probe-selection policy (§8).
    pub policy: Policy,
    /// Cost weight `λ` in the test scores.
    pub lambda_cost: f64,
    /// Relative degree cut `ρ` for the refined candidates.
    pub rho: f64,
    /// Component tolerance assumed by the standard fault-mode vocabulary.
    pub mode_tolerance: f64,
    /// Expert a priori faultiness estimations, by component name (§5).
    pub priors: Vec<(String, FuzzyInterval)>,
}

impl Default for FlamesConfig {
    fn default() -> Self {
        Self {
            diagnoser: DiagnoserConfig::default(),
            policy: Policy::FuzzyEntropy,
            lambda_cost: 0.05,
            rho: 0.5,
            mode_tolerance: 0.05,
            priors: Vec::new(),
        }
    }
}

/// One complete diagnosis of a board under test.
#[derive(Debug, Clone)]
pub struct DiagnosisOutcome {
    /// The final snapshot (points, Dc values, nogoods, candidates,
    /// refinement).
    pub report: Report,
    /// Components whose models were withdrawn as out-of-region (§6.2).
    pub excused: Vec<String>,
    /// Fault-mode findings for the top refined suspects:
    /// `(component, mode, degree)` (§7).
    pub mode_findings: Vec<(String, String, f64)>,
    /// Knowledge-base suggestions from earlier confirmed diagnoses (§7).
    pub suggestions: Vec<Suggestion>,
    /// The probes made, in order.
    pub probes: Vec<String>,
    /// Their total cost.
    pub cost: f64,
}

impl DiagnosisOutcome {
    /// The best single-fault suspect, if the refinement produced one:
    /// among the refined candidates (already ranked by degree and
    /// Dc-exoneration), the first whose inferred fault mode is an actual
    /// fault wins — "considering the fault modes … drives us to strongly
    /// suspect" (§6.3). Falls back to the top refined candidate when no
    /// mode was inferable.
    #[must_use]
    pub fn prime_suspect(&self) -> Option<&str> {
        let mode_of = |name: &str| -> Option<&(String, String, f64)> {
            self.mode_findings.iter().find(|(c, _, _)| c == name)
        };
        // A faulty-mode finding promotes its candidate.
        for cand in &self.report.refined {
            let Some(member) = cand.members.first() else {
                continue;
            };
            if let Some((_, mode, degree)) = mode_of(member) {
                if mode != "nominal" && *degree >= 0.5 {
                    return Some(member);
                }
            }
        }
        self.report
            .refined
            .first()
            .and_then(|c| c.members.first())
            .map(String::as_str)
    }
}

impl fmt::Display for DiagnosisOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.report)?;
        if !self.excused.is_empty() {
            writeln!(
                f,
                "models withdrawn (out of region): {}",
                self.excused.join(", ")
            )?;
        }
        for (comp, mode, degree) in &self.mode_findings {
            writeln!(f, "fault model: {comp} -> '{mode}' @ {degree:.2}")?;
        }
        for s in &self.suggestions {
            writeln!(
                f,
                "experience suggests: {}{} @ {:.2}",
                s.culprit,
                s.mode
                    .as_deref()
                    .map(|m| format!(" ({m})"))
                    .unwrap_or_default(),
                s.score
            )?;
        }
        writeln!(
            f,
            "probes: {} (cost {:.1})",
            self.probes.join(" -> "),
            self.cost
        )
    }
}

/// The assembled FLAMES system for one circuit.
#[derive(Debug, Clone)]
pub struct Flames {
    diagnoser: Diagnoser,
    /// The learning unit: symptom→failure rules with certainty degrees.
    pub knowledge: KnowledgeBase,
    /// The expert's fuzzy qualitative rules (evaluated on every
    /// diagnosis, in addition to the built-in region rules).
    pub rules: RuleBase,
    /// The fault-mode vocabulary used for refinement.
    pub modes: Vec<FaultMode>,
    config: FlamesConfig,
}

impl Flames {
    /// Assembles the system: builds the diagnoser (model extraction +
    /// fuzzy predictions) and the standard fault-mode vocabulary.
    ///
    /// # Errors
    ///
    /// Propagates circuit-solver failures from the prediction corners.
    pub fn new(
        netlist: &Netlist,
        test_points: Vec<TestPoint>,
        config: FlamesConfig,
    ) -> Result<Self> {
        let diagnoser = Diagnoser::from_netlist(netlist, test_points, config.diagnoser)?;
        let modes = standard_modes(config.mode_tolerance);
        Ok(Self {
            diagnoser,
            knowledge: KnowledgeBase::new(),
            rules: RuleBase::new(),
            modes,
            config,
        })
    }

    /// The underlying diagnoser (model database + predictions).
    #[must_use]
    pub fn diagnoser(&self) -> &Diagnoser {
        &self.diagnoser
    }

    /// Runs one complete diagnosis against a board: strategy-guided
    /// probing (readings supplied by `read`, indexed like the test
    /// points), model-validity revalidation, candidate refinement,
    /// fault-mode inference, and knowledge-base lookup.
    ///
    /// # Errors
    ///
    /// Propagates engine errors (unknown points, solver failures in mode
    /// inference).
    pub fn diagnose(&self, read: &dyn Fn(usize) -> FuzzyInterval) -> Result<DiagnosisOutcome> {
        // 1. Guided probing.
        let mut session = self.session_with_priors();
        let ProbeRun { probes, cost, .. } = probe_until_isolated(
            &mut session,
            self.config.policy,
            self.config.lambda_cost,
            read,
        )?;

        // 2. Model-validity revalidation against the measured operating
        //    point (built-in BJT region rules + the expert's own).
        let measurements: Vec<(String, FuzzyInterval)> = session
            .report()
            .points
            .iter()
            .filter_map(|p| p.measured.map(|m| (p.name.clone(), m)))
            .collect();
        let region = RuleBase::from_rules(bjt_region_rules(&self.diagnoser));
        let mut excused: Vec<String> = region
            .evaluate(&session)
            .into_iter()
            .chain(self.rules.evaluate(&session))
            .filter(|firing| firing.degree >= 0.5)
            .filter_map(|firing| match firing.target {
                RuleTarget::ModelInvalid { component } => Some(component),
                RuleTarget::Estimation { .. } => None,
            })
            .collect();
        excused.sort();
        excused.dedup();
        let session = if excused.is_empty() {
            session
        } else {
            let ids: Vec<CompId> = excused
                .iter()
                .filter_map(|name| self.diagnoser.netlist().component_by_name(name))
                .collect();
            let mut redo = self.diagnoser.session_excusing(&ids);
            for (point, value) in &measurements {
                redo.measure(point, *value)?;
            }
            redo.propagate();
            redo
        };

        // 3. Refinement + fault-mode inference for the top suspects.
        let report = session.report();
        let mut mode_findings = Vec::new();
        for cand in report.refined.iter().take(3) {
            let Some(member) = cand.members.first() else {
                continue;
            };
            let Some(comp) = self.diagnoser.netlist().component_by_name(member) else {
                continue; // connection assumptions carry no parameter
            };
            let md = infer_fault_mode(
                &self.diagnoser,
                &measurements,
                comp,
                &self.modes,
                self.config.diagnoser.propagator,
            )?;
            if let Some((mode, degree)) = md.best() {
                mode_findings.push((member.clone(), mode.to_owned(), degree));
            }
        }

        // 4. Experience lookup.
        let suggestions = self.knowledge.suggest(&symptoms_of(&report));

        Ok(DiagnosisOutcome {
            report,
            excused,
            mode_findings,
            suggestions,
            probes,
            cost,
        })
    }

    /// The expert confirms a diagnosis: the outcome's symptoms and the
    /// culprit (with its mode, if identified) enter the knowledge base
    /// (§7 — "when the system succeeds to locate a faulty component, a
    /// symptom-failure rule … would be formed").
    pub fn confirm(&mut self, outcome: &DiagnosisOutcome, culprit: &str) {
        let mode = outcome
            .mode_findings
            .iter()
            .find(|(c, _, _)| c == culprit)
            .map(|(_, m, _)| m.clone());
        self.knowledge
            .learn(symptoms_of(&outcome.report), culprit, mode);
    }

    fn session_with_priors(&self) -> Session<'_> {
        let mut session = self.diagnoser.session();
        for (name, prior) in &self.config.priors {
            // Unknown names in priors are an expert typo; surface loudly
            // in debug builds, ignore in release (the prior is advisory).
            let applied = session.set_prior(name, *prior);
            debug_assert!(applied.is_ok(), "invalid prior for {name:?}");
        }
        session
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flames_circuit::circuits::three_stage;
    use flames_circuit::fault::inject_faults;
    use flames_circuit::predict::measure_all;
    use flames_circuit::Fault;

    fn system() -> (flames_circuit::circuits::ThreeStage, Flames) {
        let ts = three_stage(0.02);
        let flames =
            Flames::new(&ts.netlist, ts.test_points.clone(), FlamesConfig::default()).unwrap();
        (ts, flames)
    }

    fn readings_for(
        ts: &flames_circuit::circuits::ThreeStage,
        board: &Netlist,
    ) -> Vec<FuzzyInterval> {
        measure_all(board, &[ts.v1, ts.v2, ts.vs], 0.05).unwrap()
    }

    #[test]
    fn full_pipeline_on_short_r2() {
        let (ts, flames) = system();
        let board = inject_faults(&ts.netlist, &[(ts.r2, Fault::Short)]).unwrap();
        let readings = readings_for(&ts, &board);
        let outcome = flames.diagnose(&|i| readings[i]).unwrap();
        assert!(!outcome.probes.is_empty());
        assert!(outcome.cost > 0.0);
        // The saturated T2 model is withdrawn and R2 reads 'short'.
        assert!(outcome.excused.contains(&"T2".to_owned()), "{outcome}");
        assert!(
            outcome
                .mode_findings
                .iter()
                .any(|(c, m, d)| c == "R2" && m == "short" && *d > 0.9),
            "{outcome}"
        );
        let text = format!("{outcome}");
        assert!(text.contains("fault model"));
    }

    #[test]
    fn learning_loop_suggests_on_recurrence() {
        let (ts, mut flames) = system();
        let board = inject_faults(&ts.netlist, &[(ts.r3, Fault::Open)]).unwrap();
        let readings = readings_for(&ts, &board);
        let outcome = flames.diagnose(&|i| readings[i]).unwrap();
        assert!(outcome.suggestions.is_empty(), "fresh system knows nothing");
        flames.confirm(&outcome, "R3");
        assert_eq!(flames.knowledge.len(), 1);
        // The same defect on the next board is suggested from experience.
        let outcome2 = flames.diagnose(&|i| readings[i]).unwrap();
        assert_eq!(
            outcome2.suggestions.first().map(|s| s.culprit.as_str()),
            Some("R3"),
            "{outcome2}"
        );
    }

    #[test]
    fn healthy_board_produces_clean_outcome() {
        let (ts, flames) = system();
        let readings = readings_for(&ts, &ts.netlist);
        let outcome = flames.diagnose(&|i| readings[i]).unwrap();
        assert!(outcome.report.refined.is_empty(), "{outcome}");
        assert!(outcome.excused.is_empty());
        assert!(outcome.prime_suspect().is_none());
    }

    #[test]
    fn priors_flow_into_the_session() {
        let (ts, _) = system();
        let config = FlamesConfig {
            priors: vec![(
                "R2".to_owned(),
                FuzzyInterval::new(0.7, 0.8, 0.1, 0.1).unwrap(),
            )],
            ..Default::default()
        };
        let flames = Flames::new(&ts.netlist, ts.test_points.clone(), config).unwrap();
        let session = flames.session_with_priors();
        let est = session.estimations();
        let r2 = est.iter().find(|(n, _)| n == "R2").unwrap();
        assert!(r2.1.core_lo() >= 0.7 - 1e-9);
    }
}
