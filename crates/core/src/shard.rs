//! The **region-sharded** diagnosis engine: partitioned propagation with
//! boundary-value and boundary-nogood exchange.
//!
//! Large hierarchical boards break the flat engine's economics: every
//! [`Env`] over an N-component vocabulary costs `⌈N/64⌉` words, so a
//! 5 000-component board pays ~80 words per environment copy, union and
//! subset test — even though almost every derivation only ever mentions
//! a handful of electrically local assumptions. Sharding fixes the
//! *vocabulary*, not (just) the work distribution: each shard interns
//! only its own region group's assumptions, so on a single core its env
//! operations run on bitsets an order of magnitude narrower.
//!
//! The design mirrors distributed ATMS architectures (and the paper's
//! §6.2 one-model/many-boards split):
//!
//! * [`ShardedModel`] — compile-once: a region partition
//!   ([`RegionPartition`]) over the extracted network, one filtered
//!   sub-network + restricted schedule per shard (full global quantity
//!   list, so `QuantityId`s are shared; only the shard's constraints),
//!   a global assumption vocabulary for rendering, per-shard local↔global
//!   [`ShardMap`]s, and per-shard *base states* with the board-independent
//!   seed/prediction fixpoint — including the build-time boundary
//!   exchange — already propagated.
//! * [`ShardedSession`] — serve-many: restores the base states, takes
//!   board measurements, and runs rounds of *propagate locally, exchange
//!   boundary entries and nogoods globally* until joint quiescence.
//!   Exchange is canonical (ascending boundary quantity, source shard,
//!   entry order, target shard), and re-delivered entries are rejected
//!   by the same dominance rules as internal derivations, so rounds
//!   converge.
//! * [`ShardReport`] — the merged diagnosis: per-point consistencies,
//!   globally renamed nogoods merged into a Pareto-minimal
//!   [`ShardedAtms`] store, and ranked candidates over the union of
//!   shard conflicts. Pareto minimality and the candidate ranking are
//!   order-invariant over the nogood *set*, which is why the ranked
//!   output does not depend on the shard count — the workspace gates
//!   assert byte-identical reports for 1/2/4/8 shards.

use crate::engine::{Candidate, PointReport};
use crate::propagation::{CompiledSchedule, PropState, Propagator, PropagatorConfig};
use crate::Result;
use flames_atms::{Env, RankedDiagnosis, ShardMap, ShardedAtms};
use flames_circuit::compile::RegionPartition;
use flames_circuit::constraint::{Network, QuantityId};
use flames_circuit::predict::TestPoint;
use flames_circuit::Netlist;
use flames_fuzzy::{Consistency, FuzzyInterval};

/// Hard cap on exchange rounds — a backstop against a non-converging
/// exchange loop (dominance rejection of re-delivered entries makes the
/// loop terminate long before this in practice).
const MAX_EXCHANGE_ROUNDS: usize = 200;

/// The merged diagnosis snapshot of a [`ShardedSession`] — the sharded
/// analogue of [`crate::Report`] (minus the Dc-refinement column, which
/// is a flat-engine feature).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardReport {
    /// One entry per test point.
    pub points: Vec<PointReport>,
    /// Merged nogoods as (rendered global member set, degree),
    /// strongest first.
    pub nogoods: Vec<(String, f64)>,
    /// Ranked candidates over the merged store.
    pub candidates: Vec<Candidate>,
}

/// One shard's compile-once parts.
#[derive(Debug)]
struct Shard {
    /// The filtered sub-network: all global quantities, only this
    /// shard's constraints/seeds/specs.
    network: Network,
    /// The restricted schedule (local assumption vocabulary).
    schedule: CompiledSchedule,
}

/// The compile-once half of the sharded engine. See the module docs.
#[derive(Debug)]
pub struct ShardedModel {
    netlist: Netlist,
    network: Network,
    /// Global vocabulary: names every merged env in reports and defines
    /// the global assumption ids the [`ShardMap`]s translate to.
    global: CompiledSchedule,
    test_points: Vec<TestPoint>,
    predictions: Vec<FuzzyInterval>,
    point_quantities: Vec<QuantityId>,
    /// Shards hosting each test point's quantity.
    point_shards: Vec<Vec<usize>>,
    /// `(boundary quantity, hosting shards)` in ascending quantity order
    /// — the canonical exchange schedule.
    routes: Vec<(QuantityId, Vec<usize>)>,
    shards: Vec<Shard>,
    /// Per-shard seed/prediction fixpoint (after build-time exchange).
    base_states: Vec<PropState>,
    /// Per-shard local↔global renaming at base-state capture.
    base_maps: Vec<ShardMap>,
    config: PropagatorConfig,
}

impl ShardedModel {
    /// Compiles the sharded model: partitions the extracted `network` by
    /// `comp_region`, builds one filtered sub-network and restricted
    /// schedule per shard, seeds the test-point `predictions` into every
    /// hosting shard, and runs the board-independent fixpoint (local
    /// propagation + boundary exchange) once, capturing per-shard base
    /// states.
    ///
    /// `predictions` are taken explicitly (like
    /// [`crate::Diagnoser::from_network`]) — hierarchical generators
    /// compute them compositionally, since corner-solving a 5 000-net
    /// board per component is not an option.
    ///
    /// # Panics
    ///
    /// Panics if `shard_count` is zero, if `test_points` and
    /// `predictions` disagree in length, or if `comp_region` does not
    /// map every component.
    #[must_use]
    #[allow(clippy::too_many_arguments)] // model + partition + shard count + config is the build
    pub fn new(
        netlist: Netlist,
        network: Network,
        test_points: Vec<TestPoint>,
        predictions: Vec<FuzzyInterval>,
        comp_region: &[u32],
        region_count: usize,
        shard_count: usize,
        config: PropagatorConfig,
    ) -> Self {
        assert!(shard_count > 0, "need at least one shard");
        assert_eq!(test_points.len(), predictions.len());
        let partition = RegionPartition::new(&netlist, &network, comp_region, region_count);
        let global = CompiledSchedule::build(&netlist, &network, config);
        let point_quantities: Vec<QuantityId> = test_points
            .iter()
            .map(|tp| network.voltage_quantity(tp.net))
            .collect();

        // Region → shard, then quantity → hosting shards.
        let region_shard = RegionPartition::shard_of_regions(region_count, shard_count);
        let hosts = |q: QuantityId| -> Vec<usize> {
            let mut ss: Vec<usize> = partition
                .quantity_regions(q)
                .iter()
                .map(|&r| region_shard[r as usize] as usize)
                .collect();
            ss.sort_unstable();
            ss.dedup();
            if ss.is_empty() {
                ss.push(0);
            }
            ss
        };
        let point_shards: Vec<Vec<usize>> = point_quantities.iter().map(|&q| hosts(q)).collect();
        let routes: Vec<(QuantityId, Vec<usize>)> = partition
            .boundary()
            .iter()
            .map(|&q| (q, hosts(q)))
            .filter(|(_, ss)| ss.len() >= 2)
            .collect();

        let shards: Vec<Shard> = (0..shard_count)
            .map(|s| {
                let flags = RegionPartition::shard_flags(
                    region_count,
                    shard_count,
                    u32::try_from(s).expect("shard fits u32"),
                );
                let sub = partition.shard_network(&network, &flags);
                let include = partition.comp_in_shard(&flags);
                let schedule = CompiledSchedule::build_restricted(&netlist, &sub, config, &include);
                Shard {
                    network: sub,
                    schedule,
                }
            })
            .collect();

        // Base local↔global maps: components in netlist order, then the
        // shard's Kirchhoff connection assumptions in its own interning
        // order — exactly the dense local id order of build_restricted.
        let base_maps: Vec<ShardMap> = shards
            .iter()
            .map(|shard| {
                let mut map = ShardMap::new(global.pool().len());
                for (id, _) in netlist.components() {
                    let local = shard.schedule.component_assumption(id.index());
                    if local.0 != u32::MAX {
                        map.bind(local, global.component_assumption(id.index()));
                    }
                }
                for &net in shard.schedule.compiled().conn_nets() {
                    let local = shard
                        .schedule
                        .connection_assumption(net)
                        .expect("shard KCL net has a local connection assumption");
                    let g = global
                        .connection_assumption(net)
                        .expect("shard KCL nets are global KCL nets");
                    map.bind(local, g);
                }
                map
            })
            .collect();

        // Board-independent fixpoint: seed predictions into every
        // hosting shard, propagate, exchange, repeat — then snapshot.
        let (base_states, base_maps) = {
            let mut props: Vec<Propagator<'_>> = shards
                .iter()
                .map(|sh| Propagator::with_schedule(&sh.network, &sh.schedule, config))
                .collect();
            let mut maps = base_maps;
            for (idx, (tp, pred)) in test_points.iter().zip(&predictions).enumerate() {
                let q = point_quantities[idx];
                let global_env = Env::from_assumptions(
                    tp.support
                        .iter()
                        .map(|c| global.component_assumption(c.index())),
                );
                for &s in &point_shards[idx] {
                    let local = localize_into(&mut maps[s], &mut props[s], &global, &global_env);
                    props[s]
                        .insert_external(q, *pred, local, 1.0, false)
                        .expect("test-point quantities exist in every shard network");
                }
            }
            exchange_to_quiescence(&mut props, &mut maps, &routes, &global);
            (props.iter().map(Propagator::snapshot_state).collect(), maps)
        };

        Self {
            netlist,
            network,
            global,
            test_points,
            predictions,
            point_quantities,
            point_shards,
            routes,
            shards,
            base_states,
            base_maps,
            config,
        }
    }

    /// The netlist the model was compiled from.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The global (unsharded) constraint network.
    #[must_use]
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The declared test points.
    #[must_use]
    pub fn test_points(&self) -> &[TestPoint] {
        &self.test_points
    }

    /// Number of boundary-cut quantities actually exchanged between
    /// shards (cut size at this shard count).
    #[must_use]
    pub fn boundary_len(&self) -> usize {
        self.routes.len()
    }

    /// Opens a warm session against this model.
    #[must_use]
    pub fn session(&self) -> ShardedSession<'_> {
        flames_obs::metrics().sessions_opened.incr();
        let props: Vec<Propagator<'_>> = self
            .shards
            .iter()
            .zip(&self.base_states)
            .map(|(sh, base)| {
                let mut p = Propagator::with_schedule(&sh.network, &sh.schedule, self.config);
                p.restore_state(base);
                p
            })
            .collect();
        ShardedSession {
            model: self,
            props,
            maps: self.base_maps.clone(),
            measured: vec![None; self.test_points.len()],
        }
    }
}

/// Renames a global env into a shard's vocabulary, interning unseen
/// assumptions into the shard's session ATMS under their global names.
fn localize_into(
    map: &mut ShardMap,
    prop: &mut Propagator<'_>,
    global: &CompiledSchedule,
    env: &Env,
) -> Env {
    map.localize(env, |g| {
        prop.register_assumption(global.pool().name(g).unwrap_or("?"))
    })
}

/// Runs every shard to local quiescence, then exchanges boundary value
/// entries and nogoods in canonical order, repeating until a full round
/// changes nothing. Returns total constraint applications.
fn exchange_to_quiescence(
    props: &mut [Propagator<'_>],
    maps: &mut [ShardMap],
    routes: &[(QuantityId, Vec<usize>)],
    global: &CompiledSchedule,
) -> usize {
    let metrics = flames_obs::metrics();
    let mut steps = 0usize;
    for _ in 0..MAX_EXCHANGE_ROUNDS {
        for prop in props.iter_mut() {
            steps += prop.run();
            metrics.shard_waves.incr();
        }
        let mut changed = false;
        // Boundary value entries: ascending quantity, ascending source
        // shard, source entry order, ascending target shard. Re-exported
        // entries are dominance-rejected by the target's store, so this
        // re-delivery is idempotent.
        for (q, hosting) in routes {
            for &src in hosting {
                let entries = props[src]
                    .entries(*q)
                    .expect("boundary quantities exist in every shard network");
                for entry in &entries {
                    let global_env = maps[src].globalize(&entry.env);
                    for &dst in hosting {
                        if dst == src {
                            continue;
                        }
                        let local =
                            localize_into(&mut maps[dst], &mut props[dst], global, &global_env);
                        let inserted = props[dst]
                            .insert_external(*q, entry.value, local, entry.degree, entry.measured)
                            .expect("boundary quantity ids are global");
                        if inserted {
                            changed = true;
                            metrics.shard_boundary_envs.incr();
                        }
                    }
                }
            }
        }
        // Nogoods: globalize each shard's store, deliver everywhere
        // else. Duplicate deliveries are subsumed (no epoch change).
        let all: Vec<Vec<(Env, f64)>> = props
            .iter()
            .zip(maps.iter())
            .map(|(p, m)| {
                p.atms()
                    .nogoods()
                    .iter()
                    .map(|n| (m.globalize(&n.env), n.degree))
                    .collect()
            })
            .collect();
        for (src, batch) in all.iter().enumerate() {
            for (env, degree) in batch {
                for dst in 0..props.len() {
                    if dst == src {
                        continue;
                    }
                    let before = props[dst].atms().nogood_epoch();
                    let local = localize_into(&mut maps[dst], &mut props[dst], global, env);
                    props[dst].add_nogood(local, *degree);
                    if props[dst].atms().nogood_epoch() != before {
                        changed = true;
                        metrics.shard_cross_nogoods.incr();
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    steps
}

/// One diagnosis run of a (possibly faulty) board against a
/// [`ShardedModel`].
#[derive(Debug)]
pub struct ShardedSession<'m> {
    model: &'m ShardedModel,
    props: Vec<Propagator<'m>>,
    maps: Vec<ShardMap>,
    measured: Vec<Option<FuzzyInterval>>,
}

impl ShardedSession<'_> {
    /// Clears the per-board state and restores every shard's base state
    /// (and base renaming). A reset session reports byte-identically to
    /// a freshly opened one.
    pub fn reset(&mut self) {
        flames_obs::metrics().session_resets.incr();
        for (prop, base) in self.props.iter_mut().zip(&self.model.base_states) {
            prop.restore_state(base);
        }
        for (map, base) in self.maps.iter_mut().zip(&self.model.base_maps) {
            map.clone_from(base);
        }
        for m in &mut self.measured {
            *m = None;
        }
    }

    /// Records a measurement at a test point, by name.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CoreError::UnknownName`] for an unknown point.
    pub fn measure(&mut self, point: &str, value: FuzzyInterval) -> Result<()> {
        let idx = self
            .model
            .test_points
            .iter()
            .position(|tp| tp.name == point)
            .ok_or_else(|| crate::CoreError::UnknownName {
                name: point.to_owned(),
            })?;
        self.measure_point(idx, value)
    }

    /// Records a measurement at a test point, by index — delivered to
    /// every shard hosting the point's quantity (measurements carry the
    /// empty environment, so no renaming is involved).
    ///
    /// # Errors
    ///
    /// Returns [`crate::CoreError::UnknownName`] for an out-of-range
    /// index.
    pub fn measure_point(&mut self, idx: usize, value: FuzzyInterval) -> Result<()> {
        if idx >= self.model.test_points.len() {
            return Err(crate::CoreError::UnknownName {
                name: format!("test point #{idx}"),
            });
        }
        let q = self.model.point_quantities[idx];
        for &s in &self.model.point_shards[idx] {
            self.props[s].observe(q, value)?;
        }
        self.measured[idx] = Some(value);
        Ok(())
    }

    /// Runs partitioned propagation to joint quiescence: local waves per
    /// shard, boundary-entry and nogood exchange between rounds. Returns
    /// the total number of constraint applications across shards.
    pub fn propagate(&mut self) -> usize {
        exchange_to_quiescence(
            &mut self.props,
            &mut self.maps,
            &self.model.routes,
            &self.model.global,
        )
    }

    /// The merged, globally renamed nogood store (Pareto-minimal).
    #[must_use]
    pub fn merged_nogoods(&self) -> ShardedAtms {
        let mut merged = ShardedAtms::new();
        for (prop, map) in self.props.iter().zip(&self.maps) {
            for n in prop.atms().nogoods() {
                merged.add_nogood(map.globalize(&n.env), n.degree);
            }
        }
        merged
    }

    /// Builds the merged diagnosis snapshot.
    #[must_use]
    pub fn report(&self) -> ShardReport {
        let model = self.model;
        let points = model
            .test_points
            .iter()
            .enumerate()
            .map(|(idx, tp)| PointReport {
                name: tp.name.clone(),
                predicted: model.predictions[idx],
                measured: self.measured[idx],
                consistency: self.measured[idx]
                    .map(|m| Consistency::between(&m, &model.predictions[idx])),
            })
            .collect();
        let merged = self.merged_nogoods();
        let pool = model.global.pool();
        let nogoods = merged
            .sorted_nogoods()
            .into_iter()
            .map(|n| (pool.render(n.env.iter()), n.degree))
            .collect();
        let candidates = merged
            .ranked_diagnoses(3, 64)
            .into_iter()
            .map(|RankedDiagnosis { env, degree }| Candidate {
                members: env
                    .iter()
                    .map(|a| pool.name(a).unwrap_or("?").to_owned())
                    .collect(),
                env,
                degree,
            })
            .collect();
        ShardReport {
            points,
            nogoods,
            candidates,
        }
    }

    /// The model this session runs against.
    #[must_use]
    pub fn model(&self) -> &ShardedModel {
        self.model
    }

    /// Per-shard propagators (labels, coincidences, local ATMS stores).
    #[must_use]
    pub fn shard_propagators(&self) -> &[Propagator<'_>] {
        &self.props
    }
}
