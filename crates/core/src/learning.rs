//! Learning from experience (§7 of the paper).
//!
//! "When the system succeeds to locate a faulty component, a
//! symptom-failure rule which summarizes the work would be formed … This
//! rule is given with a degree of certainty … In future diagnosis, FLAMES
//! will give the expert the rules which are attached to some candidates to
//! help him in making his decision."
//!
//! A [`Symptom`] is a discretized observation at a test point (deviation
//! direction + severity bucket of the `Dc`); a [`SymptomRule`] maps a
//! symptom set to a culprit (and optionally its fault mode) with a
//! certainty degree that grows as the rule is re-confirmed.

use crate::engine::Report;
use flames_fuzzy::{Consistency, Direction};
use std::fmt;

/// Severity bucket of a degree of consistency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Severity {
    /// `Dc = 1`: the point corroborates the model.
    Consistent,
    /// `0.5 ≤ Dc < 1`: a slight (soft-fault) deviation.
    Slight,
    /// `0 < Dc < 0.5`: a strong deviation.
    Strong,
    /// `Dc = 0`: a total conflict.
    Total,
}

impl Severity {
    /// Buckets a degree of consistency.
    #[must_use]
    pub fn from_consistency(dc: &Consistency) -> Self {
        let d = dc.degree();
        if d >= 1.0 {
            Severity::Consistent
        } else if d >= 0.5 {
            Severity::Slight
        } else if d > 0.0 {
            Severity::Strong
        } else {
            Severity::Total
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Consistent => write!(f, "consistent"),
            Severity::Slight => write!(f, "slight"),
            Severity::Strong => write!(f, "strong"),
            Severity::Total => write!(f, "total"),
        }
    }
}

/// A discretized observation at one test point.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symptom {
    /// Test-point name.
    pub point: String,
    /// Deviation direction.
    pub direction: Direction,
    /// Severity bucket.
    pub severity: Severity,
}

impl fmt::Display for Symptom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} ({})", self.point, self.direction, self.severity)
    }
}

/// Extracts the symptom set of a diagnosis [`Report`] (probed points
/// only, consistent points included — they are discriminating evidence).
#[must_use]
pub fn symptoms_of(report: &Report) -> Vec<Symptom> {
    let mut out: Vec<Symptom> = report
        .points
        .iter()
        .filter_map(|p| {
            let dc = p.consistency?;
            Some(Symptom {
                point: p.name.clone(),
                direction: dc.direction(),
                severity: Severity::from_consistency(&dc),
            })
        })
        .collect();
    out.sort();
    out
}

/// A learned symptom→failure rule with a certainty degree.
#[derive(Debug, Clone, PartialEq)]
pub struct SymptomRule {
    /// The symptom set (sorted).
    pub symptoms: Vec<Symptom>,
    /// The culprit component's name.
    pub culprit: String,
    /// The fault mode, when the refinement step identified one.
    pub mode: Option<String>,
    /// Certainty degree in `(0, 1)` — grows with confirmations.
    pub certainty: f64,
    /// How many confirmed diagnoses support the rule.
    pub confirmations: u32,
}

impl fmt::Display for SymptomRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let syms: Vec<String> = self.symptoms.iter().map(Symptom::to_string).collect();
        write!(
            f,
            "if {} then {}{} @ {:.2} (×{})",
            syms.join(" & "),
            self.culprit,
            self.mode
                .as_deref()
                .map(|m| format!(" {m}"))
                .unwrap_or_default(),
            self.certainty,
            self.confirmations
        )
    }
}

/// Certainty of a rule after its first confirmation.
const INITIAL_CERTAINTY: f64 = 0.5;
/// Fraction of the remaining doubt removed per re-confirmation.
const REINFORCEMENT: f64 = 0.3;

/// A ranked suggestion produced by [`KnowledgeBase::suggest`].
#[derive(Debug, Clone, PartialEq)]
pub struct Suggestion {
    /// The suspected culprit.
    pub culprit: String,
    /// Its fault mode, if the rule recorded one.
    pub mode: Option<String>,
    /// Suggestion score: rule certainty × symptom-match fraction.
    pub score: f64,
}

/// The knowledge base of learned symptom→failure rules.
#[derive(Debug, Clone, Default)]
pub struct KnowledgeBase {
    rules: Vec<SymptomRule>,
}

impl KnowledgeBase {
    /// Creates an empty knowledge base.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of rules.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when no rule has been learned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Iterates over the rules.
    pub fn iter(&self) -> std::slice::Iter<'_, SymptomRule> {
        self.rules.iter()
    }

    /// Records a confirmed diagnosis: creates a new rule at
    /// `INITIAL_CERTAINTY` (0.5), or reinforces an existing rule with the
    /// same symptoms and culprit (each confirmation removes
    /// `REINFORCEMENT` (30 %) of the remaining doubt).
    pub fn learn(
        &mut self,
        mut symptoms: Vec<Symptom>,
        culprit: impl Into<String>,
        mode: Option<String>,
    ) {
        symptoms.sort();
        let culprit = culprit.into();
        if let Some(rule) = self
            .rules
            .iter_mut()
            .find(|r| r.symptoms == symptoms && r.culprit == culprit)
        {
            rule.confirmations += 1;
            rule.certainty += (1.0 - rule.certainty) * REINFORCEMENT;
            if mode.is_some() {
                rule.mode = mode;
            }
            return;
        }
        self.rules.push(SymptomRule {
            symptoms,
            culprit,
            mode,
            certainty: INITIAL_CERTAINTY,
            confirmations: 1,
        });
    }

    /// The expert disconfirms a rule (the suspected culprit turned out
    /// healthy for these symptoms): the matching rule loses
    /// `REINFORCEMENT` (30 %) of its certainty and is dropped entirely once it
    /// falls below half of `INITIAL_CERTAINTY` (0.5).
    pub fn disconfirm(&mut self, symptoms: &[Symptom], culprit: &str) {
        let mut sorted = symptoms.to_vec();
        sorted.sort();
        if let Some(rule) = self
            .rules
            .iter_mut()
            .find(|r| r.symptoms == sorted && r.culprit == culprit)
        {
            rule.certainty *= 1.0 - REINFORCEMENT;
        }
        self.rules
            .retain(|r| r.certainty >= INITIAL_CERTAINTY * 0.5);
    }

    /// Suggests culprits for an observed symptom set, ranked by score
    /// (rule certainty × fraction of the rule's symptoms present in the
    /// observation). Rules with no symptom overlap are skipped.
    #[must_use]
    pub fn suggest(&self, observed: &[Symptom]) -> Vec<Suggestion> {
        let mut out: Vec<Suggestion> = self
            .rules
            .iter()
            .filter_map(|rule| {
                if rule.symptoms.is_empty() {
                    return None;
                }
                let matched = rule
                    .symptoms
                    .iter()
                    .filter(|s| observed.contains(s))
                    .count();
                if matched == 0 {
                    return None;
                }
                let fraction = matched as f64 / rule.symptoms.len() as f64;
                Some(Suggestion {
                    culprit: rule.culprit.clone(),
                    mode: rule.mode.clone(),
                    score: rule.certainty * fraction,
                })
            })
            .collect();
        out.sort_by(|a, b| b.score.partial_cmp(&a.score).expect("finite scores"));
        out.dedup_by(|a, b| a.culprit == b.culprit && a.mode == b.mode);
        out
    }
}

impl KnowledgeBase {
    /// Serializes the knowledge base to a plain-text format (one rule per
    /// line), so a bench session's experience survives restarts:
    ///
    /// ```text
    /// culprit \t mode-or-'-' \t certainty \t confirmations \t point,direction,severity ; …
    /// ```
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for rule in &self.rules {
            let syms: Vec<String> = rule
                .symptoms
                .iter()
                .map(|s| format!("{},{},{}", s.point, s.direction, s.severity))
                .collect();
            out.push_str(&format!(
                "{}\t{}\t{:.6}\t{}\t{}\n",
                rule.culprit,
                rule.mode.as_deref().unwrap_or("-"),
                rule.certainty,
                rule.confirmations,
                syms.join(";")
            ));
        }
        out
    }

    /// Parses a knowledge base previously written by
    /// [`KnowledgeBase::to_text`]. Malformed lines are reported with their
    /// 1-based line number.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CoreError::UnknownName`] naming the offending line
    /// when a field fails to parse.
    pub fn from_text(text: &str) -> crate::Result<Self> {
        let bad = |lineno: usize| crate::CoreError::UnknownName {
            name: format!("knowledge-base line {lineno}"),
        };
        let mut kb = Self::new();
        for (k, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split('\t').collect();
            if fields.len() != 5 {
                return Err(bad(k + 1));
            }
            let culprit = fields[0].to_owned();
            let mode = (fields[1] != "-").then(|| fields[1].to_owned());
            let certainty: f64 = fields[2].parse().map_err(|_| bad(k + 1))?;
            let confirmations: u32 = fields[3].parse().map_err(|_| bad(k + 1))?;
            if !(0.0..=1.0).contains(&certainty) {
                return Err(bad(k + 1));
            }
            let mut symptoms = Vec::new();
            for part in fields[4].split(';').filter(|p| !p.is_empty()) {
                let bits: Vec<&str> = part.split(',').collect();
                if bits.len() != 3 {
                    return Err(bad(k + 1));
                }
                let direction = match bits[1] {
                    "low" => Direction::Low,
                    "within" => Direction::Within,
                    "high" => Direction::High,
                    _ => return Err(bad(k + 1)),
                };
                let severity = match bits[2] {
                    "consistent" => Severity::Consistent,
                    "slight" => Severity::Slight,
                    "strong" => Severity::Strong,
                    "total" => Severity::Total,
                    _ => return Err(bad(k + 1)),
                };
                symptoms.push(Symptom {
                    point: bits[0].to_owned(),
                    direction,
                    severity,
                });
            }
            symptoms.sort();
            kb.rules.push(SymptomRule {
                symptoms,
                culprit,
                mode,
                certainty,
                confirmations,
            });
        }
        Ok(kb)
    }
}

impl<'a> IntoIterator for &'a KnowledgeBase {
    type Item = &'a SymptomRule;
    type IntoIter = std::slice::Iter<'a, SymptomRule>;
    fn into_iter(self) -> Self::IntoIter {
        self.rules.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(point: &str, dir: Direction, sev: Severity) -> Symptom {
        Symptom {
            point: point.to_owned(),
            direction: dir,
            severity: sev,
        }
    }

    #[test]
    fn severity_bucketing() {
        let mk = |d: f64| Consistency::from_parts(d, Direction::High);
        assert_eq!(Severity::from_consistency(&mk(1.0)), Severity::Consistent);
        assert_eq!(Severity::from_consistency(&mk(0.89)), Severity::Slight);
        assert_eq!(Severity::from_consistency(&mk(0.3)), Severity::Strong);
        assert_eq!(Severity::from_consistency(&mk(0.0)), Severity::Total);
    }

    #[test]
    fn learning_creates_then_reinforces() {
        let mut kb = KnowledgeBase::new();
        let syms = vec![sym("V1", Direction::Low, Severity::Total)];
        kb.learn(syms.clone(), "R3", Some("open".to_owned()));
        assert_eq!(kb.len(), 1);
        let c1 = kb.iter().next().unwrap().certainty;
        assert!((c1 - 0.5).abs() < 1e-12);
        kb.learn(syms.clone(), "R3", None);
        assert_eq!(kb.len(), 1, "same rule reinforced, not duplicated");
        let rule = kb.iter().next().unwrap();
        assert!(rule.certainty > c1);
        assert_eq!(rule.confirmations, 2);
        assert_eq!(rule.mode.as_deref(), Some("open"), "mode survives");
        // Different culprit with same symptoms is a separate rule.
        kb.learn(syms, "R2", Some("short".to_owned()));
        assert_eq!(kb.len(), 2);
    }

    #[test]
    fn certainty_saturates_below_one() {
        let mut kb = KnowledgeBase::new();
        let syms = vec![sym("Vs", Direction::High, Severity::Slight)];
        for _ in 0..50 {
            kb.learn(syms.clone(), "T2", None);
        }
        let c = kb.iter().next().unwrap().certainty;
        assert!(c > 0.99);
        assert!(c < 1.0);
    }

    #[test]
    fn suggestions_ranked_by_certainty_and_match() {
        let mut kb = KnowledgeBase::new();
        let full = vec![
            sym("V1", Direction::Low, Severity::Total),
            sym("V2", Direction::High, Severity::Slight),
        ];
        kb.learn(full.clone(), "R3", Some("open".to_owned()));
        kb.learn(full.clone(), "R3", None);
        kb.learn(
            vec![sym("V2", Direction::High, Severity::Slight)],
            "T2",
            None,
        );
        // Observation matches both rules fully / partially.
        let suggestions = kb.suggest(&full);
        assert_eq!(suggestions[0].culprit, "R3");
        assert!(suggestions[0].score > suggestions.last().unwrap().score);
        // Observation with only the V2 symptom: R3 rule half-matches.
        let partial = vec![sym("V2", Direction::High, Severity::Slight)];
        let s2 = kb.suggest(&partial);
        assert!(s2.iter().any(|s| s.culprit == "T2"));
        let r3 = s2.iter().find(|s| s.culprit == "R3").unwrap();
        let r3_full = suggestions.iter().find(|s| s.culprit == "R3").unwrap();
        assert!(r3.score < r3_full.score);
        // Disjoint observation: nothing suggested.
        assert!(kb
            .suggest(&[sym("Vx", Direction::Low, Severity::Total)])
            .is_empty());
    }

    #[test]
    fn disconfirmation_decays_and_eventually_drops() {
        let mut kb = KnowledgeBase::new();
        let syms = vec![sym("V1", Direction::Low, Severity::Total)];
        kb.learn(syms.clone(), "R3", None);
        kb.learn(syms.clone(), "R3", None);
        let before = kb.iter().next().unwrap().certainty;
        kb.disconfirm(&syms, "R3");
        let after = kb.iter().next().unwrap().certainty;
        assert!(after < before);
        // Disconfirming an unknown rule is a no-op.
        kb.disconfirm(&syms, "T1");
        assert_eq!(kb.len(), 1);
        // Repeated disconfirmation removes the rule.
        for _ in 0..10 {
            kb.disconfirm(&syms, "R3");
        }
        assert!(kb.is_empty());
    }

    #[test]
    fn text_round_trip_preserves_rules() {
        let mut kb = KnowledgeBase::new();
        kb.learn(
            vec![
                sym("V1", Direction::Low, Severity::Total),
                sym("V2", Direction::High, Severity::Slight),
            ],
            "R3",
            Some("open".to_owned()),
        );
        kb.learn(
            vec![sym("Vs", Direction::High, Severity::Strong)],
            "T2",
            None,
        );
        kb.learn(
            vec![sym("Vs", Direction::High, Severity::Strong)],
            "T2",
            None,
        );
        let text = kb.to_text();
        let restored = KnowledgeBase::from_text(&text).unwrap();
        assert_eq!(restored.len(), kb.len());
        for (a, b) in restored.iter().zip(kb.iter()) {
            assert_eq!(a.culprit, b.culprit);
            assert_eq!(a.mode, b.mode);
            assert_eq!(a.symptoms, b.symptoms);
            assert_eq!(a.confirmations, b.confirmations);
            assert!((a.certainty - b.certainty).abs() < 1e-6);
        }
        // Suggestions behave identically after the round trip.
        let obs = vec![sym("Vs", Direction::High, Severity::Strong)];
        assert_eq!(restored.suggest(&obs).len(), kb.suggest(&obs).len());
    }

    #[test]
    fn malformed_text_is_rejected_with_line_numbers() {
        assert!(KnowledgeBase::from_text("").unwrap().is_empty());
        assert!(KnowledgeBase::from_text("only\tthree\tfields").is_err());
        let bad_degree = "R1\t-\t1.7\t2\tV1,low,total";
        assert!(KnowledgeBase::from_text(bad_degree).is_err());
        let bad_dir = "R1\t-\t0.5\t2\tV1,sideways,total";
        assert!(KnowledgeBase::from_text(bad_dir).is_err());
        let err = KnowledgeBase::from_text("ok\t-\t0.5\t1\tV1,low,total\nbroken").unwrap_err();
        assert!(format!("{err}").contains("line 2"), "{err}");
    }

    #[test]
    fn display_renders_rule() {
        let mut kb = KnowledgeBase::new();
        kb.learn(
            vec![sym("V1", Direction::Low, Severity::Total)],
            "R3",
            Some("open".to_owned()),
        );
        let text = kb.iter().next().unwrap().to_string();
        assert!(text.contains("V1"));
        assert!(text.contains("R3 open"));
        assert!((&kb).into_iter().count() == 1);
    }
}
