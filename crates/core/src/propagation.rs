//! Fuzzy interval labelling — the paper's §6.1.1 propagation engine.
//!
//! Quantities carry sets of fuzzy values, each tagged with the assumption
//! [`Env`]ironment and certainty degree of its derivation. Values enter as
//! model seeds (parameters under their component's correctness
//! assumption), expert predictions, or measurements; constraints derive
//! new values in every direction they can be inverted.
//!
//! "The discovery of a known value for a point for which we already know a
//! predicted propagated value is called a **coincidence**" — each
//! coincidence is classified per the paper's Fig. 4 (corroboration /
//! split / partial or total conflict) through the degree of consistency
//! `Dc`, and conflicts become graded nogoods in the fuzzy ATMS.
//!
//! # Compile-once / serve-many
//!
//! The paper's workflow diagnoses many boards against one circuit model,
//! so the engine is split along that line:
//!
//! * [`CompiledSchedule`] — the immutable per-**model** half: the
//!   compiled constraint schedule (see
//!   [`flames_circuit::compile::CompiledNetwork`]), the assumption
//!   vocabulary (component + connection assumptions with their interned
//!   names), the per-constraint support environments, the seed
//!   environments, and a vocabulary-only base ATMS. Build it once and
//!   share it — it is `Send + Sync`.
//! * [`Propagator`] — the mutable per-**board** half: value stores, the
//!   fuzzy ATMS labels and nogoods, coincidence records, withdrawn
//!   constraints. It either owns a private schedule (the legacy
//!   [`Propagator::new`] constructors, which re-derive everything per
//!   session) or borrows a shared one
//!   ([`Propagator::with_schedule_filtered`]); [`Propagator::reset`]
//!   clears the per-board state without deallocating, so a warm
//!   propagator serves the next board with zero rebuild cost.

use crate::error::CoreError;
use crate::Result;
use flames_atms::{Assumption, AssumptionPool, Env, FuzzyAtms, TNorm};
use flames_circuit::compile::{CompiledNetwork, CompiledRelation};
use flames_circuit::constraint::{Network, QuantityId};
use flames_circuit::{CompId, Net, Netlist};
use flames_fuzzy::{Consistency, FuzzyInterval};
use std::collections::VecDeque;

/// A fuzzy value for a quantity together with its derivation pedigree.
#[derive(Debug, Clone, PartialEq)]
pub struct ValueEntry {
    /// The fuzzy value.
    pub value: FuzzyInterval,
    /// Assumptions the derivation rests on.
    pub env: Env,
    /// Certainty degree of the derivation (t-norm along the path).
    pub degree: f64,
    /// True when the derivation involves at least one measurement
    /// (orients the asymmetric `Dc` computation).
    pub measured: bool,
}

/// Struct-of-arrays store of one quantity's value entries: the four
/// trapezoid columns (`m1`/`m2`/`alpha`/`beta`) in parallel `Vec<f64>`s,
/// so constraint evaluation and the Bonissone–Decker LR arithmetic of a
/// propagation wave stream over contiguous memory, plus the derivation
/// pedigree — environment, its one-word [`Env::word_signature`],
/// certainty degree, measurement flag — in matching columns. The
/// signature column is the pedigree index: an `O(1)` necessary condition
/// for the subset tests of the dominance rules, checked before the full
/// bitset comparison.
///
/// [`Propagator::entries`] materializes [`ValueEntry`] rows on demand;
/// internally everything works on the columns.
#[derive(Debug, Clone, Default)]
pub(crate) struct EntryColumns {
    m1: Vec<f64>,
    m2: Vec<f64>,
    alpha: Vec<f64>,
    beta: Vec<f64>,
    env: Vec<Env>,
    /// `Env::word_signature` of each entry's environment.
    sig: Vec<u64>,
    degree: Vec<f64>,
    measured: Vec<bool>,
}

impl EntryColumns {
    /// The empty store — `const` so the combination enumerator can pad
    /// its fixed-arity list array with references to it.
    const EMPTY: Self = Self {
        m1: Vec::new(),
        m2: Vec::new(),
        alpha: Vec::new(),
        beta: Vec::new(),
        env: Vec::new(),
        sig: Vec::new(),
        degree: Vec::new(),
        measured: Vec::new(),
    };

    fn len(&self) -> usize {
        self.m1.len()
    }

    fn is_empty(&self) -> bool {
        self.m1.is_empty()
    }

    fn clear(&mut self) {
        self.m1.clear();
        self.m2.clear();
        self.alpha.clear();
        self.beta.clear();
        self.env.clear();
        self.sig.clear();
        self.degree.clear();
        self.measured.clear();
    }

    fn value(&self, i: usize) -> FuzzyInterval {
        FuzzyInterval::from_columns(self.m1[i], self.m2[i], self.alpha[i], self.beta[i])
    }

    /// Support width straight from the columns — the same
    /// `(m2 + β) − (m1 − α)` arithmetic as
    /// [`FuzzyInterval::support_width`], bit for bit.
    fn width(&self, i: usize) -> f64 {
        (self.m2[i] + self.beta[i]) - (self.m1[i] - self.alpha[i])
    }

    fn env(&self, i: usize) -> &Env {
        &self.env[i]
    }

    fn sig(&self, i: usize) -> u64 {
        self.sig[i]
    }

    fn degree(&self, i: usize) -> f64 {
        self.degree[i]
    }

    fn measured(&self, i: usize) -> bool {
        self.measured[i]
    }

    /// Materializes one row as an owned [`ValueEntry`].
    fn entry(&self, i: usize) -> ValueEntry {
        ValueEntry {
            value: self.value(i),
            env: self.env[i].clone(),
            degree: self.degree[i],
            measured: self.measured[i],
        }
    }

    /// A borrowed row view for constraint evaluation (no env clone).
    fn entry_ref(&self, i: usize) -> EntryRef<'_> {
        EntryRef {
            value: self.value(i),
            env: &self.env[i],
            degree: self.degree[i],
            measured: self.measured[i],
        }
    }

    fn to_entries(&self) -> Vec<ValueEntry> {
        (0..self.len()).map(|i| self.entry(i)).collect()
    }

    /// Index of the tightest (smallest-support) entry; ties resolve to
    /// the first, matching `Iterator::min_by` over materialized rows.
    fn tightest(&self) -> Option<usize> {
        (0..self.len()).min_by(|&a, &b| {
            self.width(a)
                .partial_cmp(&self.width(b))
                .expect("finite widths")
        })
    }

    fn push(&mut self, e: ValueEntry) {
        self.m1.push(e.value.core_lo());
        self.m2.push(e.value.core_hi());
        self.alpha.push(e.value.spread_left());
        self.beta.push(e.value.spread_right());
        self.sig.push(e.env.word_signature());
        self.env.push(e.env);
        self.degree.push(e.degree);
        self.measured.push(e.measured);
    }

    fn set(&mut self, i: usize, e: ValueEntry) {
        self.m1[i] = e.value.core_lo();
        self.m2[i] = e.value.core_hi();
        self.alpha[i] = e.value.spread_left();
        self.beta[i] = e.value.spread_right();
        self.sig[i] = e.env.word_signature();
        self.env[i] = e.env;
        self.degree[i] = e.degree;
        self.measured[i] = e.measured;
    }

    /// Drops every row whose `keep` flag is false, preserving order;
    /// returns how many were dropped.
    fn retain_kept(&mut self, keep: &[bool]) -> usize {
        debug_assert_eq!(keep.len(), self.len());
        let n = self.len();
        let mut w = 0usize;
        for (r, &kept) in keep.iter().enumerate() {
            if !kept {
                continue;
            }
            if w != r {
                self.m1[w] = self.m1[r];
                self.m2[w] = self.m2[r];
                self.alpha[w] = self.alpha[r];
                self.beta[w] = self.beta[r];
                self.sig[w] = self.sig[r];
                self.degree[w] = self.degree[r];
                self.measured[w] = self.measured[r];
                self.env.swap(w, r);
            }
            w += 1;
        }
        self.m1.truncate(w);
        self.m2.truncate(w);
        self.alpha.truncate(w);
        self.beta.truncate(w);
        self.sig.truncate(w);
        self.degree.truncate(w);
        self.measured.truncate(w);
        self.env.truncate(w);
        n - w
    }
}

/// A borrowed view of one stored entry, materialized from the columns —
/// what the combination enumerator hands to constraint evaluation.
#[derive(Clone, Copy)]
struct EntryRef<'a> {
    value: FuzzyInterval,
    env: &'a Env,
    degree: f64,
    measured: bool,
}

/// The odometer at the heart of [`PropState::each_combo`]: enumerates
/// index tuples over `lists` (last position varying fastest),
/// materializing each row for `f`, capped at 64 combinations — the same
/// first-64 prefix the original entry-cloning enumerator produced.
fn combo_loop<'s>(
    lists: &[&'s EntryColumns],
    idx: &mut [usize],
    row: &mut [EntryRef<'s>],
    mut f: impl FnMut(&[EntryRef<'s>]),
) {
    const COMBO_CAP: usize = 64;
    for _ in 0..COMBO_CAP {
        f(row);
        // Odometer increment, last position fastest.
        let mut k = lists.len();
        loop {
            if k == 0 {
                return;
            }
            k -= 1;
            idx[k] += 1;
            if idx[k] < lists[k].len() {
                row[k] = lists[k].entry_ref(idx[k]);
                break;
            }
            idx[k] = 0;
            row[k] = lists[k].entry_ref(0);
        }
    }
}

/// Fig. 4 classification of a coincidence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoincidenceKind {
    /// Case c: the values agree (`Dc = 1` both ways).
    Corroboration,
    /// Case a: one value refines (splits) the other.
    Split,
    /// Case b with `0 < Dc < 1`.
    PartialConflict,
    /// Case b with `Dc = 0`.
    TotalConflict,
}

/// A recorded coincidence between two values of one quantity.
#[derive(Debug, Clone, PartialEq)]
pub struct CoincidenceRecord {
    /// The quantity on which the values met.
    pub quantity: QuantityId,
    /// Fig. 4 classification.
    pub kind: CoincidenceKind,
    /// Degree of consistency (with deviation direction) of the
    /// measurement-side value against the prediction-side value.
    pub consistency: Consistency,
    /// Union of the two environments (the nogood, for conflicts).
    pub env: Env,
}

/// Tuning knobs of the propagation engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PropagatorConfig {
    /// T-norm combining certainty degrees along derivations.
    pub tnorm: TNorm,
    /// Conflict degrees at or below this threshold are treated as noise
    /// (no nogood). Default `0.02`.
    pub conflict_threshold: f64,
    /// Nogood degree at which environments are erased outright (the fuzzy
    /// ATMS kill threshold). Default `1.0`.
    pub kill_threshold: f64,
    /// Maximum value entries kept per quantity (explosion guard).
    /// Default `8`.
    pub max_entries: usize,
    /// Minimum relative support tightening for a refined value to be
    /// recorded. Default `0.01`.
    pub min_tightening: f64,
    /// Upper bound on constraint applications per [`Propagator::run`].
    /// Default `20_000`.
    pub max_steps: usize,
}

impl Default for PropagatorConfig {
    fn default() -> Self {
        Self {
            tnorm: TNorm::Min,
            conflict_threshold: 0.02,
            kill_threshold: 1.0,
            max_entries: 8,
            min_tightening: 0.01,
            max_steps: 20_000,
        }
    }
}

/// The immutable per-model half of the propagation engine: the compiled
/// constraint schedule plus the assumption vocabulary and the
/// environments every session used to rebuild from scratch.
///
/// Build once per circuit model with [`CompiledSchedule::build`]; share
/// freely across sessions and threads (`Send + Sync` — verified by a
/// static audit in `flames-atms` and the workspace serving tests).
#[derive(Debug, Clone)]
pub struct CompiledSchedule {
    /// Compiled constraint application schedule + fanout adjacency.
    pub(crate) compiled: CompiledNetwork,
    /// The assumption vocabulary (names every env in reports).
    pub(crate) pool: AssumptionPool,
    /// Per-component correctness assumptions, in netlist order.
    pub(crate) comp_assumptions: Vec<Assumption>,
    /// Per-net connection assumptions (nets owning Kirchhoff laws).
    pub(crate) conn_assumptions: Vec<Option<Assumption>>,
    /// Per-constraint support environment (component assumptions ∪
    /// connection assumption).
    pub(crate) constraint_envs: Vec<Env>,
    /// Per-seed support environment, parallel to [`Network::seeds`].
    pub(crate) seed_envs: Vec<Env>,
    /// Vocabulary-only ATMS sessions start from (cloned cold, reset
    /// warm).
    pub(crate) base_atms: FuzzyAtms,
}

impl CompiledSchedule {
    /// Compiles the per-model schedule: one correctness assumption per
    /// component of `netlist`, one connection assumption per net owning a
    /// Kirchhoff constraint (in constraint first-appearance order — the
    /// numbering every session previously re-derived), the per-constraint
    /// support environments, and the seed environments.
    #[must_use]
    pub fn build(netlist: &Netlist, network: &Network, config: PropagatorConfig) -> Self {
        let compiled = CompiledNetwork::compile(network);
        let mut atms = FuzzyAtms::new()
            .with_tnorm(config.tnorm)
            .with_kill_threshold(config.kill_threshold);
        let mut pool = AssumptionPool::new();
        let mut comp_assumptions = Vec::with_capacity(netlist.component_count());
        for (_, comp) in netlist.components() {
            let a = atms.add_assumption(comp.name());
            // The intern must run in release builds too — the pool is what
            // names every env in reports.
            let interned = pool.intern(comp.name());
            debug_assert_eq!(a, interned);
            comp_assumptions.push(a);
        }
        let mut conn_assumptions = vec![None; netlist.net_count()];
        for &net in compiled.conn_nets() {
            let name = format!("conn:{}", netlist.net_name(net));
            let a = atms.add_assumption(&name);
            let interned = pool.intern(&name);
            debug_assert_eq!(a, interned);
            conn_assumptions[net.index()] = Some(a);
        }
        let constraint_envs: Vec<Env> = network
            .constraints()
            .iter()
            .map(|c| {
                let mut env =
                    Env::from_assumptions(c.support.iter().map(|s| comp_assumptions[s.index()]));
                if let Some(net) = c.conn {
                    if let Some(a) = conn_assumptions[net.index()] {
                        env = env.with(a);
                    }
                }
                env
            })
            .collect();
        let seed_envs: Vec<Env> = network
            .seeds()
            .iter()
            .map(|s| Env::from_assumptions(s.support.iter().map(|c| comp_assumptions[c.index()])))
            .collect();
        Self {
            compiled,
            pool,
            comp_assumptions,
            conn_assumptions,
            constraint_envs,
            seed_envs,
            base_atms: atms,
        }
    }

    /// Like [`CompiledSchedule::build`], but interning correctness
    /// assumptions only for the components flagged in `include` — the
    /// per-shard schedule of the region-sharded engine. `network` must
    /// already be the shard's filtered sub-network
    /// ([`Network::restricted`] via the region partition): the full
    /// global quantity list with only the shard's constraints, whose
    /// supports all lie inside `include`.
    ///
    /// Off-shard components get a sentinel assumption
    /// (`Assumption(u32::MAX)`) that must never reach an environment;
    /// shard engines only derive envs over constraints they own, so the
    /// sentinel is unreachable by construction (debug-asserted per kept
    /// constraint). The local assumption ids are dense over the shard's
    /// own vocabulary, which is what keeps per-shard [`Env`] bitsets
    /// narrow — the point of sharding on one core.
    ///
    /// [`Network::restricted`]: flames_circuit::constraint::Network::restricted
    ///
    /// # Panics
    ///
    /// Panics if `include` does not flag every component of `netlist`.
    #[must_use]
    pub fn build_restricted(
        netlist: &Netlist,
        network: &Network,
        config: PropagatorConfig,
        include: &[bool],
    ) -> Self {
        assert_eq!(
            include.len(),
            netlist.component_count(),
            "include must flag every component"
        );
        let compiled = CompiledNetwork::compile(network);
        let mut atms = FuzzyAtms::new()
            .with_tnorm(config.tnorm)
            .with_kill_threshold(config.kill_threshold);
        let mut pool = AssumptionPool::new();
        let mut comp_assumptions = Vec::with_capacity(netlist.component_count());
        for (id, comp) in netlist.components() {
            if include[id.index()] {
                let a = atms.add_assumption(comp.name());
                let interned = pool.intern(comp.name());
                debug_assert_eq!(a, interned);
                comp_assumptions.push(a);
            } else {
                comp_assumptions.push(Assumption(u32::MAX));
            }
        }
        let mut conn_assumptions = vec![None; netlist.net_count()];
        for &net in compiled.conn_nets() {
            let name = format!("conn:{}", netlist.net_name(net));
            let a = atms.add_assumption(&name);
            let interned = pool.intern(&name);
            debug_assert_eq!(a, interned);
            conn_assumptions[net.index()] = Some(a);
        }
        let constraint_envs: Vec<Env> = network
            .constraints()
            .iter()
            .map(|c| {
                debug_assert!(
                    c.support.iter().all(|s| include[s.index()]),
                    "shard constraint {} supported by an off-shard component",
                    c.name
                );
                let mut env =
                    Env::from_assumptions(c.support.iter().map(|s| comp_assumptions[s.index()]));
                if let Some(net) = c.conn {
                    if let Some(a) = conn_assumptions[net.index()] {
                        env = env.with(a);
                    }
                }
                env
            })
            .collect();
        let seed_envs: Vec<Env> = network
            .seeds()
            .iter()
            .map(|s| {
                debug_assert!(s.support.iter().all(|c| include[c.index()]));
                Env::from_assumptions(s.support.iter().map(|c| comp_assumptions[c.index()]))
            })
            .collect();
        Self {
            compiled,
            pool,
            comp_assumptions,
            conn_assumptions,
            constraint_envs,
            seed_envs,
            base_atms: atms,
        }
    }

    /// The compiled constraint schedule.
    #[must_use]
    pub fn compiled(&self) -> &CompiledNetwork {
        &self.compiled
    }

    /// The assumption vocabulary.
    #[must_use]
    pub fn pool(&self) -> &AssumptionPool {
        &self.pool
    }

    /// The correctness assumption of a component (by netlist index).
    ///
    /// # Panics
    ///
    /// Panics for an out-of-range component index.
    #[must_use]
    pub fn component_assumption(&self, comp_index: usize) -> Assumption {
        self.comp_assumptions[comp_index]
    }

    /// The connection assumption of a net, if it owns a Kirchhoff
    /// constraint.
    #[must_use]
    pub fn connection_assumption(&self, net: Net) -> Option<Assumption> {
        self.conn_assumptions.get(net.index()).copied().flatten()
    }
}

/// Owned-or-shared handle on a [`CompiledSchedule`]: the legacy
/// constructors compile a private schedule per propagator, the serving
/// path borrows one compiled model.
#[derive(Debug, Clone)]
enum ScheduleRef<'n> {
    Owned(Box<CompiledSchedule>),
    Shared(&'n CompiledSchedule),
}

impl ScheduleRef<'_> {
    fn get(&self) -> &CompiledSchedule {
        match self {
            ScheduleRef::Owned(s) => s,
            ScheduleRef::Shared(s) => s,
        }
    }
}

/// The mutable per-board state: value stores, ATMS labels and nogoods,
/// coincidences, withdrawn constraints.
///
/// Snapshotable: the engine layer captures the post-seed-fixpoint state
/// once per model and restores sessions from it
/// ([`Propagator::snapshot_state`] / [`Propagator::restore_state`]), so
/// warm boards skip the board-independent propagation entirely.
#[derive(Debug, Clone)]
pub(crate) struct PropState {
    entries: Vec<EntryColumns>,
    atms: FuzzyAtms,
    coincidences: Vec<CoincidenceRecord>,
    /// Constraints withdrawn by model-validity excusal (indexed like
    /// `network.constraints()`).
    disabled_constraints: Vec<bool>,
    /// Whether [`Propagator::run`] has quiesced at least once; until
    /// then a run schedules every constraint.
    ran: bool,
    /// Quantities with out-of-run insertions (seeds, observations,
    /// predictions) since the last quiescence — the wake set of the next
    /// incremental run.
    dirty: Vec<usize>,
    /// Reusable buffer of derived `(value, env, degree, measured)` rows —
    /// emptied between constraint applications, kept for its capacity.
    scratch_derived: Vec<(FuzzyInterval, Env, f64, bool)>,
    /// Reusable keep-mask of the dominance retain pass in
    /// [`PropState::insert`].
    scratch_keep: Vec<bool>,
}

/// The propagation engine: quantity labels, the fuzzy ATMS, and the
/// assumption vocabulary for one diagnosis session.
#[derive(Debug, Clone)]
pub struct Propagator<'n> {
    network: &'n Network,
    config: PropagatorConfig,
    schedule: ScheduleRef<'n>,
    /// Components whose parameter seeds are withheld.
    unknown: Vec<CompId>,
    /// Components whose models are withdrawn entirely.
    excused: Vec<CompId>,
    state: PropState,
}

impl<'n> Propagator<'n> {
    /// Builds a propagator for `network`, creating one correctness
    /// assumption per component of `netlist` and one connection assumption
    /// per net that owns a Kirchhoff constraint, then loads the network's
    /// seed values.
    ///
    /// This compiles a private [`CompiledSchedule`] per call — the
    /// pre-compile behaviour, kept for one-shot uses and as the cold
    /// baseline; long-lived serving should build the schedule once and
    /// use [`Propagator::with_schedule`].
    #[must_use]
    pub fn new(netlist: &Netlist, network: &'n Network, config: PropagatorConfig) -> Self {
        Self::new_with_unknown(netlist, network, config, &[])
    }

    /// Like [`Propagator::new`], but the parameters of the listed
    /// components are left *unknown* (their seeds are withheld). Used by
    /// fault-mode refinement to infer a suspect's actual parameter from
    /// the measurements.
    #[must_use]
    pub fn new_with_unknown(
        netlist: &Netlist,
        network: &'n Network,
        config: PropagatorConfig,
        unknown: &[CompId],
    ) -> Self {
        Self::new_filtered(netlist, network, config, unknown, &[])
    }

    /// Like [`Propagator::new`], but the listed components' *models* are
    /// withdrawn entirely: their parameter seeds are skipped and every
    /// constraint they support is disabled. Used by the §6.2
    /// model-validity machinery when a device is driven out of the
    /// operating region its model assumes.
    #[must_use]
    pub fn new_excusing(
        netlist: &Netlist,
        network: &'n Network,
        config: PropagatorConfig,
        excused: &[CompId],
    ) -> Self {
        Self::new_filtered(netlist, network, config, excused, excused)
    }

    fn new_filtered(
        netlist: &Netlist,
        network: &'n Network,
        config: PropagatorConfig,
        unknown: &[CompId],
        excused: &[CompId],
    ) -> Self {
        let schedule = Box::new(CompiledSchedule::build(netlist, network, config));
        Self::from_parts(
            network,
            ScheduleRef::Owned(schedule),
            config,
            unknown.to_vec(),
            excused.to_vec(),
        )
    }

    /// Builds a propagator over a shared, pre-compiled schedule — the
    /// serve-many path: no vocabulary interning, no adjacency rebuild, no
    /// environment re-derivation; the cold cost is one clone of the
    /// vocabulary-only base ATMS plus the empty label stores.
    #[must_use]
    pub fn with_schedule(
        network: &'n Network,
        schedule: &'n CompiledSchedule,
        config: PropagatorConfig,
    ) -> Self {
        Self::with_schedule_filtered(network, schedule, config, &[], &[])
    }

    /// [`Propagator::with_schedule`] with the unknown/excused component
    /// filters of [`Propagator::new_with_unknown`] /
    /// [`Propagator::new_excusing`]. The filters are per-board state:
    /// [`Propagator::reset`] reapplies them.
    #[must_use]
    pub fn with_schedule_filtered(
        network: &'n Network,
        schedule: &'n CompiledSchedule,
        config: PropagatorConfig,
        unknown: &[CompId],
        excused: &[CompId],
    ) -> Self {
        Self::from_parts(
            network,
            ScheduleRef::Shared(schedule),
            config,
            unknown.to_vec(),
            excused.to_vec(),
        )
    }

    fn from_parts(
        network: &'n Network,
        schedule: ScheduleRef<'n>,
        config: PropagatorConfig,
        unknown: Vec<CompId>,
        excused: Vec<CompId>,
    ) -> Self {
        let state = PropState {
            entries: vec![EntryColumns::default(); network.quantity_count()],
            atms: schedule.get().base_atms.clone(),
            coincidences: Vec::new(),
            disabled_constraints: Vec::with_capacity(network.constraints().len()),
            ran: false,
            dirty: Vec::new(),
            scratch_derived: Vec::new(),
            scratch_keep: Vec::new(),
        };
        let mut prop = Self {
            network,
            config,
            schedule,
            unknown,
            excused,
            state,
        };
        prop.load_board();
        prop
    }

    /// Loads the per-board baseline: the excusal mask and the model
    /// seeds (minus withheld parameters). Runs on construction and on
    /// every [`Propagator::reset`].
    fn load_board(&mut self) {
        let sched = self.schedule.get();
        let network = self.network;
        let config = self.config;
        let unknown = &self.unknown;
        let excused = &self.excused;
        let state = &mut self.state;
        state.disabled_constraints.clear();
        state.disabled_constraints.extend(
            network
                .constraints()
                .iter()
                .map(|c| c.support.iter().any(|s| excused.contains(s))),
        );
        for (seed, env) in network.seeds().iter().zip(&sched.seed_envs) {
            if seed.support.iter().any(|c| unknown.contains(c)) {
                continue;
            }
            if state.insert(config, seed.quantity, seed.value, env.clone(), 1.0, false) {
                state.dirty.push(seed.quantity.index());
            }
        }
    }

    /// Clears the per-board state — labels, nogoods, coincidences,
    /// measurements' effects — without deallocating, then reloads the
    /// model seeds under the same unknown/excused filters. A reset
    /// propagator is indistinguishable from a freshly constructed one
    /// (the serving tests assert report-level identity), but costs no
    /// vocabulary rebuild and reuses every allocation it can.
    pub fn reset(&mut self) {
        for cols in &mut self.state.entries {
            cols.clear();
        }
        self.state.atms.reset();
        self.state.coincidences.clear();
        self.state.ran = false;
        self.state.dirty.clear();
        self.load_board();
    }

    /// Clones the full per-board state — the engine layer snapshots the
    /// board-independent seed fixpoint once per [`CompiledModel`] and
    /// restores every serving session from it.
    ///
    /// [`CompiledModel`]: crate::CompiledModel
    #[must_use]
    pub(crate) fn snapshot_state(&self) -> PropState {
        self.state.clone()
    }

    /// Overwrites the per-board state from a snapshot, reusing existing
    /// allocations. The propagator behaves exactly as the one the
    /// snapshot was taken from did at capture time.
    pub(crate) fn restore_state(&mut self, base: &PropState) {
        self.state.clone_from(base);
    }

    /// The schedule this propagator runs on (owned or shared).
    #[must_use]
    pub fn schedule(&self) -> &CompiledSchedule {
        self.schedule.get()
    }

    /// The assumption standing for "component `comp` (by netlist index)
    /// behaves correctly".
    ///
    /// # Panics
    ///
    /// Panics for an out-of-range component index.
    #[must_use]
    pub fn component_assumption(&self, comp_index: usize) -> Assumption {
        self.schedule.get().comp_assumptions[comp_index]
    }

    /// The connection assumption of a net, if it has Kirchhoff constraints.
    #[must_use]
    pub fn connection_assumption(&self, net: Net) -> Option<Assumption> {
        self.schedule.get().connection_assumption(net)
    }

    /// Human-readable name of an assumption.
    #[must_use]
    pub fn assumption_name(&self, a: Assumption) -> &str {
        self.schedule.get().pool.name(a).unwrap_or("?")
    }

    /// The assumption vocabulary.
    #[must_use]
    pub fn pool(&self) -> &AssumptionPool {
        &self.schedule.get().pool
    }

    /// The underlying fuzzy ATMS (nogoods, suspicion, diagnoses).
    #[must_use]
    pub fn atms(&self) -> &FuzzyAtms {
        &self.state.atms
    }

    /// All coincidences recorded so far.
    #[must_use]
    pub fn coincidences(&self) -> &[CoincidenceRecord] {
        &self.state.coincidences
    }

    /// Current value entries of a quantity, materialized from the
    /// struct-of-arrays store.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownQuantity`] for a foreign id.
    pub fn entries(&self, q: QuantityId) -> Result<Vec<ValueEntry>> {
        self.state
            .entries
            .get(q.index())
            .map(EntryColumns::to_entries)
            .ok_or(CoreError::UnknownQuantity { index: q.index() })
    }

    /// The tightest (smallest-support) value of a quantity, if any.
    #[must_use]
    pub fn best_value(&self, q: QuantityId) -> Option<ValueEntry> {
        let cols = self.state.entries.get(q.index())?;
        cols.tightest().map(|i| cols.entry(i))
    }

    /// Enters a *measurement* for a quantity (premise environment,
    /// degree 1, measurement-rooted).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownQuantity`] for a foreign id.
    pub fn observe(&mut self, q: QuantityId, value: FuzzyInterval) -> Result<()> {
        self.check(q)?;
        if self
            .state
            .insert(self.config, q, value, Env::empty(), 1.0, true)
        {
            self.state.dirty.push(q.index());
        }
        Ok(())
    }

    /// Enters a *predicted* value under the correctness assumptions of
    /// `support` (netlist component indices) — the model-database entry
    /// point for test-point predictions.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownQuantity`] for a foreign id.
    pub fn predict(
        &mut self,
        q: QuantityId,
        value: FuzzyInterval,
        support: &[CompId],
        degree: f64,
    ) -> Result<()> {
        self.check(q)?;
        let env = self.env_of_comps(support);
        if self.state.insert(
            self.config,
            q,
            value,
            env,
            degree.clamp(f64::MIN_POSITIVE, 1.0),
            false,
        ) {
            self.state.dirty.push(q.index());
        }
        Ok(())
    }

    /// Installs an external graded nogood (e.g. from a fault-model rule).
    pub fn add_nogood(&mut self, env: Env, degree: f64) {
        self.state.atms.add_nogood(env, degree);
    }

    /// Enters a value derived *outside* this engine under an explicit
    /// environment — the boundary-exchange entry point of the
    /// region-sharded engine: a neighbouring shard derived `value` for a
    /// cut quantity under `env` (already renamed into this shard's
    /// vocabulary). Dominated and implausible values are rejected by the
    /// same store rules as internally derived ones, so re-delivering an
    /// entry is a no-op — that is what makes exchange rounds converge.
    ///
    /// Returns whether the value store changed (and the quantity joined
    /// the next run's wake set).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownQuantity`] for a foreign id.
    pub fn insert_external(
        &mut self,
        q: QuantityId,
        value: FuzzyInterval,
        env: Env,
        degree: f64,
        measured: bool,
    ) -> Result<bool> {
        self.check(q)?;
        let changed = self.state.insert(
            self.config,
            q,
            value,
            env,
            degree.clamp(f64::MIN_POSITIVE, 1.0),
            measured,
        );
        if changed {
            self.state.dirty.push(q.index());
        }
        Ok(changed)
    }

    /// Interns a *foreign* assumption into this session's ATMS (lazy
    /// boundary-vocabulary growth for the sharded engine). The id is
    /// per-session: [`Propagator::reset`] and state restores rewind it
    /// with the rest of the ATMS. The shared schedule's pool is not
    /// touched — sharded reports render through the global vocabulary.
    pub(crate) fn register_assumption(&mut self, name: &str) -> Assumption {
        self.state.atms.add_assumption(name)
    }

    /// Runs constraint propagation to quiescence (bounded by
    /// [`PropagatorConfig::max_steps`]), then grades every spec condition.
    ///
    /// The first run after construction or [`Propagator::reset`]
    /// schedules every constraint; subsequent runs are *incremental* —
    /// they wake only the consumers of quantities changed since the last
    /// quiescence (new observations, predictions or nogoods' effects),
    /// in constraint-index order, exactly as a full rescan would reach
    /// them. This is what makes warm serving cheap: a session restored
    /// from the model's pre-propagated base state only ever pays for the
    /// cone of its own measurements.
    ///
    /// Returns the number of constraint applications performed.
    pub fn run(&mut self) -> usize {
        let sched = self.schedule.get();
        let network = self.network;
        let config = self.config;
        let state = &mut self.state;
        let mut steps = 0usize;
        let n = sched.compiled.constraint_count();
        let mut queue: VecDeque<usize>;
        let mut queued: Vec<bool>;
        let mut wake: Vec<u32> = Vec::new();
        if state.ran {
            // Incremental: wake only the consumers of quantities touched
            // since the last quiescence.
            let mut touched = std::mem::take(&mut state.dirty);
            touched.sort_unstable();
            touched.dedup();
            for &qi in &touched {
                wake.extend_from_slice(&sched.compiled.consumers()[qi]);
            }
            wake.sort_unstable();
            wake.dedup();
            queued = vec![false; n];
            queue = VecDeque::with_capacity(wake.len());
            for &cj in &wake {
                queue.push_back(cj as usize);
                queued[cj as usize] = true;
            }
        } else {
            // First run: all constraints are initially dirty.
            queue = (0..n).collect();
            queued = vec![true; n];
            state.dirty.clear();
        }
        state.ran = true;
        let mut changed: Vec<usize> = Vec::new();
        while let Some(ci) = queue.pop_front() {
            queued[ci] = false;
            if steps >= config.max_steps {
                break;
            }
            if state.disabled_constraints[ci] {
                continue;
            }
            steps += 1;
            state.apply_constraint(sched, config, ci, &mut changed);
            if !changed.is_empty() {
                // Requeue exactly the consumers of the changed quantities,
                // in constraint-index order (matching a full rescan).
                wake.clear();
                for &qi in &changed {
                    wake.extend_from_slice(&sched.compiled.consumers()[qi]);
                }
                wake.sort_unstable();
                wake.dedup();
                for &cj in &wake {
                    let cj = cj as usize;
                    if !queued[cj] {
                        queue.push_back(cj);
                        queued[cj] = true;
                    }
                }
            }
        }
        state.grade_specs(sched, network, config);
        flames_obs::metrics().waves.incr();
        flames_obs::metrics().constraint_apps.add(steps as u64);
        steps
    }

    /// Runs a *lane* of warm propagators to joint quiescence: one shared
    /// schedule traversal drives up to 64 boards, the queue carrying
    /// `(constraint, board-bitmask)` waves so a constraint scheduled by
    /// several boards is fetched and decoded once per wave instead of
    /// once per board. The per-board subsequence of the shared FIFO is
    /// exactly the solo FIFO of [`Propagator::run`] — same applications
    /// in the same order — so every board's labels, nogoods and
    /// coincidences come out bit-identical to running it alone.
    ///
    /// Returns the constraint application count of each board.
    ///
    /// # Panics
    ///
    /// Panics if the lane holds more than 64 boards, or if any member
    /// owns a private schedule ([`Propagator::new`]) or runs on a
    /// different shared [`CompiledSchedule`] than the first.
    pub fn run_lane(props: &mut [&mut Self]) -> Vec<usize> {
        if props.is_empty() {
            return Vec::new();
        }
        assert!(props.len() <= 64, "a lane holds at most 64 boards");
        // Copy the shared-schedule reference out (it lives for 'n, not
        // for the duration of this borrow of `props`).
        let sched: &CompiledSchedule = match props[0].schedule {
            ScheduleRef::Shared(s) => s,
            ScheduleRef::Owned(_) => {
                panic!("run_lane requires propagators over one shared CompiledSchedule")
            }
        };
        for p in props.iter() {
            match p.schedule {
                ScheduleRef::Shared(s) => assert!(
                    std::ptr::eq(s, sched),
                    "every lane member must share the same CompiledSchedule"
                ),
                ScheduleRef::Owned(_) => {
                    panic!("run_lane requires propagators over one shared CompiledSchedule")
                }
            }
        }
        let n = sched.compiled.constraint_count();
        // Per-constraint bitmask of boards holding it queued — the lane
        // counterpart of the solo `queued: Vec<bool>`.
        let mut queued: Vec<u64> = vec![0; n];
        let mut wake: Vec<u32> = Vec::new();
        for (b, p) in props.iter_mut().enumerate() {
            let bit = 1u64 << b;
            let state = &mut p.state;
            if state.ran {
                let mut touched = std::mem::take(&mut state.dirty);
                touched.sort_unstable();
                touched.dedup();
                wake.clear();
                for &qi in &touched {
                    wake.extend_from_slice(&sched.compiled.consumers()[qi]);
                }
                wake.sort_unstable();
                wake.dedup();
                for &cj in &wake {
                    queued[cj as usize] |= bit;
                }
                touched.clear();
                state.dirty = touched;
            } else {
                for m in &mut queued {
                    *m |= bit;
                }
                state.dirty.clear();
            }
            state.ran = true;
        }
        // Initial waves in ascending constraint order — the order every
        // solo queue starts in, incremental or full.
        let mut queue: VecDeque<(u32, u64)> = VecDeque::new();
        for (ci, &mask) in queued.iter().enumerate() {
            if mask != 0 {
                queue.push_back((ci as u32, mask));
            }
        }
        let mut steps = vec![0usize; props.len()];
        let mut changed: Vec<usize> = Vec::new();
        // Wakes accumulated during one wave, flushed as merged entries in
        // ascending constraint order afterwards (each board's own pushes
        // are ascending, exactly as its solo requeue would be).
        let mut wake_acc: Vec<u64> = vec![0; n];
        let mut touched_cjs: Vec<u32> = Vec::new();
        while let Some((ci, mask)) = queue.pop_front() {
            let ci = ci as usize;
            queued[ci] &= !mask;
            let mut rest = mask;
            while rest != 0 {
                let b = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                let bit = 1u64 << b;
                let p = &mut *props[b];
                let config = p.config;
                if steps[b] >= config.max_steps {
                    // The solo loop breaks out here; skipping this
                    // board's share of every later wave is equivalent.
                    continue;
                }
                let state = &mut p.state;
                if state.disabled_constraints[ci] {
                    continue;
                }
                steps[b] += 1;
                state.apply_constraint(sched, config, ci, &mut changed);
                if changed.is_empty() {
                    continue;
                }
                wake.clear();
                for &qi in &changed {
                    wake.extend_from_slice(&sched.compiled.consumers()[qi]);
                }
                wake.sort_unstable();
                wake.dedup();
                for &cj in &wake {
                    let cj = cj as usize;
                    if queued[cj] & bit == 0 {
                        queued[cj] |= bit;
                        if wake_acc[cj] == 0 {
                            touched_cjs.push(cj as u32);
                        }
                        wake_acc[cj] |= bit;
                    }
                }
            }
            if !touched_cjs.is_empty() {
                touched_cjs.sort_unstable();
                for &cj in &touched_cjs {
                    queue.push_back((cj, wake_acc[cj as usize]));
                    wake_acc[cj as usize] = 0;
                }
                touched_cjs.clear();
            }
        }
        for (b, p) in props.iter_mut().enumerate() {
            let config = p.config;
            let network = p.network;
            p.state.grade_specs(sched, network, config);
            flames_obs::metrics().waves.incr();
            flames_obs::metrics().constraint_apps.add(steps[b] as u64);
        }
        steps
    }

    // ----- internals -------------------------------------------------

    fn check(&self, q: QuantityId) -> Result<()> {
        if q.index() < self.state.entries.len() {
            Ok(())
        } else {
            Err(CoreError::UnknownQuantity { index: q.index() })
        }
    }

    fn env_of_comps(&self, comps: &[CompId]) -> Env {
        let sched = self.schedule.get();
        Env::from_assumptions(comps.iter().map(|c| sched.comp_assumptions[c.index()]))
    }
}

impl PropState {
    /// Applies one constraint in every invertible direction; fills
    /// `changed` with the (sorted, deduped) indices of quantities whose
    /// labels changed.
    fn apply_constraint(
        &mut self,
        sched: &CompiledSchedule,
        config: PropagatorConfig,
        ci: usize,
        changed: &mut Vec<usize>,
    ) {
        let tnorm = config.tnorm;
        changed.clear();
        let mut derived = std::mem::take(&mut self.scratch_derived);
        match *sched.compiled.relation(ci) {
            CompiledRelation::Linear {
                bias,
                ref directions,
            } => {
                for dir in directions {
                    derived.clear();
                    {
                        let base_env = &sched.constraint_envs[ci];
                        let out = &mut derived;
                        self.each_combo(&dir.quantities, |row| {
                            // target = −(bias + Σ coef_j · v_j) / coef.
                            let mut sum = FuzzyInterval::crisp(bias);
                            let mut env = base_env.clone();
                            let mut degree = 1.0;
                            let mut measured = false;
                            for (&(coef, _), entry) in dir.others.iter().zip(row) {
                                sum = sum + entry.value.scaled(coef);
                                env.union_with(entry.env);
                                degree = tnorm.combine(degree, entry.degree);
                                measured |= entry.measured;
                            }
                            out.push((sum.scaled(dir.neg_inv_coef), env, degree, measured));
                        });
                    }
                    for (value, env, degree, measured) in derived.drain(..) {
                        if self.insert(config, dir.target, value, env, degree, measured) {
                            changed.push(dir.target.index());
                        }
                    }
                }
            }
            CompiledRelation::Product { p, x, y } => {
                // p = x · y, x = p / y and y = p / x.
                self.derive_pairs(
                    sched,
                    config,
                    ci,
                    p,
                    x,
                    y,
                    |a, b| a.mul(b).ok(),
                    &mut derived,
                    changed,
                );
                self.derive_pairs(
                    sched,
                    config,
                    ci,
                    x,
                    p,
                    y,
                    |a, b| a.div(b).ok(),
                    &mut derived,
                    changed,
                );
                self.derive_pairs(
                    sched,
                    config,
                    ci,
                    y,
                    p,
                    x,
                    |a, b| a.div(b).ok(),
                    &mut derived,
                    changed,
                );
            }
        }
        self.scratch_derived = derived;
        changed.sort_unstable();
        changed.dedup();
    }

    /// Derives `target` from every entry pair of `(a, b)` through `op`,
    /// inserting the results under the constraint's cached base
    /// environment.
    #[allow(clippy::too_many_arguments)]
    fn derive_pairs(
        &mut self,
        sched: &CompiledSchedule,
        config: PropagatorConfig,
        ci: usize,
        target: QuantityId,
        a: QuantityId,
        b: QuantityId,
        op: impl Fn(&FuzzyInterval, &FuzzyInterval) -> Option<FuzzyInterval>,
        derived: &mut Vec<(FuzzyInterval, Env, f64, bool)>,
        changed: &mut Vec<usize>,
    ) {
        let tnorm = config.tnorm;
        derived.clear();
        {
            let base_env = &sched.constraint_envs[ci];
            let out = &mut *derived;
            self.each_combo(&[a, b], |row| {
                if let Some(value) = op(&row[0].value, &row[1].value) {
                    let mut env = base_env.clone();
                    env.union_with(row[0].env);
                    env.union_with(row[1].env);
                    let degree = tnorm.combine(row[0].degree, row[1].degree);
                    out.push((value, env, degree, row[0].measured || row[1].measured));
                }
            });
        }
        for (value, env, degree, measured) in derived.drain(..) {
            if self.insert(config, target, value, env, degree, measured) {
                changed.push(target.index());
            }
        }
    }

    /// Invokes `f` on each cartesian combination of the current entries of
    /// `qs`, materialized from the columns — no heap allocation for the
    /// constraint arities the compiler produces. Combinations enumerate in
    /// lexicographic order with the last quantity varying fastest, capped
    /// at 64 rows (the same first-64 prefix the entry-cloning
    /// implementation produced). With `qs` empty, `f` sees one empty row.
    fn each_combo<'s>(&'s self, qs: &[QuantityId], mut f: impl FnMut(&[EntryRef<'s>])) {
        /// Stack capacity for the per-position cursors; arities beyond
        /// this (not produced by today's compiler) fall back to the heap.
        const MAX_ARITY: usize = 16;
        let arity = qs.len();
        if arity == 0 {
            f(&[]);
            return;
        }
        if arity <= MAX_ARITY {
            static EMPTY: EntryColumns = EntryColumns::EMPTY;
            let mut lists = [&EMPTY; MAX_ARITY];
            for (slot, q) in lists[..arity].iter_mut().zip(qs) {
                let cols = &self.entries[q.index()];
                if cols.is_empty() {
                    return;
                }
                *slot = cols;
            }
            let mut idx = [0usize; MAX_ARITY];
            let mut row = [lists[0].entry_ref(0); MAX_ARITY];
            for k in 1..arity {
                row[k] = lists[k].entry_ref(0);
            }
            combo_loop(&lists[..arity], &mut idx[..arity], &mut row[..arity], f);
        } else {
            let mut lists = Vec::with_capacity(arity);
            for q in qs {
                let cols = &self.entries[q.index()];
                if cols.is_empty() {
                    return;
                }
                lists.push(cols);
            }
            let mut idx = vec![0usize; arity];
            let mut row: Vec<EntryRef<'s>> = lists.iter().map(|l| l.entry_ref(0)).collect();
            combo_loop(&lists, &mut idx, &mut row, f);
        }
    }

    /// Records a value for a quantity, running the Fig. 4 coincidence
    /// resolution against every held entry. Returns whether the label
    /// changed.
    fn insert(
        &mut self,
        config: PropagatorConfig,
        q: QuantityId,
        value: FuzzyInterval,
        env: Env,
        degree: f64,
        measured: bool,
    ) -> bool {
        // Environments already erased by a killing nogood derive nothing.
        if self.atms.plausibility(&env) <= 0.0 {
            return false;
        }
        let incoming = ValueEntry {
            value,
            env,
            degree,
            measured,
        };
        let inc_sig = incoming.env.word_signature();
        let inc_width = incoming.value.support_width();
        let list = &self.entries[q.index()];

        // Coincidence resolution against existing entries (Fig. 4):
        // inclusion is a split (refinement), overlapping cores a
        // corroboration, and anything else a conflict graded by the
        // *possibility of agreement* `π = sup min(μ₁, μ₂)` — the
        // possibilistic-ATMS reading of the paper's partial conflicts.
        // (The asymmetric area-based Dc is reserved for the
        // measured-vs-nominal test-point comparison in the engine.)
        let mut dominated = false;
        let mut conflicts: Vec<(CoincidenceRecord, f64)> = Vec::new();
        for i in 0..list.len() {
            let evalue = list.value(i);
            // Orient the record: the measurement side plays Vm.
            let (vm, vn) = if list.measured(i) && !incoming.measured {
                (&evalue, &incoming.value)
            } else {
                (&incoming.value, &evalue)
            };
            let nested =
                incoming.value.is_included_in(&evalue) || evalue.is_included_in(&incoming.value);
            let pi = vm.possibility_of(vn);
            let conflict = if nested { 0.0 } else { 1.0 - pi };
            let kind = if conflict <= config.conflict_threshold {
                if nested && incoming.value != evalue {
                    CoincidenceKind::Split
                } else {
                    CoincidenceKind::Corroboration
                }
            } else if pi <= 0.0 {
                CoincidenceKind::TotalConflict
            } else {
                CoincidenceKind::PartialConflict
            };
            {
                let m = flames_obs::metrics();
                match kind {
                    CoincidenceKind::Corroboration => m.corroborations.incr(),
                    CoincidenceKind::Split => m.splits.incr(),
                    CoincidenceKind::PartialConflict => m.partial_conflicts.incr(),
                    CoincidenceKind::TotalConflict => m.total_conflicts.incr(),
                }
            }
            if matches!(
                kind,
                CoincidenceKind::PartialConflict | CoincidenceKind::TotalConflict
            ) {
                let direction = if vm.centroid() < vn.centroid() {
                    flames_fuzzy::Direction::Low
                } else {
                    flames_fuzzy::Direction::High
                };
                let nogood_degree = config.tnorm.combine(
                    conflict,
                    config.tnorm.combine(incoming.degree, list.degree(i)),
                );
                let union_env = incoming.env.union(list.env(i));
                conflicts.push((
                    CoincidenceRecord {
                        quantity: q,
                        kind,
                        consistency: Consistency::from_parts(pi, direction),
                        env: union_env,
                    },
                    nogood_degree,
                ));
            }
            // Dominance: an existing entry that is at least as general
            // (subset environment), at least as certain, and at least as
            // tight — or within the tightening threshold — makes the
            // incoming value redundant. The threshold is what keeps
            // fixpoint iteration from churning on infinitesimal
            // refinements. The word-signature test is a cheap necessary
            // condition for `existing ⊆ incoming` that skips the bitset
            // walk for most non-subset pairs.
            if list.sig(i) & !inc_sig == 0
                && list.env(i).is_subset_of(&incoming.env)
                && list.degree(i) >= incoming.degree - 1e-12
            {
                let meaningful = inc_width <= list.width(i) * (1.0 - config.min_tightening);
                if evalue.is_included_in(&incoming.value)
                    || (!meaningful && incoming.value.is_included_in(&evalue))
                {
                    dominated = true;
                }
            }
        }
        for (record, nogood_degree) in conflicts {
            let env = record.env.clone();
            self.coincidences.push(record);
            self.atms.add_nogood(env, nogood_degree);
        }
        if dominated {
            return false;
        }
        // Drop entries the incoming one meaningfully improves on. The
        // keep mask is computed against the immutable columns first, then
        // applied as one compaction pass.
        let min_tightening = config.min_tightening;
        let mut keep = std::mem::take(&mut self.scratch_keep);
        keep.clear();
        {
            let list = &self.entries[q.index()];
            for i in 0..list.len() {
                keep.push(
                    !(inc_sig & !list.sig(i) == 0
                        && incoming.env.is_subset_of(list.env(i))
                        && incoming.degree >= list.degree(i) - 1e-12
                        && incoming.value.is_included_in(&list.value(i))
                        && inc_width <= list.width(i) * (1.0 - min_tightening)),
                );
            }
        }
        let list = &mut self.entries[q.index()];
        let dropped = list.retain_kept(&keep);
        keep.clear();
        self.scratch_keep = keep;
        if list.len() >= config.max_entries {
            // The label is full: the incoming value may still replace the
            // widest held entry if it is strictly tighter. (The raw
            // measurement is always the narrowest entry, so it can never
            // be evicted by derived values.) This keeps the cap from
            // making results order-dependent — a late probe or a tight
            // conditional derivation must never bounce off stale wide
            // values.
            let widest = (0..list.len())
                .max_by(|&a, &b| {
                    list.width(a)
                        .partial_cmp(&list.width(b))
                        .expect("finite widths")
                })
                .map(|i| (i, list.width(i)));
            match widest {
                Some((i, width)) if inc_width < width => {
                    list.set(i, incoming);
                    return true;
                }
                _ => return dropped > 0,
            }
        }
        list.push(incoming);
        true
    }

    /// Grades every spec condition against the current best value of its
    /// quantity; violations raise nogoods over spec support ∪ value env.
    fn grade_specs(
        &mut self,
        sched: &CompiledSchedule,
        network: &Network,
        config: PropagatorConfig,
    ) {
        for spec in network.specs() {
            let Some(cols) = self.entries.get(spec.quantity.index()) else {
                continue;
            };
            let Some(bi) = cols.tightest() else {
                continue;
            };
            let satisfaction = cols.value(bi).satisfaction_of(&spec.condition);
            let violation = 1.0 - satisfaction;
            if violation <= config.conflict_threshold {
                continue;
            }
            let best_degree = cols.degree(bi);
            let mut env = cols.env(bi).clone();
            env.union_with(&Env::from_assumptions(
                spec.support
                    .iter()
                    .map(|c| sched.comp_assumptions[c.index()]),
            ));
            let record = CoincidenceRecord {
                quantity: spec.quantity,
                kind: if satisfaction <= 0.0 {
                    CoincidenceKind::TotalConflict
                } else {
                    CoincidenceKind::PartialConflict
                },
                consistency: Consistency::from_parts(satisfaction, flames_fuzzy::Direction::High),
                env: env.clone(),
            };
            // Specs are re-graded at the end of every run; a violation
            // that has not changed must not pile up duplicate records.
            if !self.coincidences.contains(&record) {
                self.coincidences.push(record);
            }
            self.atms
                .add_nogood(env, config.tnorm.combine(violation, best_degree));
        }
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use flames_circuit::constraint::{extract, ExtractOptions};

    /// vin —R1— mid —R2— gnd divider network.
    fn divider(tol: f64) -> (Netlist, Network) {
        let mut nl = Netlist::new();
        let vin = nl.add_net("vin");
        let mid = nl.add_net("mid");
        nl.add_voltage_source("V", vin, Net::GROUND, 10.0).unwrap();
        nl.add_resistor("R1", vin, mid, 1000.0, tol).unwrap();
        nl.add_resistor("R2", mid, Net::GROUND, 1000.0, tol)
            .unwrap();
        let network = extract(&nl, ExtractOptions::default());
        (nl, network)
    }

    #[test]
    fn seeds_are_loaded() {
        let (nl, network) = divider(0.05);
        let prop = Propagator::new(&nl, &network, PropagatorConfig::default());
        let vg = network.voltage_quantity(Net::GROUND);
        let entries = prop.entries(vg).unwrap();
        assert_eq!(entries.len(), 1);
        assert!(entries[0].value.is_point());
        assert!(entries[0].env.is_empty());
    }

    #[test]
    fn healthy_divider_propagates_and_corroborates() {
        let (nl, network) = divider(0.05);
        let mut prop = Propagator::new(&nl, &network, PropagatorConfig::default());
        let mid = nl.net_by_name("mid").unwrap();
        let vq = network.voltage_quantity(mid);
        // Measure the true mid voltage with a little imprecision.
        prop.observe(vq, FuzzyInterval::crisp(5.0).widened(0.05).unwrap())
            .unwrap();
        prop.run();
        assert!(
            prop.atms().nogoods().is_empty(),
            "healthy board: no conflicts"
        );
        // The engine derives the mid voltage from the model too.
        let best = prop.best_value(vq).unwrap();
        assert!(best.value.membership(5.0) > 0.0);
    }

    #[test]
    fn shifted_measurement_raises_graded_nogood() {
        let (nl, network) = divider(0.05);
        let mut prop = Propagator::new(&nl, &network, PropagatorConfig::default());
        let mid = nl.net_by_name("mid").unwrap();
        let vq = network.voltage_quantity(mid);
        // Slightly off: a soft fault somewhere.
        prop.observe(vq, FuzzyInterval::crisp(5.4).widened(0.05).unwrap())
            .unwrap();
        prop.run();
        let nogoods = prop.atms().nogoods();
        assert!(
            !nogoods.is_empty(),
            "5.4 V against ~5±tolerances must conflict"
        );
        // The conflict implicates the divider resistors, not the source alone.
        let r1 = prop.component_assumption(nl.component_by_name("R1").unwrap().index());
        let r2 = prop.component_assumption(nl.component_by_name("R2").unwrap().index());
        assert!(nogoods
            .iter()
            .any(|n| n.env.contains(r1) || n.env.contains(r2)));
    }

    #[test]
    fn hard_fault_raises_total_conflict() {
        let (nl, network) = divider(0.05);
        let mut prop = Propagator::new(&nl, &network, PropagatorConfig::default());
        let mid = nl.net_by_name("mid").unwrap();
        let vq = network.voltage_quantity(mid);
        prop.observe(vq, FuzzyInterval::crisp(9.99).widened(0.02).unwrap())
            .unwrap();
        prop.run();
        let max_degree = prop
            .atms()
            .nogoods()
            .iter()
            .map(|n| n.degree)
            .fold(0.0, f64::max);
        assert!(
            max_degree >= 0.99,
            "a near-rail reading is a total conflict"
        );
        assert!(prop
            .coincidences()
            .iter()
            .any(|c| c.kind == CoincidenceKind::TotalConflict));
    }

    #[test]
    fn soft_fault_conflict_is_graded_below_one() {
        let (nl, network) = divider(0.05);
        let mut prop = Propagator::new(&nl, &network, PropagatorConfig::default());
        let mid = nl.net_by_name("mid").unwrap();
        let vq = network.voltage_quantity(mid);
        // Just at the edge of tolerance: partial conflict expected.
        prop.observe(vq, FuzzyInterval::crisp(5.3).widened(0.15).unwrap())
            .unwrap();
        prop.run();
        assert!(prop
            .coincidences()
            .iter()
            .any(|c| c.kind == CoincidenceKind::PartialConflict));
        let has_partial = prop
            .atms()
            .nogoods()
            .iter()
            .any(|n| n.degree > 0.02 && n.degree < 1.0);
        assert!(has_partial, "graded nogood expected");
    }

    #[test]
    fn diagnoses_point_at_divider_components() {
        let (nl, network) = divider(0.05);
        let mut prop = Propagator::new(&nl, &network, PropagatorConfig::default());
        let mid = nl.net_by_name("mid").unwrap();
        let vq = network.voltage_quantity(mid);
        prop.observe(vq, FuzzyInterval::crisp(7.0).widened(0.05).unwrap())
            .unwrap();
        prop.run();
        let diags = prop.atms().ranked_diagnoses(2, 100);
        assert!(!diags.is_empty());
        // Single-component candidates must be among R1, R2, V or a
        // connection — never empty.
        let names: Vec<String> = diags
            .iter()
            .flat_map(|d| d.env.iter().map(|a| prop.assumption_name(a).to_owned()))
            .collect();
        assert!(names.iter().any(|n| n == "R1" || n == "R2"));
    }

    #[test]
    fn unknown_quantity_is_reported() {
        let (nl, network) = divider(0.05);
        let mut prop = Propagator::new(&nl, &network, PropagatorConfig::default());
        let bogus = flames_circuit::constraint::QuantityId::from_raw(network.quantity_count() + 5);
        let res = prop.observe(bogus, FuzzyInterval::crisp(0.0));
        assert!(matches!(res, Err(CoreError::UnknownQuantity { .. })));
        assert!(prop.entries(bogus).is_err());
    }

    #[test]
    fn observe_then_rerun_is_incremental() {
        let (nl, network) = divider(0.05);
        let mut prop = Propagator::new(&nl, &network, PropagatorConfig::default());
        let vin = nl.net_by_name("vin").unwrap();
        let mid = nl.net_by_name("mid").unwrap();
        prop.observe(
            network.voltage_quantity(vin),
            FuzzyInterval::crisp(10.0).widened(0.01).unwrap(),
        )
        .unwrap();
        prop.run();
        let before = prop.atms().nogoods().len();
        prop.observe(
            network.voltage_quantity(mid),
            FuzzyInterval::crisp(5.0).widened(0.05).unwrap(),
        )
        .unwrap();
        prop.run();
        assert_eq!(prop.atms().nogoods().len(), before, "still healthy");
    }

    /// Runs one faulty-board scenario on a propagator and snapshots
    /// everything a report is derived from.
    fn run_board(prop: &mut Propagator<'_>, network: &Network, nl: &Netlist) -> String {
        let mid = nl.net_by_name("mid").unwrap();
        let vq = network.voltage_quantity(mid);
        prop.observe(vq, FuzzyInterval::crisp(5.4).widened(0.05).unwrap())
            .unwrap();
        prop.run();
        format!(
            "{:?}|{:?}|{:?}|{:?}",
            prop.entries(vq).unwrap(),
            prop.atms().nogoods(),
            prop.coincidences(),
            prop.atms().ranked_diagnoses(3, 64),
        )
    }

    #[test]
    fn shared_schedule_matches_private_schedule() {
        let (nl, network) = divider(0.05);
        let config = PropagatorConfig::default();
        let schedule = CompiledSchedule::build(&nl, &network, config);
        let mut legacy = Propagator::new(&nl, &network, config);
        let mut shared = Propagator::with_schedule(&network, &schedule, config);
        let a = run_board(&mut legacy, &network, &nl);
        let b = run_board(&mut shared, &network, &nl);
        assert_eq!(a, b, "compiled path must be byte-identical to legacy");
    }

    #[test]
    fn reset_board_matches_fresh_propagator() {
        let (nl, network) = divider(0.05);
        let config = PropagatorConfig::default();
        let schedule = CompiledSchedule::build(&nl, &network, config);
        let mut fresh = Propagator::with_schedule(&network, &schedule, config);
        let expected = run_board(&mut fresh, &network, &nl);
        // Warm path: run a *different* board first, then reset and replay.
        let mut warm = Propagator::with_schedule(&network, &schedule, config);
        let vin = nl.net_by_name("vin").unwrap();
        warm.observe(
            network.voltage_quantity(vin),
            FuzzyInterval::crisp(9.2).widened(0.02).unwrap(),
        )
        .unwrap();
        warm.run();
        assert!(!warm.atms().nogoods().is_empty(), "first board is faulty");
        warm.reset();
        assert!(warm.atms().nogoods().is_empty());
        assert!(warm.coincidences().is_empty());
        let replay = run_board(&mut warm, &network, &nl);
        assert_eq!(replay, expected, "reset must equal rebuild");
    }

    #[test]
    fn reset_preserves_excusal_filters() {
        let (nl, network) = divider(0.05);
        let config = PropagatorConfig::default();
        let r2 = nl.component_by_name("R2").unwrap();
        let schedule = CompiledSchedule::build(&nl, &network, config);
        let mut legacy = Propagator::new_excusing(&nl, &network, config, &[r2]);
        let mut shared =
            Propagator::with_schedule_filtered(&network, &schedule, config, &[r2], &[r2]);
        shared.reset();
        let a = run_board(&mut legacy, &network, &nl);
        let b = run_board(&mut shared, &network, &nl);
        assert_eq!(a, b, "filters survive reset");
    }
}
