//! Fuzzy interval labelling — the paper's §6.1.1 propagation engine.
//!
//! Quantities carry sets of fuzzy values, each tagged with the assumption
//! [`Env`]ironment and certainty degree of its derivation. Values enter as
//! model seeds (parameters under their component's correctness
//! assumption), expert predictions, or measurements; constraints derive
//! new values in every direction they can be inverted.
//!
//! "The discovery of a known value for a point for which we already know a
//! predicted propagated value is called a **coincidence**" — each
//! coincidence is classified per the paper's Fig. 4 (corroboration /
//! split / partial or total conflict) through the degree of consistency
//! `Dc`, and conflicts become graded nogoods in the fuzzy ATMS.

use crate::error::CoreError;
use crate::Result;
use flames_atms::{Assumption, AssumptionPool, Env, FuzzyAtms, TNorm};
use flames_circuit::constraint::{Network, QuantityId, Relation};
use flames_circuit::{Net, Netlist};
use flames_fuzzy::{Consistency, FuzzyInterval};
use std::collections::VecDeque;

/// A fuzzy value for a quantity together with its derivation pedigree.
#[derive(Debug, Clone, PartialEq)]
pub struct ValueEntry {
    /// The fuzzy value.
    pub value: FuzzyInterval,
    /// Assumptions the derivation rests on.
    pub env: Env,
    /// Certainty degree of the derivation (t-norm along the path).
    pub degree: f64,
    /// True when the derivation involves at least one measurement
    /// (orients the asymmetric `Dc` computation).
    pub measured: bool,
}

/// Fig. 4 classification of a coincidence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoincidenceKind {
    /// Case c: the values agree (`Dc = 1` both ways).
    Corroboration,
    /// Case a: one value refines (splits) the other.
    Split,
    /// Case b with `0 < Dc < 1`.
    PartialConflict,
    /// Case b with `Dc = 0`.
    TotalConflict,
}

/// A recorded coincidence between two values of one quantity.
#[derive(Debug, Clone, PartialEq)]
pub struct CoincidenceRecord {
    /// The quantity on which the values met.
    pub quantity: QuantityId,
    /// Fig. 4 classification.
    pub kind: CoincidenceKind,
    /// Degree of consistency (with deviation direction) of the
    /// measurement-side value against the prediction-side value.
    pub consistency: Consistency,
    /// Union of the two environments (the nogood, for conflicts).
    pub env: Env,
}

/// Tuning knobs of the propagation engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PropagatorConfig {
    /// T-norm combining certainty degrees along derivations.
    pub tnorm: TNorm,
    /// Conflict degrees at or below this threshold are treated as noise
    /// (no nogood). Default `0.02`.
    pub conflict_threshold: f64,
    /// Nogood degree at which environments are erased outright (the fuzzy
    /// ATMS kill threshold). Default `1.0`.
    pub kill_threshold: f64,
    /// Maximum value entries kept per quantity (explosion guard).
    /// Default `8`.
    pub max_entries: usize,
    /// Minimum relative support tightening for a refined value to be
    /// recorded. Default `0.01`.
    pub min_tightening: f64,
    /// Upper bound on constraint applications per [`Propagator::run`].
    /// Default `20_000`.
    pub max_steps: usize,
}

impl Default for PropagatorConfig {
    fn default() -> Self {
        Self {
            tnorm: TNorm::Min,
            conflict_threshold: 0.02,
            kill_threshold: 1.0,
            max_entries: 8,
            min_tightening: 0.01,
            max_steps: 20_000,
        }
    }
}

/// The propagation engine: quantity labels, the fuzzy ATMS, and the
/// assumption vocabulary for one diagnosis session.
#[derive(Debug, Clone)]
pub struct Propagator<'n> {
    network: &'n Network,
    config: PropagatorConfig,
    entries: Vec<Vec<ValueEntry>>,
    atms: FuzzyAtms,
    pool: AssumptionPool,
    comp_assumptions: Vec<Assumption>,
    conn_assumptions: Vec<Option<Assumption>>,
    coincidences: Vec<CoincidenceRecord>,
    /// Constraints withdrawn by model-validity excusal (indexed like
    /// `network.constraints()`).
    disabled_constraints: Vec<bool>,
    /// Per-constraint support environment (component assumptions ∪
    /// connection assumption), built once at construction.
    constraint_envs: Vec<Env>,
    /// Quantity → constraint adjacency for the dirty-constraint requeue.
    consumers: Vec<Vec<u32>>,
}

impl<'n> Propagator<'n> {
    /// Builds a propagator for `network`, creating one correctness
    /// assumption per component of `netlist` and one connection assumption
    /// per net that owns a Kirchhoff constraint, then loads the network's
    /// seed values.
    #[must_use]
    pub fn new(netlist: &Netlist, network: &'n Network, config: PropagatorConfig) -> Self {
        Self::new_with_unknown(netlist, network, config, &[])
    }

    /// Like [`Propagator::new`], but the parameters of the listed
    /// components are left *unknown* (their seeds are withheld). Used by
    /// fault-mode refinement to infer a suspect's actual parameter from
    /// the measurements.
    #[must_use]
    pub fn new_with_unknown(
        netlist: &Netlist,
        network: &'n Network,
        config: PropagatorConfig,
        unknown: &[flames_circuit::CompId],
    ) -> Self {
        Self::new_filtered(netlist, network, config, unknown, &[])
    }

    /// Like [`Propagator::new`], but the listed components' *models* are
    /// withdrawn entirely: their parameter seeds are skipped and every
    /// constraint they support is disabled. Used by the §6.2
    /// model-validity machinery when a device is driven out of the
    /// operating region its model assumes.
    #[must_use]
    pub fn new_excusing(
        netlist: &Netlist,
        network: &'n Network,
        config: PropagatorConfig,
        excused: &[flames_circuit::CompId],
    ) -> Self {
        Self::new_filtered(netlist, network, config, excused, excused)
    }

    fn new_filtered(
        netlist: &Netlist,
        network: &'n Network,
        config: PropagatorConfig,
        unknown: &[flames_circuit::CompId],
        excused: &[flames_circuit::CompId],
    ) -> Self {
        let mut atms = FuzzyAtms::new()
            .with_tnorm(config.tnorm)
            .with_kill_threshold(config.kill_threshold);
        let mut pool = AssumptionPool::new();
        let mut comp_assumptions = Vec::with_capacity(netlist.component_count());
        for (_, comp) in netlist.components() {
            let a = atms.add_assumption(comp.name());
            // The intern must run in release builds too — the pool is what
            // names every env in reports.
            let interned = pool.intern(comp.name());
            debug_assert_eq!(a, interned);
            comp_assumptions.push(a);
        }
        let mut conn_assumptions = vec![None; netlist.net_count()];
        for constraint in network.constraints() {
            if let Some(net) = constraint.conn {
                if conn_assumptions[net.index()].is_none() {
                    let name = format!("conn:{}", netlist.net_name(net));
                    let a = atms.add_assumption(&name);
                    let interned = pool.intern(&name);
                    debug_assert_eq!(a, interned);
                    conn_assumptions[net.index()] = Some(a);
                }
            }
        }
        let constraint_envs: Vec<Env> = network
            .constraints()
            .iter()
            .map(|c| {
                let mut env =
                    Env::from_assumptions(c.support.iter().map(|s| comp_assumptions[s.index()]));
                if let Some(net) = c.conn {
                    if let Some(a) = conn_assumptions[net.index()] {
                        env = env.with(a);
                    }
                }
                env
            })
            .collect();
        let mut prop = Self {
            network,
            config,
            entries: vec![Vec::new(); network.quantity_count()],
            atms,
            pool,
            comp_assumptions,
            conn_assumptions,
            coincidences: Vec::new(),
            disabled_constraints: network
                .constraints()
                .iter()
                .map(|c| c.support.iter().any(|s| excused.contains(s)))
                .collect(),
            constraint_envs,
            consumers: network.quantity_consumers(),
        };
        for seed in network.seeds() {
            if seed.support.iter().any(|c| unknown.contains(c)) {
                continue;
            }
            let env = prop.env_of_comps(&seed.support);
            prop.insert(seed.quantity, seed.value, env, 1.0, false);
        }
        prop
    }

    /// The assumption standing for "component `comp` (by netlist index)
    /// behaves correctly".
    ///
    /// # Panics
    ///
    /// Panics for an out-of-range component index.
    #[must_use]
    pub fn component_assumption(&self, comp_index: usize) -> Assumption {
        self.comp_assumptions[comp_index]
    }

    /// The connection assumption of a net, if it has Kirchhoff constraints.
    #[must_use]
    pub fn connection_assumption(&self, net: Net) -> Option<Assumption> {
        self.conn_assumptions.get(net.index()).copied().flatten()
    }

    /// Human-readable name of an assumption.
    #[must_use]
    pub fn assumption_name(&self, a: Assumption) -> &str {
        self.pool.name(a).unwrap_or("?")
    }

    /// The assumption vocabulary.
    #[must_use]
    pub fn pool(&self) -> &AssumptionPool {
        &self.pool
    }

    /// The underlying fuzzy ATMS (nogoods, suspicion, diagnoses).
    #[must_use]
    pub fn atms(&self) -> &FuzzyAtms {
        &self.atms
    }

    /// All coincidences recorded so far.
    #[must_use]
    pub fn coincidences(&self) -> &[CoincidenceRecord] {
        &self.coincidences
    }

    /// Current value entries of a quantity.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownQuantity`] for a foreign id.
    pub fn entries(&self, q: QuantityId) -> Result<&[ValueEntry]> {
        self.entries
            .get(q.index())
            .map(Vec::as_slice)
            .ok_or(CoreError::UnknownQuantity { index: q.index() })
    }

    /// The tightest (smallest-support) value of a quantity, if any.
    #[must_use]
    pub fn best_value(&self, q: QuantityId) -> Option<&ValueEntry> {
        self.entries.get(q.index())?.iter().min_by(|a, b| {
            a.value
                .support_width()
                .partial_cmp(&b.value.support_width())
                .expect("finite widths")
        })
    }

    /// Enters a *measurement* for a quantity (premise environment,
    /// degree 1, measurement-rooted).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownQuantity`] for a foreign id.
    pub fn observe(&mut self, q: QuantityId, value: FuzzyInterval) -> Result<()> {
        self.check(q)?;
        self.insert(q, value, Env::empty(), 1.0, true);
        Ok(())
    }

    /// Enters a *predicted* value under the correctness assumptions of
    /// `support` (netlist component indices) — the model-database entry
    /// point for test-point predictions.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownQuantity`] for a foreign id.
    pub fn predict(
        &mut self,
        q: QuantityId,
        value: FuzzyInterval,
        support: &[flames_circuit::CompId],
        degree: f64,
    ) -> Result<()> {
        self.check(q)?;
        let env = self.env_of_comps(support);
        self.insert(q, value, env, degree.clamp(f64::MIN_POSITIVE, 1.0), false);
        Ok(())
    }

    /// Installs an external graded nogood (e.g. from a fault-model rule).
    pub fn add_nogood(&mut self, env: Env, degree: f64) {
        self.atms.add_nogood(env, degree);
    }

    /// Runs constraint propagation to quiescence (bounded by
    /// [`PropagatorConfig::max_steps`]), then grades every spec condition.
    ///
    /// Returns the number of constraint applications performed.
    pub fn run(&mut self) -> usize {
        // All constraints are initially dirty.
        let mut steps = 0usize;
        let n = self.network.constraints().len();
        let mut queue: VecDeque<usize> = (0..n).collect();
        let mut queued: Vec<bool> = vec![true; n];
        let mut wake: Vec<u32> = Vec::new();
        while let Some(ci) = queue.pop_front() {
            queued[ci] = false;
            if steps >= self.config.max_steps {
                break;
            }
            if self.disabled_constraints[ci] {
                continue;
            }
            steps += 1;
            let changed = self.apply_constraint(ci);
            if !changed.is_empty() {
                // Requeue exactly the consumers of the changed quantities,
                // in constraint-index order (matching a full rescan).
                wake.clear();
                for &qi in &changed {
                    wake.extend_from_slice(&self.consumers[qi]);
                }
                wake.sort_unstable();
                wake.dedup();
                for &cj in &wake {
                    let cj = cj as usize;
                    if !queued[cj] {
                        queue.push_back(cj);
                        queued[cj] = true;
                    }
                }
            }
        }
        self.grade_specs();
        steps
    }

    // ----- internals -------------------------------------------------

    fn check(&self, q: QuantityId) -> Result<()> {
        if q.index() < self.entries.len() {
            Ok(())
        } else {
            Err(CoreError::UnknownQuantity { index: q.index() })
        }
    }

    fn env_of_comps(&self, comps: &[flames_circuit::CompId]) -> Env {
        Env::from_assumptions(comps.iter().map(|c| self.comp_assumptions[c.index()]))
    }

    /// Applies one constraint in every invertible direction; returns the
    /// indices of quantities whose labels changed.
    fn apply_constraint(&mut self, ci: usize) -> Vec<usize> {
        let network = self.network;
        let relation = &network.constraints()[ci].relation;
        let tnorm = self.config.tnorm;
        let mut changed = Vec::new();
        match *relation {
            Relation::Linear { ref terms, bias } => {
                let mut others: Vec<(f64, QuantityId)> = Vec::new();
                let mut qs: Vec<QuantityId> = Vec::new();
                let mut derived: Vec<(FuzzyInterval, Env, f64, bool)> = Vec::new();
                for (target_idx, &(target_coef, target_q)) in terms.iter().enumerate() {
                    others.clear();
                    others.extend(
                        terms
                            .iter()
                            .enumerate()
                            .filter(|&(j, _)| j != target_idx)
                            .map(|(_, &t)| t),
                    );
                    qs.clear();
                    qs.extend(others.iter().map(|&(_, q)| q));
                    derived.clear();
                    {
                        let base_env = &self.constraint_envs[ci];
                        let others = &others;
                        let out = &mut derived;
                        self.each_combo(&qs, |row| {
                            // target = −(bias + Σ coef_j · v_j) / coef.
                            let mut sum = FuzzyInterval::crisp(bias);
                            let mut env = base_env.clone();
                            let mut degree = 1.0;
                            let mut measured = false;
                            for (&(coef, _), entry) in others.iter().zip(row) {
                                sum = sum + entry.value.scaled(coef);
                                env.union_with(&entry.env);
                                degree = tnorm.combine(degree, entry.degree);
                                measured |= entry.measured;
                            }
                            out.push((sum.scaled(-1.0 / target_coef), env, degree, measured));
                        });
                    }
                    for (value, env, degree, measured) in derived.drain(..) {
                        if self.insert(target_q, value, env, degree, measured) {
                            changed.push(target_q.index());
                        }
                    }
                }
            }
            Relation::Product { p, x, y } => {
                // p = x · y, x = p / y and y = p / x.
                self.derive_pairs(ci, p, x, y, |a, b| a.mul(b).ok(), &mut changed);
                self.derive_pairs(ci, x, p, y, |a, b| a.div(b).ok(), &mut changed);
                self.derive_pairs(ci, y, p, x, |a, b| a.div(b).ok(), &mut changed);
            }
        }
        changed.sort_unstable();
        changed.dedup();
        changed
    }

    /// Derives `target` from every entry pair of `(a, b)` through `op`,
    /// inserting the results under the constraint's cached base
    /// environment.
    fn derive_pairs(
        &mut self,
        ci: usize,
        target: QuantityId,
        a: QuantityId,
        b: QuantityId,
        op: impl Fn(&FuzzyInterval, &FuzzyInterval) -> Option<FuzzyInterval>,
        changed: &mut Vec<usize>,
    ) {
        let tnorm = self.config.tnorm;
        let mut derived: Vec<(FuzzyInterval, Env, f64, bool)> = Vec::new();
        {
            let base_env = &self.constraint_envs[ci];
            let out = &mut derived;
            self.each_combo(&[a, b], |row| {
                if let Some(value) = op(&row[0].value, &row[1].value) {
                    let mut env = base_env.clone();
                    env.union_with(&row[0].env);
                    env.union_with(&row[1].env);
                    let degree = tnorm.combine(row[0].degree, row[1].degree);
                    out.push((value, env, degree, row[0].measured || row[1].measured));
                }
            });
        }
        for (value, env, degree, measured) in derived {
            if self.insert(target, value, env, degree, measured) {
                changed.push(target.index());
            }
        }
    }

    /// Invokes `f` on each cartesian combination of the current entries of
    /// `qs` — by reference, no entry cloning. Combinations enumerate in
    /// lexicographic order with the last quantity varying fastest, capped
    /// at `COMBO_CAP` rows (the same first-64 prefix the cloning
    /// implementation produced). With `qs` empty, `f` sees one empty row.
    fn each_combo<'s>(&'s self, qs: &[QuantityId], mut f: impl FnMut(&[&'s ValueEntry])) {
        const COMBO_CAP: usize = 64;
        let lists: Vec<&[ValueEntry]> = qs
            .iter()
            .map(|q| self.entries[q.index()].as_slice())
            .collect();
        if lists.iter().any(|l| l.is_empty()) {
            return;
        }
        let mut idx = vec![0usize; lists.len()];
        let mut row: Vec<&ValueEntry> = lists.iter().map(|l| &l[0]).collect();
        for _ in 0..COMBO_CAP {
            f(&row);
            // Odometer increment, last position fastest.
            let mut k = lists.len();
            loop {
                if k == 0 {
                    return;
                }
                k -= 1;
                idx[k] += 1;
                if idx[k] < lists[k].len() {
                    row[k] = &lists[k][idx[k]];
                    break;
                }
                idx[k] = 0;
                row[k] = &lists[k][0];
            }
        }
    }

    /// Records a value for a quantity, running the Fig. 4 coincidence
    /// resolution against every held entry. Returns whether the label
    /// changed.
    fn insert(
        &mut self,
        q: QuantityId,
        value: FuzzyInterval,
        env: Env,
        degree: f64,
        measured: bool,
    ) -> bool {
        // Environments already erased by a killing nogood derive nothing.
        if self.atms.plausibility(&env) <= 0.0 {
            return false;
        }
        let incoming = ValueEntry {
            value,
            env,
            degree,
            measured,
        };
        let list = &self.entries[q.index()];

        // Coincidence resolution against existing entries (Fig. 4):
        // inclusion is a split (refinement), overlapping cores a
        // corroboration, and anything else a conflict graded by the
        // *possibility of agreement* `π = sup min(μ₁, μ₂)` — the
        // possibilistic-ATMS reading of the paper's partial conflicts.
        // (The asymmetric area-based Dc is reserved for the
        // measured-vs-nominal test-point comparison in the engine.)
        let mut dominated = false;
        for existing in list {
            // Orient the record: the measurement side plays Vm.
            let (vm, vn) = if existing.measured && !incoming.measured {
                (&existing.value, &incoming.value)
            } else {
                (&incoming.value, &existing.value)
            };
            let nested = incoming.value.is_included_in(&existing.value)
                || existing.value.is_included_in(&incoming.value);
            let pi = vm.possibility_of(vn);
            let conflict = if nested { 0.0 } else { 1.0 - pi };
            let kind = if conflict <= self.config.conflict_threshold {
                if nested && incoming.value != existing.value {
                    CoincidenceKind::Split
                } else {
                    CoincidenceKind::Corroboration
                }
            } else if pi <= 0.0 {
                CoincidenceKind::TotalConflict
            } else {
                CoincidenceKind::PartialConflict
            };
            if matches!(
                kind,
                CoincidenceKind::PartialConflict | CoincidenceKind::TotalConflict
            ) {
                let direction = if vm.centroid() < vn.centroid() {
                    flames_fuzzy::Direction::Low
                } else {
                    flames_fuzzy::Direction::High
                };
                let nogood_degree = self.config.tnorm.combine(
                    conflict,
                    self.config.tnorm.combine(incoming.degree, existing.degree),
                );
                let union_env = incoming.env.union(&existing.env);
                self.coincidences.push(CoincidenceRecord {
                    quantity: q,
                    kind,
                    consistency: Consistency::from_parts(pi, direction),
                    env: union_env.clone(),
                });
                self.atms.add_nogood(union_env, nogood_degree);
            }
            // Dominance: an existing entry that is at least as general
            // (subset environment), at least as certain, and at least as
            // tight — or within the tightening threshold — makes the
            // incoming value redundant. The threshold is what keeps
            // fixpoint iteration from churning on infinitesimal
            // refinements.
            if existing.env.is_subset_of(&incoming.env)
                && existing.degree >= incoming.degree - 1e-12
            {
                let meaningful = incoming.value.support_width()
                    <= existing.value.support_width() * (1.0 - self.config.min_tightening);
                if existing.value.is_included_in(&incoming.value)
                    || (!meaningful && incoming.value.is_included_in(&existing.value))
                {
                    dominated = true;
                }
            }
        }
        if dominated {
            return false;
        }
        let list = &mut self.entries[q.index()];
        // Drop entries the incoming one meaningfully improves on.
        let min_tightening = self.config.min_tightening;
        let before = list.len();
        list.retain(|e| {
            !(incoming.env.is_subset_of(&e.env)
                && incoming.degree >= e.degree - 1e-12
                && incoming.value.is_included_in(&e.value)
                && incoming.value.support_width()
                    <= e.value.support_width() * (1.0 - min_tightening))
        });
        let dropped = before - list.len();
        if list.len() >= self.config.max_entries {
            // The label is full: the incoming value may still replace the
            // widest held entry if it is strictly tighter. (The raw
            // measurement is always the narrowest entry, so it can never
            // be evicted by derived values.) This keeps the cap from
            // making results order-dependent — a late probe or a tight
            // conditional derivation must never bounce off stale wide
            // values.
            let widest = list
                .iter()
                .enumerate()
                .max_by(|(_, a), (_, b)| {
                    a.value
                        .support_width()
                        .partial_cmp(&b.value.support_width())
                        .expect("finite widths")
                })
                .map(|(i, e)| (i, e.value.support_width()));
            match widest {
                Some((i, width)) if incoming.value.support_width() < width => {
                    list[i] = incoming;
                    return true;
                }
                _ => return dropped > 0,
            }
        }
        list.push(incoming);
        true
    }

    /// Grades every spec condition against the current best value of its
    /// quantity; violations raise nogoods over spec support ∪ value env.
    fn grade_specs(&mut self) {
        let network = self.network;
        for spec in network.specs() {
            let Some(best) = self.best_value(spec.quantity) else {
                continue;
            };
            let satisfaction = best.value.satisfaction_of(&spec.condition);
            let violation = 1.0 - satisfaction;
            if violation <= self.config.conflict_threshold {
                continue;
            }
            let best_degree = best.degree;
            let mut env = best.env.clone();
            env.union_with(&self.env_of_comps(&spec.support));
            self.coincidences.push(CoincidenceRecord {
                quantity: spec.quantity,
                kind: if satisfaction <= 0.0 {
                    CoincidenceKind::TotalConflict
                } else {
                    CoincidenceKind::PartialConflict
                },
                consistency: Consistency::from_parts(satisfaction, flames_fuzzy::Direction::High),
                env: env.clone(),
            });
            self.atms
                .add_nogood(env, self.config.tnorm.combine(violation, best_degree));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flames_circuit::constraint::{extract, ExtractOptions};

    /// vin —R1— mid —R2— gnd divider network.
    fn divider(tol: f64) -> (Netlist, Network) {
        let mut nl = Netlist::new();
        let vin = nl.add_net("vin");
        let mid = nl.add_net("mid");
        nl.add_voltage_source("V", vin, Net::GROUND, 10.0).unwrap();
        nl.add_resistor("R1", vin, mid, 1000.0, tol).unwrap();
        nl.add_resistor("R2", mid, Net::GROUND, 1000.0, tol)
            .unwrap();
        let network = extract(&nl, ExtractOptions::default());
        (nl, network)
    }

    #[test]
    fn seeds_are_loaded() {
        let (nl, network) = divider(0.05);
        let prop = Propagator::new(&nl, &network, PropagatorConfig::default());
        let vg = network.voltage_quantity(Net::GROUND);
        let entries = prop.entries(vg).unwrap();
        assert_eq!(entries.len(), 1);
        assert!(entries[0].value.is_point());
        assert!(entries[0].env.is_empty());
    }

    #[test]
    fn healthy_divider_propagates_and_corroborates() {
        let (nl, network) = divider(0.05);
        let mut prop = Propagator::new(&nl, &network, PropagatorConfig::default());
        let mid = nl.net_by_name("mid").unwrap();
        let vq = network.voltage_quantity(mid);
        // Measure the true mid voltage with a little imprecision.
        prop.observe(vq, FuzzyInterval::crisp(5.0).widened(0.05).unwrap())
            .unwrap();
        prop.run();
        assert!(
            prop.atms().nogoods().is_empty(),
            "healthy board: no conflicts"
        );
        // The engine derives the mid voltage from the model too.
        let best = prop.best_value(vq).unwrap();
        assert!(best.value.membership(5.0) > 0.0);
    }

    #[test]
    fn shifted_measurement_raises_graded_nogood() {
        let (nl, network) = divider(0.05);
        let mut prop = Propagator::new(&nl, &network, PropagatorConfig::default());
        let mid = nl.net_by_name("mid").unwrap();
        let vq = network.voltage_quantity(mid);
        // Slightly off: a soft fault somewhere.
        prop.observe(vq, FuzzyInterval::crisp(5.4).widened(0.05).unwrap())
            .unwrap();
        prop.run();
        let nogoods = prop.atms().nogoods();
        assert!(
            !nogoods.is_empty(),
            "5.4 V against ~5±tolerances must conflict"
        );
        // The conflict implicates the divider resistors, not the source alone.
        let r1 = prop.component_assumption(nl.component_by_name("R1").unwrap().index());
        let r2 = prop.component_assumption(nl.component_by_name("R2").unwrap().index());
        assert!(nogoods
            .iter()
            .any(|n| n.env.contains(r1) || n.env.contains(r2)));
    }

    #[test]
    fn hard_fault_raises_total_conflict() {
        let (nl, network) = divider(0.05);
        let mut prop = Propagator::new(&nl, &network, PropagatorConfig::default());
        let mid = nl.net_by_name("mid").unwrap();
        let vq = network.voltage_quantity(mid);
        prop.observe(vq, FuzzyInterval::crisp(9.99).widened(0.02).unwrap())
            .unwrap();
        prop.run();
        let max_degree = prop
            .atms()
            .nogoods()
            .iter()
            .map(|n| n.degree)
            .fold(0.0, f64::max);
        assert!(
            max_degree >= 0.99,
            "a near-rail reading is a total conflict"
        );
        assert!(prop
            .coincidences()
            .iter()
            .any(|c| c.kind == CoincidenceKind::TotalConflict));
    }

    #[test]
    fn soft_fault_conflict_is_graded_below_one() {
        let (nl, network) = divider(0.05);
        let mut prop = Propagator::new(&nl, &network, PropagatorConfig::default());
        let mid = nl.net_by_name("mid").unwrap();
        let vq = network.voltage_quantity(mid);
        // Just at the edge of tolerance: partial conflict expected.
        prop.observe(vq, FuzzyInterval::crisp(5.3).widened(0.15).unwrap())
            .unwrap();
        prop.run();
        assert!(prop
            .coincidences()
            .iter()
            .any(|c| c.kind == CoincidenceKind::PartialConflict));
        let has_partial = prop
            .atms()
            .nogoods()
            .iter()
            .any(|n| n.degree > 0.02 && n.degree < 1.0);
        assert!(has_partial, "graded nogood expected");
    }

    #[test]
    fn diagnoses_point_at_divider_components() {
        let (nl, network) = divider(0.05);
        let mut prop = Propagator::new(&nl, &network, PropagatorConfig::default());
        let mid = nl.net_by_name("mid").unwrap();
        let vq = network.voltage_quantity(mid);
        prop.observe(vq, FuzzyInterval::crisp(7.0).widened(0.05).unwrap())
            .unwrap();
        prop.run();
        let diags = prop.atms().ranked_diagnoses(2, 100);
        assert!(!diags.is_empty());
        // Single-component candidates must be among R1, R2, V or a
        // connection — never empty.
        let names: Vec<String> = diags
            .iter()
            .flat_map(|d| d.env.iter().map(|a| prop.assumption_name(a).to_owned()))
            .collect();
        assert!(names.iter().any(|n| n == "R1" || n == "R2"));
    }

    #[test]
    fn unknown_quantity_is_reported() {
        let (nl, network) = divider(0.05);
        let mut prop = Propagator::new(&nl, &network, PropagatorConfig::default());
        let bogus = flames_circuit::constraint::QuantityId::from_raw(network.quantity_count() + 5);
        let res = prop.observe(bogus, FuzzyInterval::crisp(0.0));
        assert!(matches!(res, Err(CoreError::UnknownQuantity { .. })));
        assert!(prop.entries(bogus).is_err());
    }

    #[test]
    fn observe_then_rerun_is_incremental() {
        let (nl, network) = divider(0.05);
        let mut prop = Propagator::new(&nl, &network, PropagatorConfig::default());
        let vin = nl.net_by_name("vin").unwrap();
        let mid = nl.net_by_name("mid").unwrap();
        prop.observe(
            network.voltage_quantity(vin),
            FuzzyInterval::crisp(10.0).widened(0.01).unwrap(),
        )
        .unwrap();
        prop.run();
        let before = prop.atms().nogoods().len();
        prop.observe(
            network.voltage_quantity(mid),
            FuzzyInterval::crisp(5.0).widened(0.05).unwrap(),
        )
        .unwrap();
        prop.run();
        assert_eq!(prop.atms().nogoods().len(), before, "still healthy");
    }
}
