//! Dynamic-mode diagnosis — the paper's §9 "tried on different kinds and
//! sizes of circuits, **either in dynamic mode or in static one**".
//!
//! In dynamic mode the observables are small-signal **amplitudes** at
//! `(test point, frequency)` pairs. Reactive faults (a shifted pole, a
//! cracked coupling capacitor) are invisible at DC but move the frequency
//! response; the same FLAMES machinery applies:
//!
//! * fuzzy predictions per probe come from tolerance-corner AC analyses
//!   (the dynamic analog of [`flames_circuit::predict::nominal_predictions`]);
//! * a measured amplitude is compared with its prediction through the
//!   asymmetric degree of consistency `Dc`;
//! * conflicts become graded nogoods over the probe's dependency cone in
//!   a fuzzy ATMS, and candidates come out ranked.
//!
//! Dynamic mode reasons at the stage level (prediction vs measurement per
//! probe); value propagation *through* reactive constraint models would
//! require complex-valued fuzzy arithmetic, which the paper does not
//! describe either.

use crate::engine::Candidate;
use crate::Result;
use flames_atms::{Assumption, AssumptionPool, Env, FuzzyAtms, RankedDiagnosis};
use flames_circuit::ac::solve_ac;
use flames_circuit::fault::inject_faults;
use flames_circuit::{CompId, Fault, Net, Netlist};
use flames_fuzzy::{Consistency, FuzzyInterval};
use std::fmt;

/// What an AC probe reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AcObservable {
    /// The magnitude of the node phasor (volts), the default.
    #[default]
    Amplitude,
    /// The phase of the node phasor in degrees. Phase probes discriminate
    /// pole shifts even where the magnitude barely moves (a single-pole
    /// corner moves the phase by 45°). Values are taken in (−180°, 180°];
    /// responses wrapping across ±180° within the tolerance corners are
    /// not handled and should be probed at a different frequency.
    PhaseDegrees,
}

/// An AC probe: an amplitude or phase measurement at one net and one
/// frequency.
#[derive(Debug, Clone, PartialEq)]
pub struct AcProbe {
    /// Display name (`"out@10kHz"`).
    pub name: String,
    /// The probed net.
    pub net: Net,
    /// The stimulus frequency in hertz.
    pub freq_hz: f64,
    /// What is read at the probe.
    pub observable: AcObservable,
    /// Components whose correctness the predicted value rests on.
    pub support: Vec<CompId>,
    /// Relative probing cost.
    pub cost: f64,
}

impl AcProbe {
    /// Creates an amplitude probe with unit cost.
    #[must_use]
    pub fn new(net: Net, freq_hz: f64, name: impl Into<String>, support: Vec<CompId>) -> Self {
        Self {
            name: name.into(),
            net,
            freq_hz,
            observable: AcObservable::Amplitude,
            support,
            cost: 1.0,
        }
    }

    /// Creates a phase probe (degrees) with unit cost.
    #[must_use]
    pub fn phase(net: Net, freq_hz: f64, name: impl Into<String>, support: Vec<CompId>) -> Self {
        Self {
            name: name.into(),
            net,
            freq_hz,
            observable: AcObservable::PhaseDegrees,
            support,
            cost: 1.0,
        }
    }
}

/// The dynamic-mode diagnoser: fuzzy amplitude predictions for a set of
/// AC probes on one circuit.
#[derive(Debug, Clone)]
pub struct AcDiagnoser {
    netlist: Netlist,
    input: CompId,
    amplitude: f64,
    probes: Vec<AcProbe>,
    predictions: Vec<FuzzyInterval>,
}

impl AcDiagnoser {
    /// Builds the diagnoser: for every probe, the nominal AC solve gives
    /// the prediction core and one-at-a-time tolerance corners give the
    /// (conservatively summed) spreads.
    ///
    /// # Errors
    ///
    /// Propagates AC-solver failures from the nominal or corner solves.
    pub fn new(
        netlist: &Netlist,
        input: CompId,
        amplitude: f64,
        probes: Vec<AcProbe>,
    ) -> Result<Self> {
        let mut lo = vec![0.0f64; probes.len()];
        let mut hi = vec![0.0f64; probes.len()];
        let observe = |sol: &flames_circuit::ac::AcSolution, probe: &AcProbe| match probe.observable
        {
            AcObservable::Amplitude => sol.amplitude(probe.net),
            AcObservable::PhaseDegrees => sol.phase(probe.net).to_degrees(),
        };
        let mut nominal = Vec::with_capacity(probes.len());
        for probe in &probes {
            let sol = solve_ac(netlist, input, amplitude, probe.freq_hz)?;
            nominal.push(observe(&sol, probe));
        }
        for (id, comp) in netlist.components() {
            let tol = comp.tolerance();
            if tol <= 0.0 {
                continue;
            }
            let plus = inject_faults(netlist, &[(id, Fault::ParamFactor(1.0 + tol))])?;
            let minus = inject_faults(netlist, &[(id, Fault::ParamFactor(1.0 - tol))])?;
            for (k, probe) in probes.iter().enumerate() {
                let sol_plus = solve_ac(&plus, input, amplitude, probe.freq_hz)?;
                let sol_minus = solve_ac(&minus, input, amplitude, probe.freq_hz)?;
                let d1 = observe(&sol_plus, probe) - nominal[k];
                let d2 = observe(&sol_minus, probe) - nominal[k];
                hi[k] += d1.max(d2).max(0.0);
                lo[k] += (-d1).max(-d2).max(0.0);
            }
        }
        let predictions = probes
            .iter()
            .enumerate()
            .map(|(k, _)| {
                FuzzyInterval::new(nominal[k], nominal[k], lo[k], hi[k])
                    .expect("corner spreads are non-negative")
            })
            .collect();
        Ok(Self {
            netlist: netlist.clone(),
            input,
            amplitude,
            probes,
            predictions,
        })
    }

    /// The declared probes.
    #[must_use]
    pub fn probes(&self) -> &[AcProbe] {
        &self.probes
    }

    /// The fuzzy amplitude prediction of a probe (by index).
    ///
    /// # Panics
    ///
    /// Panics for an out-of-range index.
    #[must_use]
    pub fn prediction(&self, probe: usize) -> &FuzzyInterval {
        &self.predictions[probe]
    }

    /// Reads a probe on a (possibly faulty) board and wraps it in an
    /// instrument imprecision: for amplitude probes
    /// `rel_imprecision × |reading|`, for phase probes
    /// `rel_imprecision × 180°`.
    ///
    /// # Errors
    ///
    /// Propagates AC-solver failures.
    pub fn read_probe(
        &self,
        board: &Netlist,
        probe: usize,
        rel_imprecision: f64,
    ) -> Result<FuzzyInterval> {
        let p = &self.probes[probe];
        let sol = solve_ac(board, self.input, self.amplitude, p.freq_hz)?;
        let (value, scale) = match p.observable {
            AcObservable::Amplitude => {
                let amp = sol.amplitude(p.net);
                (amp, amp.abs().max(1e-12))
            }
            AcObservable::PhaseDegrees => (sol.phase(p.net).to_degrees(), 180.0),
        };
        Ok(FuzzyInterval::crisp(value)
            .widened(rel_imprecision * scale)
            .expect("non-negative imprecision"))
    }

    /// Opens a fresh dynamic-mode session.
    #[must_use]
    pub fn session(&self) -> AcSession<'_> {
        let mut atms = FuzzyAtms::new();
        let mut pool = AssumptionPool::new();
        let mut comp_assumptions = Vec::with_capacity(self.netlist.component_count());
        for (_, comp) in self.netlist.components() {
            let a = atms.add_assumption(comp.name());
            // The intern must run in release builds too — the pool is what
            // names every env in reports.
            let interned = pool.intern(comp.name());
            debug_assert_eq!(a, interned);
            comp_assumptions.push(a);
        }
        AcSession {
            diagnoser: self,
            atms,
            pool,
            comp_assumptions,
            measured: vec![None; self.probes.len()],
        }
    }
}

/// One dynamic-mode diagnosis run.
#[derive(Debug, Clone)]
pub struct AcSession<'d> {
    diagnoser: &'d AcDiagnoser,
    atms: FuzzyAtms,
    pool: AssumptionPool,
    comp_assumptions: Vec<Assumption>,
    measured: Vec<Option<FuzzyInterval>>,
}

impl AcSession<'_> {
    /// Records a measured amplitude at a probe (by name): computes
    /// `Dc(measured, predicted)` and, on conflict, installs a graded
    /// nogood over the probe's cone.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CoreError::UnknownName`] for an unknown probe.
    pub fn measure(&mut self, probe: &str, value: FuzzyInterval) -> Result<()> {
        let idx = self
            .diagnoser
            .probes
            .iter()
            .position(|p| p.name == probe)
            .ok_or_else(|| crate::CoreError::UnknownName {
                name: probe.to_owned(),
            })?;
        self.measured[idx] = Some(value);
        let dc = Consistency::between(&value, &self.diagnoser.predictions[idx]);
        let conflict = dc.conflict_degree();
        if conflict > 0.0 {
            let env = Env::from_assumptions(
                self.diagnoser.probes[idx]
                    .support
                    .iter()
                    .map(|c| self.comp_assumptions[c.index()]),
            );
            self.atms.add_nogood(env, conflict);
        }
        Ok(())
    }

    /// `Dc(measured, predicted)` of a probed point.
    #[must_use]
    pub fn consistency(&self, probe: &str) -> Option<Consistency> {
        let idx = self.diagnoser.probes.iter().position(|p| p.name == probe)?;
        let measured = self.measured[idx]?;
        Some(Consistency::between(
            &measured,
            &self.diagnoser.predictions[idx],
        ))
    }

    /// Ranked candidates over the graded nogoods.
    #[must_use]
    pub fn candidates(&self, max_size: usize, max_count: usize) -> Vec<Candidate> {
        self.atms
            .ranked_diagnoses(max_size, max_count)
            .into_iter()
            .map(|RankedDiagnosis { env, degree }| Candidate {
                members: env
                    .iter()
                    .map(|a| self.pool.name(a).unwrap_or("?").to_owned())
                    .collect(),
                env,
                degree,
            })
            .collect()
    }

    /// Refined single-fault candidates, mirroring the static engine's
    /// scheme: nogoods below `rho × max_degree` are filtered, the members
    /// of the most specific strong conflicts are scored by suspicion
    /// discounted with the `Dc` of the most specific consistent probe
    /// covering them.
    #[must_use]
    pub fn refined_candidates(&self, max_count: usize, rho: f64) -> Vec<Candidate> {
        let nogoods = self.atms.nogoods();
        let max_degree = nogoods.iter().map(|n| n.degree).fold(0.0, f64::max);
        if max_degree <= 0.0 {
            return Vec::new();
        }
        let cut = rho.clamp(0.0, 1.0) * max_degree;
        let strong: Vec<&flames_atms::Nogood> =
            nogoods.iter().filter(|n| n.degree >= cut).collect();
        let min_size = strong.iter().map(|n| n.env.len()).min().unwrap_or(0);
        let mut members: Vec<Assumption> = strong
            .iter()
            .filter(|n| n.env.len() == min_size)
            .flat_map(|n| n.env.iter())
            .collect();
        members.sort();
        members.dedup();
        let mut out: Vec<Candidate> = members
            .into_iter()
            .map(|a| {
                let degree = self.atms.suspicion(a) * (1.0 - self.exoneration(a));
                Candidate {
                    members: vec![self.pool.name(a).unwrap_or("?").to_owned()],
                    env: Env::singleton(a),
                    degree,
                }
            })
            .collect();
        out.sort_by(|p, q| {
            q.degree
                .partial_cmp(&p.degree)
                .expect("finite degrees")
                .then_with(|| p.env.cmp(&q.env))
        });
        out.truncate(max_count);
        out
    }

    /// Dc-based exoneration: the consistency of the most specific probed
    /// probe whose cone covers the assumption (best overall Dc when no
    /// cone does).
    fn exoneration(&self, a: Assumption) -> f64 {
        let mut best: Option<(usize, f64)> = None;
        let mut any_dc: f64 = 0.0;
        for (idx, probe) in self.diagnoser.probes.iter().enumerate() {
            let Some(measured) = self.measured[idx] else {
                continue;
            };
            let dc = Consistency::between(&measured, &self.diagnoser.predictions[idx]).degree();
            any_dc = any_dc.max(dc);
            let covers = probe
                .support
                .iter()
                .any(|c| self.comp_assumptions[c.index()] == a);
            if covers {
                let cone = probe.support.len();
                if best.is_none_or(|(sz, _)| cone < sz) {
                    best = Some((cone, dc));
                }
            }
        }
        best.map_or(any_dc, |(_, dc)| dc)
    }

    /// The underlying fuzzy ATMS.
    #[must_use]
    pub fn atms(&self) -> &FuzzyAtms {
        &self.atms
    }

    /// Which probes have been taken so far (by index).
    #[must_use]
    pub fn probed(&self) -> Vec<bool> {
        self.measured.iter().map(Option::is_some).collect()
    }

    /// Fuzzy faultiness estimations per component (suspicion-based, with
    /// Dc exoneration), mirroring the static engine's §8.1 estimations.
    #[must_use]
    pub fn estimations(&self) -> Vec<FuzzyInterval> {
        self.comp_assumptions
            .iter()
            .map(|&a| {
                let s = self.atms.suspicion(a);
                if s > 0.0 {
                    let lo = (s - 0.1).max(0.0);
                    let hi = (s + 0.05).min(1.0);
                    FuzzyInterval::new(lo, hi, lo.min(0.05), (1.0 - hi).min(0.05))
                        .expect("estimation inside unit interval")
                } else if self.exoneration(a) >= 1.0 {
                    FuzzyInterval::new(0.0, 0.05, 0.0, 0.05).expect("static")
                } else {
                    FuzzyInterval::new(0.3, 0.5, 0.1, 0.1).expect("static")
                }
            })
            .collect()
    }

    /// Recommends the next best AC probe by expected fuzzy entropy (§8),
    /// ranked best first; `lambda_cost` weighs the probing cost in.
    /// Probed points are skipped.
    #[must_use]
    pub fn recommend(&self, lambda_cost: f64) -> Vec<(usize, f64)> {
        use flames_fuzzy::entropy::{expected_entropy, fuzzy_entropy};
        let estimations = self.estimations();
        let exonerated = FuzzyInterval::new(0.0, 0.05, 0.0, 0.05).expect("static");
        let suspect = FuzzyInterval::new(0.6, 0.8, 0.1, 0.1).expect("static");
        let mut out = Vec::new();
        for (idx, probe) in self.diagnoser.probes.iter().enumerate() {
            if self.measured[idx].is_some() {
                continue;
            }
            let in_cone: Vec<bool> = self
                .comp_assumptions
                .iter()
                .enumerate()
                .map(|(k, _)| probe.support.iter().any(|c| c.index() == k))
                .collect();
            let post_cons: Vec<FuzzyInterval> = estimations
                .iter()
                .enumerate()
                .map(|(k, e)| if in_cone[k] { exonerated } else { *e })
                .collect();
            let post_dev: Vec<FuzzyInterval> = estimations
                .iter()
                .enumerate()
                .map(|(k, e)| if in_cone[k] { e.max_ext(&suspect) } else { *e })
                .collect();
            let ent_cons = fuzzy_entropy(&post_cons).unwrap_or_else(|_| FuzzyInterval::crisp(0.0));
            let ent_dev = fuzzy_entropy(&post_dev).unwrap_or_else(|_| FuzzyInterval::crisp(0.0));
            let total_mass: f64 = estimations.iter().map(FuzzyInterval::centroid).sum();
            let cone_mass: f64 = estimations
                .iter()
                .enumerate()
                .filter(|(k, _)| in_cone[*k])
                .map(|(_, e)| e.centroid())
                .sum();
            let w_dev = if total_mass > 0.0 {
                (cone_mass / total_mass).clamp(0.05, 0.95)
            } else {
                0.5
            };
            let expected = expected_entropy(&[(1.0 - w_dev, ent_cons), (w_dev, ent_dev)]);
            out.push((idx, expected.centroid() + lambda_cost * probe.cost));
        }
        out.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite scores"));
        out
    }
}

impl fmt::Display for AcSession<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "probes:")?;
        for (idx, probe) in self.diagnoser.probes.iter().enumerate() {
            match self.measured[idx] {
                Some(m) => {
                    let dc = Consistency::between(&m, &self.diagnoser.predictions[idx]);
                    writeln!(
                        f,
                        "  {:<12} predicted {:.3}  measured {:.3}  Dc = {dc}",
                        probe.name, self.diagnoser.predictions[idx], m
                    )?;
                }
                None => writeln!(
                    f,
                    "  {:<12} predicted {:.3}  (not probed)",
                    probe.name, self.diagnoser.predictions[idx]
                )?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flames_circuit::circuits::bandpass;

    fn probes_for(bp: &flames_circuit::circuits::Bandpass) -> Vec<AcProbe> {
        let hp = vec![bp.c1, bp.r1];
        let mut all = hp.clone();
        all.extend([bp.amp, bp.r2, bp.c2]);
        vec![
            AcProbe::new(bp.n1, 1e3, "n1@1k", hp.clone()),
            AcProbe::new(bp.out, 3e3, "out@3k", all.clone()),
            AcProbe::new(bp.out, 10e3, "out@10k", all),
        ]
    }

    #[test]
    fn healthy_board_is_consistent_at_all_probes() {
        let bp = bandpass(0.05);
        let d = AcDiagnoser::new(&bp.netlist, bp.input, 1.0, probes_for(&bp)).unwrap();
        let mut s = d.session();
        for (k, probe) in d.probes().iter().enumerate() {
            let reading = d.read_probe(&bp.netlist, k, 0.01).unwrap();
            s.measure(&probe.name.clone(), reading).unwrap();
        }
        assert!(s.atms().nogoods().is_empty(), "{s}");
        assert!(s.candidates(2, 16).is_empty());
    }

    #[test]
    fn pole_shift_is_caught_and_localized() {
        // C2 at 3× its value pulls the upper corner from 10 kHz to ~3 kHz:
        // out@10k collapses, n1@1k (the high-pass side) stays healthy.
        let bp = bandpass(0.05);
        let d = AcDiagnoser::new(&bp.netlist, bp.input, 1.0, probes_for(&bp)).unwrap();
        let bad = inject_faults(&bp.netlist, &[(bp.c2, Fault::ParamFactor(3.0))]).unwrap();
        let mut s = d.session();
        for (k, probe) in d.probes().iter().enumerate() {
            let reading = d.read_probe(&bad, k, 0.01).unwrap();
            s.measure(&probe.name.clone(), reading).unwrap();
        }
        let dc_hp = s.consistency("n1@1k").unwrap();
        let dc_10k = s.consistency("out@10k").unwrap();
        assert!(dc_hp.is_consistent(), "{s}");
        assert!(dc_10k.degree() < 0.5, "{s}");
        // The refinement implicates the low-pass cone; the consistent
        // high-pass probe exonerates C1/R1.
        let refined = s.refined_candidates(16, 0.5);
        assert!(!refined.is_empty());
        let top: Vec<&str> = refined
            .iter()
            .take(3)
            .flat_map(|c| c.members.iter().map(String::as_str))
            .collect();
        assert!(
            top.contains(&"C2") || top.contains(&"R2") || top.contains(&"A"),
            "{refined:?}"
        );
        let c1 = refined.iter().find(|c| c.members[0] == "C1").unwrap();
        let c2 = refined.iter().find(|c| c.members[0] == "C2").unwrap();
        assert!(c2.degree > c1.degree, "{refined:?}");
    }

    #[test]
    fn open_coupling_cap_kills_everything() {
        let bp = bandpass(0.05);
        let d = AcDiagnoser::new(&bp.netlist, bp.input, 1.0, probes_for(&bp)).unwrap();
        let bad = inject_faults(&bp.netlist, &[(bp.c1, Fault::Open)]).unwrap();
        let mut s = d.session();
        for (k, probe) in d.probes().iter().enumerate() {
            let reading = d.read_probe(&bad, k, 0.01).unwrap();
            s.measure(&probe.name.clone(), reading).unwrap();
        }
        // Every probe conflicts totally; the common cone {C1, R1} wins.
        let cands = s.candidates(1, 16);
        let names: Vec<&str> = cands
            .iter()
            .flat_map(|c| c.members.iter().map(String::as_str))
            .collect();
        assert!(names.contains(&"C1"), "{names:?}");
        assert!(names.contains(&"R1"), "{names:?}");
        assert_eq!(cands[0].degree, 1.0);
    }

    #[test]
    fn recommendation_skips_probed_points_and_ranks() {
        let bp = bandpass(0.05);
        let d = AcDiagnoser::new(&bp.netlist, bp.input, 1.0, probes_for(&bp)).unwrap();
        let mut s = d.session();
        let all = s.recommend(0.0);
        assert_eq!(all.len(), 3);
        // Scores ascend.
        for w in all.windows(2) {
            assert!(w[0].1 <= w[1].1 + 1e-12);
        }
        let first = all[0].0;
        let name = d.probes()[first].name.clone();
        let reading = d.read_probe(&bp.netlist, first, 0.01).unwrap();
        s.measure(&name, reading).unwrap();
        let rest = s.recommend(0.0);
        assert_eq!(rest.len(), 2);
        assert!(rest.iter().all(|(idx, _)| *idx != first));
        assert_eq!(s.probed().iter().filter(|p| **p).count(), 1);
    }

    #[test]
    fn unknown_probe_is_an_error() {
        let bp = bandpass(0.05);
        let d = AcDiagnoser::new(&bp.netlist, bp.input, 1.0, probes_for(&bp)).unwrap();
        let mut s = d.session();
        assert!(s.measure("nope", FuzzyInterval::crisp(0.0)).is_err());
        assert!(s.consistency("nope").is_none());
        assert_eq!(d.prediction(0).core_midpoint(), d.prediction(0).core_lo());
    }

    #[test]
    fn phase_probes_see_the_pole_shift() {
        // At the nominal upper corner the low-pass contributes −45°; with
        // C2 tripled the corner sits a third lower and the phase at 10 kHz
        // swings well past −70°, while a far-below-corner phase probe
        // stays consistent.
        let bp = bandpass(0.05);
        let lp_cone = vec![bp.c1, bp.r1, bp.amp, bp.r2, bp.c2];
        let probes = vec![
            AcProbe::phase(bp.out, 10e3, "ph(out)@10k", lp_cone.clone()),
            AcProbe::phase(bp.n1, 10e3, "ph(n1)@10k", vec![bp.c1, bp.r1]),
        ];
        let d = AcDiagnoser::new(&bp.netlist, bp.input, 1.0, probes).unwrap();
        let bad = inject_faults(&bp.netlist, &[(bp.c2, Fault::ParamFactor(3.0))]).unwrap();
        let mut s = d.session();
        for (k, probe) in d.probes().iter().enumerate() {
            // A phase meter good to ±0.36° — narrower than the tolerance
            // band, as the asymmetric Dc requires of its measurement side.
            let reading = d.read_probe(&bad, k, 0.002).unwrap();
            s.measure(&probe.name.clone(), reading).unwrap();
        }
        let dc_out = s.consistency("ph(out)@10k").unwrap();
        let dc_n1 = s.consistency("ph(n1)@10k").unwrap();
        assert!(dc_out.degree() < 0.5, "{s}");
        assert!(dc_n1.is_consistent(), "{s}");
        let cands = s.candidates(1, 16);
        let names: Vec<&str> = cands
            .iter()
            .flat_map(|c| c.members.iter().map(String::as_str))
            .collect();
        assert!(names.contains(&"C2"), "{names:?}");
    }

    #[test]
    fn session_display_renders() {
        let bp = bandpass(0.05);
        let d = AcDiagnoser::new(&bp.netlist, bp.input, 1.0, probes_for(&bp)).unwrap();
        let mut s = d.session();
        let reading = d.read_probe(&bp.netlist, 0, 0.01).unwrap();
        s.measure("n1@1k", reading).unwrap();
        let text = format!("{s}");
        assert!(text.contains("n1@1k"));
        assert!(text.contains("not probed"));
    }
}
