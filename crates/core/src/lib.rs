//! The FLAMES diagnosis engine — the paper's primary contribution.
//!
//! FLAMES ("A Fuzzy Logic ATMS and Model-based Expert System", Mohamed,
//! Marzouki, Touati — ED&TC 1996) diagnoses faulty analog devices,
//! especially *soft* (parametric) faults, by combining:
//!
//! * **fuzzy interval propagation** with assumption tracking
//!   ([`propagation`], §6.1.1 of the paper);
//! * the **degree of consistency** `Dc` grading every coincidence between
//!   predicted and measured values (§6.1.2);
//! * a **fuzzy ATMS** collecting graded nogoods and ranking candidate
//!   sets (§6.1.3, kernel in `flames-atms`);
//! * **fault models** — common fault modes as fuzzy sets over parameter
//!   deviation ([`fault_model`], §7);
//! * **learning from experience** — symptom→failure rules with certainty
//!   degrees ([`learning`], §7);
//! * **best-test strategies** driven by fuzzy entropy ([`strategy`], §8).
//!
//! The [`Diagnoser`] ties everything to a circuit: build it from a
//! netlist, open a [`Session`], feed measurements, and read ranked
//! [`Candidate`]s.
//!
//! # Example
//!
//! ```
//! use flames_circuit::{predict::TestPoint, Net, Netlist};
//! use flames_core::{Diagnoser, DiagnoserConfig};
//! use flames_fuzzy::FuzzyInterval;
//!
//! # fn main() -> Result<(), flames_core::CoreError> {
//! let mut nl = Netlist::new();
//! let vin = nl.add_net("vin");
//! let mid = nl.add_net("mid");
//! nl.add_voltage_source("V", vin, Net::GROUND, 10.0)?;
//! let r1 = nl.add_resistor("R1", vin, mid, 1000.0, 0.05)?;
//! let r2 = nl.add_resistor("R2", mid, Net::GROUND, 1000.0, 0.05)?;
//! let points = vec![TestPoint::new(mid, "Vmid", vec![r1, r2])];
//! let diagnoser = Diagnoser::from_netlist(&nl, points, DiagnoserConfig::default())?;
//! let mut session = diagnoser.session();
//! // The board reads 6.2 V where ~5 V is expected: R2 high or R1 low.
//! session.measure("Vmid", FuzzyInterval::crisp(6.2).widened(0.05)?)?;
//! session.propagate();
//! let candidates = session.candidates(2, 32);
//! assert!(!candidates.is_empty());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod error;
mod flames;

pub mod dynamic;
pub mod fault_model;
pub mod learning;
pub mod propagation;
pub mod rules;
pub mod shard;
pub mod strategy;
pub mod trace;

pub use engine::{
    diagnose_batch, diagnose_batch_lanes, Board, Candidate, CompiledModel, Diagnoser,
    DiagnoserConfig, PointReport, Report, Session, SessionPool,
};
pub use error::CoreError;
pub use flames::{DiagnosisOutcome, Flames, FlamesConfig};
pub use shard::{ShardReport, ShardedModel, ShardedSession};

/// Convenient result alias for fallible engine operations.
pub type Result<T, E = CoreError> = std::result::Result<T, E>;
