//! Component fault models as fuzzy sets (§7 of the paper).
//!
//! "Common fault modes (such as open, short, high, or low for resistors)
//! in our approach are defined as fuzzy sets. This will avoid us to use
//! special heuristics to find slight deviations."
//!
//! A [`FaultMode`] is a fuzzy set over the **parameter ratio**
//! `actual / nominal`: `short` concentrates near 0, `open` near +∞
//! (represented on a log₁₀ scale so both ends are finite), `low`/`high`
//! cover moderate deviations, and `nominal` the in-tolerance band.
//!
//! The unit also implements the refinement step the paper sketches in
//! §6.3: for a single-fault candidate, *infer* the component's parameter
//! from the measurements (treat it as unknown, propagate, read the derived
//! value), convert to a fuzzy ratio, and match it against the mode
//! vocabulary — "considering the fault modes of the diode … drives us to
//! strongly suspect the resistance r2 which has to be very low".

use crate::engine::Diagnoser;
use crate::propagation::PropagatorConfig;
use crate::Result;
use flames_circuit::constraint::QuantityKind;
use flames_circuit::CompId;
use flames_fuzzy::FuzzyInterval;
use std::fmt;

/// A named fault mode: a fuzzy set over `log10(actual / nominal)`.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultMode {
    name: String,
    /// Membership over the decimal log of the parameter ratio.
    log_ratio_set: FuzzyInterval,
}

impl FaultMode {
    /// Creates a fault mode from a fuzzy set over `log10(ratio)`.
    #[must_use]
    pub fn new(name: impl Into<String>, log_ratio_set: FuzzyInterval) -> Self {
        Self {
            name: name.into(),
            log_ratio_set,
        }
    }

    /// The mode's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Membership of a crisp parameter ratio in this mode.
    #[must_use]
    pub fn membership(&self, ratio: f64) -> f64 {
        if ratio <= 0.0 {
            // Ratio 0 is the extreme short: evaluate at the set's far left.
            return self
                .log_ratio_set
                .membership(self.log_ratio_set.support_lo());
        }
        self.log_ratio_set.membership(ratio.log10())
    }

    /// Matching degree of a fuzzy ratio estimate against this mode:
    /// the possibility of agreement between the estimate (mapped to log
    /// scale through its core and support) and the mode's set.
    #[must_use]
    pub fn match_degree(&self, ratio: &FuzzyInterval) -> f64 {
        let (slo, shi) = ratio.support();
        if shi <= 0.0 {
            return self.membership(0.0);
        }
        let to_log = |x: f64| x.max(1e-6).log10();
        let log_est = FuzzyInterval::new(
            to_log(ratio.core_lo()),
            to_log(ratio.core_hi()),
            (to_log(ratio.core_lo()) - to_log(slo)).max(0.0),
            (to_log(shi) - to_log(ratio.core_hi())).max(0.0),
        )
        .expect("log mapping of positive ratio is valid");
        log_est.possibility_of(&self.log_ratio_set)
    }
}

impl fmt::Display for FaultMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.name, self.log_ratio_set)
    }
}

/// The standard five-mode vocabulary of §7: short / low / nominal /
/// high / open, as fuzzy sets over `log10(ratio)`.
///
/// * `short`: ratio ≲ 10⁻³;
/// * `low`: moderately under nominal (down to ratio ≈ 0.3);
/// * `nominal`: the in-tolerance band around ratio 1;
/// * `high`: moderately over nominal (up to ratio ≈ 3);
/// * `open`: ratio ≳ 10³.
#[must_use]
pub fn standard_modes(tolerance: f64) -> Vec<FaultMode> {
    let t = tolerance.clamp(1e-4, 0.5);
    // Log half-width of the nominal band, with soft shoulders.
    let hw = (1.0 + t).log10();
    let set = |m1: f64, m2: f64, a: f64, b: f64| FuzzyInterval::new(m1, m2, a, b).expect("static");
    vec![
        FaultMode::new("short", set(-6.0, -3.0, 0.0, 1.0)),
        FaultMode::new("low", set(-0.5, -2.0 * hw, 0.5, hw)),
        FaultMode::new("nominal", set(-hw, hw, hw, hw)),
        FaultMode::new("high", set(2.0 * hw, 0.5, hw, 0.5)),
        FaultMode::new("open", set(3.0, 6.0, 1.0, 0.0)),
    ]
}

/// The result of fault-mode refinement for one candidate component.
#[derive(Debug, Clone, PartialEq)]
pub struct ModeDiagnosis {
    /// The candidate component.
    pub component: CompId,
    /// The inferred fuzzy parameter ratio `actual / nominal`, if the
    /// measurements pinned the parameter down.
    pub ratio: Option<FuzzyInterval>,
    /// Per-mode matching degrees `(mode name, degree)`, best first.
    pub modes: Vec<(String, f64)>,
}

impl ModeDiagnosis {
    /// The best-matching mode, if any.
    #[must_use]
    pub fn best(&self) -> Option<(&str, f64)> {
        self.modes.first().map(|(n, d)| (n.as_str(), *d))
    }
}

/// Infers the parameter of a single-fault candidate from measurements and
/// matches it against a fault-mode vocabulary.
///
/// The component's parameter seed is withheld, the given measurements are
/// propagated, and the derived value of the parameter quantity (if any) is
/// compared — as a fuzzy ratio to nominal — against `modes`.
///
/// # Errors
///
/// Returns [`crate::CoreError::UnknownName`] for an unknown test-point
/// name; returns `Ok` with `ratio: None` when the measurements do not
/// determine the parameter.
pub fn infer_fault_mode(
    diagnoser: &Diagnoser,
    measurements: &[(String, FuzzyInterval)],
    component: CompId,
    modes: &[FaultMode],
    config: PropagatorConfig,
) -> Result<ModeDiagnosis> {
    let network = diagnoser.network();
    let Some(param_q) = network.find(QuantityKind::Param(component)) else {
        return Ok(ModeDiagnosis {
            component,
            ratio: None,
            modes: Vec::new(),
        });
    };
    let nominal = diagnoser.netlist().component(component).primary_param();

    // A bespoke propagator in which the component's parameter is unknown.
    let mut prop = crate::propagation::Propagator::new_with_unknown(
        diagnoser.netlist(),
        network,
        config,
        &[component],
    );
    for (point, value) in measurements {
        let tp = diagnoser
            .test_points()
            .iter()
            .find(|tp| &tp.name == point)
            .ok_or_else(|| crate::CoreError::UnknownName {
                name: point.clone(),
            })?;
        prop.observe(network.voltage_quantity(tp.net), *value)?;
    }
    prop.run();
    let ratio = prop.best_value(param_q).and_then(|entry| {
        if nominal == 0.0 {
            return None;
        }
        Some(entry.value.scaled(1.0 / nominal))
    });
    let mut mode_matches: Vec<(String, f64)> = match &ratio {
        Some(r) => modes
            .iter()
            .map(|m| (m.name().to_owned(), m.match_degree(r)))
            .collect(),
        None => Vec::new(),
    };
    mode_matches.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite degrees"));
    Ok(ModeDiagnosis {
        component,
        ratio,
        modes: mode_matches,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::DiagnoserConfig;
    use flames_circuit::predict::TestPoint;
    use flames_circuit::{Fault, Net, Netlist};

    #[test]
    fn standard_mode_memberships() {
        let modes = standard_modes(0.05);
        let by = |n: &str| modes.iter().find(|m| m.name() == n).unwrap();
        assert_eq!(by("nominal").membership(1.0), 1.0);
        assert_eq!(by("nominal").membership(2.0), 0.0);
        assert!(by("high").membership(1.5) > 0.5);
        assert!(by("low").membership(0.5) > 0.5);
        assert_eq!(by("short").membership(0.0), 1.0);
        assert_eq!(by("short").membership(1e-4), 1.0);
        assert_eq!(by("open").membership(1e4), 1.0);
        assert_eq!(by("open").membership(1.0), 0.0);
        // Slight deviations get graded membership in high/nominal.
        assert!(
            by("high").membership(1.12) > 0.0,
            "1.12 should touch 'high'"
        );
    }

    #[test]
    fn mode_match_on_fuzzy_ratio() {
        let modes = standard_modes(0.05);
        let high = modes.iter().find(|m| m.name() == "high").unwrap();
        let est = FuzzyInterval::new(1.4, 1.6, 0.1, 0.1).unwrap();
        assert!(high.match_degree(&est) > 0.9);
        let nominal_est = FuzzyInterval::new(0.99, 1.01, 0.02, 0.02).unwrap();
        assert!(high.match_degree(&nominal_est) < 0.2);
        // Zero/negative ratios collapse to the short end.
        let zero = FuzzyInterval::crisp(0.0);
        let short = modes.iter().find(|m| m.name() == "short").unwrap();
        assert_eq!(short.match_degree(&zero), 1.0);
    }

    #[test]
    fn infers_resistor_ratio_from_measurements() {
        // Divider with R1 actually 40 % high; measuring vin and mid pins
        // R1's value via Ohm + KCL.
        let mut nl = Netlist::new();
        let vin = nl.add_net("vin");
        let mid = nl.add_net("mid");
        nl.add_voltage_source("V", vin, Net::GROUND, 10.0).unwrap();
        let r1 = nl.add_resistor("R1", vin, mid, 1000.0, 0.05).unwrap();
        let r2 = nl
            .add_resistor("R2", mid, Net::GROUND, 1000.0, 0.05)
            .unwrap();
        let points = vec![
            TestPoint::new(mid, "Vmid", vec![r1, r2]),
            TestPoint::new(vin, "Vin", vec![]),
        ];
        let d = Diagnoser::from_netlist(&nl, points, DiagnoserConfig::default()).unwrap();

        let bad =
            flames_circuit::fault::inject_faults(&nl, &[(r1, Fault::ParamFactor(1.4))]).unwrap();
        let readings = flames_circuit::predict::measure_all(&bad, &[mid, vin], 0.01).unwrap();
        let measurements = vec![
            ("Vmid".to_owned(), readings[0]),
            ("Vin".to_owned(), readings[1]),
        ];
        let modes = standard_modes(0.05);
        let md =
            infer_fault_mode(&d, &measurements, r1, &modes, PropagatorConfig::default()).unwrap();
        let ratio = md.ratio.expect("parameter should be inferable");
        assert!(
            (ratio.core_midpoint() - 1.4).abs() < 0.1,
            "inferred ratio {ratio}"
        );
        let (best, degree) = md.best().expect("modes ranked");
        assert_eq!(best, "high", "degree {degree}");
        assert!(degree > 0.5);

        // Inferring the *other* resistor instead explains the same
        // readings as "R2 low" — the classic divider ambiguity (only the
        // ratio is observable from these probes). Both single-fault
        // explanations are produced; the expert (or a further probe)
        // disambiguates.
        let md2 =
            infer_fault_mode(&d, &measurements, r2, &modes, PropagatorConfig::default()).unwrap();
        let ratio2 = md2.ratio.expect("parameter should be inferable");
        assert!(
            (ratio2.core_midpoint() - 1.0 / 1.4).abs() < 0.05,
            "{ratio2}"
        );
        assert_eq!(md2.best().unwrap().0, "low");
    }

    #[test]
    fn unknown_point_name_is_reported() {
        let mut nl = Netlist::new();
        let a = nl.add_net("a");
        nl.add_voltage_source("V", a, Net::GROUND, 1.0).unwrap();
        let r = nl.add_resistor("R", a, Net::GROUND, 100.0, 0.05).unwrap();
        let d = Diagnoser::from_netlist(&nl, vec![], DiagnoserConfig::default()).unwrap();
        let res = infer_fault_mode(
            &d,
            &[("nope".to_owned(), FuzzyInterval::crisp(0.0))],
            r,
            &standard_modes(0.05),
            PropagatorConfig::default(),
        );
        assert!(res.is_err());
    }
}
