use std::fmt;

/// Errors produced by the FLAMES diagnosis engine.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// A quantity id did not belong to the engine's constraint network.
    UnknownQuantity {
        /// The out-of-range quantity index.
        index: usize,
    },
    /// A test-point or component name was not found.
    UnknownName {
        /// The unresolved name.
        name: String,
    },
    /// An error bubbled up from the fuzzy calculus.
    Fuzzy(flames_fuzzy::FuzzyError),
    /// An error bubbled up from the truth-maintenance kernel.
    Atms(flames_atms::AtmsError),
    /// An error bubbled up from the circuit substrate.
    Circuit(flames_circuit::CircuitError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UnknownQuantity { index } => write!(f, "unknown quantity index {index}"),
            CoreError::UnknownName { name } => write!(f, "unknown name {name:?}"),
            CoreError::Fuzzy(e) => write!(f, "fuzzy calculus: {e}"),
            CoreError::Atms(e) => write!(f, "truth maintenance: {e}"),
            CoreError::Circuit(e) => write!(f, "circuit substrate: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Fuzzy(e) => Some(e),
            CoreError::Atms(e) => Some(e),
            CoreError::Circuit(e) => Some(e),
            _ => None,
        }
    }
}

impl From<flames_fuzzy::FuzzyError> for CoreError {
    fn from(e: flames_fuzzy::FuzzyError) -> Self {
        CoreError::Fuzzy(e)
    }
}

impl From<flames_atms::AtmsError> for CoreError {
    fn from(e: flames_atms::AtmsError) -> Self {
        CoreError::Atms(e)
    }
}

impl From<flames_circuit::CircuitError> for CoreError {
    fn from(e: flames_circuit::CircuitError) -> Self {
        CoreError::Circuit(e)
    }
}
