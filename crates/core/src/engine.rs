use crate::propagation::{
    CoincidenceRecord, CompiledSchedule, PropState, Propagator, PropagatorConfig, ValueEntry,
};
use crate::Result;
use flames_atms::{Env, Nogood, RankedDiagnosis};
use flames_circuit::constraint::{extract, ExtractOptions, Network, QuantityId};
use flames_circuit::predict::{nominal_predictions, TestPoint};
use flames_circuit::{CompId, Net, Netlist};
use flames_fuzzy::{Consistency, FuzzyInterval};
use std::fmt;
use std::sync::Arc;

/// Configuration of a [`Diagnoser`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DiagnoserConfig {
    /// Propagation engine knobs (t-norm, conflict threshold, caps).
    pub propagator: PropagatorConfig,
    /// Model extraction options.
    pub extract: ExtractOptions,
}

/// A ranked diagnosis candidate with human-readable member names.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// Names of the implicated components (or `conn:<net>` connections).
    pub members: Vec<String>,
    /// The underlying assumption set.
    pub env: Env,
    /// Seriousness degree (see
    /// [`flames_atms::FuzzyAtms::ranked_diagnoses`]).
    pub degree: f64,
}

impl fmt::Display for Candidate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] @ {:.2}", self.members.join(", "), self.degree)
    }
}

/// Per-test-point entry of a [`Report`].
#[derive(Debug, Clone, PartialEq)]
pub struct PointReport {
    /// The test point's name.
    pub name: String,
    /// The model's fuzzy prediction.
    pub predicted: FuzzyInterval,
    /// The measured value, if this point has been probed.
    pub measured: Option<FuzzyInterval>,
    /// `Dc(measured, predicted)` with deviation direction, if probed.
    pub consistency: Option<Consistency>,
}

/// A diagnosis snapshot: per-point consistencies, the graded nogoods, and
/// the ranked candidates — the content of the paper's Fig. 7 table rows.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// One entry per test point.
    pub points: Vec<PointReport>,
    /// Nogoods as (rendered member set, degree), strongest first.
    pub nogoods: Vec<(String, f64)>,
    /// Ranked candidates (initial suspects).
    pub candidates: Vec<Candidate>,
    /// Refined candidates (degree-filtered, Dc-exonerated) — the paper's
    /// `==>` column.
    pub refined: Vec<Candidate>,
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "test points:")?;
        for p in &self.points {
            match (&p.measured, &p.consistency) {
                (Some(m), Some(dc)) => writeln!(
                    f,
                    "  {:<6} predicted {:.3}  measured {:.3}  Dc = {}",
                    p.name, p.predicted, m, dc
                )?,
                _ => writeln!(
                    f,
                    "  {:<6} predicted {:.3}  (not probed)",
                    p.name, p.predicted
                )?,
            }
        }
        writeln!(f, "nogoods:")?;
        for (set, degree) in &self.nogoods {
            writeln!(f, "  {set} @ {degree:.2}")?;
        }
        writeln!(f, "candidates:")?;
        for c in &self.candidates {
            writeln!(f, "  {c}")?;
        }
        writeln!(f, "refined:")?;
        for c in &self.refined {
            writeln!(f, "  {c}")?;
        }
        Ok(())
    }
}

/// The immutable, `Send + Sync` per-circuit model: the netlist, the
/// extracted constraint network, the compiled propagation schedule
/// ([`CompiledSchedule`]), the declared test points with their fuzzy
/// nominal predictions, the resolved test-point quantities, and the
/// pre-propagated *base state* — model seeds plus test-point predictions
/// already run to quiescence.
///
/// Built once per circuit (inside [`Diagnoser::from_netlist`] /
/// [`Diagnoser::from_network`]) and shared behind an [`Arc`] — cloning a
/// [`Diagnoser`] is a reference-count bump, and any number of threads can
/// open sessions against the same model concurrently (see
/// [`diagnose_batch`]).
///
/// The base state is the serve-many half of the compile: the seed
/// fixpoint is board-independent, so every session restores this
/// snapshot instead of re-deriving it, and only the board's own
/// measurements propagate (incrementally) per diagnosis.
#[derive(Debug)]
pub struct CompiledModel {
    netlist: Arc<Netlist>,
    network: Network,
    schedule: CompiledSchedule,
    test_points: Vec<TestPoint>,
    predictions: Vec<FuzzyInterval>,
    /// Voltage quantity of each test point, resolved once.
    point_quantities: Vec<QuantityId>,
    /// Seeds + predictions propagated to quiescence, captured once.
    base_state: PropState,
    config: DiagnoserConfig,
}

impl CompiledModel {
    fn new(
        netlist: Arc<Netlist>,
        network: Network,
        test_points: Vec<TestPoint>,
        predictions: Vec<FuzzyInterval>,
        config: DiagnoserConfig,
    ) -> Self {
        let schedule = CompiledSchedule::build(&netlist, &network, config.propagator);
        let point_quantities: Vec<QuantityId> = test_points
            .iter()
            .map(|tp| network.voltage_quantity(tp.net))
            .collect();
        // The seed fixpoint is board-independent: run it once here,
        // exactly as a cold session would live, and snapshot the result.
        // Sessions restore this state instead of re-propagating it.
        let base_state = {
            let mut prop = Propagator::with_schedule(&network, &schedule, config.propagator);
            seed_predictions_into(
                &mut prop,
                &test_points,
                &predictions,
                &point_quantities,
                &[],
            );
            prop.run();
            prop.snapshot_state()
        };
        Self {
            netlist,
            network,
            schedule,
            test_points,
            predictions,
            point_quantities,
            base_state,
            config,
        }
    }

    /// The netlist the model was compiled from.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The extracted constraint network.
    #[must_use]
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// The compiled propagation schedule.
    #[must_use]
    pub fn schedule(&self) -> &CompiledSchedule {
        &self.schedule
    }

    /// The declared test points.
    #[must_use]
    pub fn test_points(&self) -> &[TestPoint] {
        &self.test_points
    }
}

/// The FLAMES diagnoser for one circuit: a shared handle on the
/// [`CompiledModel`] (model database, test points, nominal predictions).
///
/// Build once per circuit; open a fresh [`Session`] per board under test,
/// or reuse warm sessions through a [`SessionPool`] /
/// [`diagnose_batch`]. Cloning is cheap (an [`Arc`] bump) and clones
/// share the compiled model.
#[derive(Debug, Clone)]
pub struct Diagnoser {
    model: Arc<CompiledModel>,
}

impl Diagnoser {
    /// Builds a diagnoser: extracts the constraint network, computes
    /// fuzzy nominal predictions for every test point, and compiles the
    /// propagation schedule — the once-per-model costs.
    ///
    /// # Errors
    ///
    /// Propagates circuit-solver failures from the prediction corners.
    pub fn from_netlist(
        netlist: &Netlist,
        test_points: Vec<TestPoint>,
        config: DiagnoserConfig,
    ) -> Result<Self> {
        let network = extract(netlist, config.extract);
        let nets: Vec<Net> = test_points.iter().map(|tp| tp.net).collect();
        let predictions = nominal_predictions(netlist, &nets)?;
        Ok(Self {
            model: Arc::new(CompiledModel::new(
                Arc::new(netlist.clone()),
                network,
                test_points,
                predictions,
                config,
            )),
        })
    }

    /// Builds a diagnoser from an already-extracted network (used when
    /// the builder added specs or extra seeds) with explicit predictions.
    #[must_use]
    pub fn from_network(
        netlist: &Netlist,
        network: Network,
        test_points: Vec<TestPoint>,
        predictions: Vec<FuzzyInterval>,
        config: DiagnoserConfig,
    ) -> Self {
        Self {
            model: Arc::new(CompiledModel::new(
                Arc::new(netlist.clone()),
                network,
                test_points,
                predictions,
                config,
            )),
        }
    }

    /// The shared compiled model.
    #[must_use]
    pub fn model(&self) -> &Arc<CompiledModel> {
        &self.model
    }

    /// The declared test points.
    #[must_use]
    pub fn test_points(&self) -> &[TestPoint] {
        &self.model.test_points
    }

    /// The fuzzy nominal prediction of a test point (by index), or
    /// `None` for an out-of-range index.
    #[must_use]
    pub fn prediction_checked(&self, point: usize) -> Option<&FuzzyInterval> {
        self.model.predictions.get(point)
    }

    /// The fuzzy nominal prediction of a test point (by index).
    ///
    /// # Panics
    ///
    /// Panics for an out-of-range index; use
    /// [`Diagnoser::prediction_checked`] to handle that case.
    #[must_use]
    pub fn prediction(&self, point: usize) -> &FuzzyInterval {
        self.prediction_checked(point)
            .expect("test-point index out of range")
    }

    /// The extracted constraint network.
    #[must_use]
    pub fn network(&self) -> &Network {
        &self.model.network
    }

    /// The netlist the diagnoser was built from.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        &self.model.netlist
    }

    /// Opens a fresh diagnosis session against the shared compiled
    /// model: a propagator *restored from the model's pre-propagated
    /// base state* — seeds and test-point predictions already at
    /// quiescence. None of the once-per-model work (schedule,
    /// vocabulary, environments, the seed fixpoint) is repeated here;
    /// only the board's own measurements propagate.
    #[must_use]
    pub fn session(&self) -> Session<'_> {
        self.session_excusing(&[])
    }

    /// Opens a session with the listed components' models *withdrawn*
    /// (their constraints and parameter seeds skipped) — the §6.2
    /// model-validity mechanism: a device driven out of the operating
    /// region its model assumes must not generate secondary conflicts.
    /// Test-point predictions whose cone contains an excused component
    /// are withheld too (they were computed with the invalid model).
    ///
    /// The seed filter runs against the compiled seed list of the
    /// shared schedule — the netlist is not re-walked.
    #[must_use]
    pub fn session_excusing(&self, excused: &[CompId]) -> Session<'_> {
        flames_obs::metrics().sessions_opened.incr();
        let model = &*self.model;
        let mut prop = Propagator::with_schedule_filtered(
            &model.network,
            &model.schedule,
            model.config.propagator,
            excused,
            excused,
        );
        if excused.is_empty() {
            // The common serving path: restore the snapshot of the seed
            // fixpoint instead of re-running it.
            prop.restore_state(&model.base_state);
        } else {
            // Excusal changes the seed set and the constraint mask, so
            // the base snapshot does not apply: propagate live.
            self.seed_predictions(&mut prop, excused);
            prop.run();
        }
        Session {
            diagnoser: self,
            prop,
            excused: excused.to_vec(),
            measured: vec![None; model.test_points.len()],
            priors: vec![None; model.netlist.component_count()],
            waves: Vec::new(),
            cand_cache: std::sync::Mutex::new(Vec::new()),
        }
    }

    /// Opens a session the pre-compile way: the propagator re-derives
    /// the constraint schedule, assumption vocabulary, and environments
    /// from scratch and runs the full seed fixpoint live, exactly as
    /// every session did before the [`CompiledModel`] split. Kept as
    /// the honest *cold* baseline for the batch benchmark and as a
    /// cross-check that the compiled path is byte-identical to the
    /// legacy one.
    #[must_use]
    pub fn cold_session(&self) -> Session<'_> {
        flames_obs::metrics().sessions_opened.incr();
        flames_obs::metrics().cold_sessions.incr();
        let model = &*self.model;
        let mut prop = Propagator::new(
            model.netlist.as_ref(),
            &model.network,
            model.config.propagator,
        );
        self.seed_predictions(&mut prop, &[]);
        prop.run();
        Session {
            diagnoser: self,
            prop,
            excused: Vec::new(),
            measured: vec![None; model.test_points.len()],
            priors: vec![None; model.netlist.component_count()],
            waves: Vec::new(),
            cand_cache: std::sync::Mutex::new(Vec::new()),
        }
    }

    /// Loads the test-point predictions into a propagator, skipping
    /// points whose support cone contains an excused component.
    fn seed_predictions(&self, prop: &mut Propagator<'_>, excused: &[CompId]) {
        let model = &*self.model;
        seed_predictions_into(
            prop,
            &model.test_points,
            &model.predictions,
            &model.point_quantities,
            excused,
        );
    }
}

/// Loads test-point predictions into a propagator, skipping points whose
/// support cone contains an excused component. Free-standing so
/// [`CompiledModel::new`] can seed the base-state propagator before the
/// model (and hence any [`Diagnoser`]) exists.
fn seed_predictions_into(
    prop: &mut Propagator<'_>,
    test_points: &[TestPoint],
    predictions: &[FuzzyInterval],
    point_quantities: &[QuantityId],
    excused: &[CompId],
) {
    for (idx, (tp, pred)) in test_points.iter().zip(predictions).enumerate() {
        if tp.support.iter().any(|c| excused.contains(c)) {
            continue;
        }
        prop.predict(point_quantities[idx], *pred, &tp.support, 1.0)
            .expect("test-point quantities exist in the extracted network");
    }
}

/// One diagnosis run against one (possibly faulty) board.
#[derive(Debug)]
pub struct Session<'d> {
    diagnoser: &'d Diagnoser,
    prop: Propagator<'d>,
    /// Components whose models were withdrawn when the session opened
    /// ([`Diagnoser::session_excusing`]); [`Session::reset`] reapplies
    /// them.
    excused: Vec<CompId>,
    measured: Vec<Option<FuzzyInterval>>,
    priors: Vec<Option<FuzzyInterval>>,
    /// One record per [`Session::propagate`] call, for the diagnosis
    /// trace ([`Session::trace`]). Lives on the session, not in the
    /// propagator state, so base-state snapshot restores cannot clobber
    /// it.
    waves: Vec<crate::trace::WaveRecord>,
    /// Nogood-epoch-tagged candidate cache: one rendered candidate list
    /// per queried `(max_size, max_count)`, valid while the ATMS epoch is
    /// unchanged. [`Session::reset`] clears it — a snapshot restore
    /// rewinds the epoch counter, so tags from before the restore must
    /// not be allowed to match tags after it. A `Mutex` (never contended:
    /// sessions are driven by one thread) keeps the session `Sync`.
    cand_cache: std::sync::Mutex<Vec<CandCacheEntry>>,
}

/// One [`Session::candidates`] result, tagged with the ATMS nogood epoch
/// it was computed at.
#[derive(Debug, Clone)]
struct CandCacheEntry {
    epoch: u64,
    max_size: usize,
    max_count: usize,
    candidates: Vec<Candidate>,
}

impl Clone for Session<'_> {
    fn clone(&self) -> Self {
        Self {
            diagnoser: self.diagnoser,
            prop: self.prop.clone(),
            excused: self.excused.clone(),
            measured: self.measured.clone(),
            priors: self.priors.clone(),
            waves: self.waves.clone(),
            cand_cache: std::sync::Mutex::new(self.locked_cand_cache().clone()),
        }
    }
}

impl<'d> Session<'d> {
    /// Clears the per-board state — measurements, labels, nogoods,
    /// coincidences, priors — without deallocating, then restores the
    /// model's pre-propagated base state (or, for an excusing session,
    /// re-runs the filtered seed fixpoint). A reset session produces
    /// reports identical to a freshly opened one (the serving tests
    /// assert this byte-for-byte), at a fraction of the cost: no
    /// schedule rebuild, no vocabulary interning, no seed fixpoint,
    /// warm allocations throughout.
    pub fn reset(&mut self) {
        flames_obs::metrics().session_resets.incr();
        self.waves.clear();
        // The snapshot restore below rewinds the ATMS nogood-epoch
        // counter, so cached candidate lists tagged with a pre-reset
        // epoch could otherwise match a post-reset query by accident.
        self.locked_cand_cache().clear();
        if self.excused.is_empty() {
            self.prop.restore_state(&self.diagnoser.model.base_state);
        } else {
            self.prop.reset();
            self.diagnoser
                .seed_predictions(&mut self.prop, &self.excused);
            self.prop.run();
        }
        for m in &mut self.measured {
            *m = None;
        }
        for p in &mut self.priors {
            *p = None;
        }
    }

    /// Records a measurement at a test point, by name.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CoreError::UnknownName`] for an unknown point.
    pub fn measure(&mut self, point: &str, value: FuzzyInterval) -> Result<()> {
        let idx = self
            .diagnoser
            .model
            .test_points
            .iter()
            .position(|tp| tp.name == point)
            .ok_or_else(|| crate::CoreError::UnknownName {
                name: point.to_owned(),
            })?;
        self.measure_point(idx, value)
    }

    /// Records a measurement at a test point, by index.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CoreError::UnknownName`] for an out-of-range
    /// index.
    pub fn measure_point(&mut self, idx: usize, value: FuzzyInterval) -> Result<()> {
        let model = Arc::as_ref(&self.diagnoser.model);
        if idx >= model.test_points.len() {
            return Err(crate::CoreError::UnknownName {
                name: format!("test point #{idx}"),
            });
        }
        let q = model.point_quantities[idx];
        self.prop.observe(q, value)?;
        self.measured[idx] = Some(value);
        Ok(())
    }

    /// Runs propagation to quiescence; returns the number of constraint
    /// applications.
    pub fn propagate(&mut self) -> usize {
        let steps = self.prop.run();
        self.waves.push(crate::trace::WaveRecord {
            steps,
            coincidences_total: self.prop.coincidences().len(),
            nogoods_total: self.prop.atms().nogoods().len(),
        });
        steps
    }

    /// Propagates a *lane* of sessions over one shared compiled model:
    /// a single schedule traversal drives every board to quiescence
    /// ([`Propagator::run_lane`]), producing per-board state
    /// bit-identical to calling [`Session::propagate`] on each session
    /// alone. All sessions must come from [`Diagnoser::session`] /
    /// [`SessionPool`] over the same diagnoser (shared schedule).
    ///
    /// Returns the constraint application count of each session.
    ///
    /// # Panics
    ///
    /// Panics if the lane exceeds 64 sessions or mixes compiled models
    /// (see [`Propagator::run_lane`]).
    pub fn propagate_lane(sessions: &mut [&mut Session<'d>]) -> Vec<usize> {
        let steps = {
            let mut props: Vec<&mut Propagator<'d>> =
                sessions.iter_mut().map(|s| &mut s.prop).collect();
            Propagator::run_lane(&mut props)
        };
        for (s, &n) in sessions.iter_mut().zip(&steps) {
            s.waves.push(crate::trace::WaveRecord {
                steps: n,
                coincidences_total: s.prop.coincidences().len(),
                nogoods_total: s.prop.atms().nogoods().len(),
            });
        }
        steps
    }

    /// The per-wave propagation records accumulated since the session
    /// opened (or was last reset) — one per [`Session::propagate`] call.
    #[must_use]
    pub fn waves(&self) -> &[crate::trace::WaveRecord] {
        &self.waves
    }

    /// Exports the session's diagnosis history as a deterministic
    /// [`flames_obs::Trace`] (see [`crate::trace`] for the schema).
    #[must_use]
    pub fn trace(&self) -> flames_obs::Trace {
        crate::trace::diagnosis_trace(self)
    }

    /// `Dc(measured, predicted)` of a probed test point.
    #[must_use]
    pub fn consistency(&self, point: &str) -> Option<Consistency> {
        let idx = self
            .diagnoser
            .model
            .test_points
            .iter()
            .position(|tp| tp.name == point)?;
        let measured = self.measured[idx]?;
        Some(Consistency::between(
            &measured,
            self.diagnoser.prediction_checked(idx)?,
        ))
    }

    /// Ranked candidates (minimal hitting sets of the graded nogoods),
    /// rendered with component names.
    ///
    /// Results are cached per `(max_size, max_count)` and tagged with the
    /// ATMS nogood epoch, so repeated calls between propagation waves —
    /// the probe planner asks after every hypothetical outcome — cost one
    /// lock-and-clone instead of a hitting-set computation.
    #[must_use]
    pub fn candidates(&self, max_size: usize, max_count: usize) -> Vec<Candidate> {
        let epoch = self.prop.atms().nogood_epoch();
        let mut cache = self.locked_cand_cache();
        if let Some(entry) = cache
            .iter()
            .find(|e| e.max_size == max_size && e.max_count == max_count)
        {
            if entry.epoch == epoch {
                return entry.candidates.clone();
            }
        }
        let candidates =
            self.render_candidates(self.prop.atms().ranked_diagnoses(max_size, max_count));
        match cache
            .iter_mut()
            .find(|e| e.max_size == max_size && e.max_count == max_count)
        {
            Some(entry) => {
                entry.epoch = epoch;
                entry.candidates = candidates.clone();
            }
            None => cache.push(CandCacheEntry {
                epoch,
                max_size,
                max_count,
                candidates: candidates.clone(),
            }),
        }
        candidates
    }

    /// [`Session::candidates`] without the epoch-tagged cache *and*
    /// without the incremental [`flames_atms::CandidateSet`] underneath:
    /// every call recomputes the minimal hitting sets from the full
    /// nogood store. Kept as the differential oracle for the strategy
    /// benchmark and the equivalence tests.
    #[must_use]
    pub fn candidates_uncached(&self, max_size: usize, max_count: usize) -> Vec<Candidate> {
        self.render_candidates(
            self.prop
                .atms()
                .ranked_diagnoses_oracle(max_size, max_count),
        )
    }

    fn render_candidates(&self, ranked: Vec<RankedDiagnosis>) -> Vec<Candidate> {
        ranked
            .into_iter()
            .map(|RankedDiagnosis { env, degree }| Candidate {
                members: env
                    .iter()
                    .map(|a| self.prop.assumption_name(a).to_owned())
                    .collect(),
                env,
                degree,
            })
            .collect()
    }

    fn locked_cand_cache(&self) -> std::sync::MutexGuard<'_, Vec<CandCacheEntry>> {
        self.cand_cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Refined candidates — the right-hand side of the paper's Fig. 7
    /// rows (`{initial} ==> {refined}`): the **single-fault refinement**.
    ///
    /// Three gradings are applied on top of [`Session::candidates`]:
    ///
    /// * **degree filtering** (the paper's "list of nogoods sorted
    ///   according to their consistency degrees … allows to restrict the
    ///   effect of explosion"): only nogoods with degree at least
    ///   `rho × max_degree` are considered, so noise-level conflicts stop
    ///   steering the refinement;
    /// * **specificity**: among the strong nogoods, the smallest
    ///   (most informative) conflict sets name the suspects — secondary
    ///   conflicts raised downstream of an already-deviating point do not
    ///   dilute them;
    /// * **exoneration by Dc**: each suspect is scored by its strongest
    ///   conflict, discounted by the degree of consistency of the most
    ///   specific probed test point covering it — "thanks to Dc" a
    ///   component sitting under a consistent probe drops down the
    ///   ranking. Assumptions with no covering point (connections) are
    ///   discounted by the best Dc observed anywhere.
    ///
    /// The returned candidates are single components; use
    /// [`Session::candidates`] for the complete multiple-fault lattice.
    #[must_use]
    pub fn refined_candidates(&self, max_count: usize, rho: f64) -> Vec<Candidate> {
        let nogoods = self.prop.atms().nogoods();
        let max_degree = nogoods.iter().map(|n| n.degree).fold(0.0, f64::max);
        if max_degree <= 0.0 {
            return Vec::new();
        }
        let cut = rho.clamp(0.0, 1.0) * max_degree;
        let strong: Vec<&flames_atms::Nogood> =
            nogoods.iter().filter(|n| n.degree >= cut).collect();
        let min_size = strong.iter().map(|n| n.env.len()).min().unwrap_or(0);
        let mut members: Vec<flames_atms::Assumption> = strong
            .iter()
            .filter(|n| n.env.len() == min_size)
            .flat_map(|n| n.env.iter())
            .collect();
        members.sort();
        members.dedup();
        let mut out: Vec<Candidate> = members
            .into_iter()
            .map(|a| {
                let degree = self.prop.atms().suspicion(a) * (1.0 - self.exoneration(a));
                Candidate {
                    members: vec![self.prop.assumption_name(a).to_owned()],
                    env: Env::singleton(a),
                    degree,
                }
            })
            .collect();
        out.sort_by(|p, q| {
            q.degree
                .partial_cmp(&p.degree)
                .expect("finite degrees")
                .then_with(|| p.env.cmp(&q.env))
        });
        out.truncate(max_count);
        out
    }

    /// Dc-based exoneration of an assumption: the consistency degree of
    /// the most specific (smallest-cone) probed point covering it, or the
    /// best Dc observed anywhere for assumptions outside every cone.
    fn exoneration(&self, a: flames_atms::Assumption) -> f64 {
        let model = Arc::as_ref(&self.diagnoser.model);
        let mut best: Option<(usize, f64)> = None;
        let mut any_dc: f64 = 0.0;
        for (idx, tp) in model.test_points.iter().enumerate() {
            let Some(measured) = self.measured[idx] else {
                continue;
            };
            let dc = Consistency::between(&measured, &model.predictions[idx]).degree();
            any_dc = any_dc.max(dc);
            let covers = tp
                .support
                .iter()
                .any(|c| self.prop.component_assumption(c.index()) == a);
            if covers {
                let cone = tp.support.len();
                if best.is_none_or(|(sz, _)| cone < sz) {
                    best = Some((cone, dc));
                }
            }
        }
        best.map_or(any_dc, |(_, dc)| dc)
    }

    /// Suspicion degree of a component (strongest conflict implicating
    /// it), by name; `None` for unknown names.
    #[must_use]
    pub fn suspicion(&self, component: &str) -> Option<f64> {
        let id = self.diagnoser.netlist().component_by_name(component)?;
        Some(
            self.prop
                .atms()
                .suspicion(self.prop.component_assumption(id.index())),
        )
    }

    /// Records the expert's a priori faultiness estimation of a component
    /// (§5: "a priori estimations of faultiness in components"). The set
    /// must live inside `[0, 1]`; it replaces the default "unknown"
    /// estimation and floors the suspicion-based one.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CoreError::UnknownName`] for an unknown
    /// component, or a fuzzy-calculus error if the set leaves the unit
    /// interval.
    pub fn set_prior(&mut self, component: &str, estimation: FuzzyInterval) -> Result<()> {
        let id = self
            .diagnoser
            .netlist()
            .component_by_name(component)
            .ok_or_else(|| crate::CoreError::UnknownName {
                name: component.to_owned(),
            })?;
        let (lo, hi) = estimation.support();
        if lo < -1e-9 || hi > 1.0 + 1e-9 {
            return Err(crate::CoreError::Fuzzy(
                flames_fuzzy::FuzzyError::EstimationOutOfRange {
                    value: if lo < 0.0 { lo } else { hi },
                },
            ));
        }
        self.priors[id.index()] = Some(estimation);
        Ok(())
    }

    /// Fuzzy faultiness estimations per component (§8.1): suspicion-based
    /// fuzzy numbers for implicated components (floored by any expert
    /// prior), near-"correct" sets for components exonerated by a
    /// consistent measurement covering them, the expert's prior where one
    /// was given, and a mid-scale "unknown" otherwise. Returned in
    /// netlist component order as `(name, estimation)`.
    #[must_use]
    pub fn estimations(&self) -> Vec<(String, FuzzyInterval)> {
        let exonerated = self.exonerated_components();
        self.diagnoser
            .netlist()
            .components()
            .map(|(id, comp)| {
                let a = self.prop.component_assumption(id.index());
                let s = self.prop.atms().suspicion(a);
                let prior = self.priors[id.index()];
                let est = if s > 0.0 {
                    // Suspicion s as a fuzzy estimation around s.
                    let lo = (s - 0.1).max(0.0);
                    let hi = (s + 0.05).min(1.0);
                    let from_suspicion =
                        FuzzyInterval::new(lo, hi, lo.min(0.05), (1.0 - hi).min(0.05))
                            .expect("estimation inside unit interval");
                    match prior {
                        Some(p) => from_suspicion.max_ext(&p),
                        None => from_suspicion,
                    }
                } else if exonerated[id.index()] {
                    FuzzyInterval::new(0.0, 0.05, 0.0, 0.05).expect("static")
                } else if let Some(p) = prior {
                    p
                } else {
                    FuzzyInterval::new(0.3, 0.5, 0.1, 0.1).expect("static")
                };
                (comp.name().to_owned(), est)
            })
            .collect()
    }

    /// Marks components covered by a fully consistent probed point.
    fn exonerated_components(&self) -> Vec<bool> {
        let model = Arc::as_ref(&self.diagnoser.model);
        let mut out = vec![false; model.netlist.component_count()];
        for (idx, tp) in model.test_points.iter().enumerate() {
            let Some(measured) = self.measured[idx] else {
                continue;
            };
            let dc = Consistency::between(&measured, &model.predictions[idx]);
            if dc.is_consistent() {
                for comp in &tp.support {
                    out[comp.index()] = true;
                }
            }
        }
        out
    }

    /// Builds the full snapshot report.
    #[must_use]
    pub fn report(&self) -> Report {
        let model = Arc::as_ref(&self.diagnoser.model);
        let points = model
            .test_points
            .iter()
            .enumerate()
            .map(|(idx, tp)| PointReport {
                name: tp.name.clone(),
                predicted: model.predictions[idx],
                measured: self.measured[idx],
                consistency: self.measured[idx]
                    .map(|m| Consistency::between(&m, &model.predictions[idx])),
            })
            .collect();
        let nogoods = self
            .prop
            .atms()
            .sorted_nogoods()
            .into_iter()
            .map(|Nogood { env, degree }| (self.prop.pool().render(env.iter()), degree))
            .collect();
        let candidates = self.candidates(3, 64);
        let refined = self.refined_candidates(16, 0.5);
        Report {
            points,
            nogoods,
            candidates,
            refined,
        }
    }

    /// The diagnoser this session runs against.
    #[must_use]
    pub fn diagnoser(&self) -> &'d Diagnoser {
        self.diagnoser
    }

    /// The underlying propagator (labels, coincidences, ATMS).
    #[must_use]
    pub fn propagator(&self) -> &Propagator<'d> {
        &self.prop
    }

    /// Mutable access to the propagator, for expert extensions (extra
    /// nogoods, fault-model rules).
    #[must_use]
    pub fn propagator_mut(&mut self) -> &mut Propagator<'d> {
        &mut self.prop
    }

    /// All coincidences recorded by propagation.
    #[must_use]
    pub fn coincidences(&self) -> &[CoincidenceRecord] {
        self.prop.coincidences()
    }

    /// Which test points have been probed so far (by index).
    #[must_use]
    pub fn probed(&self) -> Vec<bool> {
        self.measured.iter().map(Option::is_some).collect()
    }

    /// The best derived value of a quantity, if any (exposes the label
    /// store for inspection and for fault-model parameter inference).
    /// Returned by value: the column store materializes entries on
    /// demand rather than holding them contiguously.
    #[must_use]
    pub fn best_value(&self, q: QuantityId) -> Option<ValueEntry> {
        self.prop.best_value(q)
    }
}

/// A pool of warm, reusable [`Session`]s over one [`Diagnoser`].
///
/// [`SessionPool::acquire`] pops an idle session and [`Session::reset`]s
/// it (or opens a fresh one when the pool is empty);
/// [`SessionPool::release`] returns a finished session for reuse. A
/// recycled session keeps its allocations — label stores, ATMS arenas,
/// the interned environment table — so steady-state serving does no
/// per-board setup beyond re-seeding model values.
///
/// The pool only recycles plain sessions of its own diagnoser;
/// model-excusing sessions ([`Diagnoser::session_excusing`]) and
/// foreign sessions are dropped on release rather than pooled.
#[derive(Debug)]
pub struct SessionPool<'d> {
    diagnoser: &'d Diagnoser,
    idle: Vec<Session<'d>>,
}

impl<'d> SessionPool<'d> {
    /// Creates an empty pool over a diagnoser.
    #[must_use]
    pub fn new(diagnoser: &'d Diagnoser) -> Self {
        Self {
            diagnoser,
            idle: Vec::new(),
        }
    }

    /// Pre-opens `n` idle sessions, so the first `n` acquisitions are
    /// warm.
    pub fn warm(&mut self, n: usize) {
        while self.idle.len() < n {
            self.idle.push(self.diagnoser.session());
        }
    }

    /// A ready-to-use session: a recycled one (reset) if available,
    /// freshly opened otherwise.
    #[must_use]
    pub fn acquire(&mut self) -> Session<'d> {
        let session = match self.idle.pop() {
            Some(mut session) => {
                flames_obs::metrics().pool_hits.incr();
                session.reset();
                session
            }
            None => {
                flames_obs::metrics().pool_misses.incr();
                self.diagnoser.session()
            }
        };
        flames_obs::metrics().pool_idle.set(self.idle.len() as u64);
        session
    }

    /// Returns a session to the pool for reuse. Sessions with an
    /// excusal filter or from a different diagnoser are dropped instead.
    pub fn release(&mut self, session: Session<'d>) {
        if session.excused.is_empty() && std::ptr::eq(session.diagnoser, self.diagnoser) {
            self.idle.push(session);
        }
        flames_obs::metrics().pool_idle.set(self.idle.len() as u64);
    }

    /// Number of idle sessions currently held.
    #[must_use]
    pub fn idle_count(&self) -> usize {
        self.idle.len()
    }
}

/// The measurements of one board under test, as
/// `(test-point index, measured value)` pairs.
pub type Board = Vec<(usize, FuzzyInterval)>;

/// Diagnoses a batch of boards against one shared [`CompiledModel`],
/// spreading the boards over `threads` workers (`std::thread::scope` —
/// no external runtime). Each worker runs its own [`SessionPool`], so
/// after its first board it serves from warm sessions.
///
/// Boards are split into contiguous chunks and results are written by
/// board index, so the output order — and, because a warm session is
/// indistinguishable from a fresh one, every report byte — is identical
/// for any thread count, including the sequential `threads == 1` path.
///
/// # Errors
///
/// Returns the first per-board error (e.g. an out-of-range test-point
/// index in a [`Board`]).
///
/// # Panics
///
/// Panics if a worker thread panics.
///
/// # Example
///
/// ```
/// use flames_circuit::{predict::TestPoint, Net, Netlist};
/// use flames_core::{diagnose_batch, Diagnoser, DiagnoserConfig};
/// use flames_fuzzy::FuzzyInterval;
///
/// # fn main() -> Result<(), flames_core::CoreError> {
/// let mut nl = Netlist::new();
/// let vin = nl.add_net("vin");
/// let mid = nl.add_net("mid");
/// nl.add_voltage_source("V", vin, Net::GROUND, 10.0)?;
/// let r1 = nl.add_resistor("R1", vin, mid, 1000.0, 0.05)?;
/// let r2 = nl.add_resistor("R2", mid, Net::GROUND, 1000.0, 0.05)?;
/// let diagnoser = Diagnoser::from_netlist(
///     &nl,
///     vec![TestPoint::new(mid, "Vmid", vec![r1, r2])],
///     DiagnoserConfig::default(),
/// )?;
/// // Two boards: one healthy, one reading high at Vmid.
/// let boards = vec![
///     vec![(0, FuzzyInterval::crisp(5.0).widened(0.05)?)],
///     vec![(0, FuzzyInterval::crisp(6.2).widened(0.05)?)],
/// ];
/// let reports = diagnose_batch(&diagnoser, &boards, 2)?;
/// assert!(reports[0].candidates.is_empty());
/// assert!(!reports[1].candidates.is_empty());
/// # Ok(())
/// # }
/// ```
pub fn diagnose_batch(
    diagnoser: &Diagnoser,
    boards: &[Board],
    threads: usize,
) -> Result<Vec<Report>> {
    let threads = threads.max(1).min(boards.len().max(1));
    let mut results: Vec<Option<Report>> = Vec::new();
    results.resize_with(boards.len(), || None);
    if threads <= 1 {
        let mut pool = SessionPool::new(diagnoser);
        for (slot, board) in results.iter_mut().zip(boards) {
            *slot = Some(diagnose_one(&mut pool, board)?);
        }
    } else {
        let chunk = boards.len().div_ceil(threads);
        std::thread::scope(|scope| -> Result<()> {
            let mut handles = Vec::new();
            let mut rest: &mut [Option<Report>] = &mut results;
            for batch in boards.chunks(chunk) {
                let (head, tail) = rest.split_at_mut(batch.len());
                rest = tail;
                handles.push(scope.spawn(move || -> Result<()> {
                    let mut pool = SessionPool::new(diagnoser);
                    for (slot, board) in head.iter_mut().zip(batch) {
                        *slot = Some(diagnose_one(&mut pool, board)?);
                    }
                    Ok(())
                }));
            }
            for handle in handles {
                handle.join().expect("batch worker panicked")?;
            }
            Ok(())
        })?;
    }
    Ok(results
        .into_iter()
        .map(|r| r.expect("every board diagnosed"))
        .collect())
}

/// [`diagnose_batch`] with board-lane propagation: each worker drives
/// its boards in lanes of `lane_width` warm sessions (clamped to
/// `1..=64`), so one schedule traversal per wave is amortised over the
/// whole lane ([`Propagator::run_lane`]) instead of repeated per board.
///
/// Reports are byte-identical to [`diagnose_batch`] for every thread
/// count and lane width — the lane runner preserves each board's solo
/// constraint-application order exactly.
///
/// # Errors
///
/// Returns the first per-board error, as [`diagnose_batch`] does.
///
/// # Panics
///
/// Panics if a worker thread panics.
pub fn diagnose_batch_lanes(
    diagnoser: &Diagnoser,
    boards: &[Board],
    threads: usize,
    lane_width: usize,
) -> Result<Vec<Report>> {
    let lane_width = lane_width.clamp(1, 64);
    let threads = threads.max(1).min(boards.len().max(1));
    let mut results: Vec<Option<Report>> = Vec::new();
    results.resize_with(boards.len(), || None);
    if threads <= 1 {
        let mut pool = SessionPool::new(diagnoser);
        for (lane, out) in boards
            .chunks(lane_width)
            .zip(results.chunks_mut(lane_width))
        {
            diagnose_lane_into(&mut pool, lane, out)?;
        }
    } else {
        let chunk = boards.len().div_ceil(threads);
        std::thread::scope(|scope| -> Result<()> {
            let mut handles = Vec::new();
            let mut rest: &mut [Option<Report>] = &mut results;
            for batch in boards.chunks(chunk) {
                let (head, tail) = rest.split_at_mut(batch.len());
                rest = tail;
                handles.push(scope.spawn(move || -> Result<()> {
                    let mut pool = SessionPool::new(diagnoser);
                    for (lane, out) in batch.chunks(lane_width).zip(head.chunks_mut(lane_width)) {
                        diagnose_lane_into(&mut pool, lane, out)?;
                    }
                    Ok(())
                }));
            }
            for handle in handles {
                handle.join().expect("batch worker panicked")?;
            }
            Ok(())
        })?;
    }
    Ok(results
        .into_iter()
        .map(|r| r.expect("every board diagnosed"))
        .collect())
}

/// Diagnoses one lane of boards on pooled sessions: measure every
/// board, propagate the lane jointly, report each board.
fn diagnose_lane_into<'d>(
    pool: &mut SessionPool<'d>,
    lane: &[Board],
    out: &mut [Option<Report>],
) -> Result<()> {
    debug_assert_eq!(lane.len(), out.len());
    let mut sessions: Vec<Session<'d>> = Vec::with_capacity(lane.len());
    for board in lane {
        flames_obs::metrics().boards_diagnosed.incr();
        let mut session = pool.acquire();
        for &(idx, value) in board {
            session.measure_point(idx, value)?;
        }
        sessions.push(session);
    }
    {
        let mut refs: Vec<&mut Session<'d>> = sessions.iter_mut().collect();
        Session::propagate_lane(&mut refs);
    }
    for (slot, session) in out.iter_mut().zip(sessions) {
        *slot = Some(session.report());
        pool.release(session);
    }
    Ok(())
}

/// Diagnoses one board on a pooled session.
fn diagnose_one<'d>(pool: &mut SessionPool<'d>, board: &Board) -> Result<Report> {
    flames_obs::metrics().boards_diagnosed.incr();
    let mut session = pool.acquire();
    for &(idx, value) in board {
        session.measure_point(idx, value)?;
    }
    session.propagate();
    let report = session.report();
    pool.release(session);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flames_circuit::{Fault, Net};

    fn divider_diagnoser() -> Diagnoser {
        let mut nl = Netlist::new();
        let vin = nl.add_net("vin");
        let mid = nl.add_net("mid");
        nl.add_voltage_source("V", vin, Net::GROUND, 10.0).unwrap();
        let r1 = nl.add_resistor("R1", vin, mid, 1000.0, 0.05).unwrap();
        let r2 = nl
            .add_resistor("R2", mid, Net::GROUND, 1000.0, 0.05)
            .unwrap();
        let points = vec![
            TestPoint::new(mid, "Vmid", vec![r1, r2]),
            TestPoint::new(vin, "Vin", vec![]),
        ];
        Diagnoser::from_netlist(&nl, points, DiagnoserConfig::default()).unwrap()
    }

    #[test]
    fn healthy_board_reports_consistent() {
        let d = divider_diagnoser();
        let mut s = d.session();
        s.measure("Vmid", FuzzyInterval::crisp(5.0).widened(0.05).unwrap())
            .unwrap();
        s.propagate();
        let dc = s.consistency("Vmid").unwrap();
        assert!(dc.is_consistent());
        assert!(s.candidates(2, 16).is_empty());
        let report = s.report();
        assert!(report.nogoods.is_empty());
        assert_eq!(report.points.len(), 2);
        assert!(report.points[1].measured.is_none());
    }

    #[test]
    fn faulty_board_yields_candidates() {
        let d = divider_diagnoser();
        // R1 drifted 40 % high: mid voltage drops to 10·(1/2.4) ≈ 4.17.
        let r1 = d.netlist().component_by_name("R1").unwrap();
        let bad =
            flames_circuit::fault::inject_faults(d.netlist(), &[(r1, Fault::ParamFactor(1.4))])
                .unwrap();
        let reading = flames_circuit::predict::measure(&bad, d.test_points()[0].net, 0.02).unwrap();
        let mut s = d.session();
        s.measure("Vmid", reading).unwrap();
        s.propagate();
        let dc = s.consistency("Vmid").unwrap();
        assert!(!dc.is_consistent());
        assert_eq!(dc.direction(), flames_fuzzy::Direction::Low);
        let candidates = s.candidates(2, 32);
        assert!(!candidates.is_empty());
        let names: Vec<&str> = candidates
            .iter()
            .flat_map(|c| c.members.iter().map(String::as_str))
            .collect();
        assert!(names.contains(&"R1") || names.contains(&"R2"));
        // Suspicion is positive for the divider resistors.
        assert!(s.suspicion("R1").unwrap() > 0.0);
        assert_eq!(s.suspicion("nope"), None);
    }

    #[test]
    fn estimations_reflect_session_state() {
        let d = divider_diagnoser();
        let mut s = d.session();
        // Nothing measured: everything mid-scale except nothing exonerated.
        let est0 = s.estimations();
        assert_eq!(est0.len(), 3);
        for (_, e) in &est0 {
            assert!(e.core_lo() >= 0.2);
        }
        // Healthy measurement exonerates the support cone.
        s.measure("Vmid", FuzzyInterval::crisp(5.0).widened(0.05).unwrap())
            .unwrap();
        s.propagate();
        let est = s.estimations();
        let r1 = est.iter().find(|(n, _)| n == "R1").unwrap();
        assert!(r1.1.core_hi() <= 0.1, "R1 exonerated: {}", r1.1);
    }

    #[test]
    fn unknown_point_is_an_error() {
        let d = divider_diagnoser();
        let mut s = d.session();
        assert!(matches!(
            s.measure("nope", FuzzyInterval::crisp(0.0)),
            Err(crate::CoreError::UnknownName { .. })
        ));
        assert!(s.measure_point(99, FuzzyInterval::crisp(0.0)).is_err());
        assert!(s.consistency("nope").is_none());
    }

    #[test]
    fn report_renders() {
        let d = divider_diagnoser();
        let mut s = d.session();
        s.measure("Vmid", FuzzyInterval::crisp(6.0).widened(0.05).unwrap())
            .unwrap();
        s.propagate();
        let text = format!("{}", s.report());
        assert!(text.contains("Vmid"));
        assert!(text.contains("candidates:"));
        assert!(!s.report().candidates.is_empty());
        let c = &s.report().candidates[0];
        assert!(format!("{c}").contains('@'));
    }

    #[test]
    fn expert_priors_shape_estimations() {
        let d = divider_diagnoser();
        let mut s = d.session();
        // The expert believes R2 came from a bad batch.
        let suspect = FuzzyInterval::new(0.7, 0.8, 0.1, 0.1).unwrap();
        s.set_prior("R2", suspect).unwrap();
        let est = s.estimations();
        let r2 = est.iter().find(|(n, _)| n == "R2").unwrap();
        assert!(r2.1.core_lo() >= 0.7 - 1e-9);
        let r1 = est.iter().find(|(n, _)| n == "R1").unwrap();
        assert!(r1.1.core_lo() < 0.7, "R1 keeps the default estimation");
        // Priors outside the unit interval are rejected, as are unknown names.
        assert!(s
            .set_prior("R2", FuzzyInterval::new(0.9, 1.4, 0.0, 0.0).unwrap())
            .is_err());
        assert!(s.set_prior("nope", suspect).is_err());
        // After exoneration by a consistent probe, the prior yields.
        s.measure("Vmid", FuzzyInterval::crisp(5.0).widened(0.05).unwrap())
            .unwrap();
        s.propagate();
        let est = s.estimations();
        let r2 = est.iter().find(|(n, _)| n == "R2").unwrap();
        assert!(
            r2.1.core_hi() <= 0.1,
            "consistent evidence overrides the prior"
        );
    }

    #[test]
    fn refinement_rho_extremes() {
        let d = divider_diagnoser();
        let mut s = d.session();
        s.measure("Vmid", FuzzyInterval::crisp(7.0).widened(0.05).unwrap())
            .unwrap();
        s.propagate();
        // rho = 0 keeps every nogood; rho = 1 keeps only the strongest.
        let all = s.refined_candidates(64, 0.0);
        let strongest = s.refined_candidates(64, 1.0);
        assert!(!all.is_empty());
        assert!(!strongest.is_empty());
        assert!(strongest.len() <= all.len());
        for c in all.iter().chain(&strongest) {
            assert_eq!(c.members.len(), 1);
            assert!((0.0..=1.0).contains(&c.degree));
        }
        // No conflicts -> empty refinement.
        let clean = d.session();
        assert!(clean.refined_candidates(8, 0.5).is_empty());
    }

    #[test]
    fn excused_session_skips_models() {
        let d = divider_diagnoser();
        let r1 = d.netlist().component_by_name("R1").unwrap();
        // With R1's model withdrawn, a wildly wrong reading cannot
        // implicate R1's constraints (no derivation uses them), so the
        // conflicts fall on R2 and the connection.
        let mut s = d.session_excusing(&[r1]);
        s.measure("Vmid", FuzzyInterval::crisp(9.0).widened(0.02).unwrap())
            .unwrap();
        s.propagate();
        let nogoods = s.propagator().atms().nogoods();
        let a_r1 = s.propagator().component_assumption(r1.index());
        assert!(
            nogoods.iter().all(|n| !n.env.contains(a_r1)),
            "withdrawn model must not appear in conflicts: {nogoods:?}"
        );
    }

    #[test]
    fn sessions_are_independent() {
        let d = divider_diagnoser();
        let mut s1 = d.session();
        s1.measure("Vmid", FuzzyInterval::crisp(9.0).widened(0.02).unwrap())
            .unwrap();
        s1.propagate();
        assert!(!s1.candidates(2, 16).is_empty());
        // A fresh session starts clean.
        let s2 = d.session();
        assert!(s2.candidates(2, 16).is_empty());
        assert_eq!(s2.probed(), vec![false, false]);
    }

    #[test]
    fn prediction_checked_bounds() {
        let d = divider_diagnoser();
        assert!(d.prediction_checked(0).is_some());
        assert!(d.prediction_checked(1).is_some());
        assert!(d.prediction_checked(2).is_none());
        assert_eq!(d.prediction(0), d.prediction_checked(0).unwrap());
    }

    #[test]
    fn cloned_diagnoser_shares_the_model() {
        let d = divider_diagnoser();
        let d2 = d.clone();
        assert!(Arc::ptr_eq(d.model(), d2.model()));
        assert!(std::ptr::eq(d.netlist(), d2.netlist()));
    }

    /// One faulty-board scenario, reused by the serving tests below.
    fn faulty_report(s: &mut Session<'_>) -> Report {
        s.measure("Vmid", FuzzyInterval::crisp(6.1).widened(0.05).unwrap())
            .unwrap();
        s.propagate();
        s.report()
    }

    #[test]
    fn cold_session_matches_compiled_session() {
        let d = divider_diagnoser();
        let compiled = faulty_report(&mut d.session());
        let cold = faulty_report(&mut d.cold_session());
        assert_eq!(
            format!("{compiled:?}"),
            format!("{cold:?}"),
            "compiled path must be byte-identical to the legacy rebuild"
        );
    }

    #[test]
    fn reset_session_matches_fresh_session() {
        let d = divider_diagnoser();
        let expected = faulty_report(&mut d.session());
        let mut warm = d.session();
        // Run a different board first, then reset and replay.
        warm.measure("Vmid", FuzzyInterval::crisp(4.1).widened(0.02).unwrap())
            .unwrap();
        warm.set_prior("R2", FuzzyInterval::new(0.7, 0.8, 0.1, 0.1).unwrap())
            .unwrap();
        warm.propagate();
        warm.reset();
        assert_eq!(warm.probed(), vec![false, false]);
        let replay = faulty_report(&mut warm);
        assert_eq!(format!("{replay:?}"), format!("{expected:?}"));
    }

    #[test]
    fn pool_recycles_sessions() {
        let d = divider_diagnoser();
        let mut pool = SessionPool::new(&d);
        assert_eq!(pool.idle_count(), 0);
        pool.warm(2);
        assert_eq!(pool.idle_count(), 2);
        let s1 = pool.acquire();
        let s2 = pool.acquire();
        let s3 = pool.acquire(); // pool empty: fresh session
        assert_eq!(pool.idle_count(), 0);
        pool.release(s1);
        pool.release(s2);
        pool.release(s3);
        assert_eq!(pool.idle_count(), 3);
        // Excused sessions are not pooled.
        let r1 = d.netlist().component_by_name("R1").unwrap();
        pool.release(d.session_excusing(&[r1]));
        assert_eq!(pool.idle_count(), 3);
        // A recycled session behaves like a fresh one.
        let expected = faulty_report(&mut d.session());
        let got = faulty_report(&mut pool.acquire());
        assert_eq!(format!("{got:?}"), format!("{expected:?}"));
    }

    #[test]
    fn batch_matches_sequential_for_any_thread_count() {
        let d = divider_diagnoser();
        let boards: Vec<Board> = (0..7)
            .map(|i| {
                let v = 4.0 + 0.4 * f64::from(i);
                vec![(0usize, FuzzyInterval::crisp(v).widened(0.05).unwrap())]
            })
            .collect();
        // Ground truth: a fresh session per board.
        let expected: Vec<Report> = boards
            .iter()
            .map(|board| {
                let mut s = d.session();
                for &(idx, value) in board {
                    s.measure_point(idx, value).unwrap();
                }
                s.propagate();
                s.report()
            })
            .collect();
        for threads in [1, 2, 3, 8] {
            let got = diagnose_batch(&d, &boards, threads).unwrap();
            assert_eq!(
                format!("{got:?}"),
                format!("{expected:?}"),
                "{threads}-thread batch must be byte-identical to sequential"
            );
        }
        // Per-board errors surface.
        let bad: Vec<Board> = vec![vec![(99, FuzzyInterval::crisp(0.0))]];
        assert!(diagnose_batch(&d, &bad, 2).is_err());
    }
}
