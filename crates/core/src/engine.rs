use crate::propagation::{CoincidenceRecord, Propagator, PropagatorConfig, ValueEntry};
use crate::Result;
use flames_atms::{Env, Nogood, RankedDiagnosis};
use flames_circuit::constraint::{extract, ExtractOptions, Network, QuantityId};
use flames_circuit::predict::{nominal_predictions, TestPoint};
use flames_circuit::{Net, Netlist};
use flames_fuzzy::{Consistency, FuzzyInterval};
use std::fmt;

/// Configuration of a [`Diagnoser`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DiagnoserConfig {
    /// Propagation engine knobs (t-norm, conflict threshold, caps).
    pub propagator: PropagatorConfig,
    /// Model extraction options.
    pub extract: ExtractOptions,
}

/// A ranked diagnosis candidate with human-readable member names.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// Names of the implicated components (or `conn:<net>` connections).
    pub members: Vec<String>,
    /// The underlying assumption set.
    pub env: Env,
    /// Seriousness degree (see
    /// [`flames_atms::FuzzyAtms::ranked_diagnoses`]).
    pub degree: f64,
}

impl fmt::Display for Candidate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] @ {:.2}", self.members.join(", "), self.degree)
    }
}

/// Per-test-point entry of a [`Report`].
#[derive(Debug, Clone, PartialEq)]
pub struct PointReport {
    /// The test point's name.
    pub name: String,
    /// The model's fuzzy prediction.
    pub predicted: FuzzyInterval,
    /// The measured value, if this point has been probed.
    pub measured: Option<FuzzyInterval>,
    /// `Dc(measured, predicted)` with deviation direction, if probed.
    pub consistency: Option<Consistency>,
}

/// A diagnosis snapshot: per-point consistencies, the graded nogoods, and
/// the ranked candidates — the content of the paper's Fig. 7 table rows.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// One entry per test point.
    pub points: Vec<PointReport>,
    /// Nogoods as (rendered member set, degree), strongest first.
    pub nogoods: Vec<(String, f64)>,
    /// Ranked candidates (initial suspects).
    pub candidates: Vec<Candidate>,
    /// Refined candidates (degree-filtered, Dc-exonerated) — the paper's
    /// `==>` column.
    pub refined: Vec<Candidate>,
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "test points:")?;
        for p in &self.points {
            match (&p.measured, &p.consistency) {
                (Some(m), Some(dc)) => writeln!(
                    f,
                    "  {:<6} predicted {:.3}  measured {:.3}  Dc = {}",
                    p.name, p.predicted, m, dc
                )?,
                _ => writeln!(
                    f,
                    "  {:<6} predicted {:.3}  (not probed)",
                    p.name, p.predicted
                )?,
            }
        }
        writeln!(f, "nogoods:")?;
        for (set, degree) in &self.nogoods {
            writeln!(f, "  {set} @ {degree:.2}")?;
        }
        writeln!(f, "candidates:")?;
        for c in &self.candidates {
            writeln!(f, "  {c}")?;
        }
        writeln!(f, "refined:")?;
        for c in &self.refined {
            writeln!(f, "  {c}")?;
        }
        Ok(())
    }
}

/// The FLAMES diagnoser for one circuit: the extracted model database,
/// the declared test points, and their tolerance-aware nominal
/// predictions.
///
/// Build once per circuit; open a fresh [`Session`] per board under test.
#[derive(Debug, Clone)]
pub struct Diagnoser {
    netlist: Netlist,
    network: Network,
    test_points: Vec<TestPoint>,
    predictions: Vec<FuzzyInterval>,
    config: DiagnoserConfig,
}

impl Diagnoser {
    /// Builds a diagnoser: extracts the constraint network and computes
    /// fuzzy nominal predictions for every test point.
    ///
    /// # Errors
    ///
    /// Propagates circuit-solver failures from the prediction corners.
    pub fn from_netlist(
        netlist: &Netlist,
        test_points: Vec<TestPoint>,
        config: DiagnoserConfig,
    ) -> Result<Self> {
        let network = extract(netlist, config.extract);
        let nets: Vec<Net> = test_points.iter().map(|tp| tp.net).collect();
        let predictions = nominal_predictions(netlist, &nets)?;
        Ok(Self {
            netlist: netlist.clone(),
            network,
            test_points,
            predictions,
            config,
        })
    }

    /// Builds a diagnoser from an already-extracted network (used when
    /// the builder added specs or extra seeds) with explicit predictions.
    #[must_use]
    pub fn from_network(
        netlist: &Netlist,
        network: Network,
        test_points: Vec<TestPoint>,
        predictions: Vec<FuzzyInterval>,
        config: DiagnoserConfig,
    ) -> Self {
        Self {
            netlist: netlist.clone(),
            network,
            test_points,
            predictions,
            config,
        }
    }

    /// The declared test points.
    #[must_use]
    pub fn test_points(&self) -> &[TestPoint] {
        &self.test_points
    }

    /// The fuzzy nominal prediction of a test point (by index).
    ///
    /// # Panics
    ///
    /// Panics for an out-of-range index.
    #[must_use]
    pub fn prediction(&self, point: usize) -> &FuzzyInterval {
        &self.predictions[point]
    }

    /// The extracted constraint network.
    #[must_use]
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// The netlist the diagnoser was built from.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Opens a fresh diagnosis session: a propagator loaded with the
    /// model seeds and the test-point predictions.
    #[must_use]
    pub fn session(&self) -> Session<'_> {
        self.session_excusing(&[])
    }

    /// Opens a session with the listed components' models *withdrawn*
    /// (their constraints and parameter seeds skipped) — the §6.2
    /// model-validity mechanism: a device driven out of the operating
    /// region its model assumes must not generate secondary conflicts.
    /// Test-point predictions whose cone contains an excused component
    /// are withheld too (they were computed with the invalid model).
    #[must_use]
    pub fn session_excusing(&self, excused: &[flames_circuit::CompId]) -> Session<'_> {
        let mut prop = if excused.is_empty() {
            Propagator::new(&self.netlist, &self.network, self.config.propagator)
        } else {
            Propagator::new_excusing(
                &self.netlist,
                &self.network,
                self.config.propagator,
                excused,
            )
        };
        for (tp, pred) in self.test_points.iter().zip(&self.predictions) {
            if tp.support.iter().any(|c| excused.contains(c)) {
                continue;
            }
            let q = self.network.voltage_quantity(tp.net);
            prop.predict(q, *pred, &tp.support, 1.0)
                .expect("test-point quantities exist in the extracted network");
        }
        Session {
            diagnoser: self,
            prop,
            measured: vec![None; self.test_points.len()],
            priors: vec![None; self.netlist.component_count()],
        }
    }
}

/// One diagnosis run against one (possibly faulty) board.
#[derive(Debug, Clone)]
pub struct Session<'d> {
    diagnoser: &'d Diagnoser,
    prop: Propagator<'d>,
    measured: Vec<Option<FuzzyInterval>>,
    priors: Vec<Option<FuzzyInterval>>,
}

impl<'d> Session<'d> {
    /// Records a measurement at a test point, by name.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CoreError::UnknownName`] for an unknown point.
    pub fn measure(&mut self, point: &str, value: FuzzyInterval) -> Result<()> {
        let idx = self
            .diagnoser
            .test_points
            .iter()
            .position(|tp| tp.name == point)
            .ok_or_else(|| crate::CoreError::UnknownName {
                name: point.to_owned(),
            })?;
        self.measure_point(idx, value)
    }

    /// Records a measurement at a test point, by index.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CoreError::UnknownName`] for an out-of-range
    /// index.
    pub fn measure_point(&mut self, idx: usize, value: FuzzyInterval) -> Result<()> {
        let tp =
            self.diagnoser
                .test_points
                .get(idx)
                .ok_or_else(|| crate::CoreError::UnknownName {
                    name: format!("test point #{idx}"),
                })?;
        let q = self.diagnoser.network.voltage_quantity(tp.net);
        self.prop.observe(q, value)?;
        self.measured[idx] = Some(value);
        Ok(())
    }

    /// Runs propagation to quiescence; returns the number of constraint
    /// applications.
    pub fn propagate(&mut self) -> usize {
        self.prop.run()
    }

    /// `Dc(measured, predicted)` of a probed test point.
    #[must_use]
    pub fn consistency(&self, point: &str) -> Option<Consistency> {
        let idx = self
            .diagnoser
            .test_points
            .iter()
            .position(|tp| tp.name == point)?;
        let measured = self.measured[idx]?;
        Some(Consistency::between(
            &measured,
            &self.diagnoser.predictions[idx],
        ))
    }

    /// Ranked candidates (minimal hitting sets of the graded nogoods),
    /// rendered with component names.
    #[must_use]
    pub fn candidates(&self, max_size: usize, max_count: usize) -> Vec<Candidate> {
        self.prop
            .atms()
            .ranked_diagnoses(max_size, max_count)
            .into_iter()
            .map(|RankedDiagnosis { env, degree }| Candidate {
                members: env
                    .iter()
                    .map(|a| self.prop.assumption_name(a).to_owned())
                    .collect(),
                env,
                degree,
            })
            .collect()
    }

    /// Refined candidates — the right-hand side of the paper's Fig. 7
    /// rows (`{initial} ==> {refined}`): the **single-fault refinement**.
    ///
    /// Three gradings are applied on top of [`Session::candidates`]:
    ///
    /// * **degree filtering** (the paper's "list of nogoods sorted
    ///   according to their consistency degrees … allows to restrict the
    ///   effect of explosion"): only nogoods with degree at least
    ///   `rho × max_degree` are considered, so noise-level conflicts stop
    ///   steering the refinement;
    /// * **specificity**: among the strong nogoods, the smallest
    ///   (most informative) conflict sets name the suspects — secondary
    ///   conflicts raised downstream of an already-deviating point do not
    ///   dilute them;
    /// * **exoneration by Dc**: each suspect is scored by its strongest
    ///   conflict, discounted by the degree of consistency of the most
    ///   specific probed test point covering it — "thanks to Dc" a
    ///   component sitting under a consistent probe drops down the
    ///   ranking. Assumptions with no covering point (connections) are
    ///   discounted by the best Dc observed anywhere.
    ///
    /// The returned candidates are single components; use
    /// [`Session::candidates`] for the complete multiple-fault lattice.
    #[must_use]
    pub fn refined_candidates(&self, max_count: usize, rho: f64) -> Vec<Candidate> {
        let nogoods = self.prop.atms().nogoods();
        let max_degree = nogoods.iter().map(|n| n.degree).fold(0.0, f64::max);
        if max_degree <= 0.0 {
            return Vec::new();
        }
        let cut = rho.clamp(0.0, 1.0) * max_degree;
        let strong: Vec<&flames_atms::Nogood> =
            nogoods.iter().filter(|n| n.degree >= cut).collect();
        let min_size = strong.iter().map(|n| n.env.len()).min().unwrap_or(0);
        let mut members: Vec<flames_atms::Assumption> = strong
            .iter()
            .filter(|n| n.env.len() == min_size)
            .flat_map(|n| n.env.iter())
            .collect();
        members.sort();
        members.dedup();
        let mut out: Vec<Candidate> = members
            .into_iter()
            .map(|a| {
                let degree = self.prop.atms().suspicion(a) * (1.0 - self.exoneration(a));
                Candidate {
                    members: vec![self.prop.assumption_name(a).to_owned()],
                    env: Env::singleton(a),
                    degree,
                }
            })
            .collect();
        out.sort_by(|p, q| {
            q.degree
                .partial_cmp(&p.degree)
                .expect("finite degrees")
                .then_with(|| p.env.cmp(&q.env))
        });
        out.truncate(max_count);
        out
    }

    /// Dc-based exoneration of an assumption: the consistency degree of
    /// the most specific (smallest-cone) probed point covering it, or the
    /// best Dc observed anywhere for assumptions outside every cone.
    fn exoneration(&self, a: flames_atms::Assumption) -> f64 {
        let mut best: Option<(usize, f64)> = None;
        let mut any_dc: f64 = 0.0;
        for (idx, tp) in self.diagnoser.test_points.iter().enumerate() {
            let Some(measured) = self.measured[idx] else {
                continue;
            };
            let dc = Consistency::between(&measured, &self.diagnoser.predictions[idx]).degree();
            any_dc = any_dc.max(dc);
            let covers = tp
                .support
                .iter()
                .any(|c| self.prop.component_assumption(c.index()) == a);
            if covers {
                let cone = tp.support.len();
                if best.is_none_or(|(sz, _)| cone < sz) {
                    best = Some((cone, dc));
                }
            }
        }
        best.map_or(any_dc, |(_, dc)| dc)
    }

    /// Suspicion degree of a component (strongest conflict implicating
    /// it), by name; `None` for unknown names.
    #[must_use]
    pub fn suspicion(&self, component: &str) -> Option<f64> {
        let id = self.diagnoser.netlist.component_by_name(component)?;
        Some(
            self.prop
                .atms()
                .suspicion(self.prop.component_assumption(id.index())),
        )
    }

    /// Records the expert's a priori faultiness estimation of a component
    /// (§5: "a priori estimations of faultiness in components"). The set
    /// must live inside `[0, 1]`; it replaces the default "unknown"
    /// estimation and floors the suspicion-based one.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CoreError::UnknownName`] for an unknown
    /// component, or a fuzzy-calculus error if the set leaves the unit
    /// interval.
    pub fn set_prior(&mut self, component: &str, estimation: FuzzyInterval) -> Result<()> {
        let id = self
            .diagnoser
            .netlist
            .component_by_name(component)
            .ok_or_else(|| crate::CoreError::UnknownName {
                name: component.to_owned(),
            })?;
        let (lo, hi) = estimation.support();
        if lo < -1e-9 || hi > 1.0 + 1e-9 {
            return Err(crate::CoreError::Fuzzy(
                flames_fuzzy::FuzzyError::EstimationOutOfRange {
                    value: if lo < 0.0 { lo } else { hi },
                },
            ));
        }
        self.priors[id.index()] = Some(estimation);
        Ok(())
    }

    /// Fuzzy faultiness estimations per component (§8.1): suspicion-based
    /// fuzzy numbers for implicated components (floored by any expert
    /// prior), near-"correct" sets for components exonerated by a
    /// consistent measurement covering them, the expert's prior where one
    /// was given, and a mid-scale "unknown" otherwise. Returned in
    /// netlist component order as `(name, estimation)`.
    #[must_use]
    pub fn estimations(&self) -> Vec<(String, FuzzyInterval)> {
        let exonerated = self.exonerated_components();
        self.diagnoser
            .netlist
            .components()
            .map(|(id, comp)| {
                let a = self.prop.component_assumption(id.index());
                let s = self.prop.atms().suspicion(a);
                let prior = self.priors[id.index()];
                let est = if s > 0.0 {
                    // Suspicion s as a fuzzy estimation around s.
                    let lo = (s - 0.1).max(0.0);
                    let hi = (s + 0.05).min(1.0);
                    let from_suspicion =
                        FuzzyInterval::new(lo, hi, lo.min(0.05), (1.0 - hi).min(0.05))
                            .expect("estimation inside unit interval");
                    match prior {
                        Some(p) => from_suspicion.max_ext(&p),
                        None => from_suspicion,
                    }
                } else if exonerated[id.index()] {
                    FuzzyInterval::new(0.0, 0.05, 0.0, 0.05).expect("static")
                } else if let Some(p) = prior {
                    p
                } else {
                    FuzzyInterval::new(0.3, 0.5, 0.1, 0.1).expect("static")
                };
                (comp.name().to_owned(), est)
            })
            .collect()
    }

    /// Marks components covered by a fully consistent probed point.
    fn exonerated_components(&self) -> Vec<bool> {
        let mut out = vec![false; self.diagnoser.netlist.component_count()];
        for (idx, tp) in self.diagnoser.test_points.iter().enumerate() {
            let Some(measured) = self.measured[idx] else {
                continue;
            };
            let dc = Consistency::between(&measured, &self.diagnoser.predictions[idx]);
            if dc.is_consistent() {
                for comp in &tp.support {
                    out[comp.index()] = true;
                }
            }
        }
        out
    }

    /// Builds the full snapshot report.
    #[must_use]
    pub fn report(&self) -> Report {
        let points = self
            .diagnoser
            .test_points
            .iter()
            .enumerate()
            .map(|(idx, tp)| PointReport {
                name: tp.name.clone(),
                predicted: self.diagnoser.predictions[idx],
                measured: self.measured[idx],
                consistency: self.measured[idx]
                    .map(|m| Consistency::between(&m, &self.diagnoser.predictions[idx])),
            })
            .collect();
        let nogoods = self
            .prop
            .atms()
            .sorted_nogoods()
            .into_iter()
            .map(|Nogood { env, degree }| (self.prop.pool().render(env.iter()), degree))
            .collect();
        let candidates = self.candidates(3, 64);
        let refined = self.refined_candidates(16, 0.5);
        Report {
            points,
            nogoods,
            candidates,
            refined,
        }
    }

    /// The diagnoser this session runs against.
    #[must_use]
    pub fn diagnoser(&self) -> &'d Diagnoser {
        self.diagnoser
    }

    /// The underlying propagator (labels, coincidences, ATMS).
    #[must_use]
    pub fn propagator(&self) -> &Propagator<'d> {
        &self.prop
    }

    /// Mutable access to the propagator, for expert extensions (extra
    /// nogoods, fault-model rules).
    #[must_use]
    pub fn propagator_mut(&mut self) -> &mut Propagator<'d> {
        &mut self.prop
    }

    /// All coincidences recorded by propagation.
    #[must_use]
    pub fn coincidences(&self) -> &[CoincidenceRecord] {
        self.prop.coincidences()
    }

    /// Which test points have been probed so far (by index).
    #[must_use]
    pub fn probed(&self) -> Vec<bool> {
        self.measured.iter().map(Option::is_some).collect()
    }

    /// The best derived value of a quantity, if any (exposes the label
    /// store for inspection and for fault-model parameter inference).
    #[must_use]
    pub fn best_value(&self, q: QuantityId) -> Option<&ValueEntry> {
        self.prop.best_value(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flames_circuit::{Fault, Net};

    fn divider_diagnoser() -> Diagnoser {
        let mut nl = Netlist::new();
        let vin = nl.add_net("vin");
        let mid = nl.add_net("mid");
        nl.add_voltage_source("V", vin, Net::GROUND, 10.0).unwrap();
        let r1 = nl.add_resistor("R1", vin, mid, 1000.0, 0.05).unwrap();
        let r2 = nl
            .add_resistor("R2", mid, Net::GROUND, 1000.0, 0.05)
            .unwrap();
        let points = vec![
            TestPoint::new(mid, "Vmid", vec![r1, r2]),
            TestPoint::new(vin, "Vin", vec![]),
        ];
        Diagnoser::from_netlist(&nl, points, DiagnoserConfig::default()).unwrap()
    }

    #[test]
    fn healthy_board_reports_consistent() {
        let d = divider_diagnoser();
        let mut s = d.session();
        s.measure("Vmid", FuzzyInterval::crisp(5.0).widened(0.05).unwrap())
            .unwrap();
        s.propagate();
        let dc = s.consistency("Vmid").unwrap();
        assert!(dc.is_consistent());
        assert!(s.candidates(2, 16).is_empty());
        let report = s.report();
        assert!(report.nogoods.is_empty());
        assert_eq!(report.points.len(), 2);
        assert!(report.points[1].measured.is_none());
    }

    #[test]
    fn faulty_board_yields_candidates() {
        let d = divider_diagnoser();
        // R1 drifted 40 % high: mid voltage drops to 10·(1/2.4) ≈ 4.17.
        let r1 = d.netlist().component_by_name("R1").unwrap();
        let bad =
            flames_circuit::fault::inject_faults(d.netlist(), &[(r1, Fault::ParamFactor(1.4))])
                .unwrap();
        let reading = flames_circuit::predict::measure(&bad, d.test_points()[0].net, 0.02).unwrap();
        let mut s = d.session();
        s.measure("Vmid", reading).unwrap();
        s.propagate();
        let dc = s.consistency("Vmid").unwrap();
        assert!(!dc.is_consistent());
        assert_eq!(dc.direction(), flames_fuzzy::Direction::Low);
        let candidates = s.candidates(2, 32);
        assert!(!candidates.is_empty());
        let names: Vec<&str> = candidates
            .iter()
            .flat_map(|c| c.members.iter().map(String::as_str))
            .collect();
        assert!(names.contains(&"R1") || names.contains(&"R2"));
        // Suspicion is positive for the divider resistors.
        assert!(s.suspicion("R1").unwrap() > 0.0);
        assert_eq!(s.suspicion("nope"), None);
    }

    #[test]
    fn estimations_reflect_session_state() {
        let d = divider_diagnoser();
        let mut s = d.session();
        // Nothing measured: everything mid-scale except nothing exonerated.
        let est0 = s.estimations();
        assert_eq!(est0.len(), 3);
        for (_, e) in &est0 {
            assert!(e.core_lo() >= 0.2);
        }
        // Healthy measurement exonerates the support cone.
        s.measure("Vmid", FuzzyInterval::crisp(5.0).widened(0.05).unwrap())
            .unwrap();
        s.propagate();
        let est = s.estimations();
        let r1 = est.iter().find(|(n, _)| n == "R1").unwrap();
        assert!(r1.1.core_hi() <= 0.1, "R1 exonerated: {}", r1.1);
    }

    #[test]
    fn unknown_point_is_an_error() {
        let d = divider_diagnoser();
        let mut s = d.session();
        assert!(matches!(
            s.measure("nope", FuzzyInterval::crisp(0.0)),
            Err(crate::CoreError::UnknownName { .. })
        ));
        assert!(s.measure_point(99, FuzzyInterval::crisp(0.0)).is_err());
        assert!(s.consistency("nope").is_none());
    }

    #[test]
    fn report_renders() {
        let d = divider_diagnoser();
        let mut s = d.session();
        s.measure("Vmid", FuzzyInterval::crisp(6.0).widened(0.05).unwrap())
            .unwrap();
        s.propagate();
        let text = format!("{}", s.report());
        assert!(text.contains("Vmid"));
        assert!(text.contains("candidates:"));
        assert!(!s.report().candidates.is_empty());
        let c = &s.report().candidates[0];
        assert!(format!("{c}").contains('@'));
    }

    #[test]
    fn expert_priors_shape_estimations() {
        let d = divider_diagnoser();
        let mut s = d.session();
        // The expert believes R2 came from a bad batch.
        let suspect = FuzzyInterval::new(0.7, 0.8, 0.1, 0.1).unwrap();
        s.set_prior("R2", suspect).unwrap();
        let est = s.estimations();
        let r2 = est.iter().find(|(n, _)| n == "R2").unwrap();
        assert!(r2.1.core_lo() >= 0.7 - 1e-9);
        let r1 = est.iter().find(|(n, _)| n == "R1").unwrap();
        assert!(r1.1.core_lo() < 0.7, "R1 keeps the default estimation");
        // Priors outside the unit interval are rejected, as are unknown names.
        assert!(s
            .set_prior("R2", FuzzyInterval::new(0.9, 1.4, 0.0, 0.0).unwrap())
            .is_err());
        assert!(s.set_prior("nope", suspect).is_err());
        // After exoneration by a consistent probe, the prior yields.
        s.measure("Vmid", FuzzyInterval::crisp(5.0).widened(0.05).unwrap())
            .unwrap();
        s.propagate();
        let est = s.estimations();
        let r2 = est.iter().find(|(n, _)| n == "R2").unwrap();
        assert!(
            r2.1.core_hi() <= 0.1,
            "consistent evidence overrides the prior"
        );
    }

    #[test]
    fn refinement_rho_extremes() {
        let d = divider_diagnoser();
        let mut s = d.session();
        s.measure("Vmid", FuzzyInterval::crisp(7.0).widened(0.05).unwrap())
            .unwrap();
        s.propagate();
        // rho = 0 keeps every nogood; rho = 1 keeps only the strongest.
        let all = s.refined_candidates(64, 0.0);
        let strongest = s.refined_candidates(64, 1.0);
        assert!(!all.is_empty());
        assert!(!strongest.is_empty());
        assert!(strongest.len() <= all.len());
        for c in all.iter().chain(&strongest) {
            assert_eq!(c.members.len(), 1);
            assert!((0.0..=1.0).contains(&c.degree));
        }
        // No conflicts -> empty refinement.
        let clean = d.session();
        assert!(clean.refined_candidates(8, 0.5).is_empty());
    }

    #[test]
    fn excused_session_skips_models() {
        let d = divider_diagnoser();
        let r1 = d.netlist().component_by_name("R1").unwrap();
        // With R1's model withdrawn, a wildly wrong reading cannot
        // implicate R1's constraints (no derivation uses them), so the
        // conflicts fall on R2 and the connection.
        let mut s = d.session_excusing(&[r1]);
        s.measure("Vmid", FuzzyInterval::crisp(9.0).widened(0.02).unwrap())
            .unwrap();
        s.propagate();
        let nogoods = s.propagator().atms().nogoods();
        let a_r1 = s.propagator().component_assumption(r1.index());
        assert!(
            nogoods.iter().all(|n| !n.env.contains(a_r1)),
            "withdrawn model must not appear in conflicts: {nogoods:?}"
        );
    }

    #[test]
    fn sessions_are_independent() {
        let d = divider_diagnoser();
        let mut s1 = d.session();
        s1.measure("Vmid", FuzzyInterval::crisp(9.0).widened(0.02).unwrap())
            .unwrap();
        s1.propagate();
        assert!(!s1.candidates(2, 16).is_empty());
        // A fresh session starts clean.
        let s2 = d.session();
        assert!(s2.candidates(2, 16).is_empty());
        assert_eq!(s2.probed(), vec![false, false]);
    }
}
