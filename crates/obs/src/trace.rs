//! Span-based diagnosis traces on a deterministic logical clock.
//!
//! A [`Trace`] is an append-only list of [`TraceEvent`]s — complete
//! spans (`ph: "X"`) and instants (`ph: "i"`) — timestamped by a
//! *logical* microsecond counter rather than wall clock, so the trace
//! of a diagnosis is a pure function of the work performed: two
//! sessions doing identical work produce byte-identical traces, which
//! is what lets cold/compiled/pooled paths be cross-checked at the
//! trace level.
//!
//! [`Trace::to_chrome_json`] renders the Chrome `trace_event` format
//! (the `{"traceEvents": [...]}` object form) accepted by
//! `about:tracing` and Perfetto.

use std::fmt::Write as _;

/// A typed event argument (rendered into the `args` object).
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// An unsigned integer.
    U64(u64),
    /// A float (rendered with enough digits to round-trip).
    F64(f64),
    /// A string (JSON-escaped on export).
    Str(String),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        Self::U64(v)
    }
}

impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        Self::F64(v)
    }
}

impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        Self::Str(v.to_owned())
    }
}

impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        Self::Str(v)
    }
}

/// One Chrome `trace_event` record.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event name (shown on the timeline slice).
    pub name: String,
    /// Category, used by about:tracing filters (e.g. `"atms"`).
    pub cat: &'static str,
    /// Phase: `'X'` complete span, `'i'` instant.
    pub ph: char,
    /// Logical timestamp in microseconds.
    pub ts: u64,
    /// Span duration (complete spans only; 0 for instants).
    pub dur: u64,
    /// Key/value payload.
    pub args: Vec<(String, ArgValue)>,
}

/// An append-only event log with a logical clock.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    events: Vec<TraceEvent>,
    clock: u64,
}

impl Trace {
    /// An empty trace at logical time 0.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Current logical time (microseconds).
    #[must_use]
    pub fn now(&self) -> u64 {
        self.clock
    }

    /// Advances the logical clock by one tick and returns the new time.
    pub fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Records an instant event at the current logical time.
    pub fn instant(
        &mut self,
        name: impl Into<String>,
        cat: &'static str,
        args: Vec<(String, ArgValue)>,
    ) {
        let ts = self.tick();
        self.events.push(TraceEvent {
            name: name.into(),
            cat,
            ph: 'i',
            ts,
            dur: 0,
            args,
        });
    }

    /// Records a complete span from `start_ts` (a value previously
    /// returned by [`Trace::now`] or [`Trace::tick`]) to the current
    /// logical time.
    pub fn complete(
        &mut self,
        name: impl Into<String>,
        cat: &'static str,
        start_ts: u64,
        args: Vec<(String, ArgValue)>,
    ) {
        let end = self.tick();
        self.events.push(TraceEvent {
            name: name.into(),
            cat,
            ph: 'X',
            ts: start_ts,
            dur: end.saturating_sub(start_ts),
            args,
        });
    }

    /// The recorded events, in append order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Renders the Chrome `trace_event` object form.
    #[must_use]
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":{},\"cat\":\"{}\",\"ph\":\"{}\",\"pid\":1,\"tid\":1,\"ts\":{}",
                escape_json(&ev.name),
                ev.cat,
                ev.ph,
                ev.ts
            );
            if ev.ph == 'X' {
                let _ = write!(out, ",\"dur\":{}", ev.dur);
            }
            out.push_str(",\"args\":{");
            for (j, (key, value)) in ev.args.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{}:", escape_json(key));
                match value {
                    ArgValue::U64(v) => {
                        let _ = write!(out, "{v}");
                    }
                    ArgValue::F64(v) => {
                        if v.is_finite() {
                            let mut s = format!("{v}");
                            // `{}` on an integral f64 prints "1", which
                            // is still valid JSON, but keep the type
                            // visible for trace viewers.
                            if !s.contains('.') && !s.contains('e') {
                                s.push_str(".0");
                            }
                            out.push_str(&s);
                        } else {
                            let _ = write!(out, "\"{v}\"");
                        }
                    }
                    ArgValue::Str(v) => out.push_str(&escape_json(v)),
                }
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }
}

/// JSON-escapes a string, including the surrounding quotes.
#[must_use]
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Validates that `json` is a loadable Chrome `trace_event` document:
/// a top-level object with a `traceEvents` array whose elements carry
/// `name`/`ph`/`ts`/`pid`/`tid` of the right types. Returns the event
/// count.
///
/// # Errors
///
/// Returns a description of the first violation found.
pub fn validate_chrome_trace(json: &str) -> Result<usize, String> {
    let value = crate::json::parse(json)?;
    let obj = value.as_object().ok_or("top level is not an object")?;
    let events = obj
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .map(|(_, v)| v)
        .ok_or("missing traceEvents key")?;
    let events = events.as_array().ok_or("traceEvents is not an array")?;
    for (i, ev) in events.iter().enumerate() {
        let ev = ev
            .as_object()
            .ok_or(format!("event {i} is not an object"))?;
        let field = |key: &str| {
            ev.iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or(format!("event {i} missing {key:?}"))
        };
        field("name")?
            .as_str()
            .ok_or(format!("event {i}: name is not a string"))?;
        let ph = field("ph")?
            .as_str()
            .ok_or(format!("event {i}: ph is not a string"))?;
        if ph.chars().count() != 1 {
            return Err(format!("event {i}: ph {ph:?} is not a single character"));
        }
        field("ts")?
            .as_f64()
            .ok_or(format!("event {i}: ts is not a number"))?;
        field("pid")?
            .as_f64()
            .ok_or(format!("event {i}: pid is not a number"))?;
        field("tid")?
            .as_f64()
            .ok_or(format!("event {i}: tid is not a number"))?;
        if ph == "X" {
            field("dur")?
                .as_f64()
                .ok_or(format!("event {i}: dur is not a number"))?;
        }
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logical_clock_is_deterministic() {
        let build = || {
            let mut t = Trace::new();
            let start = t.now();
            t.instant("coincidence", "core", vec![("dc".into(), 0.25.into())]);
            t.complete("wave", "core", start, vec![("steps".into(), 12u64.into())]);
            t
        };
        assert_eq!(build(), build());
        assert_eq!(build().to_chrome_json(), build().to_chrome_json());
    }

    #[test]
    fn chrome_export_validates() {
        let mut t = Trace::new();
        let start = t.now();
        t.instant(
            "nogood",
            "atms",
            vec![
                ("env".into(), "{R1, R2}".into()),
                ("degree".into(), 1.0.into()),
            ],
        );
        t.complete("propagate", "core", start, vec![]);
        let json = t.to_chrome_json();
        assert_eq!(validate_chrome_trace(&json), Ok(2));
    }

    #[test]
    fn escaping_survives_hostile_names() {
        let mut t = Trace::new();
        t.instant("we\"ird\\name\n", "test", vec![]);
        let json = t.to_chrome_json();
        assert_eq!(validate_chrome_trace(&json), Ok(1));
    }

    #[test]
    fn empty_trace_is_valid() {
        assert_eq!(validate_chrome_trace(&Trace::new().to_chrome_json()), Ok(0));
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_chrome_trace("[]").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\": 3}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\": [{\"ph\": \"X\"}]}").is_err());
        assert!(validate_chrome_trace("not json").is_err());
    }
}
