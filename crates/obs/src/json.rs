//! A minimal recursive-descent JSON parser.
//!
//! Exists so the trace exporter and BENCH_*.json writers can be
//! round-trip *validated* in tests without pulling in serde — the
//! workspace is intentionally free of external crates. Not a general
//! replacement: it favours clarity over speed, keeps object members as
//! an ordered pair list (duplicate keys preserved), and parses numbers
//! through `f64`.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (via `f64`).
    Number(f64),
    /// A string (unescaped).
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object as an ordered `(key, value)` list.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object member list, if this is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(members) => Some(members),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Looks up an object member by key (first occurrence).
    #[must_use]
    pub fn member(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns a message with the byte offset of the first syntax error.
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", b as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Value::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        _ => Err(format!("unexpected input at byte {}", *pos)),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Value::Number)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        // Surrogate pairs are not needed for our own
                        // exports; map lone surrogates to U+FFFD.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy the maximal chunk up to the next quote or escape
                // in one go — validating the whole remaining input per
                // character would make parsing quadratic, which matters
                // for multi-megabyte traces.
                let start = *pos;
                while *pos < bytes.len() && !matches!(bytes[*pos], b'"' | b'\\') {
                    *pos += 1;
                }
                let chunk = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
                out.push_str(chunk);
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null"), Ok(Value::Null));
        assert_eq!(parse("true"), Ok(Value::Bool(true)));
        assert_eq!(parse(" -1.5e2 "), Ok(Value::Number(-150.0)));
        assert_eq!(parse("\"a\\nb\""), Ok(Value::String("a\nb".into())));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse("{\"a\": [1, {\"b\": \"x\"}], \"c\": false}").unwrap();
        assert_eq!(v.member("c"), Some(&Value::Bool(false)));
        let arr = v.member("a").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].member("b").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"open").is_err());
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(parse("\"\\u0041\""), Ok(Value::String("A".into())));
    }
}
