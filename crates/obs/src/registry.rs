//! The fixed metric registry and [`MetricsSnapshot`].
//!
//! All FLAMES counters live here, at the bottom of the dependency
//! graph, so every crate (kernel, engine, serving, circuit) increments
//! the same process-wide table and one snapshot sees the whole stack.
//!
//! Counters are *global*: tests that assert exact deltas must run in
//! their own process (a dedicated integration-test binary) so parallel
//! sibling tests cannot bleed counts into the window.

use crate::counter::{Counter, Gauge};

macro_rules! define_metrics {
    ($($field:ident => $name:literal,)+ @gauges $($gfield:ident => $gname:literal,)+) => {
        /// The process-wide counter table. Access via [`metrics()`].
        #[derive(Debug, Default)]
        pub struct Metrics {
            $(pub $field: Counter,)+
            $(pub $gfield: Gauge,)+
        }

        impl Metrics {
            const fn new() -> Self {
                Self {
                    $($field: Counter::new(),)+
                    $($gfield: Gauge::new(),)+
                }
            }

            fn values(&self) -> Vec<u64> {
                let mut v = Vec::with_capacity(METRIC_NAMES.len());
                $(v.push(self.$field.get());)+
                $(v.push(self.$gfield.get());)+
                v
            }
        }

        /// Every metric name, in snapshot order. Prefixes partition the
        /// stack: `atms.` / `core.` are deterministic kernel work,
        /// `serve.` covers pooling (thread-count dependent),
        /// `strategy.` the probe planner, `circuit.` the substrate.
        pub const METRIC_NAMES: &[&str] = &[$($name,)+ $($gname,)+];
    };
}

define_metrics! {
    // ATMS kernel -----------------------------------------------------
    env_intern_hits => "atms.env_intern_hits",
    env_intern_misses => "atms.env_intern_misses",
    subsumption_checks => "atms.subsumption_checks",
    prefilter_rejects => "atms.prefilter_rejects",
    label_merges => "atms.label_merges",
    label_updates => "atms.label_updates",
    nogood_installs => "atms.nogood_installs",
    nogood_subsumed => "atms.nogood_subsumed",
    hitting_expansions => "atms.hitting_expansions",
    candidates_incremental => "atms.candidates_incremental",
    candidates_rebuilt => "atms.candidates_rebuilt",
    // Fuzzy numeric kernel --------------------------------------------
    dc_fast_path => "fuzzy.dc_fast_path",
    dc_pwl_fallback => "fuzzy.dc_pwl_fallback",
    entropy_memo_hit => "fuzzy.entropy_memo_hit",
    entropy_memo_miss => "fuzzy.entropy_memo_miss",
    // Propagation engine ----------------------------------------------
    waves => "core.waves",
    constraint_apps => "core.constraint_apps",
    corroborations => "core.coincidence_corroborations",
    splits => "core.coincidence_splits",
    partial_conflicts => "core.coincidence_partial_conflicts",
    total_conflicts => "core.coincidence_total_conflicts",
    // Serving layer ---------------------------------------------------
    sessions_opened => "serve.sessions_opened",
    cold_sessions => "serve.cold_sessions",
    session_resets => "serve.session_resets",
    pool_hits => "serve.pool_hits",
    pool_misses => "serve.pool_misses",
    boards_diagnosed => "serve.boards_diagnosed",
    // HTTP diagnosis service (flames-serve) ---------------------------
    serve_accepted => "serve.accepted",
    serve_coalesced => "serve.coalesced",
    serve_deduped_boards => "serve.deduped_boards",
    serve_shed => "serve.shed",
    serve_deadline_missed => "serve.deadline_missed",
    // Probe planning ---------------------------------------------------
    probe_evals => "strategy.probe_evals",
    // Circuit substrate -----------------------------------------------
    models_extracted => "circuit.models_extracted",
    dc_solves => "circuit.dc_solves",
    // Region-sharded engine --------------------------------------------
    shard_boundary_envs => "shard.boundary_envs",
    shard_cross_nogoods => "shard.cross_nogoods",
    shard_waves => "shard.waves",
    @gauges
    pool_idle => "serve.pool_idle",
}

static METRICS: Metrics = Metrics::new();

/// The process-wide metric table.
#[must_use]
pub fn metrics() -> &'static Metrics {
    &METRICS
}

/// A point-in-time capture of every registered metric.
///
/// With the `enabled` feature off this still constructs (all zeros), so
/// consumers compile identically in both builds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    values: Vec<u64>,
}

impl MetricsSnapshot {
    /// Captures the current table.
    #[must_use]
    pub fn capture() -> Self {
        Self {
            values: METRICS.values(),
        }
    }

    /// The counts accumulated between `earlier` and `self`
    /// (saturating, so a gauge that moved down reads 0).
    #[must_use]
    pub fn delta_since(&self, earlier: &Self) -> Self {
        Self {
            values: self
                .values
                .iter()
                .zip(&earlier.values)
                .map(|(now, then)| now.saturating_sub(*then))
                .collect(),
        }
    }

    /// Looks a metric up by its registered name.
    ///
    /// # Panics
    ///
    /// Panics on a name absent from [`METRIC_NAMES`] — a typo at the
    /// call site, not a runtime condition.
    #[must_use]
    pub fn get(&self, name: &str) -> u64 {
        let idx = METRIC_NAMES
            .iter()
            .position(|n| *n == name)
            .unwrap_or_else(|| panic!("unknown metric {name:?}"));
        self.values[idx]
    }

    /// All `(name, value)` pairs in registry order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        METRIC_NAMES
            .iter()
            .copied()
            .zip(self.values.iter().copied())
    }

    /// The pairs whose names match one of `prefixes` — e.g.
    /// `&["atms.", "core."]` selects the deterministic kernel subset
    /// that must be invariant across `diagnose_batch` thread counts.
    pub fn with_prefixes<'a>(
        &'a self,
        prefixes: &'a [&'a str],
    ) -> impl Iterator<Item = (&'static str, u64)> + 'a {
        self.iter()
            .filter(move |(name, _)| prefixes.iter().any(|p| name.starts_with(p)))
    }

    /// Renders the snapshot as a JSON object, one key per metric, with
    /// `indent` leading spaces before every key line (for embedding in
    /// hand-formatted BENCH_*.json files).
    #[must_use]
    pub fn to_json(&self, indent: usize) -> String {
        let pad = " ".repeat(indent);
        let body: Vec<String> = self
            .iter()
            .map(|(name, value)| format!("{pad}  \"{name}\": {value}"))
            .collect();
        format!("{{\n{}\n{pad}}}", body.join(",\n"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_values_align() {
        let snap = MetricsSnapshot::capture();
        assert_eq!(snap.iter().count(), METRIC_NAMES.len());
        assert!(METRIC_NAMES.len() >= 20, "registry covers the stack");
    }

    #[test]
    fn delta_reflects_increments() {
        let before = MetricsSnapshot::capture();
        metrics().label_merges.add(3);
        let delta = MetricsSnapshot::capture().delta_since(&before);
        let expect = if cfg!(feature = "enabled") { 3 } else { 0 };
        // Another test may also touch the counter concurrently; the
        // delta is at least ours.
        assert!(delta.get("atms.label_merges") >= expect);
    }

    #[test]
    fn prefix_filter_selects_kernel_counters() {
        let snap = MetricsSnapshot::capture();
        let kernel: Vec<&str> = snap
            .with_prefixes(&["atms.", "core."])
            .map(|(n, _)| n)
            .collect();
        assert!(kernel.contains(&"atms.env_intern_hits"));
        assert!(kernel.contains(&"core.waves"));
        assert!(!kernel.contains(&"serve.pool_hits"));
    }

    #[test]
    fn json_is_parseable() {
        let snap = MetricsSnapshot::capture();
        let json = snap.to_json(2);
        let value = crate::json::parse(&json).expect("valid JSON");
        let obj = value.as_object().expect("object");
        assert_eq!(obj.len(), METRIC_NAMES.len());
    }

    #[test]
    #[should_panic(expected = "unknown metric")]
    fn unknown_name_panics() {
        let _ = MetricsSnapshot::capture().get("atms.nonexistent");
    }
}
