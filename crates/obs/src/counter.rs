//! Zero-cost-when-disabled counters and gauges.
//!
//! Both types expose the same API in both feature states. Enabled they
//! are relaxed [`core::sync::atomic::AtomicU64`]s — the kernel is shared
//! across `diagnose_batch` worker threads, so interior mutability must
//! be `Sync`; relaxed ordering suffices because counts are only ever
//! read via whole-registry snapshots, never used for synchronization.
//! Disabled they are zero-sized unit structs whose methods are empty
//! inline bodies, which the optimizer erases entirely.

#[cfg(feature = "enabled")]
use core::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing event counter.
#[derive(Debug)]
pub struct Counter {
    #[cfg(feature = "enabled")]
    value: AtomicU64,
}

impl Counter {
    /// A counter starting at zero (usable in `static` items).
    #[must_use]
    pub const fn new() -> Self {
        Self {
            #[cfg(feature = "enabled")]
            value: AtomicU64::new(0),
        }
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        #[cfg(feature = "enabled")]
        self.value.fetch_add(n, Ordering::Relaxed);
        #[cfg(not(feature = "enabled"))]
        let _ = n;
    }

    /// Current count (always 0 with the `enabled` feature off).
    #[inline]
    #[must_use]
    pub fn get(&self) -> u64 {
        #[cfg(feature = "enabled")]
        {
            self.value.load(Ordering::Relaxed)
        }
        #[cfg(not(feature = "enabled"))]
        {
            0
        }
    }
}

impl Default for Counter {
    fn default() -> Self {
        Self::new()
    }
}

/// A last-write-wins level indicator (e.g. pool idle sessions).
#[derive(Debug)]
pub struct Gauge {
    #[cfg(feature = "enabled")]
    value: AtomicU64,
}

impl Gauge {
    /// A gauge starting at zero (usable in `static` items).
    #[must_use]
    pub const fn new() -> Self {
        Self {
            #[cfg(feature = "enabled")]
            value: AtomicU64::new(0),
        }
    }

    /// Overwrites the level.
    #[inline]
    pub fn set(&self, v: u64) {
        #[cfg(feature = "enabled")]
        self.value.store(v, Ordering::Relaxed);
        #[cfg(not(feature = "enabled"))]
        let _ = v;
    }

    /// Current level (always 0 with the `enabled` feature off).
    #[inline]
    #[must_use]
    pub fn get(&self) -> u64 {
        #[cfg(feature = "enabled")]
        {
            self.value.load(Ordering::Relaxed)
        }
        #[cfg(not(feature = "enabled"))]
        {
            0
        }
    }
}

impl Default for Gauge {
    fn default() -> Self {
        Self::new()
    }
}

// The zero-cost guarantee: with counters compiled out, the types carry
// no state at all, so instrumented structs have the exact layout of
// their uninstrumented ancestors.
#[cfg(not(feature = "enabled"))]
const _: () = {
    assert!(core::mem::size_of::<Counter>() == 0);
    assert!(core::mem::size_of::<Gauge>() == 0);
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts_when_enabled() {
        let c = Counter::new();
        c.incr();
        c.add(4);
        if cfg!(feature = "enabled") {
            assert_eq!(c.get(), 5);
        } else {
            assert_eq!(c.get(), 0);
        }
    }

    #[test]
    fn gauge_holds_last_value_when_enabled() {
        let g = Gauge::new();
        g.set(7);
        g.set(3);
        assert_eq!(g.get(), if cfg!(feature = "enabled") { 3 } else { 0 });
    }

    #[test]
    fn counters_are_sync() {
        const fn assert_sync<T: Sync + Send>() {}
        assert_sync::<Counter>();
        assert_sync::<Gauge>();
    }
}
