//! Dependency-free observability for the FLAMES stack.
//!
//! Three layers, all free of external crates:
//!
//! * **Counters** ([`Counter`], [`Gauge`]) — relaxed atomics behind the
//!   `enabled` feature. With the feature off both types are zero-sized
//!   and every method is an empty `#[inline]` body, so instrumented hot
//!   paths compile to exactly the uninstrumented code (checked by a
//!   compile-time size assertion).
//! * **Registry** ([`metrics`], [`MetricsSnapshot`]) — a fixed global
//!   table of named counters covering the ATMS kernel, the propagation
//!   engine, the serving layer and the circuit substrate. Snapshots are
//!   cheap value captures; [`MetricsSnapshot::delta_since`] turns two of
//!   them into per-phase counts for benches and tests.
//! * **Traces** ([`Trace`], [`TraceEvent`]) — span/instant events on a
//!   deterministic *logical* clock, exportable as Chrome `trace_event`
//!   JSON for `about:tracing`. Always compiled (recording is runtime
//!   opt-in and never sits on a hot path); [`json`] holds a minimal
//!   parser used to validate exported traces in tests.

pub mod counter;
pub mod json;
pub mod registry;
pub mod trace;

pub use counter::{Counter, Gauge};
pub use registry::{metrics, MetricsSnapshot, METRIC_NAMES};
pub use trace::{ArgValue, Trace, TraceEvent};

/// Whether the `enabled` feature (live counters) is compiled in.
#[must_use]
pub const fn enabled() -> bool {
    cfg!(feature = "enabled")
}
