//! Property-based tests for the fuzzy calculus: algebraic laws, inclusion
//! monotonicity, soundness of the vertex-method arithmetic and of the
//! degree of consistency.

use flames_fuzzy::entropy::{fuzzy_entropy, fuzzy_point_entropy, point_entropy};
use flames_fuzzy::{Consistency, Direction, FuzzyInterval};
use proptest::prelude::*;

/// Arbitrary valid trapezoid with moderate magnitudes.
fn trapezoid() -> impl Strategy<Value = FuzzyInterval> {
    (
        -50.0..50.0f64,
        0.0..20.0f64,
        0.0..5.0f64,
        0.0..5.0f64,
    )
        .prop_map(|(m1, width, a, b)| FuzzyInterval::new(m1, m1 + width, a, b).unwrap())
}

/// Arbitrary trapezoid whose support stays strictly positive (divisor-safe).
fn positive_trapezoid() -> impl Strategy<Value = FuzzyInterval> {
    (
        0.5..50.0f64,
        0.0..10.0f64,
        0.0..0.4f64,
        0.0..5.0f64,
    )
        .prop_map(|(m1, width, a, b)| {
            // Keep support_lo = m1 - a >= 0.1.
            let a = a.min(m1 - 0.1);
            FuzzyInterval::new(m1, m1 + width, a.max(0.0), b).unwrap()
        })
}

/// Arbitrary estimation inside the unit interval.
fn estimation() -> impl Strategy<Value = FuzzyInterval> {
    (0.0..1.0f64, 0.0..1.0f64, 0.0..1.0f64, 0.0..1.0f64).prop_map(|(lo, w, a, b)| {
        let m1 = lo;
        let m2 = (lo + w * (1.0 - lo)).min(1.0);
        let alpha = a * m1;
        let beta = b * (1.0 - m2);
        FuzzyInterval::new(m1, m2, alpha, beta).unwrap()
    })
}

proptest! {
    #[test]
    fn membership_is_in_unit_interval(t in trapezoid(), x in -100.0..100.0f64) {
        let mu = t.membership(x);
        prop_assert!((0.0..=1.0).contains(&mu));
    }

    #[test]
    fn membership_is_one_exactly_on_core(t in trapezoid(), x in -100.0..100.0f64) {
        let mu = t.membership(x);
        if x >= t.core_lo() && x <= t.core_hi() {
            prop_assert_eq!(mu, 1.0);
        }
        if mu > 0.0 {
            prop_assert!(x >= t.support_lo() - 1e-9 && x <= t.support_hi() + 1e-9);
        }
    }

    #[test]
    fn alpha_cuts_are_nested(t in trapezoid(), l1 in 0.0..1.0f64, l2 in 0.0..1.0f64) {
        let (lo_level, hi_level) = if l1 <= l2 { (l1, l2) } else { (l2, l1) };
        let outer = t.alpha_cut(lo_level);
        let inner = t.alpha_cut(hi_level);
        prop_assert!(inner.0 >= outer.0 - 1e-12);
        prop_assert!(inner.1 <= outer.1 + 1e-12);
    }

    #[test]
    fn addition_commutes(a in trapezoid(), b in trapezoid()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn addition_is_associative_up_to_rounding(a in trapezoid(), b in trapezoid(), c in trapezoid()) {
        let l = (a + b) + c;
        let r = a + (b + c);
        prop_assert!((l.core_lo() - r.core_lo()).abs() < 1e-9);
        prop_assert!((l.core_hi() - r.core_hi()).abs() < 1e-9);
        prop_assert!((l.spread_left() - r.spread_left()).abs() < 1e-9);
        prop_assert!((l.spread_right() - r.spread_right()).abs() < 1e-9);
    }

    #[test]
    fn zero_is_additive_identity(a in trapezoid()) {
        let z = FuzzyInterval::crisp(0.0);
        prop_assert_eq!(a + z, a);
    }

    #[test]
    fn subtraction_widens_round_trip(a in trapezoid(), b in trapezoid()) {
        let rt = (a + b) - b;
        prop_assert!(a.is_included_in(&rt));
    }

    #[test]
    fn negation_is_involutive(a in trapezoid()) {
        prop_assert_eq!(a.negated().negated(), a);
    }

    #[test]
    fn multiplication_commutes(a in trapezoid(), b in trapezoid()) {
        let ab = a.mul(&b).unwrap();
        let ba = b.mul(&a).unwrap();
        prop_assert!((ab.core_lo() - ba.core_lo()).abs() < 1e-9);
        prop_assert!((ab.support_hi() - ba.support_hi()).abs() < 1e-9);
    }

    #[test]
    fn mul_is_inclusion_monotone(a in trapezoid(), b in trapezoid(), extra in 0.0..2.0f64) {
        let wider = FuzzyInterval::new(
            a.core_lo(),
            a.core_hi(),
            a.spread_left() + extra,
            a.spread_right() + extra,
        ).unwrap();
        let tight = a.mul(&b).unwrap();
        let wide = wider.mul(&b).unwrap();
        prop_assert!(tight.is_included_in(&wide));
    }

    #[test]
    fn mul_interval_products_inside_result(a in trapezoid(), b in trapezoid(),
                                           ta in 0.0..1.0f64, tb in 0.0..1.0f64) {
        // Any product of support points lies in the support of the product.
        let xa = a.support_lo() + ta * a.support_width();
        let xb = b.support_lo() + tb * b.support_width();
        let p = a.mul(&b).unwrap();
        prop_assert!(xa * xb >= p.support_lo() - 1e-9);
        prop_assert!(xa * xb <= p.support_hi() + 1e-9);
    }

    #[test]
    fn div_then_mul_round_trip_includes(a in positive_trapezoid(), b in positive_trapezoid()) {
        let rt = a.div(&b).unwrap().mul(&b).unwrap();
        prop_assert!(a.core_lo() >= rt.core_lo() - 1e-9);
        prop_assert!(a.core_hi() <= rt.core_hi() + 1e-9);
    }

    #[test]
    fn scaling_distributes_over_addition(a in trapezoid(), b in trapezoid(), k in -5.0..5.0f64) {
        let l = (a + b).scaled(k);
        let r = a.scaled(k) + b.scaled(k);
        prop_assert!((l.core_lo() - r.core_lo()).abs() < 1e-9);
        prop_assert!((l.spread_left() - r.spread_left()).abs() < 1e-9);
    }

    #[test]
    fn hull_contains_operands(a in trapezoid(), b in trapezoid()) {
        let h = a.hull(&b);
        prop_assert!(a.is_included_in(&h));
        prop_assert!(b.is_included_in(&h));
    }

    #[test]
    fn pwl_round_trip_matches_membership(t in trapezoid(), x in -100.0..100.0f64) {
        prop_assert!((t.to_pwl().eval(x) - t.membership(x)).abs() < 1e-9);
    }

    #[test]
    fn pwl_area_matches_formula(t in trapezoid()) {
        prop_assert!((t.to_pwl().area() - t.area()).abs() < 1e-9);
    }

    #[test]
    fn intersection_area_bounded_by_min_area(a in trapezoid(), b in trapezoid()) {
        let i = a.to_pwl().intersection(&b.to_pwl());
        prop_assert!(i.area() <= a.area().min(b.area()) + 1e-9);
        prop_assert!(i.area() >= -1e-12);
    }

    #[test]
    fn union_area_at_least_max_area(a in trapezoid(), b in trapezoid()) {
        let u = a.to_pwl().union(&b.to_pwl());
        prop_assert!(u.area() >= a.area().max(b.area()) - 1e-9);
        prop_assert!(u.area() <= a.area() + b.area() + 1e-9);
    }

    #[test]
    fn dc_is_in_unit_interval(vm in trapezoid(), vn in trapezoid()) {
        let dc = Consistency::between(&vm, &vn);
        prop_assert!((0.0..=1.0).contains(&dc.degree()));
    }

    #[test]
    fn dc_of_self_is_one(vm in trapezoid()) {
        let dc = Consistency::between(&vm, &vm);
        prop_assert_eq!(dc.degree(), 1.0);
        prop_assert_eq!(dc.direction(), Direction::Within);
    }

    #[test]
    fn dc_one_iff_pointwise_included(vm in trapezoid(), vn in trapezoid()) {
        let dc = Consistency::between(&vm, &vn);
        if vm.is_included_in(&vn) {
            prop_assert_eq!(dc.degree(), 1.0);
        }
        if dc.degree() == 0.0 && vm.area() > 0.0 {
            // No overlap mass: the supports overlap at most at a point.
            let overlap = vm.support_hi().min(vn.support_hi())
                - vm.support_lo().max(vn.support_lo());
            prop_assert!(overlap <= 1e-6 || vn.area() == 0.0);
        }
    }

    #[test]
    fn dc_shift_monotone(vm in trapezoid(), shift in 0.0..10.0f64) {
        // Moving the measurement away from the nominal can only lower Dc.
        let vn = vm;
        let near = FuzzyInterval::new(
            vm.core_lo() + shift * 0.1,
            vm.core_hi() + shift * 0.1,
            vm.spread_left(),
            vm.spread_right(),
        ).unwrap();
        let far = FuzzyInterval::new(
            vm.core_lo() + shift * 0.1 + 1.0,
            vm.core_hi() + shift * 0.1 + 1.0,
            vm.spread_left(),
            vm.spread_right(),
        ).unwrap();
        let dc_near = Consistency::between(&near, &vn).degree();
        let dc_far = Consistency::between(&far, &vn).degree();
        prop_assert!(dc_far <= dc_near + 1e-9);
    }

    #[test]
    fn entropy_image_is_bounded(e in estimation()) {
        let h = fuzzy_point_entropy(&e).unwrap();
        let peak = point_entropy(std::f64::consts::E.recip());
        prop_assert!(h.support_lo() >= -1e-9);
        prop_assert!(h.support_hi() <= peak + 1e-9);
    }

    #[test]
    fn entropy_of_system_additive_bound(es in prop::collection::vec(estimation(), 0..6)) {
        let h = fuzzy_entropy(&es).unwrap();
        let peak = point_entropy(std::f64::consts::E.recip());
        prop_assert!(h.support_hi() <= peak * es.len() as f64 + 1e-9);
        prop_assert!(h.support_lo() >= -1e-9);
    }

    #[test]
    fn entropy_point_values_inside_fuzzy_image(e in estimation(), t in 0.0..1.0f64) {
        // h(x) for any x in the support must fall inside the fuzzy image's support.
        let x = e.support_lo() + t * e.support_width();
        let h = fuzzy_point_entropy(&e).unwrap();
        let hx = point_entropy(x.clamp(0.0, 1.0));
        prop_assert!(hx >= h.support_lo() - 1e-9);
        prop_assert!(hx <= h.support_hi() + 1e-9);
    }

    #[test]
    fn satisfaction_matches_membership_for_points(x in -10.0..120.0f64) {
        let cond = FuzzyInterval::new(-1.0, 100.0, 0.0, 10.0).unwrap();
        let v = FuzzyInterval::crisp(x);
        prop_assert_eq!(v.satisfaction_of(&cond), cond.membership(x));
    }
}
