//! Randomized property tests for the fuzzy calculus: algebraic laws,
//! inclusion monotonicity, soundness of the vertex-method arithmetic and
//! of the degree of consistency.
//!
//! Dependency-free: cases are generated with an inline SplitMix64 and
//! checked with plain `assert!`. Gated behind `--features proptest`
//! (the historical feature name) because the suites are slow, not
//! because they need the external crate.

use flames_fuzzy::entropy::{fuzzy_entropy, fuzzy_point_entropy, point_entropy};
use flames_fuzzy::{Consistency, Direction, FuzzyInterval};

/// SplitMix64 — the same mixer as `flames_bench::rng`, inlined because
/// integration tests cannot depend on the bench crate.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }

    fn below(&mut self, bound: u64) -> u64 {
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// Arbitrary valid trapezoid with moderate magnitudes.
fn trapezoid(r: &mut Rng) -> FuzzyInterval {
    let m1 = r.range(-50.0, 50.0);
    let width = r.range(0.0, 20.0);
    let a = r.range(0.0, 5.0);
    let b = r.range(0.0, 5.0);
    FuzzyInterval::new(m1, m1 + width, a, b).unwrap()
}

/// Arbitrary trapezoid whose support stays strictly positive (divisor-safe).
fn positive_trapezoid(r: &mut Rng) -> FuzzyInterval {
    let m1 = r.range(0.5, 50.0);
    let width = r.range(0.0, 10.0);
    let a = r.range(0.0, 0.4);
    let b = r.range(0.0, 5.0);
    // Keep support_lo = m1 - a >= 0.1.
    let a = a.min(m1 - 0.1);
    FuzzyInterval::new(m1, m1 + width, a.max(0.0), b).unwrap()
}

/// Arbitrary estimation inside the unit interval.
fn estimation(r: &mut Rng) -> FuzzyInterval {
    let lo = r.f64();
    let w = r.f64();
    let a = r.f64();
    let b = r.f64();
    let m1 = lo;
    let m2 = (lo + w * (1.0 - lo)).min(1.0);
    let alpha = a * m1;
    let beta = b * (1.0 - m2);
    FuzzyInterval::new(m1, m2, alpha, beta).unwrap()
}

const CASES: usize = 300;

#[test]
fn membership_is_in_unit_interval() {
    let mut r = Rng(1);
    for _ in 0..CASES {
        let t = trapezoid(&mut r);
        let x = r.range(-100.0, 100.0);
        let mu = t.membership(x);
        assert!((0.0..=1.0).contains(&mu));
    }
}

#[test]
fn membership_is_one_exactly_on_core() {
    let mut r = Rng(2);
    for _ in 0..CASES {
        let t = trapezoid(&mut r);
        let x = r.range(-100.0, 100.0);
        let mu = t.membership(x);
        if x >= t.core_lo() && x <= t.core_hi() {
            assert_eq!(mu, 1.0);
        }
        if mu > 0.0 {
            assert!(x >= t.support_lo() - 1e-9 && x <= t.support_hi() + 1e-9);
        }
    }
}

#[test]
fn alpha_cuts_are_nested() {
    let mut r = Rng(3);
    for _ in 0..CASES {
        let t = trapezoid(&mut r);
        let l1 = r.f64();
        let l2 = r.f64();
        let (lo_level, hi_level) = if l1 <= l2 { (l1, l2) } else { (l2, l1) };
        let outer = t.alpha_cut(lo_level);
        let inner = t.alpha_cut(hi_level);
        assert!(inner.0 >= outer.0 - 1e-12);
        assert!(inner.1 <= outer.1 + 1e-12);
    }
}

#[test]
fn addition_commutes() {
    let mut r = Rng(4);
    for _ in 0..CASES {
        let a = trapezoid(&mut r);
        let b = trapezoid(&mut r);
        assert_eq!(a + b, b + a);
    }
}

#[test]
fn addition_is_associative_up_to_rounding() {
    let mut r = Rng(5);
    for _ in 0..CASES {
        let a = trapezoid(&mut r);
        let b = trapezoid(&mut r);
        let c = trapezoid(&mut r);
        let l = (a + b) + c;
        let rr = a + (b + c);
        assert!((l.core_lo() - rr.core_lo()).abs() < 1e-9);
        assert!((l.core_hi() - rr.core_hi()).abs() < 1e-9);
        assert!((l.spread_left() - rr.spread_left()).abs() < 1e-9);
        assert!((l.spread_right() - rr.spread_right()).abs() < 1e-9);
    }
}

#[test]
fn zero_is_additive_identity() {
    let mut r = Rng(6);
    for _ in 0..CASES {
        let a = trapezoid(&mut r);
        let z = FuzzyInterval::crisp(0.0);
        assert_eq!(a + z, a);
    }
}

#[test]
fn subtraction_widens_round_trip() {
    let mut r = Rng(7);
    for _ in 0..CASES {
        let a = trapezoid(&mut r);
        let b = trapezoid(&mut r);
        let rt = (a + b) - b;
        assert!(a.is_included_in(&rt));
    }
}

#[test]
fn negation_is_involutive() {
    let mut r = Rng(8);
    for _ in 0..CASES {
        let a = trapezoid(&mut r);
        assert_eq!(a.negated().negated(), a);
    }
}

#[test]
fn multiplication_commutes() {
    let mut r = Rng(9);
    for _ in 0..CASES {
        let a = trapezoid(&mut r);
        let b = trapezoid(&mut r);
        let ab = a.mul(&b).unwrap();
        let ba = b.mul(&a).unwrap();
        assert!((ab.core_lo() - ba.core_lo()).abs() < 1e-9);
        assert!((ab.support_hi() - ba.support_hi()).abs() < 1e-9);
    }
}

#[test]
fn mul_is_inclusion_monotone() {
    let mut r = Rng(10);
    for _ in 0..CASES {
        let a = trapezoid(&mut r);
        let b = trapezoid(&mut r);
        let extra = r.range(0.0, 2.0);
        let wider = FuzzyInterval::new(
            a.core_lo(),
            a.core_hi(),
            a.spread_left() + extra,
            a.spread_right() + extra,
        )
        .unwrap();
        let tight = a.mul(&b).unwrap();
        let wide = wider.mul(&b).unwrap();
        assert!(tight.is_included_in(&wide));
    }
}

#[test]
fn mul_interval_products_inside_result() {
    let mut r = Rng(11);
    for _ in 0..CASES {
        let a = trapezoid(&mut r);
        let b = trapezoid(&mut r);
        let ta = r.f64();
        let tb = r.f64();
        // Any product of support points lies in the support of the product.
        let xa = a.support_lo() + ta * a.support_width();
        let xb = b.support_lo() + tb * b.support_width();
        let p = a.mul(&b).unwrap();
        assert!(xa * xb >= p.support_lo() - 1e-9);
        assert!(xa * xb <= p.support_hi() + 1e-9);
    }
}

#[test]
fn div_then_mul_round_trip_includes() {
    let mut r = Rng(12);
    for _ in 0..CASES {
        let a = positive_trapezoid(&mut r);
        let b = positive_trapezoid(&mut r);
        let rt = a.div(&b).unwrap().mul(&b).unwrap();
        assert!(a.core_lo() >= rt.core_lo() - 1e-9);
        assert!(a.core_hi() <= rt.core_hi() + 1e-9);
    }
}

#[test]
fn scaling_distributes_over_addition() {
    let mut r = Rng(13);
    for _ in 0..CASES {
        let a = trapezoid(&mut r);
        let b = trapezoid(&mut r);
        let k = r.range(-5.0, 5.0);
        let l = (a + b).scaled(k);
        let rr = a.scaled(k) + b.scaled(k);
        assert!((l.core_lo() - rr.core_lo()).abs() < 1e-9);
        assert!((l.spread_left() - rr.spread_left()).abs() < 1e-9);
    }
}

#[test]
fn hull_contains_operands() {
    let mut r = Rng(14);
    for _ in 0..CASES {
        let a = trapezoid(&mut r);
        let b = trapezoid(&mut r);
        let h = a.hull(&b);
        assert!(a.is_included_in(&h));
        assert!(b.is_included_in(&h));
    }
}

#[test]
fn pwl_round_trip_matches_membership() {
    let mut r = Rng(15);
    for _ in 0..CASES {
        let t = trapezoid(&mut r);
        let x = r.range(-100.0, 100.0);
        assert!((t.to_pwl().eval(x) - t.membership(x)).abs() < 1e-9);
    }
}

#[test]
fn pwl_area_matches_formula() {
    let mut r = Rng(16);
    for _ in 0..CASES {
        let t = trapezoid(&mut r);
        assert!((t.to_pwl().area() - t.area()).abs() < 1e-9);
    }
}

#[test]
fn intersection_area_bounded_by_min_area() {
    let mut r = Rng(17);
    for _ in 0..CASES {
        let a = trapezoid(&mut r);
        let b = trapezoid(&mut r);
        let i = a.to_pwl().intersection(&b.to_pwl());
        assert!(i.area() <= a.area().min(b.area()) + 1e-9);
        assert!(i.area() >= -1e-12);
    }
}

#[test]
fn union_area_at_least_max_area() {
    let mut r = Rng(18);
    for _ in 0..CASES {
        let a = trapezoid(&mut r);
        let b = trapezoid(&mut r);
        let u = a.to_pwl().union(&b.to_pwl());
        assert!(u.area() >= a.area().max(b.area()) - 1e-9);
        assert!(u.area() <= a.area() + b.area() + 1e-9);
    }
}

#[test]
fn dc_is_in_unit_interval() {
    let mut r = Rng(19);
    for _ in 0..CASES {
        let vm = trapezoid(&mut r);
        let vn = trapezoid(&mut r);
        let dc = Consistency::between(&vm, &vn);
        assert!((0.0..=1.0).contains(&dc.degree()));
    }
}

#[test]
fn dc_of_self_is_one() {
    let mut r = Rng(20);
    for _ in 0..CASES {
        let vm = trapezoid(&mut r);
        let dc = Consistency::between(&vm, &vm);
        assert_eq!(dc.degree(), 1.0);
        assert_eq!(dc.direction(), Direction::Within);
    }
}

#[test]
fn dc_one_iff_pointwise_included() {
    let mut r = Rng(21);
    for _ in 0..CASES {
        let vm = trapezoid(&mut r);
        let vn = trapezoid(&mut r);
        let dc = Consistency::between(&vm, &vn);
        if vm.is_included_in(&vn) {
            assert_eq!(dc.degree(), 1.0);
        }
        if dc.degree() == 0.0 && vm.area() > 0.0 {
            // No overlap mass: the supports overlap at most at a point.
            let overlap =
                vm.support_hi().min(vn.support_hi()) - vm.support_lo().max(vn.support_lo());
            assert!(overlap <= 1e-6 || vn.area() == 0.0);
        }
    }
}

#[test]
fn dc_shift_monotone() {
    let mut r = Rng(22);
    for _ in 0..CASES {
        let vm = trapezoid(&mut r);
        let shift = r.range(0.0, 10.0);
        // Moving the measurement away from the nominal can only lower Dc.
        let vn = vm;
        let near = FuzzyInterval::new(
            vm.core_lo() + shift * 0.1,
            vm.core_hi() + shift * 0.1,
            vm.spread_left(),
            vm.spread_right(),
        )
        .unwrap();
        let far = FuzzyInterval::new(
            vm.core_lo() + shift * 0.1 + 1.0,
            vm.core_hi() + shift * 0.1 + 1.0,
            vm.spread_left(),
            vm.spread_right(),
        )
        .unwrap();
        let dc_near = Consistency::between(&near, &vn).degree();
        let dc_far = Consistency::between(&far, &vn).degree();
        assert!(dc_far <= dc_near + 1e-9);
    }
}

/// A trapezoid drawn from a corner-heavy distribution: plain random
/// shapes mixed with zero-spread flanks, crisp intervals, crisp points,
/// and near-copies of a base value (the overlap-rich regime where the
/// closed-form breakpoint enumeration earns its keep).
fn corner_trapezoid(r: &mut Rng, base: FuzzyInterval) -> FuzzyInterval {
    match r.below(6) {
        0 => trapezoid(r),
        1 => {
            let t = trapezoid(r);
            FuzzyInterval::new(t.core_lo(), t.core_hi(), 0.0, t.spread_right()).unwrap()
        }
        2 => {
            let t = trapezoid(r);
            FuzzyInterval::new(t.core_lo(), t.core_hi(), t.spread_left(), 0.0).unwrap()
        }
        3 => {
            let lo = r.range(-50.0, 50.0);
            FuzzyInterval::crisp_interval(lo, lo + r.range(0.0, 10.0)).unwrap()
        }
        4 => FuzzyInterval::crisp(r.range(-50.0, 50.0)),
        _ => {
            // Shifted near-copy of the base: dense ramp–ramp crossings.
            let shift = r.range(-2.0, 2.0);
            FuzzyInterval::new(
                base.core_lo() + shift,
                base.core_hi() + shift,
                base.spread_left(),
                base.spread_right(),
            )
            .unwrap()
        }
    }
}

/// The tentpole's exactness contract: on 10 000 corner-heavy random
/// pairs the closed-form trapezoid `Dc` and the PWL fallback must agree
/// to 1e-12 in degree and exactly in direction — they integrate the
/// same piecewise-linear pointwise minimum, so any real divergence is a
/// kernel bug, not rounding.
#[test]
fn closed_form_dc_matches_pwl_on_10k_pairs() {
    let mut r = Rng(0xDC_2026);
    for case in 0..10_000 {
        let base = trapezoid(&mut r);
        let vm = corner_trapezoid(&mut r, base);
        let vn = corner_trapezoid(&mut r, vm);
        let fast = Consistency::between(&vm, &vn);
        let slow = Consistency::between_pwl(&vm.to_pwl(), &vn.to_pwl());
        assert!(
            (fast.degree() - slow.degree()).abs() <= 1e-12,
            "case {case}: closed-form {} != pwl {} for {vm:?} vs {vn:?}",
            fast.degree(),
            slow.degree()
        );
        assert_eq!(
            fast.direction(),
            slow.direction(),
            "case {case}: direction diverges for {vm:?} vs {vn:?}"
        );
    }
}

#[test]
fn entropy_image_is_bounded() {
    let mut r = Rng(23);
    for _ in 0..CASES {
        let e = estimation(&mut r);
        let h = fuzzy_point_entropy(&e).unwrap();
        let peak = point_entropy(std::f64::consts::E.recip());
        assert!(h.support_lo() >= -1e-9);
        assert!(h.support_hi() <= peak + 1e-9);
    }
}

#[test]
fn entropy_of_system_additive_bound() {
    let mut r = Rng(24);
    for _ in 0..CASES {
        let es: Vec<FuzzyInterval> = (0..r.below(6)).map(|_| estimation(&mut r)).collect();
        let h = fuzzy_entropy(&es).unwrap();
        let peak = point_entropy(std::f64::consts::E.recip());
        assert!(h.support_hi() <= peak * es.len() as f64 + 1e-9);
        assert!(h.support_lo() >= -1e-9);
    }
}

#[test]
fn entropy_point_values_inside_fuzzy_image() {
    let mut r = Rng(25);
    for _ in 0..CASES {
        let e = estimation(&mut r);
        let t = r.f64();
        // h(x) for any x in the support must fall inside the fuzzy image's support.
        let x = e.support_lo() + t * e.support_width();
        let h = fuzzy_point_entropy(&e).unwrap();
        let hx = point_entropy(x.clamp(0.0, 1.0));
        assert!(hx >= h.support_lo() - 1e-9);
        assert!(hx <= h.support_hi() + 1e-9);
    }
}

#[test]
fn satisfaction_matches_membership_for_points() {
    let mut r = Rng(26);
    for _ in 0..CASES {
        let x = r.range(-10.0, 120.0);
        let cond = FuzzyInterval::new(-1.0, 100.0, 0.0, 10.0).unwrap();
        let v = FuzzyInterval::crisp(x);
        assert_eq!(v.satisfaction_of(&cond), cond.membership(x));
    }
}
