//! Fuzzy-logic substrate of the FLAMES analog-diagnosis system.
//!
//! This crate implements the mathematical kernel described in sections 3, 4,
//! 6.1.2 and 8 of *"FLAMES: A Fuzzy Logic ATMS and Model-based Expert System
//! for Analog Diagnosis"* (Mohamed, Marzouki, Touati — ED&TC 1996):
//!
//! * [`FuzzyInterval`] — trapezoidal possibility distributions
//!   `[m1, m2, α, β]` (the paper's Fig. 1) that uniformly represent crisp
//!   numbers, crisp intervals, fuzzy numbers and fuzzy intervals;
//! * [`arith`] — the LR (Bonissone & Decker style) fuzzy arithmetic the
//!   paper propagates circuit values with;
//! * [`Pwl`] — exact piecewise-linear membership functions used for
//!   intersections, unions and areas;
//! * [`Consistency`] — the *degree of consistency*
//!   `Dc = area(Vm ⊓ Vn) / area(Vm)` with a deviation direction, the paper's
//!   fault-grading primitive (§6.1.2);
//! * [`LinguisticTerm`] / [`TermSet`] — linguistic decompositions of `[0,1]`
//!   used for faultiness estimations (§8.1);
//! * [`entropy`] — fuzzy Shannon entropy over fuzzy estimations (§8.2);
//! * [`qualitative`] — order-of-magnitude operators defined by fuzzy sets
//!   (the paper's §4.2 discussion and its ref \[10\]).
//!
//! # Example
//!
//! Reproducing the first row of the paper's Fig. 2 propagation table:
//!
//! ```
//! use flames_fuzzy::FuzzyInterval;
//!
//! # fn main() -> Result<(), flames_fuzzy::FuzzyError> {
//! let va = FuzzyInterval::crisp_interval(2.95, 3.05)?; // input, crisp case
//! let amp1 = FuzzyInterval::new(1.0, 1.0, 0.05, 0.05)?; // gain with tolerance
//! let vb = va.mul(&amp1)?;
//! assert!((vb.spread_left() - 0.15).abs() < 5e-3);
//! assert!((vb.spread_right() - 0.15).abs() < 5e-3);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod consistency;
mod error;
mod linguistic;
mod pwl;
mod trapezoid;

pub mod arith;
pub mod entropy;
pub mod qualitative;

pub use consistency::{Consistency, Direction};
pub use error::FuzzyError;
pub use linguistic::{LinguisticTerm, TermSet};
pub use pwl::Pwl;
pub use trapezoid::FuzzyInterval;

/// Convenient result alias for fallible fuzzy-calculus operations.
pub type Result<T, E = FuzzyError> = std::result::Result<T, E>;
