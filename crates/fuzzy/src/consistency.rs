use crate::pwl::Pwl;
use crate::trapezoid::FuzzyInterval;
use std::fmt;

/// Which side of the nominal value a measurement deviates toward.
///
/// The paper's Fig. 7 table annotates a fully-inconsistent coincidence with
/// a *signed* degree (`Dc(V1m, V1n) = −1`, read "V1 deviates low"), and the
/// open-R3 diagnosis explicitly relies on that direction ("R2 is very low
/// **or** R3 is very high"). We factor the sign out into this enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Direction {
    /// The measured value sits below the nominal one.
    Low,
    /// The measured value is consistent with (inside) the nominal one.
    Within,
    /// The measured value sits above the nominal one.
    High,
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Direction::Low => write!(f, "low"),
            Direction::Within => write!(f, "within"),
            Direction::High => write!(f, "high"),
        }
    }
}

/// The paper's **degree of consistency** between a measured value `Vm` and
/// a nominal (predicted) value `Vn` (§6.1.2):
///
/// ```text
/// Dc = area(Vm ⊓ Vn) / area(Vm)
/// ```
///
/// * `Dc = 1` when `Vm ⊆ Vn` (the proposition `X ∈ Vn` is necessarily
///   true),
/// * `Dc = 0` when the supports are disjoint (a frank conflict),
/// * `0 < Dc < 1` for a **partial conflict** — the graded information that
///   lets FLAMES rank nogoods and catch *slightly soft* faults.
///
/// A crisp point measurement (zero area) falls back to the membership of
/// the point in `Vn`, which is the natural limit of the formula.
///
/// # Example
///
/// ```
/// use flames_fuzzy::{Consistency, Direction, FuzzyInterval};
///
/// # fn main() -> Result<(), flames_fuzzy::FuzzyError> {
/// let nominal = FuzzyInterval::new(6.0, 6.0, 0.5, 0.5)?;
/// let measured = FuzzyInterval::new(6.1, 6.1, 0.1, 0.1)?;
/// let dc = Consistency::between(&measured, &nominal);
/// assert!(dc.degree() > 0.9); // slightly off but mostly consistent
/// let way_off = FuzzyInterval::new(9.0, 9.0, 0.1, 0.1)?;
/// let dc = Consistency::between(&way_off, &nominal);
/// assert_eq!(dc.degree(), 0.0);
/// assert_eq!(dc.direction(), Direction::High);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Consistency {
    degree: f64,
    direction: Direction,
}

/// Degrees within this distance of 1 are reported as fully consistent
/// (`Direction::Within`); guards against floating-point crumbs from the
/// exact PWL intersection.
const FULL_CONSISTENCY_EPS: f64 = 1e-9;

impl Consistency {
    /// Snaps near-1 degrees to exactly 1 and derives the deviation
    /// direction from the defuzzified centers — shared by every
    /// constructor so the fast path and the PWL fallback grade
    /// identically.
    fn grade(degree: f64, vm_center: f64, vn_center: f64) -> Self {
        let within = degree >= 1.0 - FULL_CONSISTENCY_EPS;
        let direction = if within {
            Direction::Within
        } else if vm_center < vn_center {
            Direction::Low
        } else {
            Direction::High
        };
        Self {
            degree: if within { 1.0 } else { degree },
            direction,
        }
    }

    /// Computes the degree of consistency of a measured value `vm` against
    /// a nominal/predicted value `vn`.
    ///
    /// This is the allocation-free fast path: the intersection area comes
    /// from the closed-form trapezoid kernel
    /// ([`FuzzyInterval::intersection_area`]) instead of materializing
    /// both operands as heap [`Pwl`] curves. Genuinely piecewise-linear
    /// (non-trapezoidal) values go through [`Consistency::between_pwl`];
    /// the two agree to within 1e-12 on trapezoids (property-tested).
    ///
    /// A crisp point measurement (zero area) falls back to the membership
    /// of the point in `vn`, the natural limit of the area quotient —
    /// this also guards the division.
    #[must_use]
    pub fn between(vm: &FuzzyInterval, vn: &FuzzyInterval) -> Self {
        flames_obs::metrics().dc_fast_path.incr();
        let area_m = vm.area();
        let degree = if area_m == 0.0 {
            // Point (or degenerate) measurement: the formula's limit is the
            // membership of the point in Vn.
            vn.membership(vm.core_midpoint())
        } else {
            (vm.intersection_area(vn) / area_m).clamp(0.0, 1.0)
        };
        Self::grade(degree, vm.centroid(), vn.centroid())
    }

    /// The PWL fallback of [`Consistency::between`], for membership
    /// functions that are not trapezoidal (e.g. [`Pwl`] values built from
    /// α-cut arithmetic): materializes the pointwise minimum exactly and
    /// integrates it. On trapezoids (`to_pwl()` of both operands) it
    /// agrees with the closed-form fast path to within 1e-12 — `exp_dc`
    /// and the `proptest` suite differential-test the two.
    #[must_use]
    pub fn between_pwl(vm: &Pwl, vn: &Pwl) -> Self {
        flames_obs::metrics().dc_pwl_fallback.incr();
        let area_m = vm.area();
        let degree = if area_m == 0.0 {
            // Zero-area measurement (a spike): membership of its peak in
            // vn — mirrors the crisp-point limit of the fast path.
            vm.peak_midpoint().map_or(0.0, |x| vn.eval(x))
        } else {
            (vm.intersection(vn).area() / area_m).clamp(0.0, 1.0)
        };
        let center = |p: &Pwl| p.centroid().or_else(|| p.peak_midpoint()).unwrap_or(0.0);
        Self::grade(degree, center(vm), center(vn))
    }

    /// The *symmetric* variant `area(Vm ⊓ Vn) / min(area(Vm), area(Vn))`
    /// — an ablation of the paper's asymmetric normalization (`DESIGN.md`
    /// §5): it does not privilege the measurement side, so a narrow
    /// value inside a wide one scores 1 in both argument orders. Shares
    /// the closed-form kernel with [`Consistency::between`].
    #[must_use]
    pub fn symmetric_between(vm: &FuzzyInterval, vn: &FuzzyInterval) -> Self {
        flames_obs::metrics().dc_fast_path.incr();
        let denom = vm.area().min(vn.area());
        let degree = if denom == 0.0 {
            // At least one point value: grade by membership of the
            // narrower core in the other set.
            if vm.area() == 0.0 {
                vn.membership(vm.core_midpoint())
            } else {
                vm.membership(vn.core_midpoint())
            }
        } else {
            (vm.intersection_area(vn) / denom).clamp(0.0, 1.0)
        };
        Self::grade(degree, vm.centroid(), vn.centroid())
    }

    /// Builds a consistency value directly (used by engines that grade
    /// conflicts from rule satisfaction rather than interval overlap).
    ///
    /// `degree` is clamped to `[0, 1]`.
    #[must_use]
    pub fn from_parts(degree: f64, direction: Direction) -> Self {
        Self {
            degree: degree.clamp(0.0, 1.0),
            direction,
        }
    }

    /// The consistency degree `Dc ∈ [0, 1]`.
    #[must_use]
    pub fn degree(&self) -> f64 {
        self.degree
    }

    /// The deviation direction.
    #[must_use]
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// Degree of *conflict* `1 − Dc` — the membership degree the paper
    /// attaches to the nogood raised by this coincidence.
    #[must_use]
    pub fn conflict_degree(&self) -> f64 {
        1.0 - self.degree
    }

    /// True when the coincidence is a corroboration (no conflict at all).
    #[must_use]
    pub fn is_consistent(&self) -> bool {
        self.degree >= 1.0
    }

    /// True when the coincidence is a total conflict (`Dc = 0`).
    #[must_use]
    pub fn is_total_conflict(&self) -> bool {
        self.degree <= 0.0
    }

    /// The paper's signed rendering: `+Dc` for deviation high or within,
    /// `−Dc`-style negative for deviation low. A total conflict deviating
    /// low prints as `-0.00`, matching the spirit of the paper's `Dc = −1`
    /// annotation (full conflict, low side).
    #[must_use]
    pub fn signed(&self) -> f64 {
        match self.direction {
            Direction::Low => -self.degree,
            _ => self.degree,
        }
    }
}

impl fmt::Display for Consistency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.direction {
            Direction::Within => write!(f, "{:.2}", self.degree),
            Direction::Low => write!(f, "{:.2}↓", self.degree),
            Direction::High => write!(f, "{:.2}↑", self.degree),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fi(m1: f64, m2: f64, a: f64, b: f64) -> FuzzyInterval {
        FuzzyInterval::new(m1, m2, a, b).unwrap()
    }

    #[test]
    fn inclusion_gives_dc_one() {
        let vn = fi(5.0, 7.0, 1.0, 1.0);
        let vm = fi(5.5, 6.5, 0.2, 0.2);
        let dc = Consistency::between(&vm, &vn);
        assert_eq!(dc.degree(), 1.0);
        assert_eq!(dc.direction(), Direction::Within);
        assert!(dc.is_consistent());
        assert_eq!(dc.conflict_degree(), 0.0);
    }

    #[test]
    fn disjoint_gives_dc_zero_with_direction() {
        let vn = fi(5.0, 5.0, 0.5, 0.5);
        let low = fi(2.0, 2.0, 0.2, 0.2);
        let dc = Consistency::between(&low, &vn);
        assert!(dc.is_total_conflict());
        assert_eq!(dc.direction(), Direction::Low);
        assert_eq!(dc.signed(), -0.0);

        let high = fi(9.0, 9.0, 0.2, 0.2);
        let dc = Consistency::between(&high, &vn);
        assert!(dc.is_total_conflict());
        assert_eq!(dc.direction(), Direction::High);
    }

    #[test]
    fn partial_overlap_is_graded() {
        let vn = fi(5.0, 5.0, 1.0, 1.0);
        let vm = fi(5.5, 5.5, 1.0, 1.0);
        let dc = Consistency::between(&vm, &vn);
        assert!(dc.degree() > 0.0);
        assert!(dc.degree() < 1.0);
        assert_eq!(dc.direction(), Direction::High);
        assert!((dc.conflict_degree() + dc.degree() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn point_measurement_uses_membership() {
        let vn = fi(5.0, 5.0, 1.0, 1.0);
        let dc = Consistency::between(&FuzzyInterval::crisp(5.5), &vn);
        assert!((dc.degree() - 0.5).abs() < 1e-12);
        assert_eq!(dc.direction(), Direction::High);

        let dc = Consistency::between(&FuzzyInterval::crisp(5.0), &vn);
        assert_eq!(dc.degree(), 1.0);
    }

    #[test]
    fn asymmetry_of_the_definition() {
        // Dc is normalized by the *measured* area: a narrow measurement
        // inside a wide nominal is fully consistent, but a wide measurement
        // around a narrow nominal is not.
        let wide = fi(5.0, 5.0, 2.0, 2.0);
        let narrow = fi(5.0, 5.0, 0.2, 0.2);
        assert_eq!(Consistency::between(&narrow, &wide).degree(), 1.0);
        let dc = Consistency::between(&wide, &narrow);
        assert!(dc.degree() < 0.2);
    }

    #[test]
    fn signed_rendering() {
        let vn = fi(5.0, 5.0, 1.0, 1.0);
        let dc = Consistency::between(&fi(4.5, 4.5, 1.0, 1.0), &vn);
        assert!(dc.signed() < 0.0);
        let dc = Consistency::between(&fi(5.5, 5.5, 1.0, 1.0), &vn);
        assert!(dc.signed() > 0.0);
    }

    #[test]
    fn display_shows_direction() {
        let vn = fi(5.0, 5.0, 1.0, 1.0);
        let dc = Consistency::between(&fi(5.5, 5.5, 1.0, 1.0), &vn);
        assert!(format!("{dc}").contains('↑'));
        let dc = Consistency::between(&fi(5.0, 5.0, 0.5, 0.5), &vn);
        assert_eq!(format!("{dc}"), "1.00");
    }

    #[test]
    fn symmetric_variant_ignores_argument_order() {
        let wide = fi(5.0, 5.0, 2.0, 2.0);
        let narrow = fi(5.0, 5.0, 0.2, 0.2);
        // The paper's asymmetric Dc differs by argument order…
        assert!(Consistency::between(&wide, &narrow).degree() < 0.2);
        assert_eq!(Consistency::between(&narrow, &wide).degree(), 1.0);
        // …the symmetric variant does not.
        let s1 = Consistency::symmetric_between(&wide, &narrow).degree();
        let s2 = Consistency::symmetric_between(&narrow, &wide).degree();
        assert_eq!(s1, 1.0);
        assert_eq!(s2, 1.0);
        // Disjoint sets still score 0 with direction.
        let far = fi(9.0, 9.0, 0.3, 0.3);
        let dc = Consistency::symmetric_between(&far, &narrow);
        assert!(dc.is_total_conflict());
        assert_eq!(dc.direction(), Direction::High);
        // Point values fall back to membership.
        let point = FuzzyInterval::crisp(5.5);
        let dc = Consistency::symmetric_between(&point, &fi(5.0, 5.0, 1.0, 1.0));
        assert!((dc.degree() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn from_parts_clamps() {
        let dc = Consistency::from_parts(1.7, Direction::High);
        assert_eq!(dc.degree(), 1.0);
        let dc = Consistency::from_parts(-0.3, Direction::Low);
        assert_eq!(dc.degree(), 0.0);
    }

    #[test]
    fn pwl_fallback_agrees_with_closed_form() {
        // The PWL fallback and the closed-form kernel must grade
        // trapezoid pairs identically (degree AND direction).
        let cases = [
            (fi(5.0, 5.0, 1.0, 1.0), fi(5.5, 5.5, 1.0, 1.0)),
            (fi(5.5, 6.5, 0.2, 0.2), fi(5.0, 7.0, 1.0, 1.0)),
            (fi(2.0, 2.0, 0.2, 0.2), fi(5.0, 5.0, 0.5, 0.5)),
            (fi(5.0, 5.5, 0.0, 0.2), fi(5.2, 5.2, 0.3, 0.0)),
            (
                FuzzyInterval::crisp_interval(5.4, 5.6).unwrap(),
                fi(5.0, 5.5, 0.2, 0.2),
            ),
        ];
        for (vm, vn) in cases {
            let fast = Consistency::between(&vm, &vn);
            let slow = Consistency::between_pwl(&vm.to_pwl(), &vn.to_pwl());
            assert!(
                (fast.degree() - slow.degree()).abs() < 1e-12,
                "degree mismatch for {vm:?} vs {vn:?}: {} vs {}",
                fast.degree(),
                slow.degree()
            );
            assert_eq!(fast.direction(), slow.direction(), "{vm:?} vs {vn:?}");
        }
    }

    #[test]
    fn pwl_fallback_point_measurement() {
        // Zero-area spike through the PWL path: membership of the peak.
        let vm = FuzzyInterval::crisp(5.5).to_pwl();
        let vn = fi(5.0, 5.0, 1.0, 1.0).to_pwl();
        let dc = Consistency::between_pwl(&vm, &vn);
        assert!((dc.degree() - 0.5).abs() < 1e-12);
        assert_eq!(dc.direction(), Direction::High);
    }

    #[test]
    fn zero_spread_degenerate_trapezoids() {
        // α = 0: vertical left edge. Vm = [5.0, 5.4, 0, 0.2] against
        // Vn = [5.2, 6.0, 0.1, 0.1]. Closed-form must match the exact
        // PWL integral on these vertical-edge shapes.
        let vm = fi(5.0, 5.4, 0.0, 0.2);
        let vn = fi(5.2, 6.0, 0.1, 0.1);
        let fast = Consistency::between(&vm, &vn);
        let slow = Consistency::between_pwl(&vm.to_pwl(), &vn.to_pwl());
        assert!((fast.degree() - slow.degree()).abs() < 1e-12);
        assert!(fast.degree() > 0.0 && fast.degree() < 1.0);

        // β = 0 on the nominal side too.
        let vn = fi(4.0, 5.1, 0.5, 0.0);
        let fast = Consistency::between(&vm, &vn);
        let slow = Consistency::between_pwl(&vm.to_pwl(), &vn.to_pwl());
        assert!((fast.degree() - slow.degree()).abs() < 1e-12);
    }

    #[test]
    fn crisp_vm_division_guard() {
        // Both a crisp point and a crisp *interval vs point nominal*
        // exercise the zero-denominator guards; neither may NaN.
        let point = FuzzyInterval::crisp(7.0);
        let vn = fi(5.0, 6.0, 0.0, 0.0);
        let dc = Consistency::between(&point, &vn);
        assert_eq!(dc.degree(), 0.0);
        assert_eq!(dc.direction(), Direction::High);
        // Point-vs-point, same location: limit is membership 1.
        let dc = Consistency::between(&FuzzyInterval::crisp(5.0), &FuzzyInterval::crisp(5.0));
        assert_eq!(dc.degree(), 1.0);
        assert_eq!(dc.direction(), Direction::Within);
        // Point-vs-point, different location: total conflict.
        let dc = Consistency::between(&FuzzyInterval::crisp(5.0), &FuzzyInterval::crisp(6.0));
        assert!(dc.is_total_conflict());
        assert_eq!(dc.direction(), Direction::Low);
    }

    #[test]
    fn paper_fig5_open_ended_condition() {
        // Fig. 5's rule conditions are one-sided trapezoids like
        // "voltage high" = [m1, m2, α, β] with a long ramp: a crisp
        // reading halfway down the ramp grades 0.5.
        let cond = fi(-1.0, 100.0, 0.0, 10.0);
        let dc = Consistency::between(&FuzzyInterval::crisp(105.0), &cond);
        assert!((dc.degree() - 0.5).abs() < 1e-12);
        assert_eq!(dc.direction(), Direction::High);
        // Inside the core: fully consistent.
        let dc = Consistency::between(&FuzzyInterval::crisp(50.0), &cond);
        assert_eq!(dc.degree(), 1.0);
        // Past the ramp foot: total conflict.
        let dc = Consistency::between(&FuzzyInterval::crisp(111.0), &cond);
        assert!(dc.is_total_conflict());
    }

    #[test]
    fn paper_fig7_signed_total_conflict_low() {
        // Fig. 7 annotates a full conflict on the low side as Dc = −1
        // (i.e. degree 0, direction low — signed() renders the sign).
        let vn = fi(5.0, 5.0, 0.5, 0.5);
        let vm = fi(1.0, 1.2, 0.1, 0.1);
        let dc = Consistency::between(&vm, &vn);
        assert!(dc.is_total_conflict());
        assert_eq!(dc.direction(), Direction::Low);
        assert!(dc.signed().is_sign_negative());
        assert_eq!(format!("{dc}"), "0.00↓");
    }

    #[test]
    fn crisp_interval_measurement() {
        // Vm = [5.4, 5.6] crisp, Vn = [5.0, 5.5, 0.2, 0.2]:
        // overlap on [5.4, 5.5] fully (area 0.1) plus ramp from 5.5 to 5.6
        // (descends 1 -> 0.5: area 0.075). Dc = 0.175 / 0.2 = 0.875.
        let vm = FuzzyInterval::crisp_interval(5.4, 5.6).unwrap();
        let vn = fi(5.0, 5.5, 0.2, 0.2);
        let dc = Consistency::between(&vm, &vn);
        assert!((dc.degree() - 0.875).abs() < 1e-9);
        assert_eq!(dc.direction(), Direction::High);
    }
}
