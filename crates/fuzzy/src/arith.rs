//! LR fuzzy-interval arithmetic (the paper's §3.2, following its ref \[6\],
//! Bonissone & Decker).
//!
//! Addition, subtraction and negation of trapezoids are *exact*.
//! Multiplication and division use the **vertex method**: the resulting
//! trapezoid is exact at membership levels 1 (core) and 0 (support) and a
//! linear (secant) approximation in between. For positive operands this
//! reduces to the classical LR approximations
//!
//! ```text
//! M ⊗ N = [ac, bd, aγ + cα − αγ, bδ + dβ + βδ]
//! M ⊘ N = [a/d, b/c, (aδ + dα)/(d(d+δ)), (bγ + cβ)/(c(c−γ))]
//! ```
//!
//! which are exactly the numbers printed in the paper's Fig. 2 propagation
//! table (validated in this module's tests to two decimals).
//!
//! All binary operations are *inclusion monotone*: widening an operand can
//! only widen the result — the property that makes fuzzy propagation sound.

use crate::error::FuzzyError;
use crate::trapezoid::FuzzyInterval;
use crate::Result;
use std::ops::{Add, Neg, Sub};

impl FuzzyInterval {
    /// Fuzzy negation `⊖M = [−m2, −m1, β, α]` (exact).
    #[must_use]
    pub fn negated(&self) -> Self {
        Self::new(
            -self.core_hi(),
            -self.core_lo(),
            self.spread_right(),
            self.spread_left(),
        )
        .expect("negation of valid trapezoid is valid")
    }

    /// Multiplication by a crisp scalar (exact).
    #[must_use]
    pub fn scaled(&self, k: f64) -> Self {
        if k >= 0.0 {
            Self::new(
                k * self.core_lo(),
                k * self.core_hi(),
                k * self.spread_left(),
                k * self.spread_right(),
            )
            .expect("scaling by non-negative finite scalar preserves validity")
        } else {
            self.negated().scaled(-k)
        }
    }

    /// Fuzzy multiplication `M ⊗ N` by the vertex method — exact at the
    /// core and support levels, a secant approximation in between.
    ///
    /// For positive operands this coincides with the LR approximation used
    /// in the paper (its ref \[6\]); the Fig. 2 numbers are reproduced by
    /// this method.
    ///
    /// # Errors
    ///
    /// Currently infallible for valid operands; returns `Result` for
    /// signature symmetry with [`FuzzyInterval::div`] and to keep room for
    /// overflow detection.
    pub fn mul(&self, other: &Self) -> Result<Self> {
        let (core_lo, core_hi) = minmax_products(
            self.core_lo(),
            self.core_hi(),
            other.core_lo(),
            other.core_hi(),
        );
        let (supp_lo, supp_hi) = minmax_products(
            self.support_lo(),
            self.support_hi(),
            other.support_lo(),
            other.support_hi(),
        );
        trapezoid_from_levels(core_lo, core_hi, supp_lo, supp_hi)
    }

    /// Exact fuzzy multiplication by α-cut arithmetic: the cuts of the
    /// product are the interval products of the operand cuts, sampled at
    /// `levels` membership levels and returned as an exact
    /// piecewise-linear function between them.
    ///
    /// The vertex-method [`FuzzyInterval::mul`] coincides with this at
    /// levels 0 and 1; in between it is a secant whose deviation this
    /// method quantifies (the `DESIGN.md` §5 ablation).
    ///
    /// # Panics
    ///
    /// Panics if `levels < 2` (at least the support and core levels are
    /// needed).
    #[must_use]
    pub fn mul_exact(&self, other: &Self, levels: usize) -> crate::Pwl {
        assert!(levels >= 2, "need at least the support and core levels");
        let cuts: Vec<(f64, f64, f64)> = (0..levels)
            .map(|k| {
                let level = k as f64 / (levels - 1) as f64;
                let (a_lo, a_hi) = self.alpha_cut(level);
                let (b_lo, b_hi) = other.alpha_cut(level);
                let (lo, hi) = minmax_products(a_lo, a_hi, b_lo, b_hi);
                (level, lo, hi)
            })
            .collect();
        crate::Pwl::from_alpha_cuts(&cuts)
    }

    /// Fuzzy division `M ⊘ N` by the vertex method.
    ///
    /// # Errors
    ///
    /// Returns [`FuzzyError::DivisorSpansZero`] if zero lies in (the closure
    /// of) the divisor's support — the quotient would be unbounded.
    pub fn div(&self, other: &Self) -> Result<Self> {
        let (slo, shi) = other.support();
        if slo <= 0.0 && shi >= 0.0 {
            return Err(FuzzyError::DivisorSpansZero {
                support_lo: slo,
                support_hi: shi,
            });
        }
        let (core_lo, core_hi) = minmax_quotients(
            self.core_lo(),
            self.core_hi(),
            other.core_lo(),
            other.core_hi(),
        );
        let (supp_lo, supp_hi) = minmax_quotients(self.support_lo(), self.support_hi(), slo, shi);
        trapezoid_from_levels(core_lo, core_hi, supp_lo, supp_hi)
    }

    /// Fuzzy reciprocal `1 ⊘ M`.
    ///
    /// # Errors
    ///
    /// Returns [`FuzzyError::DivisorSpansZero`] if zero lies in the support.
    pub fn recip(&self) -> Result<Self> {
        Self::crisp(1.0).div(self)
    }

    /// Pointwise-minimum extension `min(M, N)` (exact: `min` is monotone in
    /// both arguments).
    #[must_use]
    pub fn min_ext(&self, other: &Self) -> Self {
        let core_lo = self.core_lo().min(other.core_lo());
        let core_hi = self.core_hi().min(other.core_hi());
        let supp_lo = self.support_lo().min(other.support_lo());
        let supp_hi = self.support_hi().min(other.support_hi());
        trapezoid_from_levels(core_lo, core_hi, supp_lo, supp_hi)
            .expect("min of valid trapezoids is valid")
    }

    /// Pointwise-maximum extension `max(M, N)` (exact).
    #[must_use]
    pub fn max_ext(&self, other: &Self) -> Self {
        let core_lo = self.core_lo().max(other.core_lo());
        let core_hi = self.core_hi().max(other.core_hi());
        let supp_lo = self.support_lo().max(other.support_lo());
        let supp_hi = self.support_hi().max(other.support_hi());
        trapezoid_from_levels(core_lo, core_hi, supp_lo, supp_hi)
            .expect("max of valid trapezoids is valid")
    }

    /// Convex hull (the tightest trapezoid containing both operands) —
    /// used to merge alternative predictions for one quantity.
    #[must_use]
    pub fn hull(&self, other: &Self) -> Self {
        trapezoid_from_levels(
            self.core_lo().min(other.core_lo()),
            self.core_hi().max(other.core_hi()),
            self.support_lo().min(other.support_lo()),
            self.support_hi().max(other.support_hi()),
        )
        .expect("hull of valid trapezoids is valid")
    }

    /// Trapezoidal intersection *approximation*: core = core ∩ core,
    /// support = support ∩ support. Returns `None` when the result would be
    /// empty at the core level (no common fully-possible value) — callers
    /// that need the exact (possibly sub-normal) intersection should use
    /// [`crate::Pwl::intersection`] instead.
    #[must_use]
    pub fn intersect_trapezoid(&self, other: &Self) -> Option<Self> {
        let core_lo = self.core_lo().max(other.core_lo());
        let core_hi = self.core_hi().min(other.core_hi());
        if core_lo > core_hi {
            return None;
        }
        let supp_lo = self.support_lo().max(other.support_lo());
        let supp_hi = self.support_hi().min(other.support_hi());
        trapezoid_from_levels(core_lo, core_hi, supp_lo.min(core_lo), supp_hi.max(core_hi)).ok()
    }
}

/// Builds a trapezoid from its level-1 interval (core) and level-0 interval
/// (support).
fn trapezoid_from_levels(
    core_lo: f64,
    core_hi: f64,
    supp_lo: f64,
    supp_hi: f64,
) -> Result<FuzzyInterval> {
    // Guard against tiny negative spreads introduced by rounding.
    let alpha = (core_lo - supp_lo).max(0.0);
    let beta = (supp_hi - core_hi).max(0.0);
    FuzzyInterval::new(core_lo, core_hi, alpha, beta)
}

fn minmax_products(a: f64, b: f64, c: f64, d: f64) -> (f64, f64) {
    let ps = [a * c, a * d, b * c, b * d];
    let mut lo = ps[0];
    let mut hi = ps[0];
    for &p in &ps[1..] {
        lo = lo.min(p);
        hi = hi.max(p);
    }
    (lo, hi)
}

fn minmax_quotients(a: f64, b: f64, c: f64, d: f64) -> (f64, f64) {
    let qs = [a / c, a / d, b / c, b / d];
    let mut lo = qs[0];
    let mut hi = qs[0];
    for &q in &qs[1..] {
        lo = lo.min(q);
        hi = hi.max(q);
    }
    (lo, hi)
}

impl Add for FuzzyInterval {
    type Output = FuzzyInterval;
    /// Fuzzy addition `M ⊕ N = [m1+n1, m2+n2, α+γ, β+δ]` (exact, §3.2).
    fn add(self, rhs: FuzzyInterval) -> FuzzyInterval {
        FuzzyInterval::new(
            self.core_lo() + rhs.core_lo(),
            self.core_hi() + rhs.core_hi(),
            self.spread_left() + rhs.spread_left(),
            self.spread_right() + rhs.spread_right(),
        )
        .expect("sum of valid trapezoids is valid")
    }
}

impl Add for &FuzzyInterval {
    type Output = FuzzyInterval;
    fn add(self, rhs: &FuzzyInterval) -> FuzzyInterval {
        *self + *rhs
    }
}

impl Sub for FuzzyInterval {
    type Output = FuzzyInterval;
    /// Fuzzy subtraction `M ⊖ N = [m1−n2, m2−n1, α+δ, β+γ]` (exact, §3.2).
    fn sub(self, rhs: FuzzyInterval) -> FuzzyInterval {
        FuzzyInterval::new(
            self.core_lo() - rhs.core_hi(),
            self.core_hi() - rhs.core_lo(),
            self.spread_left() + rhs.spread_right(),
            self.spread_right() + rhs.spread_left(),
        )
        .expect("difference of valid trapezoids is valid")
    }
}

impl Sub for &FuzzyInterval {
    type Output = FuzzyInterval;
    fn sub(self, rhs: &FuzzyInterval) -> FuzzyInterval {
        *self - *rhs
    }
}

impl Neg for FuzzyInterval {
    type Output = FuzzyInterval;
    fn neg(self) -> FuzzyInterval {
        self.negated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fi(m1: f64, m2: f64, a: f64, b: f64) -> FuzzyInterval {
        FuzzyInterval::new(m1, m2, a, b).unwrap()
    }

    fn assert_close(x: f64, y: f64, tol: f64) {
        assert!((x - y).abs() <= tol, "{x} != {y} (tol {tol})");
    }

    fn assert_fi(v: &FuzzyInterval, m1: f64, m2: f64, a: f64, b: f64, tol: f64) {
        assert_close(v.core_lo(), m1, tol);
        assert_close(v.core_hi(), m2, tol);
        assert_close(v.spread_left(), a, tol);
        assert_close(v.spread_right(), b, tol);
    }

    #[test]
    fn addition_matches_paper_definition() {
        // M ⊕ N = [m1+n1, m2+n2, α+γ, β+δ]  (§3.2)
        let m = fi(1.0, 2.0, 0.1, 0.2);
        let n = fi(3.0, 5.0, 0.3, 0.4);
        assert_fi(&(m + n), 4.0, 7.0, 0.4, 0.6, 1e-12);
    }

    #[test]
    fn subtraction_matches_paper_definition() {
        // M ⊖ N = [m1−n2, m2−n1, α+δ, β+γ]  (§3.2)
        let m = fi(1.0, 2.0, 0.1, 0.2);
        let n = fi(3.0, 5.0, 0.3, 0.4);
        assert_fi(&(m - n), -4.0, -1.0, 0.5, 0.5, 1e-12);
    }

    #[test]
    fn add_sub_round_trip_widens_only() {
        let m = fi(1.0, 2.0, 0.1, 0.2);
        let n = fi(3.0, 5.0, 0.3, 0.4);
        let rt = (m + n) - n;
        // Fuzzy arithmetic is sub-distributive: the round trip includes m.
        assert!(m.is_included_in(&rt));
    }

    // --- The paper's Fig. 2 numbers, crisp-input case (1). ---

    #[test]
    fn fig2_crisp_input_case() {
        let va = FuzzyInterval::crisp_interval(2.95, 3.05).unwrap();
        let amp1 = fi(1.0, 1.0, 0.05, 0.05);
        let amp2 = fi(2.0, 2.0, 0.05, 0.05);
        let amp3 = fi(3.0, 3.0, 0.05, 0.05);

        let vb = va.mul(&amp1).unwrap();
        assert_fi(&vb, 2.95, 3.05, 0.15, 0.15, 1e-2);

        let vc = vb.mul(&amp2).unwrap();
        assert_fi(&vc, 5.90, 6.10, 0.44, 0.46, 1e-2);

        let vd = vb.mul(&amp3).unwrap();
        assert_fi(&vd, 8.85, 9.15, 0.58, 0.62, 1e-2);
    }

    // --- The paper's Fig. 2 numbers, fuzzy-input case (2). ---

    #[test]
    fn fig2_fuzzy_input_case() {
        let va = fi(3.0, 3.0, 0.05, 0.05);
        let amp1 = fi(1.0, 1.0, 0.05, 0.05);
        let amp2 = fi(2.0, 2.0, 0.05, 0.05);
        let amp3 = fi(3.0, 3.0, 0.05, 0.05);

        let vb = va.mul(&amp1).unwrap();
        assert_fi(&vb, 3.0, 3.0, 0.20, 0.20, 1e-2);

        let vc = vb.mul(&amp2).unwrap();
        assert_fi(&vc, 6.0, 6.0, 0.54, 0.57, 1e-2);

        let vd = vb.mul(&amp3).unwrap();
        assert_fi(&vd, 9.0, 9.0, 0.73, 0.77, 1e-2);
    }

    // --- The paper's Fig. 2 crisp-interval (DIANA-style) columns. ---

    #[test]
    fn fig2_pure_crisp_interval_columns() {
        let va = FuzzyInterval::crisp_interval(2.95, 3.05).unwrap();
        let amp1 = FuzzyInterval::crisp_interval(0.95, 1.05).unwrap();
        let amp2 = FuzzyInterval::crisp_interval(1.95, 2.05).unwrap();
        let amp3 = FuzzyInterval::crisp_interval(2.95, 3.05).unwrap();

        let vb = va.mul(&amp1).unwrap();
        assert_close(vb.support_lo(), 2.8025, 1e-9);
        assert_close(vb.support_hi(), 3.2025, 1e-9);

        let vc = vb.mul(&amp2).unwrap();
        assert_close(vc.support_lo(), 5.46, 1e-2);
        assert_close(vc.support_hi(), 6.56, 1e-2);

        let vd = vb.mul(&amp3).unwrap();
        assert_close(vd.support_lo(), 8.26, 1e-2);
        assert_close(vd.support_hi(), 9.76, 1e-2);
    }

    // --- The paper's §4.2 back-propagation (fault-masking) numbers. ---

    #[test]
    fn sec42_crisp_backpropagation_masks_fault() {
        // amp2 actually 1.8; Vc measured [5.6, 5.6].
        let vc = FuzzyInterval::crisp(5.6);
        let amp2_actual = FuzzyInterval::crisp(1.8);
        let vb = vc.div(&amp2_actual).unwrap();
        assert_close(vb.core_lo(), 3.111, 2e-3);

        let amp1 = FuzzyInterval::crisp_interval(0.95, 1.05).unwrap();
        let va = vb.div(&amp1).unwrap();
        // Paper: Va = [2.96, 3.27] — overlaps the nominal [2.95, 3.05]:
        // the fault is masked.
        assert_close(va.support_lo(), 2.96, 1e-2);
        assert_close(va.support_hi(), 3.27, 1e-2);
    }

    #[test]
    fn sec42_fuzzy_backpropagation_exposes_fault() {
        // Fuzzy reading: measurement imprecision 0.05 around 5.6.
        let vc = FuzzyInterval::crisp(5.6).widened(0.05).unwrap();
        let amp2_actual = FuzzyInterval::crisp(1.8);
        let vb = vc.div(&amp2_actual).unwrap();
        // Paper: Vb = [3.11, 3.11, 0.027, 0.027].
        assert_fi(&vb, 3.111, 3.111, 0.0278, 0.0278, 2e-3);

        let amp1 = fi(1.0, 1.0, 0.05, 0.05);
        let va = vb.div(&amp1).unwrap();
        // Paper: Va = [3.11, 3.11, 0.17, 0.17] (approximation; our vertex
        // method gives 0.175/0.193 — same two-decimal neighbourhood).
        assert_close(va.core_lo(), 3.111, 2e-3);
        assert_close(va.spread_left(), 0.17, 2e-2);
        assert_close(va.spread_right(), 0.19, 2e-2);
        // The nominal Va = [3, 3, 0.05, 0.05]: its core (3.0) has membership
        // < 1 in the back-propagated value — a graded inconsistency the
        // crisp run cannot see.
        let nominal = fi(3.0, 3.0, 0.05, 0.05);
        assert!(va.membership(nominal.core_lo()) < 0.55);
        assert!(va.membership(nominal.core_lo()) > 0.0);
    }

    #[test]
    fn negation_mirrors() {
        let m = fi(1.0, 2.0, 0.25, 0.5);
        assert_fi(&m.negated(), -2.0, -1.0, 0.5, 0.25, 1e-12);
        assert_fi(&m.negated().negated(), 1.0, 2.0, 0.25, 0.5, 1e-12);
    }

    #[test]
    fn scaling_positive_and_negative() {
        let m = fi(1.0, 2.0, 0.25, 0.5);
        assert_fi(&m.scaled(2.0), 2.0, 4.0, 0.5, 1.0, 1e-12);
        assert_fi(&m.scaled(-1.0), -2.0, -1.0, 0.5, 0.25, 1e-12);
        assert_fi(&m.scaled(0.0), 0.0, 0.0, 0.0, 0.0, 1e-12);
    }

    #[test]
    fn multiplication_with_negative_operand() {
        let m = fi(-2.0, -1.0, 0.5, 0.5);
        let n = fi(3.0, 4.0, 1.0, 1.0);
        let p = m.mul(&n).unwrap();
        // Core: [-2,-1] * [3,4] = [-8, -3].
        assert_close(p.core_lo(), -8.0, 1e-12);
        assert_close(p.core_hi(), -3.0, 1e-12);
        // Support: [-2.5,-0.5] * [2,5] = [-12.5, -1].
        assert_close(p.support_lo(), -12.5, 1e-12);
        assert_close(p.support_hi(), -1.0, 1e-12);
    }

    #[test]
    fn multiplication_spanning_zero() {
        let m = fi(-1.0, 1.0, 0.5, 0.5);
        let n = fi(2.0, 2.0, 0.0, 0.0);
        let p = m.mul(&n).unwrap();
        assert_close(p.core_lo(), -2.0, 1e-12);
        assert_close(p.core_hi(), 2.0, 1e-12);
        assert_close(p.support_lo(), -3.0, 1e-12);
        assert_close(p.support_hi(), 3.0, 1e-12);
    }

    #[test]
    fn division_by_zero_spanning_support_fails() {
        let m = fi(1.0, 1.0, 0.0, 0.0);
        let n = fi(0.5, 1.0, 1.0, 0.0); // support [-0.5, 1]
        assert!(matches!(
            m.div(&n),
            Err(FuzzyError::DivisorSpansZero { .. })
        ));
        let z = FuzzyInterval::crisp(0.0);
        assert!(m.div(&z).is_err());
    }

    #[test]
    fn division_by_negative_divisor() {
        let m = fi(4.0, 8.0, 0.0, 0.0);
        let n = fi(-2.0, -1.0, 0.0, 0.0);
        let q = m.div(&n).unwrap();
        assert_close(q.core_lo(), -8.0, 1e-12);
        assert_close(q.core_hi(), -2.0, 1e-12);
    }

    #[test]
    fn mul_div_round_trip_includes_original() {
        let m = fi(2.0, 3.0, 0.2, 0.3);
        let n = fi(4.0, 5.0, 0.1, 0.1);
        let rt = m.mul(&n).unwrap().div(&n).unwrap();
        assert!(m.is_included_in(&rt));
    }

    #[test]
    fn recip_of_recip_includes_original() {
        let m = fi(2.0, 3.0, 0.2, 0.3);
        let rt = m.recip().unwrap().recip().unwrap();
        assert!(m.is_included_in(&rt));
        assert!(rt.support_width() >= m.support_width() - 1e-12);
    }

    #[test]
    fn inclusion_monotonicity_of_mul() {
        let narrow = fi(2.0, 3.0, 0.1, 0.1);
        let wide = fi(2.0, 3.0, 0.5, 0.5);
        let k = fi(4.0, 4.0, 0.2, 0.2);
        let pn = narrow.mul(&k).unwrap();
        let pw = wide.mul(&k).unwrap();
        assert!(pn.is_included_in(&pw));
    }

    #[test]
    fn min_max_extensions() {
        let m = fi(1.0, 2.0, 0.5, 0.5);
        let n = fi(1.5, 3.0, 0.5, 0.5);
        let lo = m.min_ext(&n);
        assert_close(lo.core_lo(), 1.0, 1e-12);
        assert_close(lo.core_hi(), 2.0, 1e-12);
        let hi = m.max_ext(&n);
        assert_close(hi.core_lo(), 1.5, 1e-12);
        assert_close(hi.core_hi(), 3.0, 1e-12);
    }

    #[test]
    fn hull_contains_both() {
        let m = fi(1.0, 2.0, 0.5, 0.5);
        let n = fi(5.0, 6.0, 0.1, 0.1);
        let h = m.hull(&n);
        assert!(m.is_included_in(&h));
        assert!(n.is_included_in(&h));
    }

    #[test]
    fn trapezoid_intersection_overlapping() {
        let m = fi(1.0, 3.0, 0.5, 0.5);
        let n = fi(2.0, 4.0, 0.5, 0.5);
        let i = m.intersect_trapezoid(&n).unwrap();
        assert_close(i.core_lo(), 2.0, 1e-12);
        assert_close(i.core_hi(), 3.0, 1e-12);
        // Disjoint cores -> None (exact intersection would be sub-normal).
        let far = fi(10.0, 11.0, 0.5, 0.5);
        assert!(m.intersect_trapezoid(&far).is_none());
    }

    #[test]
    fn exact_multiplication_brackets_the_vertex_method() {
        let m = fi(2.0, 3.0, 0.5, 0.5);
        let n = fi(4.0, 5.0, 0.4, 0.6);
        let approx = m.mul(&n).unwrap();
        let exact = m.mul_exact(&n, 17);
        // Agreement at the support and core levels.
        assert!((exact.eval(approx.support_lo()) - 0.0).abs() < 1e-9);
        assert!((exact.eval(approx.core_lo()) - 1.0).abs() < 1e-9);
        assert!((exact.eval(approx.core_hi()) - 1.0).abs() < 1e-9);
        // The exact product's α-cuts sit inside the trapezoid's (the
        // secant over-approximates): μ_exact(x) ≥ μ_trapezoid(x) on the
        // left flank means the exact set is *tighter*.
        for k in 1..16 {
            let x =
                approx.support_lo() + (approx.core_lo() - approx.support_lo()) * k as f64 / 16.0;
            assert!(
                exact.eval(x) >= approx.membership(x) - 1e-9,
                "at {x}: exact {} < approx {}",
                exact.eval(x),
                approx.membership(x)
            );
        }
        // And the deviation is small for moderate spreads.
        let mid = 0.5 * (approx.support_lo() + approx.core_lo());
        assert!((exact.eval(mid) - approx.membership(mid)).abs() < 0.06);
    }

    #[test]
    #[allow(clippy::op_ref)] // the reference impls are exactly what is under test
    fn operator_sugar() {
        let m = fi(1.0, 2.0, 0.1, 0.1);
        let n = fi(3.0, 4.0, 0.1, 0.1);
        assert_eq!(&m + &n, m + n);
        assert_eq!(&m - &n, m - n);
        assert_eq!(-m, m.negated());
        assert_eq!((m + n) - n, (m - n) + n);
    }
}
