use crate::trapezoid::FuzzyInterval;

/// An exact piecewise-linear membership function on the real line.
///
/// A `Pwl` is a finite sequence of linear segments; the function is zero
/// outside them and *upper semicontinuous* at jump points (a crisp
/// interval's vertical edge evaluates to the higher value). This is the
/// representation used for exact intersections, unions and areas of
/// trapezoidal values — in particular for the paper's degree of consistency
/// `Dc = area(Vm ⊓ Vn) / area(Vm)` (§6.1.2).
///
/// For trapezoidal inputs every operation here is **exact**: the partition
/// used for `min`/`max` contains all segment endpoints and all pairwise
/// segment crossings, so each cell is genuinely linear.
///
/// # Example
///
/// ```
/// use flames_fuzzy::{FuzzyInterval, Pwl};
///
/// # fn main() -> Result<(), flames_fuzzy::FuzzyError> {
/// let a = FuzzyInterval::new(0.0, 2.0, 1.0, 1.0)?;
/// let b = FuzzyInterval::new(1.0, 3.0, 1.0, 1.0)?;
/// let inter = a.to_pwl().intersection(&b.to_pwl());
/// assert!(inter.area() > 0.0);
/// assert_eq!(inter.height(), 1.0); // the cores overlap
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Pwl {
    /// Segments sorted by `x0`, non-overlapping except possibly sharing
    /// endpoints (where a jump is allowed).
    segments: Vec<Segment>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Segment {
    x0: f64,
    x1: f64,
    y0: f64,
    y1: f64,
}

impl Segment {
    fn eval(&self, x: f64) -> f64 {
        if self.x1 == self.x0 {
            self.y0.max(self.y1)
        } else {
            self.y0 + (self.y1 - self.y0) * (x - self.x0) / (self.x1 - self.x0)
        }
    }

    fn area(&self) -> f64 {
        0.5 * (self.y0 + self.y1) * (self.x1 - self.x0)
    }
}

impl Pwl {
    /// The everywhere-zero function.
    #[must_use]
    pub fn zero() -> Self {
        Self {
            segments: Vec::new(),
        }
    }

    /// Builds a membership function from nested α-cuts
    /// `(level, lo, hi)` — levels must be strictly increasing with
    /// shrinking intervals (the natural output of α-cut arithmetic). The
    /// membership is linear between consecutive levels.
    ///
    /// Returns [`Pwl::zero`] for an empty list.
    #[must_use]
    pub fn from_alpha_cuts(cuts: &[(f64, f64, f64)]) -> Self {
        if cuts.is_empty() {
            return Self::zero();
        }
        let mut segments = Vec::with_capacity(2 * cuts.len());
        // Ascending left flank (left to right, membership rising).
        let mut prev: Option<(f64, f64)> = None; // (x, level)
        for &(level, lo, _) in cuts {
            if let Some((px, plevel)) = prev {
                if lo < px {
                    // Degenerate (non-nested) input: clamp to a jump.
                    segments.push(Segment {
                        x0: px,
                        x1: px,
                        y0: plevel,
                        y1: level,
                    });
                } else {
                    segments.push(Segment {
                        x0: px,
                        x1: lo,
                        y0: plevel,
                        y1: level,
                    });
                }
            }
            prev = Some((lo, level));
        }
        // Top plateau.
        let &(top_level, top_lo, top_hi) = cuts.last().expect("non-empty");
        segments.push(Segment {
            x0: top_lo,
            x1: top_hi,
            y0: top_level,
            y1: top_level,
        });
        // Descending right flank.
        let mut prev: Option<(f64, f64)> = Some((top_hi, top_level));
        for &(level, _, hi) in cuts.iter().rev().skip(1) {
            if let Some((px, plevel)) = prev {
                if hi < px {
                    segments.push(Segment {
                        x0: px,
                        x1: px,
                        y0: plevel,
                        y1: level,
                    });
                } else {
                    segments.push(Segment {
                        x0: px,
                        x1: hi,
                        y0: plevel,
                        y1: level,
                    });
                }
            }
            prev = Some((hi, level));
        }
        Self { segments }
    }

    /// Builds the membership function of a trapezoidal fuzzy interval.
    #[must_use]
    pub fn from_trapezoid(t: &FuzzyInterval) -> Self {
        let mut segments = Vec::with_capacity(3);
        if t.spread_left() > 0.0 {
            segments.push(Segment {
                x0: t.support_lo(),
                x1: t.core_lo(),
                y0: 0.0,
                y1: 1.0,
            });
        }
        segments.push(Segment {
            x0: t.core_lo(),
            x1: t.core_hi(),
            y0: 1.0,
            y1: 1.0,
        });
        if t.spread_right() > 0.0 {
            segments.push(Segment {
                x0: t.core_hi(),
                x1: t.support_hi(),
                y0: 1.0,
                y1: 0.0,
            });
        }
        Self { segments }
    }

    /// Evaluates the membership at `x` (upper semicontinuous at jumps,
    /// zero outside all segments).
    #[must_use]
    pub fn eval(&self, x: f64) -> f64 {
        let mut best = 0.0_f64;
        for s in &self.segments {
            if x >= s.x0 && x <= s.x1 {
                best = best.max(s.eval(x));
            }
        }
        best
    }

    /// Area under the function (exact).
    #[must_use]
    pub fn area(&self) -> f64 {
        self.segments.iter().map(Segment::area).sum()
    }

    /// Maximum membership value (the *height*; 1 for a normalized set,
    /// 0 for the empty set).
    #[must_use]
    pub fn height(&self) -> f64 {
        self.segments
            .iter()
            .map(|s| s.y0.max(s.y1))
            .fold(0.0, f64::max)
    }

    /// True if the function is identically zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.height() == 0.0
    }

    /// Midpoint of the peak plateau — the x-range on which the function
    /// attains its height; `None` for the zero function. For a
    /// trapezoid's membership this is the core midpoint, which is what
    /// lets [`crate::Consistency::between_pwl`] mirror the closed-form
    /// path's zero-area (crisp point) fallback.
    #[must_use]
    pub fn peak_midpoint(&self) -> Option<f64> {
        let h = self.height();
        if h <= 0.0 {
            return None;
        }
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for s in &self.segments {
            for (x, y) in [(s.x0, s.y0), (s.x1, s.y1)] {
                if y >= h - 1e-12 {
                    lo = lo.min(x);
                    hi = hi.max(x);
                }
            }
        }
        Some(0.5 * (lo + hi))
    }

    /// Centroid of the area under the function; `None` when the area is
    /// zero.
    #[must_use]
    pub fn centroid(&self) -> Option<f64> {
        let area = self.area();
        if area <= 0.0 {
            return None;
        }
        let moment: f64 = self
            .segments
            .iter()
            .map(|s| {
                let w = s.x1 - s.x0;
                // ∫ x·y dx over the segment with y linear in x.
                w * (s.x0 * (2.0 * s.y0 + s.y1) + s.x1 * (s.y0 + 2.0 * s.y1)) / 6.0
            })
            .sum();
        Some(moment / area)
    }

    /// Pointwise minimum (fuzzy intersection with the min t-norm). Exact
    /// for piecewise-linear operands.
    #[must_use]
    pub fn intersection(&self, other: &Self) -> Self {
        self.combine(other, f64::min)
    }

    /// Pointwise maximum (fuzzy union with the max s-norm). Exact for
    /// piecewise-linear operands.
    #[must_use]
    pub fn union(&self, other: &Self) -> Self {
        self.combine(other, f64::max)
    }

    /// X-coordinates partitioning the real line into cells on which both
    /// operands are linear and do not cross.
    fn partition_with(&self, other: &Self, op_needs_crossings: bool) -> Vec<f64> {
        let mut xs: Vec<f64> = Vec::new();
        for s in self.segments.iter().chain(&other.segments) {
            xs.push(s.x0);
            xs.push(s.x1);
        }
        if op_needs_crossings {
            for a in &self.segments {
                for b in &other.segments {
                    if let Some(x) = segment_crossing(a, b) {
                        xs.push(x);
                    }
                }
            }
        }
        xs.retain(|x| x.is_finite());
        xs.sort_by(|p, q| p.partial_cmp(q).expect("finite"));
        xs.dedup_by(|p, q| (*p - *q).abs() < 1e-12);
        xs
    }

    fn combine(&self, other: &Self, op: fn(f64, f64) -> f64) -> Self {
        let xs = self.partition_with(other, true);
        let mut segments = Vec::new();
        for w in xs.windows(2) {
            let (u, v) = (w[0], w[1]);
            let width = v - u;
            if width <= 0.0 {
                continue;
            }
            // Two interior probes determine the (linear) combined function
            // on the open cell; extrapolate to the cell endpoints.
            let p = u + width / 3.0;
            let q = u + 2.0 * width / 3.0;
            let fp = op(self.eval(p), other.eval(p));
            let fq = op(self.eval(q), other.eval(q));
            let slope = (fq - fp) / (q - p);
            let y0 = fp + slope * (u - p);
            let y1 = fp + slope * (v - p);
            let (y0, y1) = (y0.clamp(0.0, 1.0), y1.clamp(0.0, 1.0));
            if y0 > 0.0 || y1 > 0.0 {
                segments.push(Segment {
                    x0: u,
                    x1: v,
                    y0,
                    y1,
                });
            }
        }
        Self { segments }
    }
}

/// X-coordinate where two segments (viewed as lines over their overlapping
/// x-range) cross, if it lies inside both.
fn segment_crossing(a: &Segment, b: &Segment) -> Option<f64> {
    let lo = a.x0.max(b.x0);
    let hi = a.x1.min(b.x1);
    if lo >= hi {
        return None;
    }
    let wa = a.x1 - a.x0;
    let wb = b.x1 - b.x0;
    if wa == 0.0 || wb == 0.0 {
        return None;
    }
    let sa = (a.y1 - a.y0) / wa;
    let sb = (b.y1 - b.y0) / wb;
    if (sa - sb).abs() < 1e-15 {
        return None;
    }
    // a.y0 + sa (x - a.x0) = b.y0 + sb (x - b.x0)
    let x = (b.y0 - a.y0 + sa * a.x0 - sb * b.x0) / (sa - sb);
    (x > lo && x < hi).then_some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fi(m1: f64, m2: f64, a: f64, b: f64) -> FuzzyInterval {
        FuzzyInterval::new(m1, m2, a, b).unwrap()
    }

    #[test]
    fn trapezoid_round_trip_eval() {
        let t = fi(1.0, 2.0, 0.5, 1.0);
        let p = t.to_pwl();
        for &x in &[0.4, 0.5, 0.75, 1.0, 1.5, 2.0, 2.5, 3.0, 3.1] {
            assert!(
                (p.eval(x) - t.membership(x)).abs() < 1e-12,
                "mismatch at {x}"
            );
        }
    }

    #[test]
    fn area_matches_trapezoid_formula() {
        let t = fi(1.0, 3.0, 1.0, 2.0);
        assert!((t.to_pwl().area() - t.area()).abs() < 1e-12);
    }

    #[test]
    fn crisp_interval_pwl() {
        let t = FuzzyInterval::crisp_interval(1.0, 2.0).unwrap();
        let p = t.to_pwl();
        assert_eq!(p.eval(1.5), 1.0);
        assert_eq!(p.eval(0.99), 0.0);
        assert!((p.area() - 1.0).abs() < 1e-12);
        assert_eq!(p.height(), 1.0);
    }

    #[test]
    fn intersection_identical_is_identity_area() {
        let t = fi(1.0, 2.0, 0.5, 0.5);
        let p = t.to_pwl();
        let i = p.intersection(&p);
        assert!((i.area() - p.area()).abs() < 1e-9);
        assert_eq!(i.height(), 1.0);
    }

    #[test]
    fn intersection_disjoint_is_zero() {
        let a = fi(0.0, 1.0, 0.2, 0.2).to_pwl();
        let b = fi(5.0, 6.0, 0.2, 0.2).to_pwl();
        let i = a.intersection(&b);
        assert!(i.is_zero());
        assert_eq!(i.area(), 0.0);
    }

    #[test]
    fn intersection_of_overlapping_ramps_exact() {
        // a: descending ramp 1→0 over [1,2]; b: ascending ramp 0→1 over [1,2].
        // min is a tent peaking at 0.5 in the middle: area = 2 * (0.5*1*0.5)/...
        // piecewise: rises 0→0.5 over [1,1.5], falls 0.5→0 over [1.5,2] → area 0.25.
        let a = fi(0.0, 1.0, 0.0, 1.0).to_pwl();
        let b = fi(2.0, 3.0, 1.0, 0.0).to_pwl();
        let i = a.intersection(&b);
        assert!((i.area() - 0.25).abs() < 1e-9);
        assert!((i.height() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn union_contains_both() {
        let a = fi(0.0, 1.0, 0.5, 0.5);
        let b = fi(0.5, 2.0, 0.5, 0.5);
        let u = a.to_pwl().union(&b.to_pwl());
        for &x in &[-0.4, 0.0, 0.5, 1.0, 1.2, 2.0, 2.4] {
            let expect = a.membership(x).max(b.membership(x));
            assert!((u.eval(x) - expect).abs() < 1e-9, "at {x}");
        }
    }

    #[test]
    fn inclusion_gives_full_relative_area() {
        let narrow = fi(1.4, 1.6, 0.1, 0.1);
        let wide = fi(1.0, 2.0, 0.5, 0.5);
        let i = narrow.to_pwl().intersection(&wide.to_pwl());
        // narrow ⊆ wide pointwise, so min = narrow.
        assert!((i.area() - narrow.area()).abs() < 1e-9);
    }

    #[test]
    fn centroid_of_symmetric_tent() {
        let t = fi(1.0, 1.0, 1.0, 1.0).to_pwl();
        assert!((t.centroid().unwrap() - 1.0).abs() < 1e-9);
        assert!(Pwl::zero().centroid().is_none());
    }

    #[test]
    fn peak_midpoint_is_core_midpoint() {
        let t = fi(1.0, 3.0, 0.5, 2.0);
        assert!((t.to_pwl().peak_midpoint().unwrap() - 2.0).abs() < 1e-12);
        // A crisp point's spike still has a peak.
        let p = FuzzyInterval::crisp(7.0).to_pwl();
        assert!((p.peak_midpoint().unwrap() - 7.0).abs() < 1e-12);
        assert!(Pwl::zero().peak_midpoint().is_none());
    }

    #[test]
    fn zero_function_properties() {
        let z = Pwl::zero();
        assert!(z.is_zero());
        assert_eq!(z.area(), 0.0);
        assert_eq!(z.eval(0.0), 0.0);
        assert_eq!(z.height(), 0.0);
    }

    #[test]
    fn alpha_cut_reconstruction_of_a_trapezoid() {
        // Sampling a trapezoid's α-cuts and rebuilding must reproduce it.
        let t = fi(1.0, 2.0, 0.5, 1.0);
        let cuts: Vec<(f64, f64, f64)> = (0..5)
            .map(|k| {
                let level = k as f64 / 4.0;
                let (lo, hi) = t.alpha_cut(level);
                (level, lo, hi)
            })
            .collect();
        let rebuilt = Pwl::from_alpha_cuts(&cuts);
        for &x in &[0.4, 0.5, 0.75, 1.0, 1.5, 2.0, 2.5, 3.0, 3.1] {
            assert!(
                (rebuilt.eval(x) - t.membership(x)).abs() < 1e-9,
                "mismatch at {x}: {} vs {}",
                rebuilt.eval(x),
                t.membership(x)
            );
        }
        assert!((rebuilt.area() - t.area()).abs() < 1e-9);
    }

    #[test]
    fn alpha_cut_builder_edge_cases() {
        assert!(Pwl::from_alpha_cuts(&[]).is_zero());
        // A single cut is a plateau at its level.
        let one = Pwl::from_alpha_cuts(&[(1.0, 2.0, 3.0)]);
        assert_eq!(one.eval(2.5), 1.0);
        assert_eq!(one.eval(1.9), 0.0);
        assert!((one.area() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn partial_overlap_area_is_between() {
        let a = fi(0.0, 2.0, 1.0, 1.0);
        let b = fi(1.5, 3.5, 1.0, 1.0);
        let i = a.to_pwl().intersection(&b.to_pwl());
        assert!(i.area() > 0.0);
        assert!(i.area() < a.area().min(b.area()));
        assert_eq!(i.height(), 1.0); // cores overlap on [1.5, 2]
    }
}
