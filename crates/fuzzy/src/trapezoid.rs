use crate::error::FuzzyError;
use crate::pwl::Pwl;
use crate::Result;
use std::fmt;

/// A trapezoidal fuzzy interval `[m1, m2, α, β]` (the paper's Fig. 1).
///
/// The *core* — the set of fully possible values — is `[m1, m2]`; the
/// membership ramps linearly from `0` at `m1 − α` up to `1` at `m1`, stays at
/// `1` across the core, and ramps back down to `0` at `m2 + β`:
///
/// ```text
/// μ(x) = (x − m1 + α)/α   for x ∈ [m1 − α, m1]
/// μ(x) = 1                for x ∈ [m1, m2]
/// μ(x) = (m2 + β − x)/β   for x ∈ [m2, m2 + β]
/// ```
///
/// The representation uniformly covers the four kinds of value the paper
/// needs (§3.2):
///
/// * a crisp number `m` is `[m, m, 0, 0]` — see [`FuzzyInterval::crisp`];
/// * a crisp interval `[a, b]` is `[a, b, 0, 0]` —
///   see [`FuzzyInterval::crisp_interval`];
/// * a fuzzy number `M` is `[m, m, α, β]` —
///   see [`FuzzyInterval::fuzzy_number`];
/// * the general case is a fuzzy interval.
///
/// # Example
///
/// ```
/// use flames_fuzzy::FuzzyInterval;
///
/// # fn main() -> Result<(), flames_fuzzy::FuzzyError> {
/// // The paper's Fig. 5 fuzzy tolerance condition "Id ≤ 100 µA": [-1, 100, 0, 10].
/// let cond = FuzzyInterval::new(-1.0, 100.0, 0.0, 10.0)?;
/// assert_eq!(cond.membership(50.0), 1.0);
/// assert_eq!(cond.membership(105.0), 0.5); // the paper's degree for Ir1 = 105 µA
/// assert_eq!(cond.membership(200.0), 0.0); // and for Ir2 = 200 µA
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FuzzyInterval {
    m1: f64,
    m2: f64,
    alpha: f64,
    beta: f64,
}

impl FuzzyInterval {
    /// Creates a trapezoidal fuzzy interval with core `[m1, m2]`, left
    /// spread `alpha` and right spread `beta`.
    ///
    /// # Errors
    ///
    /// Returns [`FuzzyError::InvalidInterval`] if `m1 > m2`, a spread is
    /// negative, or any parameter is non-finite.
    pub fn new(m1: f64, m2: f64, alpha: f64, beta: f64) -> Result<Self> {
        let finite = m1.is_finite() && m2.is_finite() && alpha.is_finite() && beta.is_finite();
        if !finite || m1 > m2 || alpha < 0.0 || beta < 0.0 {
            return Err(FuzzyError::InvalidInterval {
                m1,
                m2,
                alpha,
                beta,
            });
        }
        Ok(Self {
            m1,
            m2,
            alpha,
            beta,
        })
    }

    /// Creates the crisp number `m` = `[m, m, 0, 0]`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is not finite.
    #[must_use]
    pub fn crisp(m: f64) -> Self {
        Self::new(m, m, 0.0, 0.0).expect("crisp number must be finite")
    }

    /// Reassembles an interval from the four columns of a valid interval
    /// (`core_lo`/`core_hi`/`spread_left`/`spread_right`) without
    /// re-validating — the struct-of-arrays label stores in `flames-core`
    /// round-trip every entry through parallel `f64` columns on each
    /// access, and the invariants were established when the entry was
    /// first constructed.
    #[must_use]
    pub fn from_columns(m1: f64, m2: f64, alpha: f64, beta: f64) -> Self {
        debug_assert!(
            m1.is_finite() && m2.is_finite() && m1 <= m2 && alpha >= 0.0 && beta >= 0.0,
            "columns must come from a valid interval"
        );
        Self {
            m1,
            m2,
            alpha,
            beta,
        }
    }

    /// Creates the crisp interval `[a, b]` = `[a, b, 0, 0]`.
    ///
    /// # Errors
    ///
    /// Returns [`FuzzyError::InvalidInterval`] if `a > b` or a bound is
    /// non-finite.
    pub fn crisp_interval(a: f64, b: f64) -> Result<Self> {
        Self::new(a, b, 0.0, 0.0)
    }

    /// Creates the fuzzy number `M` = `[m, m, α, β]`.
    ///
    /// # Errors
    ///
    /// Returns [`FuzzyError::InvalidInterval`] on negative or non-finite
    /// spreads.
    pub fn fuzzy_number(m: f64, alpha: f64, beta: f64) -> Result<Self> {
        Self::new(m, m, alpha, beta)
    }

    /// Creates a symmetric fuzzy number `[m, m, s, s]`.
    ///
    /// # Errors
    ///
    /// Returns [`FuzzyError::InvalidInterval`] if `s < 0` or a parameter is
    /// non-finite.
    pub fn symmetric(m: f64, s: f64) -> Result<Self> {
        Self::new(m, m, s, s)
    }

    /// Creates a fuzzy number around `m` whose spreads are `rel · |m|` —
    /// the natural encoding of a component tolerance ("±5%").
    ///
    /// # Errors
    ///
    /// Returns [`FuzzyError::InvalidInterval`] if `rel < 0` or a parameter
    /// is non-finite.
    pub fn with_tolerance(m: f64, rel: f64) -> Result<Self> {
        let s = rel * m.abs();
        Self::new(m, m, s, s)
    }

    /// Lower bound of the core (`m1`).
    #[must_use]
    pub fn core_lo(&self) -> f64 {
        self.m1
    }

    /// Upper bound of the core (`m2`).
    #[must_use]
    pub fn core_hi(&self) -> f64 {
        self.m2
    }

    /// Left spread `α`.
    #[must_use]
    pub fn spread_left(&self) -> f64 {
        self.alpha
    }

    /// Right spread `β`.
    #[must_use]
    pub fn spread_right(&self) -> f64 {
        self.beta
    }

    /// Lower end of the support, `m1 − α`.
    #[must_use]
    pub fn support_lo(&self) -> f64 {
        self.m1 - self.alpha
    }

    /// Upper end of the support, `m2 + β`.
    #[must_use]
    pub fn support_hi(&self) -> f64 {
        self.m2 + self.beta
    }

    /// The support as a pair `(m1 − α, m2 + β)` — every value with a
    /// membership degree greater than zero (§3.1).
    #[must_use]
    pub fn support(&self) -> (f64, f64) {
        (self.support_lo(), self.support_hi())
    }

    /// The core as a pair `(m1, m2)` — every value with membership one.
    #[must_use]
    pub fn core(&self) -> (f64, f64) {
        (self.m1, self.m2)
    }

    /// Width of the support.
    #[must_use]
    pub fn support_width(&self) -> f64 {
        self.support_hi() - self.support_lo()
    }

    /// True if the value is crisp: zero spreads (a number or an interval).
    #[must_use]
    pub fn is_crisp(&self) -> bool {
        self.alpha == 0.0 && self.beta == 0.0
    }

    /// True if the value is a single crisp point.
    #[must_use]
    pub fn is_point(&self) -> bool {
        self.is_crisp() && self.m1 == self.m2
    }

    /// Membership degree `μ(x) ∈ [0, 1]` of `x` (§3.1).
    #[must_use]
    pub fn membership(&self, x: f64) -> f64 {
        if x >= self.m1 && x <= self.m2 {
            1.0
        } else if x < self.m1 {
            if self.alpha == 0.0 {
                0.0
            } else {
                ((x - (self.m1 - self.alpha)) / self.alpha).clamp(0.0, 1.0)
            }
        } else if self.beta == 0.0 {
            0.0
        } else {
            (((self.m2 + self.beta) - x) / self.beta).clamp(0.0, 1.0)
        }
    }

    /// The α-cut `{x | μ(x) ≥ level}` as `(lo, hi)`.
    ///
    /// `level` is clamped to `(0, 1]`; the 0-cut is taken as the (closure
    /// of the) support.
    #[must_use]
    pub fn alpha_cut(&self, level: f64) -> (f64, f64) {
        let level = level.clamp(0.0, 1.0);
        (
            self.m1 - (1.0 - level) * self.alpha,
            self.m2 + (1.0 - level) * self.beta,
        )
    }

    /// Area under the membership function:
    /// `(m2 − m1) + (α + β)/2` for a trapezoid.
    ///
    /// This is the denominator of the paper's degree of consistency
    /// (§6.1.2). A crisp point has zero area.
    #[must_use]
    pub fn area(&self) -> f64 {
        (self.m2 - self.m1) + 0.5 * (self.alpha + self.beta)
    }

    /// Centroid (center of gravity) of the membership function — the usual
    /// defuzzification of the value. Falls back to the core midpoint for a
    /// crisp point.
    #[must_use]
    pub fn centroid(&self) -> f64 {
        let a = self.area();
        if a == 0.0 {
            return 0.5 * (self.m1 + self.m2);
        }
        // Moment of the left ramp triangle, the core rectangle, the right ramp.
        let left = 0.5 * self.alpha * (self.m1 - self.alpha / 3.0);
        let core = (self.m2 - self.m1) * 0.5 * (self.m1 + self.m2);
        let right = 0.5 * self.beta * (self.m2 + self.beta / 3.0);
        (left + core + right) / a
    }

    /// Midpoint of the core.
    #[must_use]
    pub fn core_midpoint(&self) -> f64 {
        0.5 * (self.m1 + self.m2)
    }

    /// Mean-of-maxima defuzzification: the midpoint of the core (the set
    /// of fully possible values). Coincides with [`Self::core_midpoint`]
    /// for trapezoids; kept as a named defuzzifier alongside
    /// [`Self::centroid`].
    #[must_use]
    pub fn mean_of_maxima(&self) -> f64 {
        self.core_midpoint()
    }

    /// Normalized Hamming distance between two fuzzy intervals:
    /// `∫ |μ_self − μ_other| dx`, computed exactly from the piecewise
    /// linear memberships (`area(A⊔B) − area(A⊓B)`). Zero iff the sets
    /// are equal almost everywhere.
    #[must_use]
    pub fn hamming_distance(&self, other: &Self) -> f64 {
        let a = self.to_pwl();
        let b = other.to_pwl();
        (a.union(&b).area() - a.intersection(&b).area()).max(0.0)
    }

    /// Translates the interval by `dx` (exact).
    #[must_use]
    pub fn translated(&self, dx: f64) -> Self {
        Self::new(self.m1 + dx, self.m2 + dx, self.alpha, self.beta)
            .expect("translation by finite dx preserves validity")
    }

    /// True if the support of `self` is entirely contained in the support
    /// of `other` *and* the core of `self` lies inside the core-to-support
    /// envelope of `other` at every level (trapezoids: equivalent to
    /// support and core inclusion).
    #[must_use]
    pub fn is_included_in(&self, other: &Self) -> bool {
        self.support_lo() >= other.support_lo()
            && self.support_hi() <= other.support_hi()
            && self.m1 >= other.m1
            && self.m2 <= other.m2
    }

    /// Possibility of overlap: `sup_x min(μ_self(x), μ_other(x))`.
    ///
    /// Equals 1 when the cores intersect, 0 when the supports are disjoint,
    /// and the height of the crossing point of the facing ramps otherwise.
    #[must_use]
    pub fn possibility_of(&self, other: &Self) -> f64 {
        // Cores intersect => full possibility.
        if self.m1 <= other.m2 && other.m1 <= self.m2 {
            return 1.0;
        }
        if self.m2 < other.m1 {
            // self is to the left: self's right ramp meets other's left ramp.
            ramp_crossing(self.m2, self.beta, other.m1, other.alpha)
        } else {
            ramp_crossing(other.m2, other.beta, self.m1, self.alpha)
        }
    }

    /// Converts the trapezoid into an explicit piecewise-linear membership
    /// function (used for exact intersections and areas).
    #[must_use]
    pub fn to_pwl(&self) -> Pwl {
        Pwl::from_trapezoid(self)
    }

    /// Area of the pointwise minimum `area(self ⊓ other)` — the numerator
    /// of the paper's degree of consistency (§6.1.2) — computed in closed
    /// form from the two `[m1, m2, α, β]` tuples, entirely on the stack.
    ///
    /// The minimum of two trapezoidal memberships is piecewise linear with
    /// a bounded kink set: the eight trapezoid corners plus at most four
    /// ramp–ramp line crossings. On each cell of that partition both
    /// memberships are linear and do not cross, so two interior probes at
    /// `u + w/3` and `u + 2w/3` integrate the cell exactly — the same
    /// probe scheme [`Pwl::combine`] uses internally, which keeps this
    /// fast path and the heap-allocating PWL fallback in agreement to
    /// floating-point noise (≪ 1e-12; the `proptest` suite checks 10 000
    /// random pairs).
    ///
    /// Degenerate shapes need no special casing: a zero spread (α = 0 or
    /// β = 0) simply contributes no ramp line, and the vertical edge is
    /// handled by the interior probes never landing on it.
    #[must_use]
    pub fn intersection_area(&self, other: &Self) -> f64 {
        let lo = self.support_lo().max(other.support_lo());
        let hi = self.support_hi().min(other.support_hi());
        if lo >= hi {
            // Disjoint (or point-touching) supports: the minimum is zero
            // almost everywhere.
            return 0.0;
        }
        // Ramp lines as `y = s·(x − x0)`: ascending from the support foot,
        // descending from the support head. A zero spread has no ramp.
        let ramps_a = [
            (self.alpha > 0.0).then(|| (1.0 / self.alpha, self.support_lo())),
            (self.beta > 0.0).then(|| (-1.0 / self.beta, self.support_hi())),
        ];
        let ramps_b = [
            (other.alpha > 0.0).then(|| (1.0 / other.alpha, other.support_lo())),
            (other.beta > 0.0).then(|| (-1.0 / other.beta, other.support_hi())),
        ];
        // Breakpoints of min(μa, μb) inside (lo, hi): corners first…
        let mut xs = [0.0_f64; 10];
        xs[0] = lo;
        let mut n = 1;
        for x in [self.m1, self.m2, other.m1, other.m2] {
            if x > lo && x < hi {
                xs[n] = x;
                n += 1;
            }
        }
        // …then the crossings of the extended ramp lines. A crossing
        // outside the ramps' live domains is a harmless extra breakpoint
        // (it splits a cell on which the minimum is linear anyway).
        for (s1, x01) in ramps_a.into_iter().flatten() {
            for (s2, x02) in ramps_b.into_iter().flatten() {
                if s1 == s2 {
                    continue; // parallel lines never kink the minimum
                }
                let x = (s1 * x01 - s2 * x02) / (s1 - s2);
                if x > lo && x < hi {
                    xs[n] = x;
                    n += 1;
                }
            }
        }
        xs[n] = hi;
        n += 1;
        xs[..n].sort_unstable_by(|p, q| p.partial_cmp(q).expect("finite breakpoints"));
        let mut area = 0.0;
        for k in 0..n - 1 {
            let (u, v) = (xs[k], xs[k + 1]);
            let width = v - u;
            if width <= 0.0 {
                continue;
            }
            let p = u + width / 3.0;
            let q = u + 2.0 * width / 3.0;
            let fp = self.membership(p).min(other.membership(p));
            let fq = self.membership(q).min(other.membership(q));
            area += 0.5 * (fp + fq) * width;
        }
        area
    }

    /// Widens the interval by adding `extra` to both spreads — how the
    /// paper layers measurement-equipment imprecision on top of a reading.
    ///
    /// # Errors
    ///
    /// Returns [`FuzzyError::InvalidInterval`] if `extra` is negative or
    /// non-finite.
    pub fn widened(&self, extra: f64) -> Result<Self> {
        Self::new(self.m1, self.m2, self.alpha + extra, self.beta + extra)
    }

    /// Degree to which this value satisfies a fuzzy condition set `cond`
    /// (e.g. the Fig. 5 "`Id ≤ 100 µA`" set `[-1, 100, 0, 10]`).
    ///
    /// For a crisp point this is just the membership of the point; in
    /// general it is the *necessity-like* degree
    /// `inf_{x ∈ core(self)} μ_cond(x)` softened by the possibility of the
    /// supports — we take the conservative `min` of the two core-endpoint
    /// memberships, the natural trapezoid evaluation.
    #[must_use]
    pub fn satisfaction_of(&self, cond: &Self) -> f64 {
        cond.membership(self.m1).min(cond.membership(self.m2))
    }
}

/// Height at which a descending ramp ending at `hi_core + beta` (from
/// `hi_core`) crosses an ascending ramp starting at `lo_core − alpha`
/// (up to `lo_core`), where `hi_core < lo_core`.
fn ramp_crossing(hi_core: f64, beta: f64, lo_core: f64, alpha: f64) -> f64 {
    let gap = lo_core - hi_core;
    debug_assert!(gap >= 0.0);
    let total = alpha + beta;
    if total == 0.0 || gap >= total {
        return 0.0;
    }
    // Descending: y = (hi_core + beta − x)/beta; ascending: y = (x − lo_core + alpha)/alpha.
    // Solve for equal y in [0,1].
    ((total - gap) / total).clamp(0.0, 1.0)
}

impl Default for FuzzyInterval {
    /// The crisp number zero.
    fn default() -> Self {
        Self::crisp(0.0)
    }
}

impl fmt::Display for FuzzyInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let p = f.precision().unwrap_or(3);
        write!(
            f,
            "[{:.p$}, {:.p$}, {:.p$}, {:.p$}]",
            self.m1,
            self.m2,
            self.alpha,
            self.beta,
            p = p
        )
    }
}

impl From<f64> for FuzzyInterval {
    /// Wraps a finite `f64` as a crisp number.
    ///
    /// # Panics
    ///
    /// Panics if the value is not finite.
    fn from(m: f64) -> Self {
        Self::crisp(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fi(m1: f64, m2: f64, a: f64, b: f64) -> FuzzyInterval {
        FuzzyInterval::new(m1, m2, a, b).unwrap()
    }

    #[test]
    fn rejects_inverted_core() {
        assert!(matches!(
            FuzzyInterval::new(2.0, 1.0, 0.0, 0.0),
            Err(FuzzyError::InvalidInterval { .. })
        ));
    }

    #[test]
    fn rejects_negative_spread() {
        assert!(FuzzyInterval::new(0.0, 1.0, -0.1, 0.0).is_err());
        assert!(FuzzyInterval::new(0.0, 1.0, 0.0, -0.1).is_err());
    }

    #[test]
    fn rejects_non_finite() {
        assert!(FuzzyInterval::new(f64::NAN, 1.0, 0.0, 0.0).is_err());
        assert!(FuzzyInterval::new(0.0, f64::INFINITY, 0.0, 0.0).is_err());
    }

    #[test]
    fn membership_shape_matches_fig1() {
        let m = fi(1.0, 2.0, 0.5, 1.0);
        assert_eq!(m.membership(1.0), 1.0);
        assert_eq!(m.membership(2.0), 1.0);
        assert_eq!(m.membership(1.5), 1.0);
        assert_eq!(m.membership(0.75), 0.5);
        assert_eq!(m.membership(2.5), 0.5);
        assert_eq!(m.membership(0.5), 0.0);
        assert_eq!(m.membership(3.0), 0.0);
        assert_eq!(m.membership(-10.0), 0.0);
        assert_eq!(m.membership(10.0), 0.0);
    }

    #[test]
    fn crisp_number_has_spike_membership() {
        let m = FuzzyInterval::crisp(5.0);
        assert_eq!(m.membership(5.0), 1.0);
        assert_eq!(m.membership(5.0 + 1e-12), 0.0);
        assert!(m.is_point());
        assert_eq!(m.area(), 0.0);
    }

    #[test]
    fn fig5_condition_memberships() {
        let cond = fi(-1.0, 100.0, 0.0, 10.0);
        assert_eq!(cond.membership(105.0), 0.5);
        assert_eq!(cond.membership(200.0), 0.0);
        assert_eq!(cond.membership(100.0), 1.0);
        assert_eq!(cond.membership(110.0), 0.0);
    }

    #[test]
    fn alpha_cut_interpolates() {
        let m = fi(1.0, 2.0, 0.5, 1.0);
        assert_eq!(m.alpha_cut(1.0), (1.0, 2.0));
        assert_eq!(m.alpha_cut(0.0), (0.5, 3.0));
        let (lo, hi) = m.alpha_cut(0.5);
        assert!((lo - 0.75).abs() < 1e-12);
        assert!((hi - 2.5).abs() < 1e-12);
    }

    #[test]
    fn area_of_trapezoid() {
        let m = fi(1.0, 3.0, 1.0, 1.0);
        assert!((m.area() - 3.0).abs() < 1e-12);
        let tri = fi(1.0, 1.0, 1.0, 1.0);
        assert!((tri.area() - 1.0).abs() < 1e-12);
        let crisp = FuzzyInterval::crisp_interval(1.0, 4.0).unwrap();
        assert!((crisp.area() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn centroid_symmetric_is_midpoint() {
        let m = fi(1.0, 3.0, 0.5, 0.5);
        assert!((m.centroid() - 2.0).abs() < 1e-12);
        let point = FuzzyInterval::crisp(7.0);
        assert_eq!(point.centroid(), 7.0);
    }

    #[test]
    fn centroid_skews_toward_larger_spread() {
        let m = fi(0.0, 0.0, 0.0, 3.0); // right triangle
        assert!((m.centroid() - 1.0).abs() < 1e-12); // centroid of triangle at b/3
        let m = fi(0.0, 0.0, 3.0, 0.0);
        assert!((m.centroid() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn inclusion() {
        let wide = fi(0.0, 10.0, 2.0, 2.0);
        let narrow = fi(2.0, 8.0, 1.0, 1.0);
        assert!(narrow.is_included_in(&wide));
        assert!(!wide.is_included_in(&narrow));
        assert!(wide.is_included_in(&wide));
    }

    #[test]
    fn possibility_overlapping_cores_is_one() {
        let a = fi(0.0, 2.0, 1.0, 1.0);
        let b = fi(1.5, 3.0, 1.0, 1.0);
        assert_eq!(a.possibility_of(&b), 1.0);
        assert_eq!(b.possibility_of(&a), 1.0);
    }

    #[test]
    fn possibility_disjoint_supports_is_zero() {
        let a = fi(0.0, 1.0, 0.5, 0.5);
        let b = fi(5.0, 6.0, 0.5, 0.5);
        assert_eq!(a.possibility_of(&b), 0.0);
        assert_eq!(b.possibility_of(&a), 0.0);
    }

    #[test]
    fn possibility_ramp_crossing_midway() {
        // Right ramp of a: 1 at 1.0 -> 0 at 2.0; left ramp of b: 0 at 1.0 -> 1 at 2.0.
        // They cross at height 0.5.
        let a = fi(0.0, 1.0, 0.0, 1.0);
        let b = fi(2.0, 3.0, 1.0, 0.0);
        assert!((a.possibility_of(&b) - 0.5).abs() < 1e-12);
        assert!((b.possibility_of(&a) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn with_tolerance_spreads_relative() {
        let r = FuzzyInterval::with_tolerance(10_000.0, 0.05).unwrap();
        assert_eq!(r.spread_left(), 500.0);
        assert_eq!(r.spread_right(), 500.0);
        assert_eq!(r.core(), (10_000.0, 10_000.0));
        // Negative nominal keeps spreads positive.
        let n = FuzzyInterval::with_tolerance(-10.0, 0.1).unwrap();
        assert_eq!(n.spread_left(), 1.0);
    }

    #[test]
    fn satisfaction_against_fuzzy_condition() {
        let cond = fi(-1.0, 100.0, 0.0, 10.0);
        assert_eq!(FuzzyInterval::crisp(105.0).satisfaction_of(&cond), 0.5);
        assert_eq!(FuzzyInterval::crisp(99.0).satisfaction_of(&cond), 1.0);
        assert_eq!(FuzzyInterval::crisp(200.0).satisfaction_of(&cond), 0.0);
        // An interval straddling the soft edge takes the worst core value.
        let v = fi(98.0, 108.0, 0.0, 0.0);
        assert!((v.satisfaction_of(&cond) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn widened_adds_measurement_imprecision() {
        let v = FuzzyInterval::crisp(5.6).widened(0.05).unwrap();
        assert_eq!(v.spread_left(), 0.05);
        assert_eq!(v.spread_right(), 0.05);
        assert!(v.widened(-0.1).is_err());
    }

    #[test]
    fn mean_of_maxima_is_core_midpoint() {
        let m = fi(1.0, 3.0, 0.5, 2.5);
        assert_eq!(m.mean_of_maxima(), 2.0);
        // Unlike the centroid, it ignores the skewed spreads.
        assert!(m.centroid() > m.mean_of_maxima());
    }

    #[test]
    fn hamming_distance_properties() {
        let a = fi(1.0, 2.0, 0.5, 0.5);
        assert_eq!(a.hamming_distance(&a), 0.0);
        let b = fi(1.5, 2.5, 0.5, 0.5);
        let d_ab = a.hamming_distance(&b);
        assert!(d_ab > 0.0);
        assert!((d_ab - b.hamming_distance(&a)).abs() < 1e-9);
        // Disjoint sets: distance = sum of areas.
        let far = fi(10.0, 11.0, 0.5, 0.5);
        assert!((a.hamming_distance(&far) - (a.area() + far.area())).abs() < 1e-9);
    }

    /// Reference for [`FuzzyInterval::intersection_area`]: the exact PWL
    /// materialization the closed form replaces.
    fn pwl_area(a: &FuzzyInterval, b: &FuzzyInterval) -> f64 {
        a.to_pwl().intersection(&b.to_pwl()).area()
    }

    #[test]
    fn intersection_area_matches_pwl_on_generic_overlap() {
        let a = fi(0.0, 2.0, 1.0, 1.0);
        let b = fi(1.5, 3.5, 1.0, 1.0);
        assert!((a.intersection_area(&b) - pwl_area(&a, &b)).abs() < 1e-12);
        assert!((b.intersection_area(&a) - a.intersection_area(&b)).abs() < 1e-12);
    }

    #[test]
    fn intersection_area_disjoint_and_touching() {
        let a = fi(0.0, 1.0, 0.2, 0.2);
        let far = fi(5.0, 6.0, 0.2, 0.2);
        assert_eq!(a.intersection_area(&far), 0.0);
        // Supports touching in exactly one point: zero area, no NaN.
        let touch = fi(1.2, 2.0, 0.0, 0.0);
        assert_eq!(a.intersection_area(&touch), 0.0);
    }

    #[test]
    fn intersection_area_inclusion_gives_inner_area() {
        let narrow = fi(1.4, 1.6, 0.1, 0.1);
        let wide = fi(1.0, 2.0, 0.5, 0.5);
        assert!((narrow.intersection_area(&wide) - narrow.area()).abs() < 1e-12);
        assert!((wide.intersection_area(&narrow) - narrow.area()).abs() < 1e-12);
    }

    #[test]
    fn intersection_area_crossing_ramps_exact_tent() {
        // Descending 1→0 over [1,2] against ascending 0→1 over [1,2]:
        // the minimum is a tent of height 0.5 and area 0.25.
        let a = fi(0.0, 1.0, 0.0, 1.0);
        let b = fi(2.0, 3.0, 1.0, 0.0);
        assert!((a.intersection_area(&b) - 0.25).abs() < 1e-12);
        assert!((a.intersection_area(&b) - pwl_area(&a, &b)).abs() < 1e-12);
    }

    #[test]
    fn intersection_area_zero_spread_vertical_edges() {
        // Crisp rectangle against a trapezoid: the α=0/β=0 edges are
        // jumps, not ramps — no ramp crossing exists on those sides.
        let rect = FuzzyInterval::crisp_interval(5.4, 5.6).unwrap();
        let trap = fi(5.0, 5.5, 0.2, 0.2);
        assert!((rect.intersection_area(&trap) - 0.175).abs() < 1e-12);
        assert!((rect.intersection_area(&trap) - pwl_area(&rect, &trap)).abs() < 1e-12);
        // One-sided degenerate ramps on both operands.
        let left_only = fi(1.0, 2.0, 0.5, 0.0);
        let right_only = fi(0.5, 1.2, 0.0, 0.8);
        let got = left_only.intersection_area(&right_only);
        assert!((got - pwl_area(&left_only, &right_only)).abs() < 1e-12);
        assert!(got > 0.0);
    }

    #[test]
    fn intersection_area_with_point_is_zero() {
        let a = fi(0.0, 2.0, 1.0, 1.0);
        let p = FuzzyInterval::crisp(1.0);
        assert_eq!(a.intersection_area(&p), 0.0);
        assert_eq!(p.intersection_area(&a), 0.0);
        assert_eq!(p.intersection_area(&p), 0.0);
    }

    #[test]
    fn intersection_area_parallel_ramps() {
        // Equal spreads → the facing ramp lines are parallel; the kink
        // set degenerates but the area stays exact.
        let a = fi(0.0, 1.0, 1.0, 1.0);
        let b = fi(0.5, 1.5, 1.0, 1.0);
        assert!((a.intersection_area(&b) - pwl_area(&a, &b)).abs() < 1e-12);
    }

    #[test]
    fn translation_shifts_everything() {
        let m = fi(1.0, 2.0, 0.25, 0.5);
        let t = m.translated(3.0);
        assert_eq!(t.core(), (4.0, 5.0));
        assert_eq!(t.spread_left(), 0.25);
        assert_eq!(t.spread_right(), 0.5);
        assert_eq!(m.translated(0.0), m);
        assert_eq!(m.translated(3.0).translated(-3.0), m);
    }

    #[test]
    fn display_formats_as_4_tuple() {
        let m = fi(1.0, 2.0, 0.5, 0.25);
        assert_eq!(format!("{m:.2}"), "[1.00, 2.00, 0.50, 0.25]");
    }

    #[test]
    fn default_is_crisp_zero() {
        assert!(FuzzyInterval::default().is_point());
        assert_eq!(FuzzyInterval::default().core_midpoint(), 0.0);
    }
}
