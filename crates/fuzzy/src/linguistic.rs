use crate::error::FuzzyError;
use crate::trapezoid::FuzzyInterval;
use crate::Result;
use std::fmt;

/// A named fuzzy subset of the unit interval — one linguistic *term* of a
/// faultiness vocabulary (§8.1 of the paper).
///
/// The paper's examples: `Correct = [0, 0.05, 0, 0.05]`,
/// `Likely correct = [0.18, 0.34, 0.02, 0.06]`, …
#[derive(Debug, Clone, PartialEq)]
pub struct LinguisticTerm {
    name: String,
    set: FuzzyInterval,
}

impl LinguisticTerm {
    /// Creates a term; the set must live inside `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`FuzzyError::EstimationOutOfRange`] if the support leaves
    /// the unit interval.
    pub fn new(name: impl Into<String>, set: FuzzyInterval) -> Result<Self> {
        let (lo, hi) = set.support();
        if lo < -1e-9 || hi > 1.0 + 1e-9 {
            let value = if lo < 0.0 { lo } else { hi };
            return Err(FuzzyError::EstimationOutOfRange { value });
        }
        Ok(Self {
            name: name.into(),
            set,
        })
    }

    /// The term's name (e.g. `"likely correct"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The fuzzy set the term denotes.
    #[must_use]
    pub fn set(&self) -> &FuzzyInterval {
        &self.set
    }

    /// Membership of a crisp faultiness value in this term.
    #[must_use]
    pub fn membership(&self, x: f64) -> f64 {
        self.set.membership(x)
    }

    /// Jaccard-style similarity between this term's set and an arbitrary
    /// fuzzy estimation: `area(A ⊓ B) / area(A ⊔ B)`; `1` for identical
    /// sets, `0` for disjoint supports. Degenerate zero-area pairs compare
    /// by core-point membership.
    #[must_use]
    pub fn similarity(&self, estimation: &FuzzyInterval) -> f64 {
        let a = self.set.to_pwl();
        let b = estimation.to_pwl();
        let union_area = a.union(&b).area();
        if union_area == 0.0 {
            return self.set.membership(estimation.core_midpoint());
        }
        (a.intersection(&b).area() / union_area).clamp(0.0, 1.0)
    }
}

impl fmt::Display for LinguisticTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.name, self.set)
    }
}

/// An ordered vocabulary of linguistic terms partitioning `[0, 1]`,
/// from "certainly correct" up to "certainly faulty".
///
/// "The degree of granularity of this decomposition depends on the
/// application and on what the expert assumes suitable" (§8.1) — build a
/// custom set with [`TermSet::new`], take the paper-flavoured default with
/// [`TermSet::standard_faultiness`], or generate a uniform `n`-term
/// decomposition with [`TermSet::uniform`].
///
/// # Example
///
/// ```
/// use flames_fuzzy::{FuzzyInterval, TermSet};
///
/// # fn main() -> Result<(), flames_fuzzy::FuzzyError> {
/// let vocab = TermSet::standard_faultiness();
/// let estimation = FuzzyInterval::new(0.9, 1.0, 0.1, 0.0)?;
/// assert_eq!(vocab.best_match(&estimation)?.name(), "faulty");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TermSet {
    terms: Vec<LinguisticTerm>,
}

impl TermSet {
    /// Creates a term set from an ordered list of terms.
    ///
    /// # Errors
    ///
    /// Returns [`FuzzyError::EmptyTermSet`] for an empty list.
    pub fn new(terms: Vec<LinguisticTerm>) -> Result<Self> {
        if terms.is_empty() {
            return Err(FuzzyError::EmptyTermSet);
        }
        Ok(Self { terms })
    }

    /// The paper-flavoured six-term faultiness vocabulary. The first two
    /// sets are verbatim from §8.1; the rest complete the partition in the
    /// same style.
    #[must_use]
    pub fn standard_faultiness() -> Self {
        let t = |name: &str, m1: f64, m2: f64, a: f64, b: f64| {
            LinguisticTerm::new(name, FuzzyInterval::new(m1, m2, a, b).expect("static"))
                .expect("static term inside unit interval")
        };
        Self {
            terms: vec![
                t("correct", 0.0, 0.05, 0.0, 0.05),
                t("likely correct", 0.18, 0.34, 0.02, 0.06),
                t("unknown", 0.45, 0.55, 0.08, 0.08),
                t("suspect", 0.62, 0.72, 0.06, 0.06),
                t("likely faulty", 0.78, 0.88, 0.06, 0.06),
                t("faulty", 0.95, 1.0, 0.05, 0.0),
            ],
        }
    }

    /// A uniform decomposition of `[0, 1]` into `n ≥ 1` triangular terms
    /// named `"t0" … "t{n-1}"` — the generic granularity knob.
    ///
    /// # Errors
    ///
    /// Returns [`FuzzyError::EmptyTermSet`] when `n == 0`.
    pub fn uniform(n: usize) -> Result<Self> {
        if n == 0 {
            return Err(FuzzyError::EmptyTermSet);
        }
        if n == 1 {
            let set = FuzzyInterval::crisp_interval(0.0, 1.0).expect("static");
            return Self::new(vec![LinguisticTerm::new("t0", set)?]);
        }
        let step = 1.0 / (n - 1) as f64;
        let mut terms = Vec::with_capacity(n);
        for i in 0..n {
            let c = i as f64 * step;
            let alpha = if i == 0 { 0.0 } else { step };
            let beta = if i == n - 1 { 0.0 } else { step };
            let set = FuzzyInterval::new(c, c, alpha, beta).expect("uniform term");
            terms.push(LinguisticTerm::new(format!("t{i}"), set)?);
        }
        Self::new(terms)
    }

    /// Number of terms (the granularity).
    #[must_use]
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True if the vocabulary has no terms (cannot be constructed through
    /// the public API, but required by convention alongside `len`).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterates over the terms in order.
    pub fn iter(&self) -> std::slice::Iter<'_, LinguisticTerm> {
        self.terms.iter()
    }

    /// Looks a term up by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&LinguisticTerm> {
        self.terms.iter().find(|t| t.name() == name)
    }

    /// The term with maximal membership for a crisp faultiness value
    /// (fuzzification). Ties resolve to the earlier (more-correct) term.
    ///
    /// # Errors
    ///
    /// Returns [`FuzzyError::EmptyTermSet`] if the set is empty.
    pub fn fuzzify(&self, x: f64) -> Result<&LinguisticTerm> {
        self.terms
            .iter()
            .max_by(|p, q| {
                p.membership(x)
                    .partial_cmp(&q.membership(x))
                    .expect("memberships are finite")
            })
            .ok_or(FuzzyError::EmptyTermSet)
    }

    /// The term most similar to an arbitrary fuzzy estimation — the
    /// linguistic summary FLAMES reports to the expert.
    ///
    /// # Errors
    ///
    /// Returns [`FuzzyError::EmptyTermSet`] if the set is empty.
    pub fn best_match(&self, estimation: &FuzzyInterval) -> Result<&LinguisticTerm> {
        self.terms
            .iter()
            .max_by(|p, q| {
                p.similarity(estimation)
                    .partial_cmp(&q.similarity(estimation))
                    .expect("similarities are finite")
            })
            .ok_or(FuzzyError::EmptyTermSet)
    }
}

impl<'a> IntoIterator for &'a TermSet {
    type Item = &'a LinguisticTerm;
    type IntoIter = std::slice::Iter<'a, LinguisticTerm>;
    fn into_iter(self) -> Self::IntoIter {
        self.terms.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn term_rejects_out_of_unit_sets() {
        let set = FuzzyInterval::new(0.9, 1.2, 0.0, 0.0).unwrap();
        assert!(matches!(
            LinguisticTerm::new("bad", set),
            Err(FuzzyError::EstimationOutOfRange { .. })
        ));
        let set = FuzzyInterval::new(0.1, 0.2, 0.3, 0.0).unwrap(); // support dips below 0
        assert!(LinguisticTerm::new("bad", set).is_err());
    }

    #[test]
    fn standard_vocabulary_matches_paper_examples() {
        let v = TermSet::standard_faultiness();
        let correct = v.get("correct").unwrap();
        assert_eq!(correct.set().core(), (0.0, 0.05));
        assert_eq!(correct.set().spread_right(), 0.05);
        let lc = v.get("likely correct").unwrap();
        assert_eq!(lc.set().core(), (0.18, 0.34));
        assert_eq!(lc.set().spread_left(), 0.02);
        assert_eq!(lc.set().spread_right(), 0.06);
        assert_eq!(v.len(), 6);
        assert!(!v.is_empty());
    }

    #[test]
    fn fuzzify_picks_highest_membership() {
        let v = TermSet::standard_faultiness();
        assert_eq!(v.fuzzify(0.02).unwrap().name(), "correct");
        assert_eq!(v.fuzzify(0.25).unwrap().name(), "likely correct");
        assert_eq!(v.fuzzify(0.97).unwrap().name(), "faulty");
    }

    #[test]
    fn best_match_on_fuzzy_estimation() {
        let v = TermSet::standard_faultiness();
        let near_faulty = FuzzyInterval::new(0.93, 1.0, 0.05, 0.0).unwrap();
        assert_eq!(v.best_match(&near_faulty).unwrap().name(), "faulty");
        let near_correct = FuzzyInterval::new(0.0, 0.06, 0.0, 0.04).unwrap();
        assert_eq!(v.best_match(&near_correct).unwrap().name(), "correct");
    }

    #[test]
    fn similarity_bounds() {
        let v = TermSet::standard_faultiness();
        let correct = v.get("correct").unwrap();
        assert!((correct.similarity(correct.set()) - 1.0).abs() < 1e-9);
        let far = FuzzyInterval::new(0.8, 0.9, 0.0, 0.0).unwrap();
        assert_eq!(correct.similarity(&far), 0.0);
    }

    #[test]
    fn uniform_partition() {
        let v = TermSet::uniform(5).unwrap();
        assert_eq!(v.len(), 5);
        // Centers at 0, .25, .5, .75, 1.
        assert_eq!(v.fuzzify(0.0).unwrap().name(), "t0");
        assert_eq!(v.fuzzify(0.5).unwrap().name(), "t2");
        assert_eq!(v.fuzzify(1.0).unwrap().name(), "t4");
        assert!(TermSet::uniform(0).is_err());
        assert_eq!(TermSet::uniform(1).unwrap().len(), 1);
    }

    #[test]
    fn iteration_order_is_correct_to_faulty() {
        let v = TermSet::standard_faultiness();
        let names: Vec<_> = v.iter().map(LinguisticTerm::name).collect();
        assert_eq!(names.first().copied(), Some("correct"));
        assert_eq!(names.last().copied(), Some("faulty"));
        let collected: Vec<_> = (&v).into_iter().collect();
        assert_eq!(collected.len(), 6);
    }

    #[test]
    fn crisp_point_terms_compare_by_membership() {
        // Degenerate term (zero area) — similarity falls back to membership.
        let point = LinguisticTerm::new("pt", FuzzyInterval::crisp(0.5)).unwrap();
        let est = FuzzyInterval::crisp(0.5);
        assert_eq!(point.similarity(&est), 1.0);
    }
}
