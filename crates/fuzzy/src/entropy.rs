//! Fuzzy Shannon entropy over faultiness estimations (§8.2 of the paper).
//!
//! "The module under test is considered as a system of components for which
//! we give estimations of their states in terms of fuzzy probability, so we
//! adapted the definition of Shannon entropy to calculate the fuzzy
//! entropy": for a set `S` of `n` components with fuzzy estimations `Fᵢ`,
//!
//! ```text
//! Ent(S) = ⊕ᵢ  Fᵢ ⊗ log2(1/Fᵢ)
//! ```
//!
//! computed with fuzzy arithmetic. Each summand is the fuzzy extension of
//! `h(x) = x·log2(1/x)` (with `h(0) = h(1) = 0`), evaluated exactly on the
//! core and support levels of the trapezoid: `h` is unimodal with its peak
//! at `x = 1/e`, so the image of an interval is available in closed form.
//! The result is itself a fuzzy interval; rank alternatives with
//! [`FuzzyInterval::centroid`] or compare with the crisp
//! [`shannon_entropy`] baseline.

use crate::error::FuzzyError;
use crate::trapezoid::FuzzyInterval;
use crate::Result;
use std::collections::HashMap;

/// `x · log2(1/x)` extended by continuity with `h(0) = 0`.
#[must_use]
pub fn point_entropy(x: f64) -> f64 {
    if x <= 0.0 {
        0.0
    } else {
        -x * x.log2()
    }
}

/// Location of the maximum of `h(x) = x·log2(1/x)` on `[0, 1]`.
const H_PEAK_X: f64 = std::f64::consts::E.recip(); // 1/e

/// Image `[min, max]` of `h` over the interval `[lo, hi] ⊆ [0, 1]`.
fn interval_entropy_image(lo: f64, hi: f64) -> (f64, f64) {
    let lo = lo.clamp(0.0, 1.0);
    let hi = hi.clamp(0.0, 1.0);
    let at_lo = point_entropy(lo);
    let at_hi = point_entropy(hi);
    let min = at_lo.min(at_hi);
    let max = if lo <= H_PEAK_X && H_PEAK_X <= hi {
        point_entropy(H_PEAK_X)
    } else {
        at_lo.max(at_hi)
    };
    (min, max)
}

/// Fuzzy extension of `h(x) = x·log2(1/x)` to a trapezoidal estimation
/// (exact at the core and support levels).
///
/// # Errors
///
/// Returns [`FuzzyError::EstimationOutOfRange`] if the estimation's support
/// leaves `[0, 1]` (faultiness estimations are degrees).
pub fn fuzzy_point_entropy(estimation: &FuzzyInterval) -> Result<FuzzyInterval> {
    let (slo, shi) = estimation.support();
    if slo < -1e-9 || shi > 1.0 + 1e-9 {
        let value = if slo < 0.0 { slo } else { shi };
        return Err(FuzzyError::EstimationOutOfRange { value });
    }
    let (core_min, core_max) = interval_entropy_image(estimation.core_lo(), estimation.core_hi());
    let (supp_min, supp_max) = interval_entropy_image(slo, shi);
    // Support image always contains the core image (h continuous, support ⊇ core).
    FuzzyInterval::new(
        core_min,
        core_max,
        (core_min - supp_min).max(0.0),
        (supp_max - core_max).max(0.0),
    )
}

/// Fuzzy entropy `Ent(S)` of a system of fuzzy estimations (§8.2).
///
/// An empty system has zero entropy (a crisp 0).
///
/// # Errors
///
/// Returns [`FuzzyError::EstimationOutOfRange`] if any estimation leaves
/// the unit interval.
pub fn fuzzy_entropy(estimations: &[FuzzyInterval]) -> Result<FuzzyInterval> {
    let mut acc = FuzzyInterval::crisp(0.0);
    for e in estimations {
        acc = acc + fuzzy_point_entropy(e)?;
    }
    Ok(acc)
}

/// A memo table over [`fuzzy_point_entropy`], keyed on the exact bit
/// pattern of the four trapezoid parameters.
///
/// Probe planning evaluates the entropy of the *same* posterior
/// estimations over and over — once per hypothetical outcome of every
/// unprobed test point, on every iteration of the probe loop — while the
/// estimations themselves only change for the components a new conflict
/// implicates. Keying on `f64::to_bits` of `(core_lo, core_hi,
/// spread_left, spread_right)` makes a hit return the *identical* term
/// the direct call would produce (no tolerance, no rounding), so memoized
/// planning stays byte-exact.
///
/// Errored estimations (support outside `[0, 1]`) are memoized as `None`
/// with the same hit/miss accounting, preserving the caller's
/// error-collapse semantics.
#[derive(Debug, Clone, Default)]
pub struct EntropyMemo {
    map: HashMap<[u64; 4], Option<FuzzyInterval>>,
}

impl EntropyMemo {
    /// An empty memo.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// [`fuzzy_point_entropy`] through the memo: `None` exactly when the
    /// direct call would return an error. Counts `fuzzy.entropy_memo_hit`
    /// / `fuzzy.entropy_memo_miss`.
    pub fn point_entropy(&mut self, estimation: &FuzzyInterval) -> Option<FuzzyInterval> {
        let key = [
            estimation.core_lo().to_bits(),
            estimation.core_hi().to_bits(),
            estimation.spread_left().to_bits(),
            estimation.spread_right().to_bits(),
        ];
        if let Some(hit) = self.map.get(&key) {
            flames_obs::metrics().entropy_memo_hit.incr();
            return *hit;
        }
        flames_obs::metrics().entropy_memo_miss.incr();
        let value = fuzzy_point_entropy(estimation).ok();
        self.map.insert(key, value);
        value
    }

    /// Number of distinct estimations memoized so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing has been memoized yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Crisp Shannon entropy `−Σ pᵢ log2 pᵢ` of a weight vector, normalizing
/// the weights first; zero for an empty or all-zero vector. This is the
/// "numerical approach with its heavy calculus" the paper moves away from —
/// kept as the GDE-style baseline.
#[must_use]
pub fn shannon_entropy(weights: &[f64]) -> f64 {
    let total: f64 = weights.iter().filter(|w| **w > 0.0).sum();
    if total <= 0.0 {
        return 0.0;
    }
    weights
        .iter()
        .filter(|w| **w > 0.0)
        .map(|w| {
            let p = w / total;
            -p * p.log2()
        })
        .sum()
}

/// Expected (fuzzy) entropy of a test: possibility-weighted fuzzy sum of
/// the per-outcome posterior entropies. The weights are normalized crisp
/// possibilities; outcomes with zero possibility are ignored.
///
/// Returns a crisp 0 when every outcome is impossible.
#[must_use]
pub fn expected_entropy(outcomes: &[(f64, FuzzyInterval)]) -> FuzzyInterval {
    let total: f64 = outcomes.iter().map(|(w, _)| w.max(0.0)).sum();
    if total <= 0.0 {
        return FuzzyInterval::crisp(0.0);
    }
    let mut acc = FuzzyInterval::crisp(0.0);
    for (w, ent) in outcomes {
        if *w > 0.0 {
            acc = acc + ent.scaled(w / total);
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fi(m1: f64, m2: f64, a: f64, b: f64) -> FuzzyInterval {
        FuzzyInterval::new(m1, m2, a, b).unwrap()
    }

    #[test]
    fn point_entropy_boundaries() {
        assert_eq!(point_entropy(0.0), 0.0);
        assert_eq!(point_entropy(1.0), 0.0);
        assert!((point_entropy(0.5) - 0.5).abs() < 1e-12);
        // Peak at 1/e.
        let peak = point_entropy(H_PEAK_X);
        assert!(peak > point_entropy(0.3));
        assert!(peak > point_entropy(0.45));
        assert!((peak - std::f64::consts::LOG2_E / std::f64::consts::E).abs() < 1e-12);
    }

    #[test]
    fn crisp_estimation_gives_crisp_entropy() {
        let e = FuzzyInterval::crisp(0.5);
        let h = fuzzy_point_entropy(&e).unwrap();
        assert!(h.is_point());
        assert!((h.core_lo() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn interval_straddling_peak_caps_at_peak() {
        let e = fi(0.2, 0.6, 0.0, 0.0);
        let h = fuzzy_point_entropy(&e).unwrap();
        assert!((h.core_hi() - point_entropy(H_PEAK_X)).abs() < 1e-12);
        assert!((h.core_lo() - point_entropy(0.2).min(point_entropy(0.6))).abs() < 1e-12);
    }

    #[test]
    fn fuzzy_estimation_spreads_propagate() {
        let e = fi(0.5, 0.5, 0.1, 0.1);
        let h = fuzzy_point_entropy(&e).unwrap();
        assert!(h.spread_left() > 0.0 || h.spread_right() > 0.0);
        // Support image contains the core image.
        assert!(h.support_lo() <= h.core_lo());
        assert!(h.support_hi() >= h.core_hi());
    }

    #[test]
    fn rejects_out_of_range_estimation() {
        let e = fi(0.9, 1.0, 0.0, 0.3);
        assert!(matches!(
            fuzzy_point_entropy(&e),
            Err(FuzzyError::EstimationOutOfRange { .. })
        ));
    }

    #[test]
    fn certain_system_has_zero_entropy() {
        // All components certainly correct (0) or certainly faulty (1):
        // nothing random, entropy 0.
        let est = vec![
            FuzzyInterval::crisp(0.0),
            FuzzyInterval::crisp(1.0),
            FuzzyInterval::crisp(0.0),
        ];
        let h = fuzzy_entropy(&est).unwrap();
        assert!(h.is_point());
        assert_eq!(h.core_lo(), 0.0);
    }

    #[test]
    fn uncertain_system_has_positive_entropy() {
        let est = vec![fi(0.5, 0.5, 0.05, 0.05); 3];
        let h = fuzzy_entropy(&est).unwrap();
        assert!(h.centroid() > 1.0); // three × ~0.5 bits
    }

    #[test]
    fn entropy_decreases_as_estimations_sharpen() {
        let vague = vec![fi(0.5, 0.5, 0.05, 0.05); 4];
        let sharp = vec![
            fi(0.95, 0.95, 0.02, 0.02),
            fi(0.05, 0.05, 0.02, 0.02),
            fi(0.05, 0.05, 0.02, 0.02),
            fi(0.05, 0.05, 0.02, 0.02),
        ];
        let hv = fuzzy_entropy(&vague).unwrap();
        let hs = fuzzy_entropy(&sharp).unwrap();
        assert!(hs.centroid() < hv.centroid());
    }

    #[test]
    fn empty_system_zero() {
        let h = fuzzy_entropy(&[]).unwrap();
        assert!(h.is_point());
        assert_eq!(h.core_midpoint(), 0.0);
    }

    #[test]
    fn shannon_baseline() {
        assert_eq!(shannon_entropy(&[]), 0.0);
        assert_eq!(shannon_entropy(&[0.0, 0.0]), 0.0);
        assert!((shannon_entropy(&[1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((shannon_entropy(&[1.0, 1.0, 1.0, 1.0]) - 2.0).abs() < 1e-12);
        // Unnormalized weights are normalized.
        assert!((shannon_entropy(&[2.0, 2.0]) - 1.0).abs() < 1e-12);
        assert_eq!(shannon_entropy(&[5.0]), 0.0);
    }

    #[test]
    fn memo_returns_bit_identical_terms() {
        let mut memo = EntropyMemo::new();
        assert!(memo.is_empty());
        let estimations = [
            fi(0.2, 0.6, 0.1, 0.1),
            FuzzyInterval::crisp(0.5),
            fi(0.0, 0.05, 0.0, 0.05),
        ];
        for e in &estimations {
            let direct = fuzzy_point_entropy(e).unwrap();
            let first = memo.point_entropy(e).unwrap();
            let again = memo.point_entropy(e).unwrap();
            // Bit-exact on both the fill and the hit.
            assert_eq!(format!("{direct:?}"), format!("{first:?}"));
            assert_eq!(format!("{direct:?}"), format!("{again:?}"));
        }
        assert_eq!(memo.len(), estimations.len());
    }

    #[test]
    fn memo_caches_errors_too() {
        let mut memo = EntropyMemo::new();
        let bad = fi(0.9, 1.0, 0.0, 0.3);
        assert!(memo.point_entropy(&bad).is_none());
        assert!(memo.point_entropy(&bad).is_none());
        assert_eq!(memo.len(), 1);
    }

    #[test]
    fn expected_entropy_weighted_mix() {
        let low = FuzzyInterval::crisp(0.2);
        let high = FuzzyInterval::crisp(1.0);
        let e = expected_entropy(&[(1.0, low), (1.0, high)]);
        assert!((e.core_midpoint() - 0.6).abs() < 1e-12);
        // Zero-possibility outcomes are ignored.
        let e = expected_entropy(&[(0.0, high), (1.0, low)]);
        assert!((e.core_midpoint() - 0.2).abs() < 1e-12);
        // All impossible -> crisp zero.
        let e = expected_entropy(&[(0.0, high)]);
        assert_eq!(e.core_midpoint(), 0.0);
    }
}
