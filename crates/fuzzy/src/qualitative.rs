//! Order-of-magnitude and qualitative comparison operators defined through
//! fuzzy sets (the paper's §4.2 and its ref \[10\]).
//!
//! DEDALE-style order-of-magnitude reasoning uses crisp relations
//! (*negligible*, *close to*, *comparable*) whose all-or-nothing character
//! the paper criticizes: "fuzzy sets allow to define the order-of-magnitude
//! operators in an accurate manner". Here each relation returns a *degree*
//! in `[0, 1]`, computed from the ratio of the two quantities through a
//! trapezoidal set, and qualitative value classes (`Negative`, `Zero`,
//! `Positive`) are graded the same way.

use crate::trapezoid::FuzzyInterval;

/// Degree to which `a` is **negligible** with respect to `b`
/// (`a ≪ b`, "Ne" in order-of-magnitude calculi).
///
/// Graded on `|a/b|` through the set `[0, thr/2, 0, thr/2]`: fully
/// negligible below `thr/2`, not at all beyond `thr`. `thr` defaults in
/// [`negligible`] to `0.1` (one order of magnitude with slack).
///
/// A zero `b` makes nothing negligible (degree 0) except a zero `a`
/// (degree 1).
#[must_use]
pub fn negligible_with(a: f64, b: f64, thr: f64) -> f64 {
    if b == 0.0 {
        return if a == 0.0 { 1.0 } else { 0.0 };
    }
    let ratio = (a / b).abs();
    let half = 0.5 * thr.max(f64::MIN_POSITIVE);
    let set = FuzzyInterval::new(0.0, half, 0.0, half).expect("static");
    set.membership(ratio)
}

/// [`negligible_with`] at the default threshold `0.1`.
#[must_use]
pub fn negligible(a: f64, b: f64) -> f64 {
    negligible_with(a, b, 0.1)
}

/// Degree to which `a` is **close to** `b` (`a ≈ b`, "Vo"/voisin):
/// graded on `a/b` through `[1−tol/2, 1+tol/2, tol/2, tol/2]`.
///
/// With `b = 0`, closeness degenerates to `a = 0`.
#[must_use]
pub fn close_to_with(a: f64, b: f64, tol: f64) -> f64 {
    if b == 0.0 {
        return if a == 0.0 { 1.0 } else { 0.0 };
    }
    let ratio = a / b;
    let half = 0.5 * tol.max(f64::MIN_POSITIVE);
    let set = FuzzyInterval::new(1.0 - half, 1.0 + half, half, half).expect("static");
    set.membership(ratio)
}

/// [`close_to_with`] at the default tolerance `0.2` (±10 % fully close,
/// fading to zero at ±20 %).
#[must_use]
pub fn close_to(a: f64, b: f64) -> f64 {
    close_to_with(a, b, 0.2)
}

/// Degree to which `a` and `b` are **comparable** (same order of
/// magnitude, "Co"): graded on `|a/b|` through a set that is 1 on
/// `[1/3, 3]` and fades to 0 at `[1/10, 10]`.
#[must_use]
pub fn comparable(a: f64, b: f64) -> f64 {
    if b == 0.0 {
        return if a == 0.0 { 1.0 } else { 0.0 };
    }
    let ratio = (a / b).abs();
    // Work in log10 of the ratio: 1 on [-log3, log3], 0 beyond [-1, 1].
    let l = ratio.log10();
    let log3 = 3f64.log10();
    let set = FuzzyInterval::new(-log3, log3, 1.0 - log3, 1.0 - log3).expect("static");
    set.membership(l)
}

/// Qualitative sign classes graded fuzzily around zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sign {
    /// Distinctly below zero.
    Negative,
    /// Around zero.
    Zero,
    /// Distinctly above zero.
    Positive,
}

/// Membership of `x` in a qualitative [`Sign`] class, with `scale` setting
/// the width of the fuzzy "zero" band (full membership within
/// `±scale/2`, none beyond `±scale`).
#[must_use]
pub fn sign_membership(x: f64, sign: Sign, scale: f64) -> f64 {
    let s = scale.max(f64::MIN_POSITIVE);
    let half = 0.5 * s;
    match sign {
        Sign::Zero => FuzzyInterval::new(-half, half, half, half)
            .expect("static")
            .membership(x),
        Sign::Positive => {
            if x >= s {
                1.0
            } else if x <= half {
                0.0
            } else {
                (x - half) / (s - half)
            }
        }
        Sign::Negative => sign_membership(-x, Sign::Positive, scale),
    }
}

/// The qualitative sign class with the highest membership for `x`.
#[must_use]
pub fn qualitative_sign(x: f64, scale: f64) -> Sign {
    let classes = [Sign::Negative, Sign::Zero, Sign::Positive];
    let mut best = Sign::Zero;
    let mut best_mu = -1.0;
    for c in classes {
        let mu = sign_membership(x, c, scale);
        if mu > best_mu {
            best = c;
            best_mu = mu;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn negligible_grades_smoothly() {
        assert_eq!(negligible(1.0, 1000.0), 1.0);
        assert_eq!(negligible(1.0, 1.0), 0.0);
        let mid = negligible(0.075, 1.0);
        assert!(mid > 0.0 && mid < 1.0);
        // Monotone in the ratio.
        assert!(negligible(0.06, 1.0) > negligible(0.09, 1.0));
    }

    #[test]
    fn negligible_zero_denominator() {
        assert_eq!(negligible(0.0, 0.0), 1.0);
        assert_eq!(negligible(1.0, 0.0), 0.0);
    }

    #[test]
    fn close_to_peak_at_equality() {
        assert_eq!(close_to(5.0, 5.0), 1.0);
        assert_eq!(close_to(5.0, 10.0), 0.0);
        let near = close_to(5.6, 5.0); // ratio 1.12
        assert!(near > 0.0 && near < 1.0);
        assert!(close_to(5.3, 5.0) > close_to(5.8, 5.0));
    }

    #[test]
    fn comparable_within_order_of_magnitude() {
        assert_eq!(comparable(2.0, 5.0), 1.0);
        assert_eq!(comparable(1.0, 1.0), 1.0);
        assert_eq!(comparable(1.0, 100.0), 0.0);
        let edge = comparable(1.0, 6.0);
        assert!(edge > 0.0 && edge < 1.0);
        // Symmetric in its arguments.
        assert!((comparable(1.0, 6.0) - comparable(6.0, 1.0)).abs() < 1e-12);
    }

    #[test]
    fn sign_memberships_partition() {
        assert_eq!(sign_membership(0.0, Sign::Zero, 1.0), 1.0);
        assert_eq!(sign_membership(2.0, Sign::Positive, 1.0), 1.0);
        assert_eq!(sign_membership(-2.0, Sign::Negative, 1.0), 1.0);
        assert_eq!(sign_membership(2.0, Sign::Zero, 1.0), 0.0);
        // Graded in the overlap band.
        let mu = sign_membership(0.75, Sign::Positive, 1.0);
        assert!(mu > 0.0 && mu < 1.0);
    }

    #[test]
    fn qualitative_sign_classifies() {
        assert_eq!(qualitative_sign(5.0, 1.0), Sign::Positive);
        assert_eq!(qualitative_sign(-5.0, 1.0), Sign::Negative);
        assert_eq!(qualitative_sign(0.1, 1.0), Sign::Zero);
    }
}
