use std::fmt;

/// Errors produced by the fuzzy calculus.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FuzzyError {
    /// A trapezoid was constructed with `m1 > m2`, a negative spread, or a
    /// non-finite parameter.
    InvalidInterval {
        /// Lower bound of the requested core.
        m1: f64,
        /// Upper bound of the requested core.
        m2: f64,
        /// Requested left spread.
        alpha: f64,
        /// Requested right spread.
        beta: f64,
    },
    /// Division by a fuzzy interval whose support contains zero.
    DivisorSpansZero {
        /// Lower end of the divisor's support.
        support_lo: f64,
        /// Upper end of the divisor's support.
        support_hi: f64,
    },
    /// A linguistic term set was queried while empty.
    EmptyTermSet,
    /// An entropy estimation fell outside the unit interval `[0, 1]`.
    EstimationOutOfRange {
        /// Offending support bound.
        value: f64,
    },
    /// A piecewise-linear function was built from unsorted or non-finite
    /// breakpoints.
    InvalidPwl,
}

impl fmt::Display for FuzzyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FuzzyError::InvalidInterval {
                m1,
                m2,
                alpha,
                beta,
            } => write!(
                f,
                "invalid fuzzy interval [m1={m1}, m2={m2}, alpha={alpha}, beta={beta}]: \
                 requires m1 <= m2, non-negative finite spreads"
            ),
            FuzzyError::DivisorSpansZero {
                support_lo,
                support_hi,
            } => write!(
                f,
                "division by fuzzy interval whose support [{support_lo}, {support_hi}] spans zero"
            ),
            FuzzyError::EmptyTermSet => write!(f, "linguistic term set is empty"),
            FuzzyError::EstimationOutOfRange { value } => write!(
                f,
                "fuzzy estimation support reaches {value}, outside the unit interval"
            ),
            FuzzyError::InvalidPwl => {
                write!(
                    f,
                    "piecewise-linear membership requires sorted finite breakpoints"
                )
            }
        }
    }
}

impl std::error::Error for FuzzyError {}
