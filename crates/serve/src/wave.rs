//! Wave execution: coalesced requests → one board-lane propagation.
//!
//! A *wave* is the unit of server-side work: the boards of every
//! request drained from the admission queue, deduplicated (identical
//! measurement sets collapse onto one warm session — the request
//! coalescing that makes concurrent duplicate queries nearly free), and
//! driven to quiescence by a single shared-agenda lane traversal
//! ([`Session::propagate_lane`], the PR-4 batcher). The lane machinery
//! guarantees each board's propagation is byte-identical to a solo run,
//! so coalescing is invisible in the responses — the end-to-end suite
//! pins server bytes against [`flames_core::diagnose_batch_lanes`].

use flames_core::strategy::{recommend, Policy};
use flames_core::{Board, Diagnoser, Report, Result, Session, SessionPool};
use flames_obs::Trace;
use std::collections::HashMap;
use std::sync::Arc;

/// The planner's verdict on where to probe next: the lowest-scoring
/// unprobed test point under the paper's fuzzy-entropy policy.
#[derive(Debug, Clone, PartialEq)]
pub struct NextProbe {
    /// Test-point index in the diagnoser's declaration order.
    pub point: usize,
    /// The point's name.
    pub name: String,
    /// Expected-entropy score (lower is better).
    pub score: f64,
}

/// Everything the service derives from one board: the full diagnosis
/// [`Report`], the recommended next probe (absent when every point has
/// been probed or the request declined it), and the session's
/// deterministic diagnosis trace.
#[derive(Debug, Clone)]
pub struct BoardOutcome {
    /// The diagnosis snapshot.
    pub report: Report,
    /// Best next test point, if requested and any point is unprobed.
    pub next_probe: Option<NextProbe>,
    /// The logical-clock trace of the session that served this board,
    /// shared so fanning an outcome out to coalesced duplicate requests
    /// never copies the event log.
    pub trace: Arc<Trace>,
}

/// Exact-content dedup key of a board: point indices with the four
/// trapezoid columns bit-cast, so two boards coalesce only when their
/// measurement sets are bit-identical (and therefore provably produce
/// byte-identical responses).
fn board_key(board: &Board) -> Vec<(usize, [u64; 4])> {
    board
        .iter()
        .map(|(idx, v)| {
            (
                *idx,
                [
                    v.core_lo().to_bits(),
                    v.core_hi().to_bits(),
                    v.spread_left().to_bits(),
                    v.spread_right().to_bits(),
                ],
            )
        })
        .collect()
}

/// Diagnoses one wave of boards on pooled sessions: dedup, measure,
/// one lane propagation, then report + next-probe + trace per unique
/// board, fanned back out to every input board.
///
/// `want_next_probe[i]` asks for a recommendation for board `i`; a
/// unique board computes it if *any* of its duplicates asked (the
/// report is unaffected either way).
///
/// # Errors
///
/// Returns the first per-board error (out-of-range test-point index —
/// unreachable through the HTTP path, which validates indices at
/// parse time).
///
/// # Panics
///
/// Panics if the wave exceeds 64 unique boards (the lane cap); the
/// admission queue never drains more.
pub fn run_wave<'d>(
    pool: &mut SessionPool<'d>,
    boards: &[Board],
    want_next_probe: &[bool],
) -> Result<Vec<BoardOutcome>> {
    debug_assert_eq!(boards.len(), want_next_probe.len());
    // Dedup in first-occurrence order, so session order — and hence the
    // whole wave — is a deterministic function of the drained queue.
    let mut unique_of: HashMap<Vec<(usize, [u64; 4])>, usize> = HashMap::new();
    let mut unique_boards: Vec<&Board> = Vec::new();
    let mut unique_probe: Vec<bool> = Vec::new();
    let mut slot_of: Vec<usize> = Vec::with_capacity(boards.len());
    for (board, &probe) in boards.iter().zip(want_next_probe) {
        let slot = *unique_of.entry(board_key(board)).or_insert_with(|| {
            unique_boards.push(board);
            unique_probe.push(false);
            unique_boards.len() - 1
        });
        unique_probe[slot] |= probe;
        slot_of.push(slot);
    }
    flames_obs::metrics()
        .serve_deduped_boards
        .add((boards.len() - unique_boards.len()) as u64);

    let mut sessions: Vec<Session<'d>> = Vec::with_capacity(unique_boards.len());
    for board in &unique_boards {
        flames_obs::metrics().boards_diagnosed.incr();
        let mut session = pool.acquire();
        for &(idx, value) in board.iter() {
            session.measure_point(idx, value)?;
        }
        sessions.push(session);
    }
    {
        let mut refs: Vec<&mut Session<'d>> = sessions.iter_mut().collect();
        Session::propagate_lane(&mut refs);
    }
    let mut unique_outcomes: Vec<BoardOutcome> = Vec::with_capacity(sessions.len());
    for (session, &probe) in sessions.iter().zip(&unique_probe) {
        let report = session.report();
        let next_probe = if probe {
            recommend(session, Policy::FuzzyEntropy, 0.0)
                .into_iter()
                .next()
                .map(|c| NextProbe {
                    point: c.point,
                    name: c.name,
                    score: c.score,
                })
        } else {
            None
        };
        unique_outcomes.push(BoardOutcome {
            report,
            next_probe,
            trace: Arc::new(session.trace()),
        });
    }
    for session in sessions {
        pool.release(session);
    }
    Ok(slot_of
        .into_iter()
        .map(|slot| unique_outcomes[slot].clone())
        .collect())
}

/// The in-process reference for the end-to-end suite and the bench:
/// diagnoses `boards` exactly as the server's batcher would execute
/// them as one wave (fresh pool, dedup, lane propagation, next-probe
/// recommendation per board).
///
/// # Errors
///
/// Returns the first per-board error, as [`run_wave`] does.
pub fn diagnose_boards(
    diagnoser: &Diagnoser,
    boards: &[Board],
    next_probe: bool,
) -> Result<Vec<BoardOutcome>> {
    let mut pool = SessionPool::new(diagnoser);
    run_wave(&mut pool, boards, &vec![next_probe; boards.len()])
}

/// Merges per-board diagnosis traces into one Chrome `trace_event`
/// document, one `tid` per board, preserving each board's logical
/// clock. This is what `GET /trace/:id` streams for a completed
/// request — rendered lazily on the GET, never on the serving path (a
/// propagation-heavy board's document runs to megabytes).
#[must_use]
pub fn traces_to_chrome_json(traces: &[Arc<Trace>]) -> String {
    use flames_obs::trace::escape_json;
    use flames_obs::ArgValue;
    use std::fmt::Write as _;
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    for (board, trace) in traces.iter().enumerate() {
        for ev in trace.events() {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{{\"name\":{},\"cat\":\"{}\",\"ph\":\"{}\",\"pid\":1,\"tid\":{},\"ts\":{}",
                escape_json(&ev.name),
                ev.cat,
                ev.ph,
                board + 1,
                ev.ts
            );
            if ev.ph == 'X' {
                let _ = write!(out, ",\"dur\":{}", ev.dur);
            }
            out.push_str(",\"args\":{");
            for (j, (key, value)) in ev.args.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{}:", escape_json(key));
                match value {
                    ArgValue::U64(v) => {
                        let _ = write!(out, "{v}");
                    }
                    ArgValue::F64(v) => {
                        if v.is_finite() {
                            let mut s = format!("{v}");
                            if !s.contains('.') && !s.contains('e') {
                                s.push_str(".0");
                            }
                            out.push_str(&s);
                        } else {
                            let _ = write!(out, "\"{v}\"");
                        }
                    }
                    ArgValue::Str(v) => out.push_str(&escape_json(v)),
                }
            }
            out.push_str("}}");
        }
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use flames_circuit::predict::TestPoint;
    use flames_circuit::{Net, Netlist};
    use flames_core::{diagnose_batch_lanes, DiagnoserConfig};
    use flames_fuzzy::FuzzyInterval;

    fn divider() -> Diagnoser {
        let mut nl = Netlist::new();
        let vin = nl.add_net("vin");
        let mid = nl.add_net("mid");
        nl.add_voltage_source("V", vin, Net::GROUND, 10.0).unwrap();
        let r1 = nl.add_resistor("R1", vin, mid, 1000.0, 0.05).unwrap();
        let r2 = nl
            .add_resistor("R2", mid, Net::GROUND, 1000.0, 0.05)
            .unwrap();
        let points = vec![
            TestPoint::new(mid, "Vmid", vec![r1, r2]),
            TestPoint::new(vin, "Vin", vec![]),
        ];
        Diagnoser::from_netlist(&nl, points, DiagnoserConfig::default()).unwrap()
    }

    fn board(v: f64) -> Board {
        vec![(0, FuzzyInterval::crisp(v).widened(0.05).unwrap())]
    }

    #[test]
    fn wave_reports_match_lane_batch_and_dedup_is_invisible() {
        let d = divider();
        // Boards 0 and 2 are bit-identical: the wave runs 2 sessions
        // for 3 boards, and the duplicate's outcome is a clone.
        let boards = vec![board(6.1), board(4.2), board(6.1)];
        let outcomes = diagnose_boards(&d, &boards, true).unwrap();
        let expected = diagnose_batch_lanes(&d, &boards, 1, 64).unwrap();
        assert_eq!(outcomes.len(), 3);
        for (o, e) in outcomes.iter().zip(&expected) {
            assert_eq!(format!("{:?}", o.report), format!("{e:?}"));
        }
        assert_eq!(
            format!("{:?}", outcomes[0].report),
            format!("{:?}", outcomes[2].report)
        );
        assert_eq!(outcomes[0].next_probe, outcomes[2].next_probe);
        // One unprobed point (Vin) remains: the planner recommends it.
        let np = outcomes[0].next_probe.as_ref().expect("recommendation");
        assert_eq!(np.name, "Vin");
    }

    #[test]
    fn next_probe_respects_the_flag_and_exhaustion() {
        let d = divider();
        let boards = vec![board(6.1)];
        let without = diagnose_boards(&d, &boards, false).unwrap();
        assert!(without[0].next_probe.is_none());
        // Probe both points: nothing left to recommend.
        let full: Board = vec![
            (0, FuzzyInterval::crisp(6.1).widened(0.05).unwrap()),
            (1, FuzzyInterval::crisp(10.0).widened(0.05).unwrap()),
        ];
        let done = diagnose_boards(&d, &[full], true).unwrap();
        assert!(done[0].next_probe.is_none());
    }

    #[test]
    fn merged_trace_is_a_loadable_chrome_document() {
        let d = divider();
        let outcomes = diagnose_boards(&d, &[board(6.1), board(4.2)], false).unwrap();
        let traces: Vec<Arc<Trace>> = outcomes.iter().map(|o| o.trace.clone()).collect();
        let json = traces_to_chrome_json(&traces);
        let v = flames_obs::json::parse(&json).expect("valid JSON");
        let events = v.member("traceEvents").unwrap().as_array().unwrap();
        assert!(!events.is_empty());
        // Both boards contribute, on distinct tids.
        let tids: std::collections::BTreeSet<u64> = events
            .iter()
            .map(|e| e.member("tid").unwrap().as_f64().unwrap() as u64)
            .collect();
        assert_eq!(tids.into_iter().collect::<Vec<_>>(), vec![1, 2]);
    }
}
