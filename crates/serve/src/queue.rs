//! Admission control: a bounded job queue with wave draining.
//!
//! `POST /diagnose` handlers submit a [`Job`] and block on its reply
//! channel; batcher threads drain jobs in *waves*. Backlog is bounded
//! in **boards** (the unit of diagnostic work), and a submit that would
//! overflow is shed immediately with a 429 + `Retry-After` — the
//! explicit-shedding half of admission control. The draining half is
//! the coalescing policy: with coalescing on, one wave takes every
//! queued request that fits the 64-session lane cap (requests that
//! arrive while a wave executes pile up and ride the next wave
//! together — dynamic batching, no timer needed under closed-loop
//! load); with it off, every wave carries exactly one request, the
//! baseline the `exp_serve` gate measures against.

use crate::error::ServeError;
use crate::protocol::MAX_BOARDS_PER_REQUEST;
use flames_core::Board;
use std::collections::VecDeque;
use std::sync::mpsc::Sender;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// One admitted `/diagnose` request, queued for a batcher.
#[derive(Debug)]
pub struct Job {
    /// The request id (also the trace handle).
    pub id: u64,
    /// The request's measurement sets.
    pub boards: Vec<Board>,
    /// Whether the client asked for next-probe recommendations.
    pub next_probe: bool,
    /// Latest instant at which starting the wave still honours the
    /// request's deadline.
    pub deadline: Instant,
    /// Where the handler thread waits for the rendered body.
    pub reply: Sender<Result<String, ServeError>>,
}

#[derive(Debug)]
struct State {
    jobs: VecDeque<Job>,
    queued_boards: usize,
    open: bool,
}

/// The bounded, condvar-signalled job queue shared by HTTP workers and
/// batchers.
#[derive(Debug)]
pub struct JobQueue {
    state: Mutex<State>,
    available: Condvar,
    max_backlog_boards: usize,
    coalesce: bool,
}

impl JobQueue {
    /// An open queue holding at most `max_backlog_boards` boards
    /// (floored at one request's worth so a single maximal request is
    /// always admissible).
    #[must_use]
    pub fn new(max_backlog_boards: usize, coalesce: bool) -> Self {
        Self {
            state: Mutex::new(State {
                jobs: VecDeque::new(),
                queued_boards: 0,
                open: true,
            }),
            available: Condvar::new(),
            max_backlog_boards: max_backlog_boards.max(MAX_BOARDS_PER_REQUEST),
            coalesce,
        }
    }

    /// Admits a job, or sheds it.
    ///
    /// # Errors
    ///
    /// 429 `overload` when the backlog is full, 503 `overload` when the
    /// queue has been closed for shutdown.
    pub fn submit(&self, job: Job) -> Result<(), ServeError> {
        let mut state = self.lock();
        if !state.open {
            flames_obs::metrics().serve_shed.incr();
            return Err(ServeError::shutting_down());
        }
        if state.queued_boards + job.boards.len() > self.max_backlog_boards {
            flames_obs::metrics().serve_shed.incr();
            return Err(ServeError::overloaded(1));
        }
        state.queued_boards += job.boards.len();
        state.jobs.push_back(job);
        flames_obs::metrics().serve_accepted.incr();
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks until work is available and drains the next wave, FIFO:
    /// the oldest job, plus — with coalescing on — every following job
    /// that keeps the wave within the 64-board lane cap. Returns `None`
    /// once the queue is closed *and* empty (batcher shutdown).
    pub fn next_wave(&self) -> Option<Vec<Job>> {
        let mut state = self.lock();
        loop {
            if !state.jobs.is_empty() {
                let mut wave = vec![remove_front(&mut state)];
                if self.coalesce {
                    let mut boards: usize = wave[0].boards.len();
                    while let Some(next) = state.jobs.front() {
                        if boards + next.boards.len() > MAX_BOARDS_PER_REQUEST {
                            break;
                        }
                        boards += next.boards.len();
                        wave.push(remove_front(&mut state));
                    }
                }
                if wave.len() > 1 {
                    flames_obs::metrics().serve_coalesced.add(wave.len() as u64);
                }
                return Some(wave);
            }
            if !state.open {
                return None;
            }
            state = self
                .available
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Closes the queue: future submits shed with 503, and batchers
    /// drain what is left, then exit.
    pub fn close(&self) {
        self.lock().open = false;
        self.available.notify_all();
    }

    /// Boards currently queued (for tests and load probes).
    #[must_use]
    pub fn backlog_boards(&self) -> usize {
        self.lock().queued_boards
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

fn remove_front(state: &mut State) -> Job {
    let job = state.jobs.pop_front().expect("non-empty queue");
    state.queued_boards -= job.boards.len();
    job
}

#[cfg(test)]
mod tests {
    use super::*;
    use flames_fuzzy::FuzzyInterval;
    use std::sync::mpsc::channel;
    use std::time::Duration;

    fn job(id: u64, boards: usize) -> (Job, std::sync::mpsc::Receiver<Result<String, ServeError>>) {
        let (tx, rx) = channel();
        (
            Job {
                id,
                boards: vec![vec![(0, FuzzyInterval::crisp(1.0))]; boards],
                next_probe: false,
                deadline: Instant::now() + Duration::from_secs(5),
                reply: tx,
            },
            rx,
        )
    }

    #[test]
    fn coalescing_drains_up_to_the_lane_cap() {
        let q = JobQueue::new(256, true);
        for id in 0..5 {
            let (j, _rx) = job(id, 20);
            q.submit(j).unwrap();
        }
        // 20+20+20 = 60 fits; adding the fourth (80) would not.
        let wave = q.next_wave().unwrap();
        assert_eq!(wave.iter().map(|j| j.id).collect::<Vec<_>>(), vec![0, 1, 2]);
        let wave2 = q.next_wave().unwrap();
        assert_eq!(wave2.iter().map(|j| j.id).collect::<Vec<_>>(), vec![3, 4]);
        assert_eq!(q.backlog_boards(), 0);
    }

    #[test]
    fn one_request_per_wave_without_coalescing() {
        let q = JobQueue::new(256, false);
        for id in 0..3 {
            let (j, _rx) = job(id, 1);
            q.submit(j).unwrap();
        }
        for id in 0..3 {
            let wave = q.next_wave().unwrap();
            assert_eq!(wave.len(), 1);
            assert_eq!(wave[0].id, id);
        }
    }

    #[test]
    fn overflow_sheds_and_close_drains() {
        let q = JobQueue::new(64, true);
        let (j, _rx) = job(0, 40);
        q.submit(j).unwrap();
        let (j, _rx2) = job(1, 40);
        let err = q.submit(j).unwrap_err();
        assert_eq!(err.status, 429);
        assert_eq!(err.headers[0].0, "Retry-After");
        q.close();
        let (j, _rx3) = job(2, 1);
        assert_eq!(q.submit(j).unwrap_err().status, 503);
        // The queued job is still drained, then the queue reports done.
        assert_eq!(q.next_wave().unwrap()[0].id, 0);
        assert!(q.next_wave().is_none());
    }
}
