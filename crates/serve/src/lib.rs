//! `flames-serve`: the network-facing diagnosis service.
//!
//! A zero-dependency (std-only) blocking HTTP/1.1 server over the
//! FLAMES serving stack: `POST /diagnose` accepts a batch of
//! measurement sets and returns ranked candidates plus the recommended
//! next probe; an admission-control queue coalesces concurrent requests
//! into shared board-lane waves (≤64 sessions, executed by
//! [`flames_core::Session::propagate_lane`]) and collapses bit-identical
//! boards onto one warm session, so duplicate concurrent queries are
//! nearly free — and, because lane propagation is byte-identical to a
//! solo run, invisibly so. Overload is shed explicitly (429/503 with an
//! `{"error": {...}}` taxonomy body), deadlines are honoured per
//! request, `GET /metrics` dumps the process-wide counter table, and
//! `GET /trace/:id` streams the Chrome trace of a completed request.
//!
//! ```no_run
//! use flames_serve::{serve, Client, ServeConfig};
//! # fn main() -> std::io::Result<()> {
//! # let diagnoser: flames_core::Diagnoser = unimplemented!();
//! let handle = serve("127.0.0.1:0", diagnoser, ServeConfig::default())?;
//! let mut client = Client::connect(handle.addr())?;
//! let response = client.diagnose(
//!     r#"{"boards": [[{"point": "Vmid", "value": 6.1}]]}"#,
//! )?;
//! assert_eq!(response.status, 200);
//! handle.shutdown();
//! # Ok(())
//! # }
//! ```

pub mod client;
pub mod error;
pub mod http;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod wave;

pub use client::{Client, Response};
pub use error::{ErrorKind, ServeError};
pub use protocol::{DiagnoseRequest, MAX_BOARDS_PER_REQUEST};
pub use server::{serve, ServeConfig, ServerHandle};
pub use wave::{diagnose_boards, BoardOutcome, NextProbe};
