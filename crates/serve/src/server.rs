//! The blocking HTTP diagnosis server.
//!
//! A fixed worker set accepts connections on a shared listener (the
//! pre-forked blocking-accept model — no async runtime, no external
//! crates), parses requests against the compiled model, and hands
//! `/diagnose` jobs to the admission queue; batcher threads drain the
//! queue in coalesced waves, execute them on warm session pools, and
//! reply rendered bodies through per-job channels. Routes:
//!
//! * `POST /diagnose` — measurement batches in, ranked candidates +
//!   next probe out (`X-Request-Id` names the trace);
//! * `GET /metrics` — the full [`flames_obs::MetricsSnapshot`];
//! * `GET /trace/:id` — the Chrome `trace_event` document of a
//!   completed request.

use crate::error::ServeError;
use crate::http::{read_request, write_response, ReadLimits, ReadOutcome, Request};
use crate::protocol::{parse_diagnose, render_board};
use crate::queue::{Job, JobQueue};
use crate::wave::{run_wave, traces_to_chrome_json};
use flames_core::{Diagnoser, SessionPool};
use flames_obs::Trace;
use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::channel;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tuning knobs. The defaults serve; tests and benches shrink
/// the limits to provoke shedding and deadlines deterministically.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Connection-handling threads (each blocks in `accept`).
    pub workers: usize,
    /// Wave-executing threads, each with its own warm session pool.
    pub batchers: usize,
    /// Coalesce queued requests into shared waves (`false` = the
    /// one-request-per-wave baseline).
    pub coalesce: bool,
    /// Admission-queue bound, in boards.
    pub max_backlog_boards: usize,
    /// Queue-wait budget for requests that do not send `deadline_ms`.
    pub default_deadline: Duration,
    /// Overall per-request read deadline (slow-loris bound).
    pub read_timeout: Duration,
    /// Largest accepted request body.
    pub max_body_bytes: usize,
    /// Completed-request traces kept for `GET /trace/:id`.
    pub trace_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            batchers: 1,
            coalesce: true,
            max_backlog_boards: 256,
            default_deadline: Duration::from_secs(10),
            read_timeout: Duration::from_secs(5),
            max_body_bytes: 1 << 20,
            trace_capacity: 64,
        }
    }
}

/// Bounded ring of completed-request traces, keyed by request id. The
/// raw per-board traces are kept shared (`Arc`) and merged into a
/// Chrome document only when `GET /trace/:id` asks — a heavy board's
/// document runs to megabytes, far too much to render per request.
#[derive(Debug)]
struct TraceStore {
    ring: Mutex<VecDeque<(u64, Vec<Arc<Trace>>)>>,
    capacity: usize,
}

impl TraceStore {
    fn new(capacity: usize) -> Self {
        Self {
            ring: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
        }
    }

    fn insert(&self, id: u64, traces: Vec<Arc<Trace>>) {
        let mut ring = self.lock();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back((id, traces));
    }

    fn get(&self, id: u64) -> Option<String> {
        let traces = self
            .lock()
            .iter()
            .find(|(i, _)| *i == id)
            .map(|(_, t)| t.clone())?;
        Some(traces_to_chrome_json(&traces))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<(u64, Vec<Arc<Trace>>)>> {
        self.ring
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// State shared by every worker and batcher.
#[derive(Debug)]
struct Shared {
    diagnoser: Diagnoser,
    queue: JobQueue,
    traces: TraceStore,
    config: ServeConfig,
    next_id: AtomicU64,
    shutdown: AtomicBool,
    /// Live client connections, so shutdown can cut a worker loose from
    /// a keep-alive read instead of waiting out its read deadline.
    conns: Mutex<std::collections::HashMap<u64, TcpStream>>,
    next_conn: AtomicU64,
}

impl Shared {
    fn lock_conns(&self) -> std::sync::MutexGuard<'_, std::collections::HashMap<u64, TcpStream>> {
        self.conns
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// A running server. Dropping the handle shuts the server down and
/// joins every thread.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (port resolved when binding `:0`).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains the queue, and joins all threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        self.shared.queue.close();
        // Cut workers loose from in-flight keep-alive reads...
        for conn in self.shared.lock_conns().values() {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        // ...and wake every worker blocked in accept() with a throwaway
        // connection; workers re-check the flag after each accept.
        for _ in 0..self.shared.config.workers {
            let _ = TcpStream::connect(self.addr);
        }
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Binds and starts a diagnosis server for one compiled model.
///
/// # Errors
///
/// Propagates listener binding failures.
pub fn serve(
    addr: impl ToSocketAddrs,
    diagnoser: Diagnoser,
    config: ServeConfig,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        diagnoser,
        queue: JobQueue::new(config.max_backlog_boards, config.coalesce),
        traces: TraceStore::new(config.trace_capacity),
        config: config.clone(),
        next_id: AtomicU64::new(1),
        shutdown: AtomicBool::new(false),
        conns: Mutex::new(std::collections::HashMap::new()),
        next_conn: AtomicU64::new(0),
    });
    let mut threads = Vec::new();
    for worker in 0..config.workers.max(1) {
        let listener = listener.try_clone()?;
        let shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name(format!("serve-http-{worker}"))
                .spawn(move || worker_loop(&listener, &shared))
                .expect("spawn http worker"),
        );
    }
    for batcher in 0..config.batchers.max(1) {
        let shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name(format!("serve-batch-{batcher}"))
                .spawn(move || batcher_loop(&shared))
                .expect("spawn batcher"),
        );
    }
    Ok(ServerHandle {
        addr,
        shared,
        threads,
    })
}

/// Accept loop of one HTTP worker.
fn worker_loop(listener: &TcpListener, shared: &Shared) {
    loop {
        let Ok((stream, _peer)) = listener.accept() else {
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            continue;
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let conn_id = shared.next_conn.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            shared.lock_conns().insert(conn_id, clone);
        }
        handle_connection(stream, shared);
        shared.lock_conns().remove(&conn_id);
    }
}

/// Serves one keep-alive connection until close, error, or shutdown.
fn handle_connection(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_nodelay(true);
    let limits = ReadLimits {
        read_timeout: shared.config.read_timeout,
        max_body_bytes: shared.config.max_body_bytes,
    };
    let mut carry = Vec::new();
    loop {
        match read_request(&mut stream, &mut carry, limits) {
            Ok(ReadOutcome::Closed) => return,
            Ok(ReadOutcome::Request(request)) => {
                let keep_alive = request.keep_alive && !shared.shutdown.load(Ordering::SeqCst);
                match dispatch(&request, shared) {
                    Ok((body, extra)) => {
                        let headers: Vec<(&str, String)> =
                            extra.iter().map(|(n, v)| (*n, v.clone())).collect();
                        if write_response(&mut stream, 200, &headers, &body, keep_alive).is_err() {
                            return;
                        }
                    }
                    Err(e) => {
                        // Errors close the connection: framing state
                        // past a failed request is untrustworthy.
                        let headers: Vec<(&str, String)> =
                            e.headers.iter().map(|(n, v)| (*n, v.clone())).collect();
                        let _ =
                            write_response(&mut stream, e.status, &headers, &e.to_json(), false);
                        return;
                    }
                }
                if !keep_alive {
                    return;
                }
            }
            Err(e) => {
                // Framing failure (malformed, truncated, slow-loris):
                // answer with the taxonomy error and drop the line.
                let headers: Vec<(&str, String)> =
                    e.headers.iter().map(|(n, v)| (*n, v.clone())).collect();
                let _ = write_response(&mut stream, e.status, &headers, &e.to_json(), false);
                return;
            }
        }
    }
}

type RouteResult = Result<(String, Vec<(&'static str, String)>), ServeError>;

/// Routes one parsed request.
fn dispatch(request: &Request, shared: &Shared) -> RouteResult {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/diagnose") => diagnose(request, shared),
        ("GET", "/metrics") => Ok((
            format!("{}\n", flames_obs::MetricsSnapshot::capture().to_json(0)),
            Vec::new(),
        )),
        ("GET", path) if path.starts_with("/trace/") => {
            let id: u64 = path["/trace/".len()..]
                .parse()
                .map_err(|_| ServeError::bad_request("trace id must be an integer"))?;
            match shared.traces.get(id) {
                Some(json) => Ok((json, Vec::new())),
                None => Err(ServeError::with_status(
                    crate::error::ErrorKind::BadRequest,
                    404,
                    format!("no completed request {id} in the trace window"),
                )),
            }
        }
        (_, path) if path == "/diagnose" || path == "/metrics" || path.starts_with("/trace/") => {
            Err(ServeError::with_status(
                crate::error::ErrorKind::BadRequest,
                405,
                format!("{} not allowed on {}", request.method, request.path),
            ))
        }
        _ => Err(ServeError::with_status(
            crate::error::ErrorKind::BadRequest,
            404,
            format!("unknown route {}", request.path),
        )),
    }
}

/// `POST /diagnose`: parse, admit, wait for the wave, relay the body.
fn diagnose(request: &Request, shared: &Shared) -> RouteResult {
    let body = std::str::from_utf8(&request.body)
        .map_err(|_| ServeError::bad_request("body is not UTF-8"))?;
    let parsed = parse_diagnose(body, &shared.diagnoser)?;
    let deadline = Instant::now()
        + parsed
            .deadline_ms
            .map_or(shared.config.default_deadline, Duration::from_millis);
    let id = shared.next_id.fetch_add(1, Ordering::Relaxed);
    let (reply, result) = channel();
    shared.queue.submit(Job {
        id,
        boards: parsed.boards,
        next_probe: parsed.next_probe,
        deadline,
        reply,
    })?;
    let body = result
        .recv()
        .map_err(|_| ServeError::internal("batcher dropped the reply channel"))??;
    Ok((body, vec![("X-Request-Id", id.to_string())]))
}

/// Wave loop of one batcher thread: drain → expire → execute → reply.
fn batcher_loop(shared: &Shared) {
    let diagnoser = shared.diagnoser.clone();
    let mut pool = SessionPool::new(&diagnoser);
    while let Some(jobs) = shared.queue.next_wave() {
        let now = Instant::now();
        let mut live = Vec::with_capacity(jobs.len());
        for job in jobs {
            if job.deadline < now {
                flames_obs::metrics().serve_deadline_missed.incr();
                let _ = job.reply.send(Err(ServeError::deadline_missed()));
            } else {
                live.push(job);
            }
        }
        if live.is_empty() {
            continue;
        }
        let mut boards = Vec::new();
        let mut want_probe = Vec::new();
        for job in &live {
            boards.extend(job.boards.iter().cloned());
            want_probe.extend(std::iter::repeat_n(job.next_probe, job.boards.len()));
        }
        match run_wave(&mut pool, &boards, &want_probe) {
            Ok(outcomes) => {
                let mut offset = 0;
                for job in live {
                    let slice = &outcomes[offset..offset + job.boards.len()];
                    offset += job.boards.len();
                    shared
                        .traces
                        .insert(job.id, slice.iter().map(|o| o.trace.clone()).collect());
                    // A request that declined recommendations renders
                    // its boards without them, even when a coalesced
                    // duplicate asked (the report bytes are shared).
                    let mut rendered = String::from("{\"boards\":[");
                    for (i, o) in slice.iter().enumerate() {
                        if i > 0 {
                            rendered.push(',');
                        }
                        let probe = if job.next_probe {
                            o.next_probe.as_ref()
                        } else {
                            None
                        };
                        rendered.push_str(&render_board(&o.report, probe));
                    }
                    rendered.push_str("]}");
                    let _ = job.reply.send(Ok(rendered));
                }
            }
            Err(e) => {
                // Indices were validated at parse time; reaching this
                // arm is a server bug, not a client error.
                for job in live {
                    let _ = job
                        .reply
                        .send(Err(ServeError::internal(format!("wave failed: {e}"))));
                }
            }
        }
    }
}
