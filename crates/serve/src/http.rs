//! Minimal blocking HTTP/1.1 framing over [`TcpStream`].
//!
//! Just enough of RFC 9112 for the diagnosis protocol: request-line +
//! headers + `Content-Length` bodies, keep-alive, and hard limits
//! everywhere a client could stall or flood us — an *overall* read
//! deadline per request (slow-loris protection: the clock starts at the
//! first byte and drip-feeding does not reset it), a header-size cap,
//! and a body-size cap checked before the body is read.

use crate::error::ServeError;
use std::io::{ErrorKind as IoKind, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Hard cap on the request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 8 * 1024;

/// Framing limits of one request read.
#[derive(Debug, Clone, Copy)]
pub struct ReadLimits {
    /// Overall deadline for receiving the complete request.
    pub read_timeout: Duration,
    /// Largest accepted `Content-Length`.
    pub max_body_bytes: usize,
}

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method, upper-case as sent (`GET`, `POST`, ...).
    pub method: String,
    /// Request target (path only; no query parsing).
    pub path: String,
    /// Headers as `(lower-cased name, value)` pairs.
    pub headers: Vec<(String, String)>,
    /// The body (empty without a `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the connection should stay open after the response.
    pub keep_alive: bool,
}

impl Request {
    /// First header value by lower-case name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Outcome of waiting for a request on a keep-alive connection.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete request arrived.
    Request(Request),
    /// The peer closed (or went idle past the timeout) *between*
    /// requests — a clean end of the connection, not an error.
    Closed,
}

/// Reads one request. `carry` holds bytes left over from the previous
/// read on this connection (pipelined or over-read data) and is updated
/// to the remainder past this request.
///
/// # Errors
///
/// Returns the taxonomy error the caller should serialize before
/// closing: 400 for malformed or truncated framing, 408 when the read
/// deadline expires mid-request, 413 for an oversize body.
pub fn read_request(
    stream: &mut TcpStream,
    carry: &mut Vec<u8>,
    limits: ReadLimits,
) -> Result<ReadOutcome, ServeError> {
    let deadline = Instant::now() + limits.read_timeout;
    // ---- head ------------------------------------------------------
    let head_end = loop {
        if let Some(pos) = find_crlf_crlf(carry) {
            break pos;
        }
        if carry.len() > MAX_HEAD_BYTES {
            return Err(ServeError::bad_request("request head too large"));
        }
        match fill(stream, carry, deadline)? {
            FillOutcome::Data => {}
            FillOutcome::Eof if carry.is_empty() => return Ok(ReadOutcome::Closed),
            FillOutcome::Eof => return Err(ServeError::bad_request("truncated request head")),
            FillOutcome::TimedOut if carry.is_empty() => return Ok(ReadOutcome::Closed),
            FillOutcome::TimedOut => return Err(ServeError::read_timeout()),
        }
    };
    let head = String::from_utf8_lossy(&carry[..head_end]).into_owned();
    let body_start = head_end + 4;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && p.starts_with('/') => {
            (m.to_owned(), p.to_owned(), v)
        }
        _ => {
            return Err(ServeError::bad_request(format!(
                "malformed request line {request_line:?}"
            )))
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(ServeError::bad_request(format!(
            "unsupported protocol version {version:?}"
        )));
    }
    let mut headers = Vec::new();
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            return Err(ServeError::bad_request(format!(
                "malformed header line {line:?}"
            )));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }
    let connection = headers
        .iter()
        .find(|(n, _)| n == "connection")
        .map(|(_, v)| v.to_ascii_lowercase());
    let keep_alive = match connection.as_deref() {
        Some("close") => false,
        Some("keep-alive") => true,
        _ => version == "HTTP/1.1",
    };
    // ---- body ------------------------------------------------------
    let content_length = match headers.iter().find(|(n, _)| n == "content-length") {
        None => 0usize,
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| ServeError::bad_request(format!("invalid Content-Length {v:?}")))?,
    };
    if content_length > limits.max_body_bytes {
        return Err(ServeError::with_status(
            crate::error::ErrorKind::BadRequest,
            413,
            format!(
                "body of {content_length} bytes exceeds the {} byte limit",
                limits.max_body_bytes
            ),
        ));
    }
    while carry.len() < body_start + content_length {
        match fill(stream, carry, deadline)? {
            FillOutcome::Data => {}
            FillOutcome::Eof => return Err(ServeError::bad_request("truncated request body")),
            FillOutcome::TimedOut => return Err(ServeError::read_timeout()),
        }
    }
    let body = carry[body_start..body_start + content_length].to_vec();
    carry.drain(..body_start + content_length);
    Ok(ReadOutcome::Request(Request {
        method,
        path,
        headers,
        body,
        keep_alive,
    }))
}

enum FillOutcome {
    Data,
    Eof,
    TimedOut,
}

/// One read into `buf`, honouring the overall deadline.
fn fill(
    stream: &mut TcpStream,
    buf: &mut Vec<u8>,
    deadline: Instant,
) -> Result<FillOutcome, ServeError> {
    let remaining = deadline.saturating_duration_since(Instant::now());
    if remaining.is_zero() {
        return Ok(FillOutcome::TimedOut);
    }
    stream
        .set_read_timeout(Some(remaining))
        .map_err(|e| ServeError::internal(format!("set_read_timeout: {e}")))?;
    let mut chunk = [0u8; 4096];
    match stream.read(&mut chunk) {
        Ok(0) => Ok(FillOutcome::Eof),
        Ok(n) => {
            buf.extend_from_slice(&chunk[..n]);
            Ok(FillOutcome::Data)
        }
        Err(e) if matches!(e.kind(), IoKind::WouldBlock | IoKind::TimedOut) => {
            Ok(FillOutcome::TimedOut)
        }
        Err(e) if e.kind() == IoKind::Interrupted => Ok(FillOutcome::Data),
        Err(e)
            if matches!(
                e.kind(),
                IoKind::ConnectionReset | IoKind::ConnectionAborted
            ) =>
        {
            Ok(FillOutcome::Eof)
        }
        Err(e) => Err(ServeError::internal(format!("socket read: {e}"))),
    }
}

fn find_crlf_crlf(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// The standard reason phrase of the statuses the service emits.
#[must_use]
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Writes one response with `Content-Type: application/json`, a
/// computed `Content-Length`, and the given connection disposition.
///
/// # Errors
///
/// Propagates socket write errors (the caller drops the connection).
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    extra_headers: &[(&str, String)],
    body: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    use std::fmt::Write as _;
    let mut head = String::with_capacity(128);
    let _ = write!(head, "HTTP/1.1 {} {}\r\n", status, reason(status));
    head.push_str("Content-Type: application/json\r\n");
    let _ = write!(head, "Content-Length: {}\r\n", body.len());
    for (name, value) in extra_headers {
        let _ = write!(head, "{name}: {value}\r\n");
    }
    head.push_str(if keep_alive {
        "Connection: keep-alive\r\n\r\n"
    } else {
        "Connection: close\r\n\r\n"
    });
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    fn limits() -> ReadLimits {
        ReadLimits {
            read_timeout: Duration::from_millis(300),
            max_body_bytes: 1024,
        }
    }

    #[test]
    fn parses_request_with_body_and_keep_alive() {
        let (mut client, mut server) = pair();
        client
            .write_all(b"POST /diagnose HTTP/1.1\r\nContent-Length: 4\r\nHost: x\r\n\r\nabcd")
            .unwrap();
        let mut carry = Vec::new();
        let ReadOutcome::Request(req) = read_request(&mut server, &mut carry, limits()).unwrap()
        else {
            panic!("expected request");
        };
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/diagnose");
        assert_eq!(req.body, b"abcd");
        assert!(req.keep_alive);
        assert_eq!(req.header("host"), Some("x"));
        assert!(carry.is_empty());
    }

    #[test]
    fn pipelined_bytes_stay_in_carry() {
        let (mut client, mut server) = pair();
        client
            .write_all(b"GET /metrics HTTP/1.1\r\n\r\nGET /next HTTP/1.1\r\n\r\n")
            .unwrap();
        let mut carry = Vec::new();
        let ReadOutcome::Request(first) = read_request(&mut server, &mut carry, limits()).unwrap()
        else {
            panic!("expected request");
        };
        assert_eq!(first.path, "/metrics");
        let ReadOutcome::Request(second) = read_request(&mut server, &mut carry, limits()).unwrap()
        else {
            panic!("expected second request");
        };
        assert_eq!(second.path, "/next");
    }

    #[test]
    fn idle_close_and_idle_timeout_are_clean() {
        let (client, mut server) = pair();
        drop(client);
        let mut carry = Vec::new();
        assert!(matches!(
            read_request(&mut server, &mut carry, limits()).unwrap(),
            ReadOutcome::Closed
        ));
        // Idle (no bytes at all) until the deadline: also clean.
        let (_client2, mut server2) = pair();
        let mut carry2 = Vec::new();
        assert!(matches!(
            read_request(&mut server2, &mut carry2, limits()).unwrap(),
            ReadOutcome::Closed
        ));
    }

    #[test]
    fn partial_head_then_stall_hits_the_read_deadline() {
        let (mut client, mut server) = pair();
        client.write_all(b"POST /diagnose HTT").unwrap();
        let mut carry = Vec::new();
        let err = read_request(&mut server, &mut carry, limits()).unwrap_err();
        assert_eq!(err.status, 408);
    }

    #[test]
    fn truncated_body_is_a_bad_request() {
        let (mut client, mut server) = pair();
        client
            .write_all(b"POST /d HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc")
            .unwrap();
        drop(client);
        let mut carry = Vec::new();
        let err = read_request(&mut server, &mut carry, limits()).unwrap_err();
        assert_eq!(err.status, 400);
        assert!(err.message.contains("truncated"));
    }

    #[test]
    fn oversize_and_invalid_content_length_are_rejected() {
        let (mut client, mut server) = pair();
        client
            .write_all(b"POST /d HTTP/1.1\r\nContent-Length: 99999\r\n\r\n")
            .unwrap();
        let mut carry = Vec::new();
        let err = read_request(&mut server, &mut carry, limits()).unwrap_err();
        assert_eq!(err.status, 413);

        let (mut client2, mut server2) = pair();
        client2
            .write_all(b"POST /d HTTP/1.1\r\nContent-Length: nope\r\n\r\n")
            .unwrap();
        let mut carry2 = Vec::new();
        let err2 = read_request(&mut server2, &mut carry2, limits()).unwrap_err();
        assert_eq!(err2.status, 400);
    }

    #[test]
    fn malformed_request_lines_are_rejected() {
        for head in [
            "NOPATH HTTP/1.1\r\n\r\n",
            "GET /x HTTP/9.9\r\n\r\n",
            "GET /x HTTP/1.1 extra\r\n\r\n",
            "GET /x HTTP/1.1\r\nbadheader\r\n\r\n",
        ] {
            let (mut client, mut server) = pair();
            client.write_all(head.as_bytes()).unwrap();
            let mut carry = Vec::new();
            let err = read_request(&mut server, &mut carry, limits()).unwrap_err();
            assert_eq!(err.status, 400, "{head:?}");
        }
    }

    #[test]
    fn response_frames_round_trip() {
        let (mut client, mut server) = pair();
        write_response(
            &mut server,
            429,
            &[("Retry-After", "1".to_string())],
            "{\"error\":{}}",
            false,
        )
        .unwrap();
        drop(server);
        let mut text = String::new();
        client.read_to_string(&mut text).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("{\"error\":{}}"));
    }
}
