//! The wire protocol of the diagnosis service.
//!
//! Requests and responses are JSON; parsing reuses the zero-dep
//! [`flames_obs::json`] parser and rendering is hand-written so the
//! bytes are a *pure function* of the diagnosis content. That purity is
//! what the end-to-end suite pins: a board served over the socket must
//! render byte-identically to the same board diagnosed in process.
//!
//! `POST /diagnose` accepts
//!
//! ```json
//! {
//!   "boards": [
//!     [ {"point": "V1", "value": {"m1": 4.9, "m2": 5.1, "alpha": 0.1, "beta": 0.1}},
//!       {"point": 2,    "value": 5.0} ]
//!   ],
//!   "deadline_ms": 2000,
//!   "next_probe": true
//! }
//! ```
//!
//! where a `point` is a test-point name or index, a `value` is a
//! trapezoidal fuzzy interval (a bare number means crisp), `deadline_ms`
//! bounds queue wait (optional; the server default applies otherwise)
//! and `next_probe` asks for a best-next-test recommendation (default
//! `true`). The 200 response is one object per board:
//!
//! ```json
//! {"boards": [ {"points": [...], "nogoods": [...], "candidates": [...],
//!               "refined": [...], "next_probe": {...} | null} ]}
//! ```

use crate::error::ServeError;
use crate::wave::{BoardOutcome, NextProbe};
use flames_core::{Board, Candidate, Diagnoser, Report};
use flames_fuzzy::{Direction, FuzzyInterval};
use flames_obs::json::{parse, Value};
use flames_obs::trace::escape_json;
use std::fmt::Write as _;

/// Most boards accepted in one request — one request must fit one
/// board-lane wave ([`flames_core::Session::propagate_lane`] caps a
/// lane at 64 sessions).
pub const MAX_BOARDS_PER_REQUEST: usize = 64;

/// A parsed `/diagnose` request.
#[derive(Debug, Clone, PartialEq)]
pub struct DiagnoseRequest {
    /// The measurement sets, resolved to test-point indices.
    pub boards: Vec<Board>,
    /// Queue-wait budget override, if the client sent one.
    pub deadline_ms: Option<u64>,
    /// Whether to compute the recommended next probe per board.
    pub next_probe: bool,
}

/// Parses and validates a `/diagnose` body against a diagnoser's
/// test-point table.
///
/// # Errors
///
/// Returns a 400 [`ServeError`] naming the first malformed field —
/// clients get the byte offset for syntax errors and the offending
/// member for schema errors.
pub fn parse_diagnose(body: &str, diagnoser: &Diagnoser) -> Result<DiagnoseRequest, ServeError> {
    let root = parse(body).map_err(|e| ServeError::bad_request(format!("malformed JSON: {e}")))?;
    let boards_v = root
        .member("boards")
        .ok_or_else(|| ServeError::bad_request("missing \"boards\" member"))?
        .as_array()
        .ok_or_else(|| ServeError::bad_request("\"boards\" must be an array"))?;
    if boards_v.is_empty() {
        return Err(ServeError::bad_request("\"boards\" must not be empty"));
    }
    if boards_v.len() > MAX_BOARDS_PER_REQUEST {
        return Err(ServeError::bad_request(format!(
            "at most {MAX_BOARDS_PER_REQUEST} boards per request, got {}",
            boards_v.len()
        )));
    }
    let mut boards = Vec::with_capacity(boards_v.len());
    for (bi, board_v) in boards_v.iter().enumerate() {
        let measurements = board_v
            .as_array()
            .ok_or_else(|| ServeError::bad_request(format!("board {bi} must be an array")))?;
        let mut board: Board = Vec::with_capacity(measurements.len());
        for (mi, m) in measurements.iter().enumerate() {
            board.push(parse_measurement(m, diagnoser).map_err(|e| {
                ServeError::bad_request(format!("board {bi}, measurement {mi}: {}", e.message))
            })?);
        }
        boards.push(board);
    }
    let deadline_ms = match root.member("deadline_ms") {
        None => None,
        Some(v) => Some(
            v.as_f64()
                .filter(|d| d.is_finite() && *d >= 0.0)
                .map(|d| d as u64)
                .ok_or_else(|| {
                    ServeError::bad_request("\"deadline_ms\" must be a non-negative number")
                })?,
        ),
    };
    let next_probe = match root.member("next_probe") {
        None => true,
        Some(Value::Bool(b)) => *b,
        Some(_) => return Err(ServeError::bad_request("\"next_probe\" must be a boolean")),
    };
    Ok(DiagnoseRequest {
        boards,
        deadline_ms,
        next_probe,
    })
}

/// One `{"point": ..., "value": ...}` measurement.
fn parse_measurement(
    m: &Value,
    diagnoser: &Diagnoser,
) -> Result<(usize, FuzzyInterval), ServeError> {
    let point_v = m
        .member("point")
        .ok_or_else(|| ServeError::bad_request("missing \"point\""))?;
    let idx = match point_v {
        Value::Number(n) => {
            let idx = *n as usize;
            if n.fract() != 0.0 || *n < 0.0 || idx >= diagnoser.test_points().len() {
                return Err(ServeError::bad_request(format!(
                    "test-point index {n} out of range"
                )));
            }
            idx
        }
        Value::String(name) => diagnoser
            .test_points()
            .iter()
            .position(|tp| tp.name == *name)
            .ok_or_else(|| ServeError::bad_request(format!("unknown test point {name:?}")))?,
        _ => {
            return Err(ServeError::bad_request(
                "\"point\" must be a name or an index",
            ))
        }
    };
    let value_v = m
        .member("value")
        .ok_or_else(|| ServeError::bad_request("missing \"value\""))?;
    let value = parse_fuzzy(value_v)?;
    Ok((idx, value))
}

/// A fuzzy interval: `{"m1":..,"m2":..,"alpha":..,"beta":..}` (alpha
/// and beta optional, default 0) or a bare number (crisp).
fn parse_fuzzy(v: &Value) -> Result<FuzzyInterval, ServeError> {
    match v {
        Value::Number(n) if n.is_finite() => Ok(FuzzyInterval::crisp(*n)),
        Value::Object(_) => {
            let field = |name: &str, default: Option<f64>| -> Result<f64, ServeError> {
                match v.member(name) {
                    Some(Value::Number(n)) if n.is_finite() => Ok(*n),
                    None => default.ok_or_else(|| {
                        ServeError::bad_request(format!("\"value\" missing \"{name}\""))
                    }),
                    Some(_) => Err(ServeError::bad_request(format!(
                        "\"value\".\"{name}\" must be a finite number"
                    ))),
                }
            };
            let m1 = field("m1", None)?;
            let m2 = field("m2", None)?;
            let alpha = field("alpha", Some(0.0))?;
            let beta = field("beta", Some(0.0))?;
            FuzzyInterval::new(m1, m2, alpha, beta)
                .map_err(|e| ServeError::bad_request(format!("invalid fuzzy interval: {e}")))
        }
        _ => Err(ServeError::bad_request(
            "\"value\" must be a number or a fuzzy-interval object",
        )),
    }
}

/// Renders an `f64` deterministically: shortest round-trip `{}` with a
/// `.0` appended to integral values, so the output stays visibly a
/// float (same convention as the trace exporter).
fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let start = out.len();
        let _ = write!(out, "{v}");
        if !out[start..].contains('.') && !out[start..].contains('e') {
            out.push_str(".0");
        }
    } else {
        let _ = write!(out, "\"{v}\"");
    }
}

fn push_interval(out: &mut String, v: &FuzzyInterval) {
    out.push_str("{\"m1\":");
    push_f64(out, v.core_lo());
    out.push_str(",\"m2\":");
    push_f64(out, v.core_hi());
    out.push_str(",\"alpha\":");
    push_f64(out, v.spread_left());
    out.push_str(",\"beta\":");
    push_f64(out, v.spread_right());
    out.push('}');
}

fn direction_str(d: Direction) -> &'static str {
    match d {
        Direction::Low => "low",
        Direction::Within => "within",
        Direction::High => "high",
    }
}

fn push_candidates(out: &mut String, candidates: &[Candidate]) {
    out.push('[');
    for (i, c) in candidates.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"members\":[");
        for (j, m) in c.members.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&escape_json(m));
        }
        out.push_str("],\"degree\":");
        push_f64(out, c.degree);
        out.push('}');
    }
    out.push(']');
}

/// Renders one board's diagnosis — the [`Report`] plus the recommended
/// next probe — as a JSON object. Shared by the server and the
/// in-process parity tests: equality of these bytes *is* the service's
/// determinism contract.
#[must_use]
pub fn render_board(report: &Report, next_probe: Option<&NextProbe>) -> String {
    let mut out = String::with_capacity(512);
    out.push_str("{\"points\":[");
    for (i, p) in report.points.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        out.push_str(&escape_json(&p.name));
        out.push_str(",\"predicted\":");
        push_interval(&mut out, &p.predicted);
        if let Some(m) = &p.measured {
            out.push_str(",\"measured\":");
            push_interval(&mut out, m);
        }
        if let Some(dc) = &p.consistency {
            out.push_str(",\"dc\":");
            push_f64(&mut out, dc.degree());
            out.push_str(",\"direction\":\"");
            out.push_str(direction_str(dc.direction()));
            out.push('"');
        }
        out.push('}');
    }
    out.push_str("],\"nogoods\":[");
    for (i, (set, degree)) in report.nogoods.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"set\":");
        out.push_str(&escape_json(set));
        out.push_str(",\"degree\":");
        push_f64(&mut out, *degree);
        out.push('}');
    }
    out.push_str("],\"candidates\":");
    push_candidates(&mut out, &report.candidates);
    out.push_str(",\"refined\":");
    push_candidates(&mut out, &report.refined);
    out.push_str(",\"next_probe\":");
    match next_probe {
        Some(np) => {
            out.push_str("{\"point\":");
            let _ = write!(out, "{}", np.point);
            out.push_str(",\"name\":");
            out.push_str(&escape_json(&np.name));
            out.push_str(",\"score\":");
            push_f64(&mut out, np.score);
            out.push('}');
        }
        None => out.push_str("null"),
    }
    out.push('}');
    out
}

/// Renders the full 200 body for a request's board outcomes.
#[must_use]
pub fn render_response(outcomes: &[BoardOutcome]) -> String {
    let mut out = String::from("{\"boards\":[");
    for (i, o) in outcomes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&render_board(&o.report, o.next_probe.as_ref()));
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use flames_circuit::predict::TestPoint;
    use flames_circuit::{Net, Netlist};
    use flames_core::DiagnoserConfig;

    fn divider() -> Diagnoser {
        let mut nl = Netlist::new();
        let vin = nl.add_net("vin");
        let mid = nl.add_net("mid");
        nl.add_voltage_source("V", vin, Net::GROUND, 10.0).unwrap();
        let r1 = nl.add_resistor("R1", vin, mid, 1000.0, 0.05).unwrap();
        let r2 = nl
            .add_resistor("R2", mid, Net::GROUND, 1000.0, 0.05)
            .unwrap();
        Diagnoser::from_netlist(
            &nl,
            vec![TestPoint::new(mid, "Vmid", vec![r1, r2])],
            DiagnoserConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn parses_names_indices_and_value_forms() {
        let d = divider();
        let req = parse_diagnose(
            "{\"boards\": [[{\"point\": \"Vmid\", \"value\": 5.0}], \
             [{\"point\": 0, \"value\": {\"m1\": 4.9, \"m2\": 5.1, \"alpha\": 0.1}}]], \
             \"deadline_ms\": 250, \"next_probe\": false}",
            &d,
        )
        .unwrap();
        assert_eq!(req.boards.len(), 2);
        assert_eq!(req.boards[0][0].0, 0);
        assert!(req.boards[0][0].1.is_crisp());
        assert_eq!(req.boards[1][0].1.core(), (4.9, 5.1));
        assert_eq!(req.deadline_ms, Some(250));
        assert!(!req.next_probe);
    }

    #[test]
    fn schema_errors_are_bad_requests_with_detail() {
        let d = divider();
        for (body, needle) in [
            ("{", "malformed JSON"),
            ("{\"boards\": []}", "must not be empty"),
            ("{\"boards\": 1}", "must be an array"),
            ("{\"no\": 1}", "missing \"boards\""),
            ("{\"boards\": [[{\"value\": 1}]]}", "missing \"point\""),
            (
                "{\"boards\": [[{\"point\": \"nope\", \"value\": 1}]]}",
                "unknown test point",
            ),
            (
                "{\"boards\": [[{\"point\": 7, \"value\": 1}]]}",
                "out of range",
            ),
            (
                "{\"boards\": [[{\"point\": 0, \"value\": {\"m1\": 2, \"m2\": 1}}]]}",
                "invalid fuzzy interval",
            ),
            (
                "{\"boards\": [[{\"point\": 0, \"value\": true}]]}",
                "\"value\" must be",
            ),
            (
                "{\"boards\": [[{\"point\": 0, \"value\": 1}]], \"deadline_ms\": -3}",
                "deadline_ms",
            ),
            (
                "{\"boards\": [[{\"point\": 0, \"value\": 1}]], \"next_probe\": 1}",
                "next_probe",
            ),
        ] {
            let err = parse_diagnose(body, &d).unwrap_err();
            assert_eq!(err.status, 400, "{body}");
            assert!(err.message.contains(needle), "{body} -> {}", err.message);
        }
        // Too many boards.
        let many = format!(
            "{{\"boards\": [{}]}}",
            vec!["[{\"point\": 0, \"value\": 1}]"; 65].join(",")
        );
        let err = parse_diagnose(&many, &d).unwrap_err();
        assert!(err.message.contains("at most"));
    }

    #[test]
    fn rendered_bodies_parse_back() {
        let d = divider();
        let mut s = d.session();
        s.measure("Vmid", FuzzyInterval::crisp(6.2).widened(0.05).unwrap())
            .unwrap();
        s.propagate();
        let report = s.report();
        let body = render_response(&[BoardOutcome {
            report,
            next_probe: Some(NextProbe {
                point: 0,
                name: "Vmid".into(),
                score: 0.25,
            }),
            trace: std::sync::Arc::new(flames_obs::Trace::new()),
        }]);
        let v = parse(&body).expect("valid JSON");
        let boards = v.member("boards").unwrap().as_array().unwrap();
        assert_eq!(boards.len(), 1);
        let b = &boards[0];
        assert!(!b
            .member("candidates")
            .unwrap()
            .as_array()
            .unwrap()
            .is_empty());
        assert_eq!(
            b.member("next_probe")
                .unwrap()
                .member("name")
                .unwrap()
                .as_str(),
            Some("Vmid")
        );
        let p0 = &b.member("points").unwrap().as_array().unwrap()[0];
        assert_eq!(p0.member("direction").unwrap().as_str(), Some("high"));
    }
}
