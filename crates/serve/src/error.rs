//! The service error taxonomy.
//!
//! Every non-200 response carries exactly one [`ErrorKind`] — the four
//! buckets a caller can act on — serialized in the body as
//! `{"error": {"kind": ..., "status": ..., "message": ...}}`. The HTTP
//! status refines the bucket (404 vs 405 vs 413 are all `bad_request`)
//! but the kind is the contract: retry on `overload` and `timeout`,
//! fix the request on `bad_request`, report `internal`.

use std::fmt;

/// The four actionable failure buckets of the diagnosis service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The request can never succeed as sent: malformed HTTP or JSON,
    /// unknown route/method/test point, truncated or oversize body.
    BadRequest,
    /// The service is saturated: the admission queue is full (429,
    /// with `Retry-After`) or shutting down (503). Retry later.
    Overload,
    /// A deadline expired: the client fed bytes too slowly (408) or
    /// the request waited in the queue past its own deadline (504).
    Timeout,
    /// A server-side invariant broke. Never the client's fault.
    Internal,
}

impl ErrorKind {
    /// The wire name of the bucket.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::Overload => "overload",
            ErrorKind::Timeout => "timeout",
            ErrorKind::Internal => "internal",
        }
    }
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A service error: taxonomy bucket, HTTP status, human message, and
/// optional extra headers (e.g. `Retry-After` on a 429).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeError {
    /// The taxonomy bucket.
    pub kind: ErrorKind,
    /// The HTTP status code refining the bucket.
    pub status: u16,
    /// Human-readable detail, serialized into the body.
    pub message: String,
    /// Extra response headers as `(name, value)` pairs.
    pub headers: Vec<(&'static str, String)>,
}

impl ServeError {
    /// A 400 `bad_request`.
    #[must_use]
    pub fn bad_request(message: impl Into<String>) -> Self {
        Self::with_status(ErrorKind::BadRequest, 400, message)
    }

    /// A `bad_request` under a more specific status (404, 405, 411,
    /// 413, ...).
    #[must_use]
    pub fn with_status(kind: ErrorKind, status: u16, message: impl Into<String>) -> Self {
        Self {
            kind,
            status,
            message: message.into(),
            headers: Vec::new(),
        }
    }

    /// A 429 `overload` with a `Retry-After` hint in seconds.
    #[must_use]
    pub fn overloaded(retry_after_secs: u64) -> Self {
        let mut e = Self::with_status(
            ErrorKind::Overload,
            429,
            "admission queue full, retry later",
        );
        e.headers
            .push(("Retry-After", retry_after_secs.to_string()));
        e
    }

    /// A 503 `overload`: the service is shutting down.
    #[must_use]
    pub fn shutting_down() -> Self {
        Self::with_status(ErrorKind::Overload, 503, "service shutting down")
    }

    /// A 408 `timeout`: the read deadline expired mid-request.
    #[must_use]
    pub fn read_timeout() -> Self {
        Self::with_status(
            ErrorKind::Timeout,
            408,
            "read deadline expired before the request completed",
        )
    }

    /// A 504 `timeout`: the per-request deadline expired in the queue.
    #[must_use]
    pub fn deadline_missed() -> Self {
        Self::with_status(
            ErrorKind::Timeout,
            504,
            "request deadline expired before diagnosis ran",
        )
    }

    /// A 500 `internal`.
    #[must_use]
    pub fn internal(message: impl Into<String>) -> Self {
        Self::with_status(ErrorKind::Internal, 500, message)
    }

    /// The canonical JSON body of this error.
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"error\":{{\"kind\":\"{}\",\"status\":{},\"message\":{}}}}}",
            self.kind,
            self.status,
            flames_obs::trace::escape_json(&self.message)
        )
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({}): {}", self.kind, self.status, self.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bodies_are_valid_json_with_the_taxonomy_fields() {
        for e in [
            ServeError::bad_request("no"),
            ServeError::overloaded(1),
            ServeError::shutting_down(),
            ServeError::read_timeout(),
            ServeError::deadline_missed(),
            ServeError::internal("boom \"quoted\""),
        ] {
            let v = flames_obs::json::parse(&e.to_json()).expect("valid JSON");
            let err = v.member("error").expect("error object");
            assert_eq!(err.member("kind").unwrap().as_str(), Some(e.kind.as_str()));
            assert_eq!(
                err.member("status").unwrap().as_f64(),
                Some(f64::from(e.status))
            );
            assert!(err.member("message").is_some());
        }
    }

    #[test]
    fn overload_carries_retry_after() {
        let e = ServeError::overloaded(3);
        assert_eq!(e.headers, vec![("Retry-After", "3".to_string())]);
        assert_eq!(e.status, 429);
    }
}
