//! A minimal blocking HTTP/1.1 client for tests, benches, and the
//! example — just enough protocol to drive `flames-serve` over a
//! keep-alive connection (and to misbehave on purpose in the
//! fault-injection suite).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A response as the client saw it on the wire.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code from the status line.
    pub status: u16,
    /// Headers in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body, exactly `Content-Length` bytes.
    pub body: String,
}

impl Response {
    /// First header with `name` (case-insensitive), if any.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// One keep-alive connection to a server.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects, with a 30-second response timeout.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        stream.set_nodelay(true)?;
        Ok(Self { stream })
    }

    /// Sends `POST /diagnose` with a JSON body and reads the response.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures and malformed responses.
    pub fn diagnose(&mut self, body: &str) -> std::io::Result<Response> {
        self.request("POST", "/diagnose", Some(body))
    }

    /// Sends a request (body optional) and reads one response.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures and malformed responses.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<Response> {
        let body = body.unwrap_or("");
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: flames\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(body.as_bytes())?;
        self.read_response()
    }

    /// Writes raw bytes verbatim (for fault-injection tests).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn send_raw(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.stream.write_all(bytes)
    }

    /// Half-closes the sending direction (for truncation tests: the
    /// server sees EOF mid-request but can still answer).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn shutdown_write(&mut self) -> std::io::Result<()> {
        self.stream.shutdown(std::net::Shutdown::Write)
    }

    /// Reads one response off the wire (after [`Client::send_raw`]).
    ///
    /// # Errors
    ///
    /// Fails on connection close, timeout, or unparseable framing.
    pub fn read_response(&mut self) -> std::io::Result<Response> {
        let mut buf = Vec::new();
        let header_end = loop {
            if let Some(pos) = find_blank_line(&buf) {
                break pos;
            }
            let mut chunk = [0u8; 4096];
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed before response head",
                ));
            }
            buf.extend_from_slice(&chunk[..n]);
        };
        let head = String::from_utf8(buf[..header_end].to_vec())
            .map_err(|_| invalid("non-UTF-8 response head"))?;
        let mut lines = head.split("\r\n");
        let status_line = lines.next().ok_or_else(|| invalid("empty response"))?;
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| invalid("bad status line"))?;
        let mut headers = Vec::new();
        let mut content_length = 0usize;
        for line in lines.filter(|l| !l.is_empty()) {
            let (name, value) = line.split_once(':').ok_or_else(|| invalid("bad header"))?;
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "content-length" {
                content_length = value.parse().map_err(|_| invalid("bad content-length"))?;
            }
            headers.push((name, value));
        }
        let mut body = buf[header_end + 4..].to_vec();
        while body.len() < content_length {
            let mut chunk = [0u8; 4096];
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-body",
                ));
            }
            body.extend_from_slice(&chunk[..n]);
        }
        body.truncate(content_length);
        let body = String::from_utf8(body).map_err(|_| invalid("non-UTF-8 body"))?;
        Ok(Response {
            status,
            headers,
            body,
        })
    }
}

fn find_blank_line(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn invalid(msg: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string())
}
