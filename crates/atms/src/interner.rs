//! Hash-consed environment interning — the [`EnvTable`].
//!
//! The ATMS engines test the same few environments against each other over
//! and over: every label merge, nogood installation and consistency check
//! is a stream of subset tests. Interning gives each distinct [`Env`] a
//! dense [`EnvId`] so that
//!
//! * equality is a single integer compare,
//! * the per-environment **subsumption-index metadata** — cardinality and
//!   64-bit word signature — is computed once and reused by every query
//!   (`A ⊆ B` requires `|A| ≤ |B|` and `sig(A) & !sig(B) == 0`, both
//!   constant-time), and
//! * node labels and nogood stores shrink to flat `(EnvId, degree)` pairs.

use crate::env::Env;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::collections::VecDeque;

/// Identifier of an interned environment in an [`EnvTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EnvId(u32);

impl EnvId {
    /// The raw table index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Clone)]
struct EnvMeta {
    env: Env,
    /// Cached cardinality (the length half of the subsumption index).
    len: u32,
    /// Cached word signature (the signature half of the subsumption index).
    sig: u64,
}

/// Subsumption-test accounting accumulated in plain (non-atomic)
/// fields. Hot loops keep one on the stack and [`SubsetStats::flush`]
/// it to the global counters once per loop.
#[derive(Debug, Clone, Copy, Default)]
pub struct SubsetStats {
    /// Subset tests performed (id-equal fast hits excluded).
    pub checks: u64,
    /// Tests answered `false` by the length/signature prefilter alone.
    pub prefilter_rejects: u64,
}

impl SubsetStats {
    /// Adds the accumulated counts to the global metrics (one atomic
    /// add per field, no-op when observability is compiled out).
    pub fn flush(&self) {
        let m = flames_obs::metrics();
        m.subsumption_checks.add(self.checks);
        m.prefilter_rejects.add(self.prefilter_rejects);
    }
}

/// A hash-consing table mapping environments to dense [`EnvId`]s, with the
/// per-environment subsumption-index metadata cached at intern time.
///
/// # Example
///
/// ```
/// use flames_atms::{Env, EnvTable};
///
/// let mut table = EnvTable::new();
/// let ab = table.intern(&Env::from_ids([0, 1]));
/// let ab2 = table.intern(&Env::from_ids([1, 0]));
/// assert_eq!(ab, ab2); // hash-consed: equal sets share an id
/// let abc = table.intern(&Env::from_ids([0, 1, 2]));
/// assert!(table.is_subset(ab, abc));
/// assert!(!table.is_subset(abc, ab));
/// ```
#[derive(Debug, Clone, Default)]
pub struct EnvTable {
    envs: Vec<EnvMeta>,
    index: HashMap<Env, EnvId>,
}

impl EnvTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct environments interned so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.envs.len()
    }

    /// True when nothing has been interned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.envs.is_empty()
    }

    /// Interns an environment, returning its dense id (existing ids are
    /// reused — the clone happens only on first sight).
    pub fn intern(&mut self, env: &Env) -> EnvId {
        if let Some(&id) = self.index.get(env) {
            flames_obs::metrics().env_intern_hits.incr();
            return id;
        }
        flames_obs::metrics().env_intern_misses.incr();
        let id = EnvId(u32::try_from(self.envs.len()).expect("< 2^32 environments"));
        self.envs.push(EnvMeta {
            env: env.clone(),
            len: u32::try_from(env.len()).expect("fits"),
            sig: env.signature(),
        });
        self.index.insert(env.clone(), id);
        id
    }

    /// Interns an owned environment without cloning on first sight.
    pub fn intern_owned(&mut self, env: Env) -> EnvId {
        match self.index.entry(env) {
            Entry::Occupied(o) => {
                flames_obs::metrics().env_intern_hits.incr();
                *o.get()
            }
            Entry::Vacant(v) => {
                flames_obs::metrics().env_intern_misses.incr();
                let id = EnvId(u32::try_from(self.envs.len()).expect("< 2^32 environments"));
                self.envs.push(EnvMeta {
                    env: v.key().clone(),
                    len: u32::try_from(v.key().len()).expect("fits"),
                    sig: v.key().signature(),
                });
                v.insert(id);
                id
            }
        }
    }

    /// The environment an id stands for.
    ///
    /// # Panics
    ///
    /// Panics for an id from a different table.
    #[must_use]
    pub fn env(&self, id: EnvId) -> &Env {
        &self.envs[id.index()].env
    }

    /// Cached cardinality of an interned environment.
    #[must_use]
    pub fn card(&self, id: EnvId) -> usize {
        self.envs[id.index()].len as usize
    }

    /// Cached word signature of an interned environment.
    #[must_use]
    pub fn sig(&self, id: EnvId) -> u64 {
        self.envs[id.index()].sig
    }

    /// Subset test between interned environments: id equality, then the
    /// length/signature prefilter, then the exact word-wise test.
    #[must_use]
    pub fn is_subset(&self, a: EnvId, b: EnvId) -> bool {
        let mut stats = SubsetStats::default();
        let result = self.is_subset_counted(a, b, &mut stats);
        stats.flush();
        result
    }

    /// [`EnvTable::is_subset`] with check/prefilter accounting
    /// accumulated into plain locals. Hot loops pass one `stats` for the
    /// whole loop and flush it to the global counters once — an atomic
    /// increment per *subset test* costs the kernel double-digit
    /// percents on the bench workloads.
    #[must_use]
    pub fn is_subset_counted(&self, a: EnvId, b: EnvId, stats: &mut SubsetStats) -> bool {
        if a == b {
            return true;
        }
        stats.checks += 1;
        let (ma, mb) = (&self.envs[a.index()], &self.envs[b.index()]);
        if ma.len > mb.len || ma.sig & !mb.sig != 0 {
            stats.prefilter_rejects += 1;
            return false;
        }
        ma.env.is_subset_of(&mb.env)
    }

    /// Prefiltered subset test of an interned environment against a raw
    /// candidate with a precomputed signature.
    #[must_use]
    pub fn is_subset_of_raw(&self, a: EnvId, env: &Env, sig: u64) -> bool {
        let ma = &self.envs[a.index()];
        ma.sig & !sig == 0 && ma.env.is_subset_of(env)
    }
}

/// A FIFO work queue over dense `u32` ids with a word-packed membership
/// mask, replacing `O(n)` `VecDeque::contains` scans with one bit probe.
#[derive(Debug, Clone, Default)]
pub(crate) struct DirtyQueue {
    queue: VecDeque<u32>,
    member: Vec<u64>,
}

impl DirtyQueue {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Enqueues `id` unless it is already pending.
    pub(crate) fn push(&mut self, id: u32) {
        let (word, bit) = ((id / 64) as usize, id % 64);
        if self.member.len() <= word {
            self.member.resize(word + 1, 0);
        }
        if self.member[word] & (1u64 << bit) == 0 {
            self.member[word] |= 1u64 << bit;
            self.queue.push_back(id);
        }
    }

    /// Pops the oldest pending id (which may immediately be re-queued by
    /// further label changes, as in the original scan-based queue).
    pub(crate) fn pop(&mut self) -> Option<u32> {
        let id = self.queue.pop_front()?;
        let (word, bit) = ((id / 64) as usize, id % 64);
        self.member[word] &= !(1u64 << bit);
        Some(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let mut t = EnvTable::new();
        let a = t.intern(&Env::from_ids([1, 2]));
        let b = t.intern(&Env::from_ids([2, 1]));
        let c = t.intern(&Env::from_ids([3]));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(t.len(), 2);
        assert_eq!(t.env(a), &Env::from_ids([1, 2]));
        assert_eq!(t.card(a), 2);
        assert_eq!(t.card(c), 1);
        let d = t.intern_owned(Env::from_ids([1, 2]));
        assert_eq!(d, a);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn subset_queries_use_metadata() {
        let mut t = EnvTable::new();
        let ab = t.intern(&Env::from_ids([0, 1]));
        let abc = t.intern(&Env::from_ids([0, 1, 2]));
        let cd = t.intern(&Env::from_ids([2, 3]));
        assert!(t.is_subset(ab, ab));
        assert!(t.is_subset(ab, abc));
        assert!(!t.is_subset(abc, ab));
        assert!(!t.is_subset(cd, abc));
        let probe = Env::from_ids([0, 1, 2, 3]);
        let sig = probe.signature();
        assert!(t.is_subset_of_raw(cd, &probe, sig));
        assert!(t.is_subset_of_raw(ab, &probe, sig));
    }

    #[test]
    fn dirty_queue_deduplicates_while_pending() {
        let mut q = DirtyQueue::new();
        q.push(3);
        q.push(100);
        q.push(3); // duplicate while pending: ignored
        assert_eq!(q.pop(), Some(3));
        q.push(3); // no longer pending: accepted again
        assert_eq!(q.pop(), Some(100));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None);
    }
}
