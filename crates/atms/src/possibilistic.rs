//! Possibilistic propositional clauses — the paper's §6.1.3 claim that
//! "in this fuzzy-ATMS clauses are not reduced to Horn's clauses (as in
//! \[13\]). Thus it allows the expert to add rules of faulty estimations or
//! to build component's fault models with certainty degrees."
//!
//! This module implements the clause layer of the paper's ref \[13\]
//! (Dubois, Lang, Prade — *Gestion d'hypothèses en logique possibiliste*):
//! arbitrary propositional clauses weighted by a **necessity degree**,
//! with possibilistic resolution
//!
//! ```text
//! (c₁ ∨ ℓ, α)  and  (c₂ ∨ ¬ℓ, β)   ⊢   (c₁ ∨ c₂, min(α, β))
//! ```
//!
//! Clauses are stored as a **pair of variable bitsets** — positive and
//! negative occurrence sets backed by the same inline-word [`Env`] the
//! ATMS kernel uses — so subsumption is two word-wise subset tests,
//! tautology checking is an intersection, and resolution is a handful of
//! bitops instead of sorted-list merges.
//!
//! The two standard queries are supported:
//!
//! * [`PossibilisticBase::inconsistency_degree`] — the strongest
//!   necessity at which the empty clause is derivable (the graded analog
//!   of a nogood);
//! * [`PossibilisticBase::entailment_degree`] — the necessity with which
//!   the base entails a literal (refutation: assert the negation at
//!   necessity 1 and measure the inconsistency).
//!
//! The FLAMES engine uses Horn-shaped justifications for speed; this
//! layer is where non-Horn expert knowledge ("the diode is open **or**
//! shorted, certainty 0.8") is compiled down to graded nogoods.

use crate::assumptions::Assumption;
use crate::env::Env;
use crate::error::AtmsError;
use crate::Result;
use std::collections::HashMap;
use std::fmt;

/// A propositional literal: a variable index with a polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Literal {
    var: u32,
    positive: bool,
}

impl Literal {
    /// The positive literal of a variable.
    #[must_use]
    pub fn pos(var: u32) -> Self {
        Self {
            var,
            positive: true,
        }
    }

    /// The negative literal of a variable.
    #[must_use]
    pub fn neg(var: u32) -> Self {
        Self {
            var,
            positive: false,
        }
    }

    /// The underlying variable index.
    #[must_use]
    pub fn var(self) -> u32 {
        self.var
    }

    /// The literal's polarity.
    #[must_use]
    pub fn is_positive(self) -> bool {
        self.positive
    }

    /// The complementary literal.
    #[must_use]
    pub fn negated(self) -> Self {
        Self {
            var: self.var,
            positive: !self.positive,
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.positive {
            write!(f, "x{}", self.var)
        } else {
            write!(f, "¬x{}", self.var)
        }
    }
}

/// A weighted clause `(ℓ₁ ∨ … ∨ ℓₖ, necessity)`, stored as positive and
/// negative variable bitsets.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedClause {
    /// Variables occurring positively.
    pos: Env,
    /// Variables occurring negatively.
    neg: Env,
    /// Necessity degree in `(0, 1]`.
    necessity: f64,
}

impl WeightedClause {
    /// Builds a clause (duplicate literals collapse in the bitsets).
    ///
    /// # Errors
    ///
    /// Returns [`AtmsError::InvalidDegree`] for a necessity outside
    /// `(0, 1]`.
    pub fn new(literals: impl IntoIterator<Item = Literal>, necessity: f64) -> Result<Self> {
        if !(necessity > 0.0 && necessity <= 1.0) {
            return Err(AtmsError::invalid_degree(necessity));
        }
        let mut pos = Env::empty();
        let mut neg = Env::empty();
        for l in literals {
            if l.positive {
                pos.insert(Assumption(l.var));
            } else {
                neg.insert(Assumption(l.var));
            }
        }
        Ok(Self {
            pos,
            neg,
            necessity,
        })
    }

    /// The clause's literals, sorted by variable with `¬x` before `x`.
    #[must_use]
    pub fn literals(&self) -> Vec<Literal> {
        let mut literals: Vec<Literal> = self
            .neg
            .iter()
            .map(|a| Literal::neg(a.index() as u32))
            .chain(self.pos.iter().map(|a| Literal::pos(a.index() as u32)))
            .collect();
        literals.sort();
        literals
    }

    /// The necessity degree.
    #[must_use]
    pub fn necessity(&self) -> f64 {
        self.necessity
    }

    /// True for the empty clause (⊥).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pos.is_empty() && self.neg.is_empty()
    }

    /// True if the clause is a tautology (contains `ℓ` and `¬ℓ`).
    #[must_use]
    pub fn is_tautology(&self) -> bool {
        self.pos.intersects(&self.neg)
    }

    /// True if `self` subsumes `other`: a subset clause with at least the
    /// same necessity says strictly more.
    #[must_use]
    pub fn subsumes(&self, other: &Self) -> bool {
        self.necessity >= other.necessity
            && self.pos.is_subset_of(&other.pos)
            && self.neg.is_subset_of(&other.neg)
    }

    /// Possibilistic resolution on the lowest-indexed complementary
    /// variable, if any; both polarities of the pivot are removed from the
    /// resolvent (tautological resolvents are suppressed).
    #[must_use]
    pub fn resolve(&self, other: &Self) -> Option<WeightedClause> {
        let pivot = [
            self.neg.intersection(&other.pos).first(),
            self.pos.intersection(&other.neg).first(),
        ]
        .into_iter()
        .flatten()
        .min()?;
        let resolvent = WeightedClause {
            pos: self.pos.union(&other.pos).without(pivot),
            neg: self.neg.union(&other.neg).without(pivot),
            necessity: self.necessity.min(other.necessity),
        };
        (!resolvent.is_tautology()).then_some(resolvent)
    }
}

impl fmt::Display for WeightedClause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            write!(f, "(⊥, {:.2})", self.necessity)
        } else {
            let parts: Vec<String> = self.literals().iter().map(Literal::to_string).collect();
            write!(f, "({}, {:.2})", parts.join(" ∨ "), self.necessity)
        }
    }
}

/// A base of weighted clauses with graded queries.
///
/// # Example
///
/// The expert's non-Horn fault model: "if the diode is faulty it is open
/// or shorted" at certainty 0.8, measurements rule out both at 0.9 — so
/// "the diode is faulty" is inconsistent with the observations at 0.8:
///
/// ```
/// use flames_atms::possibilistic::{Literal, PossibilisticBase};
///
/// # fn main() -> Result<(), flames_atms::AtmsError> {
/// let mut base = PossibilisticBase::new();
/// let faulty = base.variable("faulty(d1)");
/// let open = base.variable("open(d1)");
/// let short = base.variable("short(d1)");
/// base.add_clause([Literal::neg(faulty), Literal::pos(open), Literal::pos(short)], 0.8)?;
/// base.add_clause([Literal::neg(open)], 0.9)?;  // forward drop observed
/// base.add_clause([Literal::neg(short)], 0.9)?; // voltage across it observed
/// let degree = base.entailment_degree(Literal::neg(faulty));
/// assert!((degree - 0.8).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct PossibilisticBase {
    clauses: Vec<WeightedClause>,
    names: Vec<String>,
    by_name: HashMap<String, u32>,
}

/// Saturation budget: resolution rounds × clause-store size are bounded
/// to keep worst-case queries from exploding (the bases FLAMES builds are
/// small expert rule sets).
const MAX_CLAUSES: usize = 4096;

impl PossibilisticBase {
    /// Creates an empty base.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a named propositional variable.
    pub fn variable(&mut self, name: impl AsRef<str>) -> u32 {
        let name = name.as_ref();
        if let Some(&v) = self.by_name.get(name) {
            return v;
        }
        let v = u32::try_from(self.names.len()).expect("< 2^32 variables");
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), v);
        v
    }

    /// The name of a variable, if interned through [`Self::variable`].
    #[must_use]
    pub fn variable_name(&self, var: u32) -> Option<&str> {
        self.names.get(var as usize).map(String::as_str)
    }

    /// Adds a weighted clause (tautologies are ignored; subsumed clauses
    /// are dropped).
    ///
    /// # Errors
    ///
    /// Returns [`AtmsError::InvalidDegree`] for a necessity outside
    /// `(0, 1]`.
    pub fn add_clause(
        &mut self,
        literals: impl IntoIterator<Item = Literal>,
        necessity: f64,
    ) -> Result<()> {
        let clause = WeightedClause::new(literals, necessity)?;
        if clause.is_tautology() {
            return Ok(());
        }
        self.insert(clause);
        Ok(())
    }

    /// The current clauses (subsumption-minimal).
    #[must_use]
    pub fn clauses(&self) -> &[WeightedClause] {
        &self.clauses
    }

    /// The **inconsistency degree** of the base: the highest necessity at
    /// which the empty clause is derivable by possibilistic resolution
    /// (0 when the base is consistent).
    #[must_use]
    pub fn inconsistency_degree(&self) -> f64 {
        let mut store: Vec<WeightedClause> = self.clauses.clone();
        let mut best = store
            .iter()
            .filter(|c| c.is_empty())
            .map(WeightedClause::necessity)
            .fold(0.0f64, f64::max);
        let mut frontier = 0usize;
        while frontier < store.len() && store.len() < MAX_CLAUSES {
            let current = store[frontier].clone();
            frontier += 1;
            if current.necessity <= best {
                continue; // cannot improve the bound
            }
            let mut new_clauses = Vec::new();
            for other in &store[..frontier] {
                if other.necessity <= best {
                    continue;
                }
                if let Some(resolvent) = current.resolve(other) {
                    if resolvent.is_empty() {
                        best = best.max(resolvent.necessity);
                    } else if resolvent.necessity > best {
                        new_clauses.push(resolvent);
                    }
                }
            }
            for c in new_clauses {
                if store.len() >= MAX_CLAUSES {
                    break;
                }
                if !store.iter().any(|s| s.subsumes(&c)) {
                    store.push(c);
                }
            }
        }
        best
    }

    /// The degree to which the base **entails** a literal: by refutation,
    /// the inconsistency degree after asserting the literal's negation
    /// with full necessity.
    #[must_use]
    pub fn entailment_degree(&self, literal: Literal) -> f64 {
        let mut probe = self.clone();
        probe.insert(WeightedClause::new([literal.negated()], 1.0).expect("degree 1 is valid"));
        probe.inconsistency_degree()
    }

    fn insert(&mut self, clause: WeightedClause) {
        if self.clauses.iter().any(|c| c.subsumes(&clause)) {
            return;
        }
        self.clauses.retain(|c| !clause.subsumes(c));
        self.clauses.push(clause);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: u32, positive: bool) -> Literal {
        if positive {
            Literal::pos(v)
        } else {
            Literal::neg(v)
        }
    }

    #[test]
    fn literal_basics() {
        let l = Literal::pos(3);
        assert_eq!(l.var(), 3);
        assert!(l.is_positive());
        assert_eq!(l.negated(), Literal::neg(3));
        assert_eq!(l.negated().negated(), l);
        assert_eq!(format!("{l}"), "x3");
        assert_eq!(format!("{}", l.negated()), "¬x3");
    }

    #[test]
    fn clause_normalization_and_display() {
        let c =
            WeightedClause::new([Literal::pos(2), Literal::pos(1), Literal::pos(2)], 0.7).unwrap();
        assert_eq!(c.literals().len(), 2);
        assert_eq!(format!("{c}"), "(x1 ∨ x2, 0.70)");
        assert!(WeightedClause::new([], 1.5).is_err());
        assert!(WeightedClause::new([], 0.0).is_err());
        let empty = WeightedClause::new([], 0.4).unwrap();
        assert!(empty.is_empty());
        assert_eq!(format!("{empty}"), "(⊥, 0.40)");
    }

    #[test]
    fn tautology_detection() {
        let t = WeightedClause::new([Literal::pos(1), Literal::neg(1)], 0.9).unwrap();
        assert!(t.is_tautology());
        let mut base = PossibilisticBase::new();
        base.add_clause([Literal::pos(1), Literal::neg(1)], 0.9)
            .unwrap();
        assert!(base.clauses().is_empty());
    }

    #[test]
    fn resolution_takes_min_necessity() {
        let a = WeightedClause::new([Literal::pos(1), Literal::pos(2)], 0.8).unwrap();
        let b = WeightedClause::new([Literal::neg(2), Literal::pos(3)], 0.5).unwrap();
        let r = a.resolve(&b).unwrap();
        assert_eq!(r.literals(), &[Literal::pos(1), Literal::pos(3)]);
        assert!((r.necessity() - 0.5).abs() < 1e-12);
        // No complementary pair: no resolvent.
        let c = WeightedClause::new([Literal::pos(4)], 0.9).unwrap();
        assert!(a.resolve(&c).is_none());
    }

    #[test]
    fn resolution_removes_both_polarities_of_pivot() {
        // (x1 ∨ ¬x2) and (x2 ∨ ¬x1): resolving on x1 would leave the
        // tautological (x2 ∨ ¬x2) — suppressed.
        let a = WeightedClause::new([Literal::pos(1), Literal::neg(2)], 0.8).unwrap();
        let b = WeightedClause::new([Literal::pos(2), Literal::neg(1)], 0.7).unwrap();
        assert!(a.resolve(&b).is_none());
    }

    #[test]
    fn subsumption() {
        let small = WeightedClause::new([Literal::pos(1)], 0.8).unwrap();
        let big = WeightedClause::new([Literal::pos(1), Literal::pos(2)], 0.6).unwrap();
        assert!(small.subsumes(&big));
        assert!(!big.subsumes(&small));
        // Equal clause with lower necessity is subsumed.
        let weak = WeightedClause::new([Literal::pos(1)], 0.3).unwrap();
        assert!(small.subsumes(&weak));
        // Polarity matters: {x1} does not subsume {¬x1, x2}.
        let negated = WeightedClause::new([Literal::neg(1), Literal::pos(2)], 0.6).unwrap();
        assert!(!small.subsumes(&negated));
    }

    #[test]
    fn consistent_base_has_zero_inconsistency() {
        let mut base = PossibilisticBase::new();
        base.add_clause([Literal::pos(0), Literal::pos(1)], 0.9)
            .unwrap();
        base.add_clause([Literal::neg(0), Literal::pos(2)], 0.8)
            .unwrap();
        assert_eq!(base.inconsistency_degree(), 0.0);
    }

    #[test]
    fn direct_contradiction_grades_by_weakest_link() {
        let mut base = PossibilisticBase::new();
        base.add_clause([Literal::pos(0)], 0.9).unwrap();
        base.add_clause([Literal::neg(0)], 0.6).unwrap();
        assert!((base.inconsistency_degree() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn chained_refutation() {
        // x0 → x1 → x2, x0 asserted, ¬x2 asserted: inconsistency through
        // the chain at the weakest necessity.
        let mut base = PossibilisticBase::new();
        base.add_clause([Literal::neg(0), Literal::pos(1)], 0.7)
            .unwrap();
        base.add_clause([Literal::neg(1), Literal::pos(2)], 0.9)
            .unwrap();
        base.add_clause([Literal::pos(0)], 1.0).unwrap();
        base.add_clause([Literal::neg(2)], 1.0).unwrap();
        assert!((base.inconsistency_degree() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn entailment_by_refutation() {
        let mut base = PossibilisticBase::new();
        base.add_clause([Literal::neg(0), Literal::pos(1)], 0.8)
            .unwrap();
        base.add_clause([Literal::pos(0)], 0.6).unwrap();
        // N(x1) = min(0.8, 0.6) = 0.6; N(x0) = 0.6; N(¬x1) = 0.
        assert!((base.entailment_degree(Literal::pos(1)) - 0.6).abs() < 1e-12);
        assert!((base.entailment_degree(Literal::pos(0)) - 0.6).abs() < 1e-12);
        assert_eq!(base.entailment_degree(Literal::neg(1)), 0.0);
    }

    #[test]
    fn non_horn_fault_model_example() {
        // The doc example, spelled out: faulty → open ∨ short (0.8),
        // observations refute open (0.9) and short (0.9).
        let mut base = PossibilisticBase::new();
        let faulty = base.variable("faulty(d1)");
        let open = base.variable("open(d1)");
        let short = base.variable("short(d1)");
        base.add_clause([lit(faulty, false), lit(open, true), lit(short, true)], 0.8)
            .unwrap();
        base.add_clause([lit(open, false)], 0.9).unwrap();
        base.add_clause([lit(short, false)], 0.9).unwrap();
        assert_eq!(base.inconsistency_degree(), 0.0);
        let not_faulty = base.entailment_degree(lit(faulty, false));
        assert!((not_faulty - 0.8).abs() < 1e-9);
        assert_eq!(base.variable_name(faulty), Some("faulty(d1)"));
        assert_eq!(base.variable_name(99), None);
    }

    #[test]
    fn inconsistency_monotone_under_additions() {
        let mut base = PossibilisticBase::new();
        base.add_clause([Literal::pos(0)], 0.5).unwrap();
        let before = base.inconsistency_degree();
        base.add_clause([Literal::neg(0)], 0.3).unwrap();
        let mid = base.inconsistency_degree();
        base.add_clause([Literal::neg(0)], 0.9).unwrap();
        let after = base.inconsistency_degree();
        assert!(before <= mid && mid <= after);
        assert!((after - 0.5).abs() < 1e-12);
    }

    #[test]
    fn wide_clauses_use_spilled_bitsets() {
        // Variables beyond the inline bitset capacity exercise the spill
        // representation through the whole clause pipeline.
        let mut base = PossibilisticBase::new();
        base.add_clause([Literal::neg(200), Literal::pos(300)], 0.7)
            .unwrap();
        base.add_clause([Literal::pos(200)], 1.0).unwrap();
        base.add_clause([Literal::neg(300)], 1.0).unwrap();
        assert!((base.inconsistency_degree() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn variable_interning_is_stable() {
        let mut base = PossibilisticBase::new();
        let a = base.variable("a");
        let b = base.variable("b");
        assert_ne!(a, b);
        assert_eq!(base.variable("a"), a);
    }
}
