use crate::assumptions::Assumption;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Number of `u64` words stored inline (no heap allocation) — enough for
/// 128 assumptions, which covers every circuit in the paper and then some.
const INLINE_WORDS: usize = 2;

/// Bits representable without spilling to the heap.
const INLINE_BITS: u32 = (INLINE_WORDS as u32) * 64;

/// An *environment*: a set of assumptions, stored as an inline bitset.
///
/// Environments are the currency of the ATMS — node labels are sets of
/// environments, conflicts are environments (nogoods), and diagnoses are
/// environments (hitting sets of the nogoods). They are small in practice
/// (a handful of component-correctness assumptions with dense ids), so the
/// representation is a fixed pair of `u64` words held inline — subset,
/// union and intersection tests are two word-wise bit operations, and
/// cloning never allocates. Sets touching assumption ids ≥ 128 spill to a
/// heap vector transparently.
///
/// The observable semantics (construction, iteration order, subset and
/// ordering relations) are identical to the earlier sorted-`Vec<u32>`
/// representation; only the cost model changed.
///
/// # Example
///
/// ```
/// use flames_atms::Env;
///
/// let ab = Env::from_ids([0, 1]);
/// let abc = Env::from_ids([2, 1, 0]); // order and duplicates are normalized
/// assert!(ab.is_subset_of(&abc));
/// assert_eq!(ab.union(&abc), abc);
/// ```
#[derive(Clone)]
enum Repr {
    /// All member ids < 128: two words, no allocation.
    Inline([u64; INLINE_WORDS]),
    /// Some member id ≥ 128. Invariant: `len() > INLINE_WORDS` and the
    /// last word is non-zero, so every set has exactly one representation.
    Spill(Vec<u64>),
}

/// A set of assumptions backed by an inline bitset (see the module-level
/// invariants on [`Repr`]).
#[derive(Clone)]
pub struct Env {
    repr: Repr,
}

impl Default for Env {
    fn default() -> Self {
        Self {
            repr: Repr::Inline([0; INLINE_WORDS]),
        }
    }
}

impl Env {
    /// The empty environment (holds universally).
    #[must_use]
    pub fn empty() -> Self {
        Self::default()
    }

    /// A singleton environment.
    #[must_use]
    pub fn singleton(a: Assumption) -> Self {
        let mut env = Self::empty();
        env.insert(a);
        env
    }

    /// Builds an environment from raw assumption ids (order and duplicates
    /// are irrelevant).
    #[must_use]
    pub fn from_ids(ids: impl IntoIterator<Item = u32>) -> Self {
        let mut env = Self::empty();
        for id in ids {
            env.insert(Assumption(id));
        }
        env
    }

    /// Builds an environment from assumptions.
    #[must_use]
    pub fn from_assumptions(assumptions: impl IntoIterator<Item = Assumption>) -> Self {
        let mut env = Self::empty();
        for a in assumptions {
            env.insert(a);
        }
        env
    }

    /// The backing words (canonical: inline reprs are exactly
    /// `INLINE_WORDS` long, spills are longer with a non-zero last word).
    #[inline]
    fn words(&self) -> &[u64] {
        match &self.repr {
            Repr::Inline(w) => w,
            Repr::Spill(v) => v,
        }
    }

    /// A one-word *pedigree signature*: the OR of the backing bitset
    /// words. `a.word_signature() & !b.word_signature() != 0` proves
    /// `a ⊄ b` without touching the words again — the struct-of-arrays
    /// value stores in `flames-core` keep this per entry and prefilter
    /// their subset-based dominance tests with it. (The converse does not
    /// hold: equal signatures say nothing, so a hit still runs
    /// [`Env::is_subset_of`].)
    #[must_use]
    pub fn word_signature(&self) -> u64 {
        self.words().iter().fold(0, |acc, w| acc | w)
    }

    /// Re-establishes the canonical representation after a mutation that
    /// may have cleared high bits.
    fn normalize(&mut self) {
        if let Repr::Spill(v) = &mut self.repr {
            while v.len() > INLINE_WORDS && *v.last().expect("non-empty") == 0 {
                v.pop();
            }
            if v.len() <= INLINE_WORDS {
                let mut w = [0u64; INLINE_WORDS];
                w[..v.len()].copy_from_slice(v);
                self.repr = Repr::Inline(w);
            }
        }
    }

    /// Number of assumptions in the environment.
    #[must_use]
    pub fn len(&self) -> usize {
        self.words().iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True for the empty environment.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words().iter().all(|&w| w == 0)
    }

    /// True if the environment contains `a`.
    #[must_use]
    pub fn contains(&self, a: Assumption) -> bool {
        let (word, bit) = (a.0 / 64, a.0 % 64);
        self.words()
            .get(word as usize)
            .is_some_and(|w| w & (1u64 << bit) != 0)
    }

    /// Adds assumption `a` in place; returns whether the set changed.
    pub fn insert(&mut self, a: Assumption) -> bool {
        let (word, bit) = ((a.0 / 64) as usize, a.0 % 64);
        if a.0 >= INLINE_BITS {
            if let Repr::Inline(w) = &self.repr {
                let mut v = vec![0u64; word + 1];
                v[..INLINE_WORDS].copy_from_slice(w);
                self.repr = Repr::Spill(v);
            }
        }
        match &mut self.repr {
            Repr::Inline(w) => {
                let had = w[word] & (1u64 << bit) != 0;
                w[word] |= 1u64 << bit;
                !had
            }
            Repr::Spill(v) => {
                if v.len() <= word {
                    v.resize(word + 1, 0);
                }
                let had = v[word] & (1u64 << bit) != 0;
                v[word] |= 1u64 << bit;
                !had
            }
        }
    }

    /// Iterates over the assumptions in ascending id order.
    #[must_use]
    pub fn iter(&self) -> EnvIter<'_> {
        EnvIter {
            words: self.words(),
            word_idx: 0,
            current: self.words().first().copied().unwrap_or(0),
        }
    }

    /// The smallest assumption in the environment, if any.
    #[must_use]
    pub fn first(&self) -> Option<Assumption> {
        for (i, &w) in self.words().iter().enumerate() {
            if w != 0 {
                return Some(Assumption(i as u32 * 64 + w.trailing_zeros()));
            }
        }
        None
    }

    /// Set union (the environment of a conjunction of antecedents).
    #[must_use]
    pub fn union(&self, other: &Self) -> Self {
        let (a, b) = (self.words(), other.words());
        if a.len() <= INLINE_WORDS && b.len() <= INLINE_WORDS {
            let mut w = [0u64; INLINE_WORDS];
            for (i, slot) in w.iter_mut().enumerate() {
                *slot = a.get(i).copied().unwrap_or(0) | b.get(i).copied().unwrap_or(0);
            }
            return Self {
                repr: Repr::Inline(w),
            };
        }
        let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
        let mut v = long.to_vec();
        for (slot, &w) in v.iter_mut().zip(short) {
            *slot |= w;
        }
        // Canonical: `long`'s last word was non-zero, so no trim is needed.
        Self {
            repr: Repr::Spill(v),
        }
    }

    /// In-place union; returns whether `self` gained any assumption.
    pub fn union_with(&mut self, other: &Self) -> bool {
        let b = other.words();
        if b.len() > self.words().len() {
            // Delegate to the allocating path for the rare spill growth.
            let merged = self.union(other);
            let changed = merged != *self;
            *self = merged;
            return changed;
        }
        let mut changed = false;
        match &mut self.repr {
            Repr::Inline(w) => {
                for (slot, &bw) in w.iter_mut().zip(b) {
                    changed |= bw & !*slot != 0;
                    *slot |= bw;
                }
            }
            Repr::Spill(v) => {
                for (slot, &bw) in v.iter_mut().zip(b) {
                    changed |= bw & !*slot != 0;
                    *slot |= bw;
                }
            }
        }
        changed
    }

    /// Set intersection.
    #[must_use]
    pub fn intersection(&self, other: &Self) -> Self {
        let (a, b) = (self.words(), other.words());
        let mut w = [0u64; INLINE_WORDS];
        if a.len() <= INLINE_WORDS || b.len() <= INLINE_WORDS {
            for (i, slot) in w.iter_mut().enumerate() {
                *slot = a.get(i).copied().unwrap_or(0) & b.get(i).copied().unwrap_or(0);
            }
            return Self {
                repr: Repr::Inline(w),
            };
        }
        let mut v: Vec<u64> = a.iter().zip(b).map(|(&x, &y)| x & y).collect();
        let mut env = Self {
            repr: Repr::Spill(std::mem::take(&mut v)),
        };
        env.normalize();
        env
    }

    /// Subset test (`self ⊆ other`): word-wise `self & !other == 0`.
    #[must_use]
    pub fn is_subset_of(&self, other: &Self) -> bool {
        let (a, b) = (self.words(), other.words());
        if a.len() > b.len() {
            // Canonical spill ⇒ `a` has a set bit beyond `b`'s words.
            // (Inline vs inline is always equal-length.)
            if a[b.len()..].iter().any(|&w| w != 0) {
                return false;
            }
        }
        a.iter().zip(b).all(|(&x, &y)| x & !y == 0)
    }

    /// True when the two environments share at least one assumption — i.e.
    /// `self` *hits* the conflict set `other`.
    #[must_use]
    pub fn intersects(&self, other: &Self) -> bool {
        self.words()
            .iter()
            .zip(other.words())
            .any(|(&x, &y)| x & y != 0)
    }

    /// Returns `self` with assumption `a` added.
    #[must_use]
    pub fn with(&self, a: Assumption) -> Self {
        let mut env = self.clone();
        env.insert(a);
        env
    }

    /// Returns `self` with assumption `a` removed (if present).
    #[must_use]
    pub fn without(&self, a: Assumption) -> Self {
        let mut env = self.clone();
        let (word, bit) = ((a.0 / 64) as usize, a.0 % 64);
        match &mut env.repr {
            Repr::Inline(w) => {
                if word < INLINE_WORDS {
                    w[word] &= !(1u64 << bit);
                }
            }
            Repr::Spill(v) => {
                if word < v.len() {
                    v[word] &= !(1u64 << bit);
                }
            }
        }
        env.normalize();
        env
    }

    /// A 64-bit summary with the property `A ⊆ B ⇒ sig(A) & !sig(B) == 0`
    /// (each member id sets bit `id % 64`). Used as a constant-time
    /// prefilter in front of exact subset tests — the word-signature half
    /// of the subsumption index.
    #[must_use]
    pub fn signature(&self) -> u64 {
        self.words().iter().fold(0, |acc, &w| acc | w)
    }
}

impl PartialEq for Env {
    fn eq(&self, other: &Self) -> bool {
        // Canonical representations make word-slice equality exact.
        self.words() == other.words()
    }
}

impl Eq for Env {}

impl Hash for Env {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.words().hash(state);
    }
}

impl PartialOrd for Env {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Env {
    /// Lexicographic over the ascending member-id sequences — the same
    /// total order the sorted-vector representation derived, preserved so
    /// sorted outputs (diagnosis lists, test expectations) are unchanged.
    fn cmp(&self, other: &Self) -> Ordering {
        self.iter().cmp(other.iter())
    }
}

impl fmt::Debug for Env {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Env{self}")
    }
}

impl FromIterator<Assumption> for Env {
    fn from_iter<I: IntoIterator<Item = Assumption>>(iter: I) -> Self {
        Self::from_assumptions(iter)
    }
}

/// Iterator over the assumptions of an [`Env`] in ascending id order.
#[derive(Debug, Clone)]
pub struct EnvIter<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for EnvIter<'_> {
    type Item = Assumption;

    fn next(&mut self) -> Option<Assumption> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros();
        self.current &= self.current - 1; // clear lowest set bit
        Some(Assumption(self.word_idx as u32 * 64 + bit))
    }
}

impl<'a> IntoIterator for &'a Env {
    type Item = Assumption;
    type IntoIter = EnvIter<'a>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl fmt::Display for Env {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (k, a) in self.iter().enumerate() {
            if k > 0 {
                write!(f, ", ")?;
            }
            write!(f, "A{}", a.0)?;
        }
        write!(f, "}}")
    }
}

/// Removes every environment that is a proper superset of another in the
/// list (and exact duplicates), leaving the ⊆-minimal antichain.
///
/// Sorting by cardinality means every potential subsumer precedes its
/// victims; the signature prefilter rejects most candidate pairs in one
/// AND-NOT before the exact word-wise test runs.
///
/// Used for label minimization and nogood-set maintenance.
#[must_use]
pub fn minimize(mut envs: Vec<Env>) -> Vec<Env> {
    envs.sort_by_key(Env::len);
    let mut keep: Vec<Env> = Vec::with_capacity(envs.len());
    let mut keep_sigs: Vec<u64> = Vec::with_capacity(envs.len());
    for e in envs {
        let sig = e.signature();
        let dominated = keep
            .iter()
            .zip(&keep_sigs)
            .any(|(k, &ks)| ks & !sig == 0 && k.is_subset_of(&e));
        if !dominated {
            keep.push(e);
            keep_sigs.push(sig);
        }
    }
    keep
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(ids: &[u32]) -> Env {
        Env::from_ids(ids.iter().copied())
    }

    #[test]
    fn construction_normalizes() {
        assert_eq!(env(&[3, 1, 2, 1]), env(&[1, 2, 3]));
        assert_eq!(Env::empty().len(), 0);
        assert!(Env::empty().is_empty());
        assert_eq!(Env::singleton(Assumption(5)), env(&[5]));
    }

    #[test]
    fn union_merges_sorted() {
        assert_eq!(env(&[1, 3]).union(&env(&[2, 3, 4])), env(&[1, 2, 3, 4]));
        assert_eq!(Env::empty().union(&env(&[7])), env(&[7]));
        assert_eq!(env(&[7]).union(&Env::empty()), env(&[7]));
    }

    #[test]
    fn subset_tests() {
        assert!(Env::empty().is_subset_of(&env(&[1])));
        assert!(env(&[1, 3]).is_subset_of(&env(&[1, 2, 3])));
        assert!(!env(&[1, 4]).is_subset_of(&env(&[1, 2, 3])));
        assert!(!env(&[1, 2, 3]).is_subset_of(&env(&[1, 2])));
        assert!(env(&[2]).is_subset_of(&env(&[2])));
    }

    #[test]
    fn intersects_detects_hits() {
        assert!(env(&[1, 5]).intersects(&env(&[5, 9])));
        assert!(!env(&[1, 5]).intersects(&env(&[2, 9])));
        assert!(!Env::empty().intersects(&env(&[1])));
    }

    #[test]
    fn with_and_without() {
        let e = env(&[1, 3]);
        assert_eq!(e.with(Assumption(2)), env(&[1, 2, 3]));
        assert_eq!(e.with(Assumption(3)), e);
        assert_eq!(e.without(Assumption(3)), env(&[1]));
        assert_eq!(e.without(Assumption(9)), e);
    }

    #[test]
    fn contains_and_iter() {
        let e = env(&[2, 4]);
        assert!(e.contains(Assumption(2)));
        assert!(!e.contains(Assumption(3)));
        let ids: Vec<u32> = e.iter().map(|a| a.0).collect();
        assert_eq!(ids, vec![2, 4]);
        let collected: Env = e.iter().collect();
        assert_eq!(collected, e);
    }

    #[test]
    fn minimize_keeps_antichain() {
        let out = minimize(vec![
            env(&[1, 2, 3]),
            env(&[1, 2]),
            env(&[4]),
            env(&[1, 2]),
            env(&[4, 5]),
        ]);
        assert_eq!(out.len(), 2);
        assert!(out.contains(&env(&[1, 2])));
        assert!(out.contains(&env(&[4])));
    }

    #[test]
    fn minimize_empty_env_dominates_all() {
        let out = minimize(vec![env(&[1]), Env::empty(), env(&[2, 3])]);
        assert_eq!(out, vec![Env::empty()]);
    }

    #[test]
    fn display_renders_ids() {
        assert_eq!(format!("{}", env(&[1, 2])), "{A1, A2}");
        assert_eq!(format!("{}", Env::empty()), "{}");
    }

    // ----- bitset-specific coverage -----------------------------------

    #[test]
    fn spill_roundtrip_beyond_inline_capacity() {
        // Ids straddling the 128-bit inline boundary.
        let ids = [0u32, 63, 64, 127, 128, 200, 300];
        let e = env(&ids);
        assert_eq!(e.len(), ids.len());
        let back: Vec<u32> = e.iter().map(|a| a.0).collect();
        assert_eq!(back, ids.to_vec());
        for &id in &ids {
            assert!(e.contains(Assumption(id)));
        }
        assert!(!e.contains(Assumption(129)));
        assert!(!e.contains(Assumption(1000)));
    }

    #[test]
    fn spill_normalizes_back_to_inline() {
        // Removing the only high bit must restore the inline representation
        // so equality and hashing stay canonical.
        let e = env(&[1, 200]).without(Assumption(200));
        assert_eq!(e, env(&[1]));
        let mut h1 = std::collections::hash_map::DefaultHasher::new();
        let mut h2 = std::collections::hash_map::DefaultHasher::new();
        e.hash(&mut h1);
        env(&[1]).hash(&mut h2);
        assert_eq!(
            std::hash::Hasher::finish(&h1),
            std::hash::Hasher::finish(&h2)
        );
    }

    #[test]
    fn mixed_inline_spill_set_ops() {
        let small = env(&[1, 5]);
        let big = env(&[1, 5, 130]);
        assert!(small.is_subset_of(&big));
        assert!(!big.is_subset_of(&small));
        assert!(small.intersects(&big));
        assert_eq!(small.union(&big), big);
        assert_eq!(big.union(&small), big);
        assert_eq!(small.intersection(&big), small);
        assert_eq!(big.without(Assumption(130)), small);
        assert!(!env(&[200]).is_subset_of(&env(&[1])));
        assert!(!env(&[200]).intersects(&env(&[1])));
    }

    #[test]
    fn ordering_matches_sorted_sequence_semantics() {
        // The derived order of the old sorted-vec representation:
        // lexicographic over ascending id sequences, prefix-first.
        let mut envs = vec![
            env(&[1, 2]),
            env(&[0, 5]),
            env(&[1]),
            Env::empty(),
            env(&[0]),
            env(&[0, 1, 2]),
        ];
        envs.sort();
        assert_eq!(
            envs,
            vec![
                Env::empty(),
                env(&[0]),
                env(&[0, 1, 2]),
                env(&[0, 5]),
                env(&[1]),
                env(&[1, 2]),
            ]
        );
    }

    #[test]
    fn union_with_reports_change() {
        let mut e = env(&[1]);
        assert!(e.union_with(&env(&[2])));
        assert!(!e.union_with(&env(&[1, 2])));
        assert_eq!(e, env(&[1, 2]));
        assert!(e.union_with(&env(&[300])));
        assert_eq!(e, env(&[1, 2, 300]));
    }

    #[test]
    fn first_and_signature() {
        assert_eq!(Env::empty().first(), None);
        assert_eq!(env(&[7, 3]).first(), Some(Assumption(3)));
        assert_eq!(env(&[130]).first(), Some(Assumption(130)));
        // Signature is a sound subset prefilter.
        let (a, b) = (env(&[1, 3]), env(&[1, 2, 3]));
        assert_eq!(a.signature() & !b.signature(), 0);
    }
}
