use crate::assumptions::Assumption;
use std::fmt;

/// An *environment*: a set of assumptions, stored as a sorted, deduplicated
/// vector of assumption ids.
///
/// Environments are the currency of the ATMS — node labels are sets of
/// environments, conflicts are environments (nogoods), and diagnoses are
/// environments (hitting sets of the nogoods). They are small in practice
/// (a handful of component-correctness assumptions), so a sorted `Vec`
/// outperforms heavier set types while keeping subset tests `O(n + m)`.
///
/// # Example
///
/// ```
/// use flames_atms::Env;
///
/// let ab = Env::from_ids([0, 1]);
/// let abc = Env::from_ids([2, 1, 0]); // order and duplicates are normalized
/// assert!(ab.is_subset_of(&abc));
/// assert_eq!(ab.union(&abc), abc);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Env {
    ids: Vec<u32>,
}

impl Env {
    /// The empty environment (holds universally).
    #[must_use]
    pub fn empty() -> Self {
        Self::default()
    }

    /// A singleton environment.
    #[must_use]
    pub fn singleton(a: Assumption) -> Self {
        Self { ids: vec![a.0] }
    }

    /// Builds an environment from raw assumption ids, sorting and
    /// deduplicating them.
    #[must_use]
    pub fn from_ids(ids: impl IntoIterator<Item = u32>) -> Self {
        let mut ids: Vec<u32> = ids.into_iter().collect();
        ids.sort_unstable();
        ids.dedup();
        Self { ids }
    }

    /// Builds an environment from assumptions.
    #[must_use]
    pub fn from_assumptions(assumptions: impl IntoIterator<Item = Assumption>) -> Self {
        Self::from_ids(assumptions.into_iter().map(|a| a.0))
    }

    /// Number of assumptions in the environment.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True for the empty environment.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// True if the environment contains `a`.
    #[must_use]
    pub fn contains(&self, a: Assumption) -> bool {
        self.ids.binary_search(&a.0).is_ok()
    }

    /// Iterates over the assumptions in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = Assumption> + '_ {
        self.ids.iter().map(|&id| Assumption(id))
    }

    /// Set union (the environment of a conjunction of antecedents).
    #[must_use]
    pub fn union(&self, other: &Self) -> Self {
        let mut ids = Vec::with_capacity(self.ids.len() + other.ids.len());
        let (mut i, mut j) = (0, 0);
        while i < self.ids.len() && j < other.ids.len() {
            match self.ids[i].cmp(&other.ids[j]) {
                std::cmp::Ordering::Less => {
                    ids.push(self.ids[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    ids.push(other.ids[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    ids.push(self.ids[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        ids.extend_from_slice(&self.ids[i..]);
        ids.extend_from_slice(&other.ids[j..]);
        Self { ids }
    }

    /// Subset test (`self ⊆ other`); `O(|self| + |other|)`.
    #[must_use]
    pub fn is_subset_of(&self, other: &Self) -> bool {
        if self.ids.len() > other.ids.len() {
            return false;
        }
        let mut j = 0;
        for &id in &self.ids {
            loop {
                if j == other.ids.len() {
                    return false;
                }
                match other.ids[j].cmp(&id) {
                    std::cmp::Ordering::Less => j += 1,
                    std::cmp::Ordering::Equal => {
                        j += 1;
                        break;
                    }
                    std::cmp::Ordering::Greater => return false,
                }
            }
        }
        true
    }

    /// True when the two environments share at least one assumption — i.e.
    /// `self` *hits* the conflict set `other`.
    #[must_use]
    pub fn intersects(&self, other: &Self) -> bool {
        let (mut i, mut j) = (0, 0);
        while i < self.ids.len() && j < other.ids.len() {
            match self.ids[i].cmp(&other.ids[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }

    /// Returns `self` with assumption `a` added.
    #[must_use]
    pub fn with(&self, a: Assumption) -> Self {
        if self.contains(a) {
            return self.clone();
        }
        let pos = self.ids.partition_point(|&id| id < a.0);
        let mut ids = self.ids.clone();
        ids.insert(pos, a.0);
        Self { ids }
    }

    /// Returns `self` with assumption `a` removed (if present).
    #[must_use]
    pub fn without(&self, a: Assumption) -> Self {
        Self {
            ids: self.ids.iter().copied().filter(|&id| id != a.0).collect(),
        }
    }
}

impl FromIterator<Assumption> for Env {
    fn from_iter<I: IntoIterator<Item = Assumption>>(iter: I) -> Self {
        Self::from_assumptions(iter)
    }
}

impl<'a> IntoIterator for &'a Env {
    type Item = Assumption;
    type IntoIter = std::iter::Map<std::slice::Iter<'a, u32>, fn(&u32) -> Assumption>;
    fn into_iter(self) -> Self::IntoIter {
        self.ids.iter().map(|&id| Assumption(id))
    }
}

impl fmt::Display for Env {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (k, id) in self.ids.iter().enumerate() {
            if k > 0 {
                write!(f, ", ")?;
            }
            write!(f, "A{id}")?;
        }
        write!(f, "}}")
    }
}

/// Removes every environment that is a proper superset of another in the
/// list (and exact duplicates), leaving the ⊆-minimal antichain.
///
/// Used for label minimization and nogood-set maintenance.
#[must_use]
pub fn minimize(mut envs: Vec<Env>) -> Vec<Env> {
    envs.sort_by_key(Env::len);
    let mut keep: Vec<Env> = Vec::with_capacity(envs.len());
    for e in envs {
        if !keep.iter().any(|k| k.is_subset_of(&e)) {
            keep.push(e);
        }
    }
    keep
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(ids: &[u32]) -> Env {
        Env::from_ids(ids.iter().copied())
    }

    #[test]
    fn construction_normalizes() {
        assert_eq!(env(&[3, 1, 2, 1]), env(&[1, 2, 3]));
        assert_eq!(Env::empty().len(), 0);
        assert!(Env::empty().is_empty());
        assert_eq!(Env::singleton(Assumption(5)), env(&[5]));
    }

    #[test]
    fn union_merges_sorted() {
        assert_eq!(env(&[1, 3]).union(&env(&[2, 3, 4])), env(&[1, 2, 3, 4]));
        assert_eq!(Env::empty().union(&env(&[7])), env(&[7]));
        assert_eq!(env(&[7]).union(&Env::empty()), env(&[7]));
    }

    #[test]
    fn subset_tests() {
        assert!(Env::empty().is_subset_of(&env(&[1])));
        assert!(env(&[1, 3]).is_subset_of(&env(&[1, 2, 3])));
        assert!(!env(&[1, 4]).is_subset_of(&env(&[1, 2, 3])));
        assert!(!env(&[1, 2, 3]).is_subset_of(&env(&[1, 2])));
        assert!(env(&[2]).is_subset_of(&env(&[2])));
    }

    #[test]
    fn intersects_detects_hits() {
        assert!(env(&[1, 5]).intersects(&env(&[5, 9])));
        assert!(!env(&[1, 5]).intersects(&env(&[2, 9])));
        assert!(!Env::empty().intersects(&env(&[1])));
    }

    #[test]
    fn with_and_without() {
        let e = env(&[1, 3]);
        assert_eq!(e.with(Assumption(2)), env(&[1, 2, 3]));
        assert_eq!(e.with(Assumption(3)), e);
        assert_eq!(e.without(Assumption(3)), env(&[1]));
        assert_eq!(e.without(Assumption(9)), e);
    }

    #[test]
    fn contains_and_iter() {
        let e = env(&[2, 4]);
        assert!(e.contains(Assumption(2)));
        assert!(!e.contains(Assumption(3)));
        let ids: Vec<u32> = e.iter().map(|a| a.0).collect();
        assert_eq!(ids, vec![2, 4]);
        let collected: Env = e.iter().collect();
        assert_eq!(collected, e);
    }

    #[test]
    fn minimize_keeps_antichain() {
        let out = minimize(vec![
            env(&[1, 2, 3]),
            env(&[1, 2]),
            env(&[4]),
            env(&[1, 2]),
            env(&[4, 5]),
        ]);
        assert_eq!(out.len(), 2);
        assert!(out.contains(&env(&[1, 2])));
        assert!(out.contains(&env(&[4])));
    }

    #[test]
    fn minimize_empty_env_dominates_all() {
        let out = minimize(vec![env(&[1]), Env::empty(), env(&[2, 3])]);
        assert_eq!(out, vec![Env::empty()]);
    }

    #[test]
    fn display_renders_ids() {
        assert_eq!(format!("{}", env(&[1, 2])), "{A1, A2}");
        assert_eq!(format!("{}", Env::empty()), "{}");
    }
}
