use std::collections::HashMap;
use std::fmt;

/// An assumption identifier.
///
/// In FLAMES an assumption is almost always "component *c* behaves
/// correctly" (§6 of the paper: "an assumption might be the correct
/// functioning of each component"), but the ATMS is agnostic: model
/// validity, observation trust, or expert hypotheses work equally well.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Assumption(pub u32);

impl Assumption {
    /// The raw index of the assumption.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Assumption {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "A{}", self.0)
    }
}

impl From<u32> for Assumption {
    fn from(id: u32) -> Self {
        Assumption(id)
    }
}

/// An interner mapping human-readable assumption names (e.g.
/// `"Correct(R2)"`) to dense [`Assumption`] ids and back.
///
/// # Example
///
/// ```
/// use flames_atms::AssumptionPool;
///
/// let mut pool = AssumptionPool::new();
/// let r2 = pool.intern("Correct(R2)");
/// assert_eq!(pool.intern("Correct(R2)"), r2); // idempotent
/// assert_eq!(pool.name(r2), Some("Correct(R2)"));
/// assert_eq!(pool.len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct AssumptionPool {
    names: Vec<String>,
    by_name: HashMap<String, Assumption>,
}

impl AssumptionPool {
    /// Creates an empty pool.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the assumption for `name`, creating it if unseen.
    pub fn intern(&mut self, name: impl AsRef<str>) -> Assumption {
        let name = name.as_ref();
        if let Some(&a) = self.by_name.get(name) {
            return a;
        }
        let a = Assumption(u32::try_from(self.names.len()).expect("fewer than 2^32 assumptions"));
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), a);
        a
    }

    /// Looks an assumption up by name without creating it.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<Assumption> {
        self.by_name.get(name).copied()
    }

    /// The name of an assumption, if it belongs to this pool.
    #[must_use]
    pub fn name(&self, a: Assumption) -> Option<&str> {
        self.names.get(a.index()).map(String::as_str)
    }

    /// Number of interned assumptions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if no assumption has been interned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(Assumption, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (Assumption, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (Assumption(i as u32), n.as_str()))
    }

    /// Renders an id set as a `{name, name, …}` string for reports.
    #[must_use]
    pub fn render(&self, assumptions: impl IntoIterator<Item = Assumption>) -> String {
        let mut parts: Vec<&str> = assumptions
            .into_iter()
            .filter_map(|a| self.name(a))
            .collect();
        parts.sort_unstable();
        format!("{{{}}}", parts.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut p = AssumptionPool::new();
        let a = p.intern("Correct(R1)");
        let b = p.intern("Correct(R2)");
        assert_ne!(a, b);
        assert_eq!(p.intern("Correct(R1)"), a);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn lookup_and_names() {
        let mut p = AssumptionPool::new();
        let a = p.intern("Correct(T1)");
        assert_eq!(p.get("Correct(T1)"), Some(a));
        assert_eq!(p.get("Correct(T9)"), None);
        assert_eq!(p.name(a), Some("Correct(T1)"));
        assert_eq!(p.name(Assumption(99)), None);
    }

    #[test]
    fn render_sorts_names() {
        let mut p = AssumptionPool::new();
        let r2 = p.intern("R2");
        let r1 = p.intern("R1");
        assert_eq!(p.render([r2, r1]), "{R1, R2}");
        assert_eq!(p.render([]), "{}");
    }

    #[test]
    fn iteration_in_id_order() {
        let mut p = AssumptionPool::new();
        p.intern("x");
        p.intern("y");
        let items: Vec<_> = p.iter().map(|(a, n)| (a.0, n.to_owned())).collect();
        assert_eq!(items, vec![(0, "x".to_owned()), (1, "y".to_owned())]);
        assert!(!p.is_empty());
        assert!(AssumptionPool::new().is_empty());
    }
}
