use crate::assumptions::Assumption;
use crate::candidates::CandidateSet;
use crate::env::Env;
use crate::error::AtmsError;
use crate::hitting::minimal_hitting_sets_iter;
use crate::interner::{DirtyQueue, EnvId, EnvTable, SubsetStats};
use crate::Result;
use std::fmt;
use std::sync::Mutex;

/// Triangular norm used to combine certainty degrees along a derivation.
///
/// The paper combines degrees possibilistically; `Min` is the standard
/// possibilistic (Gödel) t-norm and the default. `Product` is offered as an
/// ablation knob (experiment E5/ablation bench): it compounds doubt along
/// long derivation chains instead of remembering only the weakest link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TNorm {
    /// Gödel / possibilistic `min(a, b)` (default).
    #[default]
    Min,
    /// Probabilistic-style product `a · b`.
    Product,
}

impl TNorm {
    /// Combines two degrees.
    #[must_use]
    pub fn combine(self, a: f64, b: f64) -> f64 {
        match self {
            TNorm::Min => a.min(b),
            TNorm::Product => a * b,
        }
    }
}

/// An environment together with the certainty degree of its derivation.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedEnv {
    /// The assumption set.
    pub env: Env,
    /// Certainty that the node holds under `env`, in `(0, 1]`.
    pub degree: f64,
}

/// A graded conflict: "the assumptions in `env` cannot all hold — with
/// membership degree `degree`" (§6.1.3 of the paper: a conflict indicates a
/// nogood with degree 1, a *partial* conflict a nogood with degree < 1).
#[derive(Debug, Clone, PartialEq)]
pub struct Nogood {
    /// The conflicting assumption set.
    pub env: Env,
    /// Conflict strength in `(0, 1]` (`1 − Dc` for coincidence conflicts).
    pub degree: f64,
}

impl fmt::Display for Nogood {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "nogood {} @ {:.2}", self.env, self.degree)
    }
}

/// A diagnosis candidate with its ranking degree.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedDiagnosis {
    /// The candidate set of (assumptions naming) faulty components.
    pub env: Env,
    /// Seriousness of the candidate: the weakest suspicion among its
    /// members, where a member's suspicion is the strongest conflict that
    /// implicates it.
    pub degree: f64,
}

#[derive(Debug, Clone)]
struct FuzzyJustification {
    antecedents: Vec<NodeRef>,
    consequent: NodeRef,
    degree: f64,
    informant: String,
}

/// Internal node reference for the fuzzy engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeRef(u32);

impl NodeRef {
    /// The raw index of the node.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Clone)]
struct FuzzyNode {
    /// Pareto-minimal label as flat interned `(environment, degree)` pairs.
    label: Vec<(EnvId, f64)>,
    consumers: Vec<u32>,
    is_contradiction: bool,
    /// Created through [`FuzzyAtms::add_premise`] — [`FuzzyAtms::reset`]
    /// restores the empty-environment label.
    is_premise: bool,
    name: String,
}

/// The **fuzzy ATMS** — the kernel of FLAMES (§6 of the paper).
///
/// Differences from the classic [`crate::Atms`]:
///
/// * justifications carry a certainty degree (*possibilistic clauses*, the
///   paper's ref \[13\]), so expert rules and fault models "with certainty
///   degrees" enter the same machinery as hard circuit laws;
/// * every label environment carries the degree of its derivation
///   (combined with the configured [`TNorm`]); labels are kept
///   *Pareto-minimal*: an environment survives unless a subset environment
///   derives the node at least as strongly;
/// * nogoods are graded. A **total** conflict (degree ≥ the kill
///   threshold, default 1) erases matching environments like a classic
///   nogood; a **partial** conflict only depresses their
///   [plausibility](FuzzyAtms::plausibility) — "the possibility to give the
///   user a list of nogoods sorted according to their consistency degrees
///   … allows to restrict the effect of explosion".
///
/// Internally environments are hash-consed through an [`EnvTable`]: labels
/// are flat `(EnvId, degree)` pairs, subset tests run through the cached
/// length/signature subsumption index, and nogood installation prunes
/// labels against the *new* nogood only (labels are invariantly consistent
/// with every older one).
///
/// # Example
///
/// The paper's Fig. 5 with fuzzy degrees:
///
/// ```
/// use flames_atms::{Env, FuzzyAtms};
///
/// let mut atms = FuzzyAtms::new();
/// let d1 = atms.add_assumption("d1");
/// let r1 = atms.add_assumption("r1");
/// let r2 = atms.add_assumption("r2");
/// atms.add_nogood(Env::from_assumptions([r1, d1]), 0.5);
/// atms.add_nogood(Env::from_assumptions([r2, d1]), 1.0);
/// let diags = atms.ranked_diagnoses(usize::MAX, 100);
/// // [d1] explains everything and is implicated by a degree-1 conflict.
/// assert_eq!(diags[0].env, Env::singleton(d1));
/// assert_eq!(diags[0].degree, 1.0);
/// // The double fault [r1, r2] is weakened by r1's 0.5 suspicion.
/// assert_eq!(diags[1].env, Env::from_assumptions([r1, r2]));
/// assert_eq!(diags[1].degree, 0.5);
/// ```
#[derive(Debug)]
pub struct FuzzyAtms {
    nodes: Vec<FuzzyNode>,
    justifications: Vec<FuzzyJustification>,
    /// Pareto-minimal nogood store, materialized for [`FuzzyAtms::nogoods`].
    nogoods: Vec<Nogood>,
    /// Interned ids parallel to `nogoods` (the subsumption index handles).
    nogood_ids: Vec<EnvId>,
    envs: EnvTable,
    assumption_nodes: Vec<NodeRef>,
    tnorm: TNorm,
    kill_threshold: f64,
    /// Append-only log of the non-subsumed nogood installs, replayed
    /// lazily into the incremental candidate sets. Replaying the raw
    /// stream yields the same minimal hitting sets as the Pareto store:
    /// skipped (subsumed) installs and dominated-then-removed nogoods are
    /// all supersets of a surviving nogood, and superset conflicts never
    /// change a hitting-set antichain.
    install_log: Vec<Env>,
    /// Bumped on every non-subsumed install — the validity tag candidate
    /// caches (here and in `flames-core` sessions) key on.
    epoch: u64,
    /// Lazily replayed incremental candidate sets, one per queried
    /// `max_size`. Interior mutability keeps [`FuzzyAtms::ranked_diagnoses`]
    /// a `&self` read; a `Mutex` (not `RefCell`) so the engine stays
    /// `Sync` for the compile-once/serve-many split.
    cand_cache: Mutex<Vec<CachedCandidates>>,
}

/// One lazily maintained candidate set: `set` has replayed
/// `install_log[..cursor]`.
#[derive(Debug, Clone)]
struct CachedCandidates {
    max_size: usize,
    cursor: usize,
    set: CandidateSet,
}

impl Clone for FuzzyAtms {
    fn clone(&self) -> Self {
        Self {
            nodes: self.nodes.clone(),
            justifications: self.justifications.clone(),
            nogoods: self.nogoods.clone(),
            nogood_ids: self.nogood_ids.clone(),
            envs: self.envs.clone(),
            assumption_nodes: self.assumption_nodes.clone(),
            tnorm: self.tnorm,
            kill_threshold: self.kill_threshold,
            install_log: self.install_log.clone(),
            epoch: self.epoch,
            // Warm candidate sets travel with the clone (snapshot/restore
            // keeps them consistent with the cloned log).
            cand_cache: Mutex::new(self.locked_cache().clone()),
        }
    }
}

impl Default for FuzzyAtms {
    fn default() -> Self {
        Self::new()
    }
}

impl FuzzyAtms {
    /// Creates an empty fuzzy ATMS with the `Min` t-norm and a kill
    /// threshold of 1 (only total conflicts erase environments).
    #[must_use]
    pub fn new() -> Self {
        Self {
            nodes: Vec::new(),
            justifications: Vec::new(),
            nogoods: Vec::new(),
            nogood_ids: Vec::new(),
            envs: EnvTable::new(),
            assumption_nodes: Vec::new(),
            tnorm: TNorm::Min,
            kill_threshold: 1.0,
            install_log: Vec::new(),
            epoch: 0,
            cand_cache: Mutex::new(Vec::new()),
        }
    }

    /// Selects the t-norm combining degrees along derivations.
    #[must_use]
    pub fn with_tnorm(mut self, tnorm: TNorm) -> Self {
        self.tnorm = tnorm;
        self
    }

    /// Sets the conflict degree at (or above) which a nogood erases
    /// matching environments instead of merely grading them. Clamped to
    /// `(0, 1]`. Lowering it trades completeness for explosion control —
    /// the E6 experiment's knob.
    #[must_use]
    pub fn with_kill_threshold(mut self, threshold: f64) -> Self {
        self.kill_threshold = threshold.clamp(f64::MIN_POSITIVE, 1.0);
        // Restore the invariant that every label environment is consistent
        // with every nogood at or above the (possibly lowered) threshold.
        let kill = self.kill_threshold;
        let envs = &self.envs;
        let strong: Vec<EnvId> = self
            .nogood_ids
            .iter()
            .zip(&self.nogoods)
            .filter(|(_, n)| n.degree >= kill)
            .map(|(&id, _)| id)
            .collect();
        if !strong.is_empty() {
            for node in &mut self.nodes {
                node.label
                    .retain(|&(eid, _)| !strong.iter().any(|&ng| envs.is_subset(ng, eid)));
            }
        }
        self
    }

    /// The configured t-norm.
    #[must_use]
    pub fn tnorm(&self) -> TNorm {
        self.tnorm
    }

    /// The configured kill threshold.
    #[must_use]
    pub fn kill_threshold(&self) -> f64 {
        self.kill_threshold
    }

    /// Adds an ordinary node.
    pub fn add_node(&mut self, name: impl Into<String>) -> NodeRef {
        self.push_node(name.into(), Vec::new(), false)
    }

    /// Adds a premise node (true everywhere with degree 1).
    pub fn add_premise(&mut self, name: impl Into<String>) -> NodeRef {
        let empty = self.envs.intern_owned(Env::empty());
        let id = self.push_node(name.into(), vec![(empty, 1.0)], false);
        self.nodes[id.index()].is_premise = true;
        id
    }

    /// Adds a contradiction node; environments derived for it become
    /// graded nogoods (degree = derivation degree).
    pub fn add_contradiction(&mut self, name: impl Into<String>) -> NodeRef {
        let id = self.push_node(name.into(), Vec::new(), false);
        self.nodes[id.index()].is_contradiction = true;
        id
    }

    /// Creates a fresh assumption with its singleton-labelled node.
    pub fn add_assumption(&mut self, name: impl Into<String>) -> Assumption {
        let a = Assumption(u32::try_from(self.assumption_nodes.len()).expect("< 2^32"));
        let singleton = self.envs.intern_owned(Env::singleton(a));
        let node = self.push_node(name.into(), vec![(singleton, 1.0)], false);
        self.assumption_nodes.push(node);
        a
    }

    /// The node asserting an assumption.
    ///
    /// # Panics
    ///
    /// Panics if the assumption does not belong to this engine.
    #[must_use]
    pub fn assumption_node(&self, a: Assumption) -> NodeRef {
        self.assumption_nodes[a.index()]
    }

    /// Records a certain Horn justification (degree 1).
    ///
    /// # Errors
    ///
    /// See [`FuzzyAtms::justify_weighted`].
    pub fn justify(
        &mut self,
        antecedents: impl IntoIterator<Item = NodeRef>,
        consequent: NodeRef,
        informant: impl Into<String>,
    ) -> Result<()> {
        self.justify_weighted(antecedents, consequent, 1.0, informant)
    }

    /// Records a *possibilistic clause* `antecedents ⇒ consequent` with a
    /// certainty `degree` in `(0, 1]` — the mechanism by which "the expert
    /// adds rules of faulty estimations or builds component's fault models
    /// with certainty degrees" (§6.1.3).
    ///
    /// # Errors
    ///
    /// * [`AtmsError::InvalidDegree`] for a degree outside `(0, 1]`;
    /// * [`AtmsError::UnknownNode`] for a foreign node;
    /// * [`AtmsError::SelfJustification`] if the consequent is among the
    ///   antecedents.
    pub fn justify_weighted(
        &mut self,
        antecedents: impl IntoIterator<Item = NodeRef>,
        consequent: NodeRef,
        degree: f64,
        informant: impl Into<String>,
    ) -> Result<()> {
        if !(degree > 0.0 && degree <= 1.0) {
            return Err(AtmsError::invalid_degree(degree));
        }
        let antecedents: Vec<NodeRef> = antecedents.into_iter().collect();
        self.check_node(consequent)?;
        for &a in &antecedents {
            self.check_node(a)?;
            if a == consequent {
                return Err(AtmsError::SelfJustification {
                    index: consequent.index(),
                });
            }
        }
        let jid = u32::try_from(self.justifications.len()).expect("< 2^32");
        for &a in &antecedents {
            self.nodes[a.index()].consumers.push(jid);
        }
        self.justifications.push(FuzzyJustification {
            antecedents,
            consequent,
            degree,
            informant: informant.into(),
        });
        self.propagate_from(jid);
        Ok(())
    }

    /// The Pareto-minimal weighted label of a node, materialized from the
    /// interned store (sorted by cardinality, then decreasing degree, then
    /// lexicographically).
    ///
    /// # Errors
    ///
    /// Returns [`AtmsError::UnknownNode`] for a foreign node id.
    pub fn label(&self, node: NodeRef) -> Result<Vec<WeightedEnv>> {
        self.check_node(node)?;
        Ok(self.nodes[node.index()]
            .label
            .iter()
            .map(|&(id, degree)| WeightedEnv {
                env: self.envs.env(id).clone(),
                degree,
            })
            .collect())
    }

    /// The name a node was created with.
    ///
    /// # Errors
    ///
    /// Returns [`AtmsError::UnknownNode`] for a foreign node id.
    pub fn node_name(&self, node: NodeRef) -> Result<&str> {
        self.check_node(node)?;
        Ok(&self.nodes[node.index()].name)
    }

    /// The informants of the justifications recorded so far, in insertion
    /// order (provenance for reports).
    pub fn informants(&self) -> impl Iterator<Item = &str> {
        self.justifications.iter().map(|j| j.informant.as_str())
    }

    /// The degree to which `node` holds under `env`: the best derivation
    /// degree among label environments contained in `env`, graded down by
    /// the plausibility of `env` itself.
    ///
    /// # Errors
    ///
    /// Returns [`AtmsError::UnknownNode`] for a foreign node id.
    pub fn holds_degree(&self, node: NodeRef, env: &Env) -> Result<f64> {
        self.check_node(node)?;
        let sig = env.signature();
        let best = self.nodes[node.index()]
            .label
            .iter()
            .filter(|&&(id, _)| self.envs.is_subset_of_raw(id, env, sig))
            .map(|&(_, degree)| degree)
            .fold(0.0, f64::max);
        Ok(self.tnorm.combine(best, self.plausibility(env)))
    }

    /// Installs a graded nogood directly (the coincidence engine's entry
    /// point: `degree = 1 − Dc`).
    ///
    /// Degrees ≤ 0 are ignored (no conflict); degrees are clamped to 1.
    pub fn add_nogood(&mut self, env: Env, degree: f64) {
        if degree <= 0.0 {
            return;
        }
        self.install_nogood(env, degree.min(1.0));
    }

    /// The current nogood store (Pareto-minimal: no nogood has a subset
    /// nogood at least as strong).
    #[must_use]
    pub fn nogoods(&self) -> &[Nogood] {
        &self.nogoods
    }

    /// The nogoods sorted by decreasing conflict degree — the list FLAMES
    /// shows the expert (§6.1.3).
    #[must_use]
    pub fn sorted_nogoods(&self) -> Vec<Nogood> {
        let mut ns = self.nogoods.clone();
        ns.sort_by(|a, b| {
            b.degree
                .partial_cmp(&a.degree)
                .expect("degrees are finite")
                .then_with(|| a.env.cmp(&b.env))
        });
        ns
    }

    /// Plausibility of an environment: `1 − max{degree(N) : N ⊆ env}`
    /// (1 when no nogood applies).
    #[must_use]
    pub fn plausibility(&self, env: &Env) -> f64 {
        let sig = env.signature();
        1.0 - self
            .nogood_ids
            .iter()
            .zip(&self.nogoods)
            .filter(|(&id, _)| self.envs.is_subset_of_raw(id, env, sig))
            .map(|(_, n)| n.degree)
            .fold(0.0, f64::max)
    }

    /// Suspicion of a single assumption: the strongest conflict that
    /// implicates it (0 when none does).
    #[must_use]
    pub fn suspicion(&self, a: Assumption) -> f64 {
        self.nogoods
            .iter()
            .filter(|n| n.env.contains(a))
            .map(|n| n.degree)
            .fold(0.0, f64::max)
    }

    /// Diagnosis candidates: minimal hitting sets of all recorded nogoods,
    /// ranked by decreasing degree (then by size, then lexicographically).
    ///
    /// A candidate's degree is the *weakest suspicion among its members* —
    /// a double fault is only as serious as its least-implicated component.
    /// This reproduces the paper's Fig. 5 ordering, where `[d1]` (hit by a
    /// degree-1 conflict) outranks `[r1, r2]` (dragged down by r1's 0.5).
    /// Served from the incrementally maintained [`CandidateSet`]: only the
    /// nogoods installed since the previous query with the same `max_size`
    /// are replayed (de Kleer's candidate-update step), so the steady-state
    /// cost of a query is proportional to *new* conflicts, not the full
    /// store. `max_count` keeps only the strongest candidates after
    /// ranking; [`FuzzyAtms::ranked_diagnoses_oracle`] is the re-enumerating
    /// reference the differential suites compare against.
    #[must_use]
    pub fn ranked_diagnoses(&self, max_size: usize, max_count: usize) -> Vec<RankedDiagnosis> {
        let mut cache = self.locked_cache();
        let entry = match cache.iter_mut().find(|e| e.max_size == max_size) {
            Some(entry) => entry,
            None => {
                cache.push(CachedCandidates {
                    max_size,
                    cursor: 0,
                    set: CandidateSet::new(max_size),
                });
                cache.last_mut().expect("just pushed")
            }
        };
        while entry.cursor < self.install_log.len() {
            entry.set.install(&self.install_log[entry.cursor]);
            entry.cursor += 1;
        }
        let mut out: Vec<RankedDiagnosis> = entry
            .set
            .sets()
            .iter()
            .filter(|env| !env.is_empty())
            .map(|env| {
                let degree = env.iter().map(|a| self.suspicion(a)).fold(1.0, f64::min);
                RankedDiagnosis {
                    env: env.clone(),
                    degree,
                }
            })
            .collect();
        drop(cache);
        Self::rank(&mut out);
        out.truncate(max_count);
        out
    }

    /// The pre-incremental diagnosis path: re-enumerates the HS-tree from
    /// the full nogood store on every call. Kept as the differential
    /// oracle (and the recompute baseline `exp_strategy` measures
    /// against). Identical to [`FuzzyAtms::ranked_diagnoses`] whenever
    /// `max_count` does not truncate; when it does, the incremental path
    /// keeps the `max_count` *strongest* candidates while this one keeps
    /// the first found.
    #[must_use]
    pub fn ranked_diagnoses_oracle(
        &self,
        max_size: usize,
        max_count: usize,
    ) -> Vec<RankedDiagnosis> {
        flames_obs::metrics().candidates_rebuilt.incr();
        let sets =
            minimal_hitting_sets_iter(self.nogoods.iter().map(|n| &n.env), max_size, max_count);
        let mut out: Vec<RankedDiagnosis> = sets
            .into_iter()
            .filter(|env| !env.is_empty())
            .map(|env| {
                let degree = env.iter().map(|a| self.suspicion(a)).fold(1.0, f64::min);
                RankedDiagnosis { env, degree }
            })
            .collect();
        Self::rank(&mut out);
        out
    }

    /// The shared candidate ordering: decreasing degree, then size, then
    /// lexicographic — total over distinct environments, so the
    /// incremental and oracle paths sort identically.
    fn rank(out: &mut [RankedDiagnosis]) {
        out.sort_by(|p, q| {
            q.degree
                .partial_cmp(&p.degree)
                .expect("degrees are finite")
                .then_with(|| p.env.len().cmp(&q.env.len()))
                .then_with(|| p.env.cmp(&q.env))
        });
    }

    /// Monotone counter of non-subsumed nogood installs — the validity
    /// tag for candidate caches layered above the engine: equal epochs on
    /// the same live engine mean "no new conflict landed", so cached
    /// candidates are still exact. [`FuzzyAtms::reset`] rewinds it along
    /// with the store.
    #[must_use]
    pub fn nogood_epoch(&self) -> u64 {
        self.epoch
    }

    /// Clears the per-board state — justifications, nogoods, and every
    /// derived label — while retaining the per-model vocabulary: the
    /// nodes themselves (every [`NodeRef`] and [`Assumption`] stays
    /// valid), the hash-consed [`EnvTable`], and the configured t-norm
    /// and kill threshold. Assumption nodes get their singleton labels
    /// back and premise nodes their empty-environment label, exactly as
    /// freshly created; everything happens in place, so a long-lived
    /// engine serves board after board with no allocation churn.
    ///
    /// This is the serve-many half of the compile-once/serve-many split:
    /// the assumption vocabulary is a per-model constant, the graded
    /// labels and nogoods are per-board state.
    pub fn reset(&mut self) {
        self.justifications.clear();
        self.nogoods.clear();
        self.nogood_ids.clear();
        self.install_log.clear();
        self.epoch = 0;
        self.cand_cache
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clear();
        for node in &mut self.nodes {
            node.label.clear();
            node.consumers.clear();
        }
        for i in 0..self.assumption_nodes.len() {
            let a = Assumption(u32::try_from(i).expect("< 2^32"));
            let singleton = self.envs.intern_owned(Env::singleton(a));
            let node = self.assumption_nodes[i];
            self.nodes[node.index()].label.push((singleton, 1.0));
        }
        let empty = self.envs.intern_owned(Env::empty());
        for node in &mut self.nodes {
            if node.is_premise {
                node.label.push((empty, 1.0));
            }
        }
    }

    /// Number of assumptions created so far (the vocabulary size
    /// [`FuzzyAtms::reset`] preserves).
    #[must_use]
    pub fn assumption_count(&self) -> usize {
        self.assumption_nodes.len()
    }

    // ----- internals -------------------------------------------------

    /// The candidate cache, poison-blind: a panic mid-query cannot leave
    /// the cache logically inconsistent (installs are applied one whole
    /// conflict at a time before the cursor moves).
    fn locked_cache(&self) -> std::sync::MutexGuard<'_, Vec<CachedCandidates>> {
        self.cand_cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn check_node(&self, id: NodeRef) -> Result<()> {
        if id.index() < self.nodes.len() {
            Ok(())
        } else {
            Err(AtmsError::UnknownNode { index: id.index() })
        }
    }

    fn push_node(
        &mut self,
        name: String,
        label: Vec<(EnvId, f64)>,
        is_contradiction: bool,
    ) -> NodeRef {
        let id = NodeRef(u32::try_from(self.nodes.len()).expect("< 2^32 nodes"));
        self.nodes.push(FuzzyNode {
            label,
            consumers: Vec::new(),
            is_contradiction,
            is_premise: false,
            name,
        });
        id
    }

    /// True when an environment is erased outright by a strong nogood.
    fn is_killed(&self, env: &Env, sig: u64) -> bool {
        self.nogood_ids.iter().zip(&self.nogoods).any(|(&id, n)| {
            n.degree >= self.kill_threshold && self.envs.is_subset_of_raw(id, env, sig)
        })
    }

    fn propagate_from(&mut self, start: u32) {
        let mut queue = DirtyQueue::new();
        queue.push(start);
        while let Some(jid) = queue.pop() {
            let (antecedents, consequent, jdegree) = {
                let j = &self.justifications[jid as usize];
                (j.antecedents.clone(), j.consequent, j.degree)
            };
            let mut candidates: Vec<(Env, f64)> = vec![(Env::empty(), jdegree)];
            let mut dead = false;
            for &a in &antecedents {
                let label = &self.nodes[a.index()].label;
                if label.is_empty() {
                    dead = true;
                    break;
                }
                let mut next = Vec::with_capacity(candidates.len() * label.len());
                for (cenv, cdeg) in &candidates {
                    for &(eid, edeg) in label {
                        next.push((
                            cenv.union(self.envs.env(eid)),
                            self.tnorm.combine(*cdeg, edeg),
                        ));
                    }
                }
                candidates = pareto_minimize_raw(next);
            }
            if dead {
                continue;
            }
            candidates.retain(|(env, _)| !self.is_killed(env, env.signature()));
            if candidates.is_empty() {
                continue;
            }
            if self.nodes[consequent.index()].is_contradiction {
                for (env, degree) in candidates {
                    self.install_nogood(env, degree);
                }
                continue;
            }
            if self.merge_label(consequent, candidates) {
                for &c in &self.nodes[consequent.index()].consumers {
                    queue.push(c);
                }
            }
        }
    }

    /// Incrementally merges Pareto-minimal candidates into a node's label.
    ///
    /// Each candidate is interned once, then checked against the existing
    /// pairs through the subsumption index — no snapshot of the previous
    /// label is taken, and untouched entries are never re-minimized.
    fn merge_label(&mut self, node: NodeRef, candidates: Vec<(Env, f64)>) -> bool {
        flames_obs::metrics().label_merges.incr();
        let mut changed = false;
        // Subset-test accounting is accumulated across the whole merge and
        // flushed once — per-test atomics here cost the kernel ~30%.
        let mut stats = SubsetStats::default();
        for (env, degree) in candidates {
            let id = self.envs.intern_owned(env);
            let envs = &self.envs;
            let label = &mut self.nodes[node.index()].label;
            let dominated = label
                .iter()
                .any(|&(kid, kdeg)| kdeg >= degree && envs.is_subset_counted(kid, id, &mut stats));
            if dominated {
                continue;
            }
            label.retain(|&(kid, kdeg)| {
                !(degree >= kdeg && envs.is_subset_counted(id, kid, &mut stats))
            });
            label.push((id, degree));
            changed = true;
        }
        stats.flush();
        if changed {
            flames_obs::metrics().label_updates.incr();
            let envs = &self.envs;
            self.nodes[node.index()]
                .label
                .sort_by(|&(a, da), &(b, db)| {
                    envs.card(a)
                        .cmp(&envs.card(b))
                        .then_with(|| db.partial_cmp(&da).expect("finite"))
                        .then_with(|| envs.env(a).cmp(envs.env(b)))
                });
        }
        changed
    }

    /// Installs a graded nogood, keeping the store Pareto-minimal and
    /// pruning labels **against the new nogood only** — every label
    /// environment is already consistent with the older nogoods, so the
    /// classic full rescan over `nodes × labels × nogoods` is unnecessary.
    fn install_nogood(&mut self, env: Env, degree: f64) {
        let ngid = self.envs.intern_owned(env);
        // Subset-test accounting is accumulated across the whole install
        // and flushed once — per-test atomics here cost the kernel ~30%.
        let mut stats = SubsetStats::default();
        // Subsumed by an existing subset nogood at least as strong?
        let subsumed = self.nogood_ids.iter().zip(&self.nogoods).any(|(&id, n)| {
            n.degree >= degree && self.envs.is_subset_counted(id, ngid, &mut stats)
        });
        if subsumed {
            stats.flush();
            flames_obs::metrics().nogood_subsumed.incr();
            return;
        }
        flames_obs::metrics().nogood_installs.incr();
        // Log the raw install and invalidate candidate caches. Subsumed
        // installs above do neither: they cannot change any hitting set,
        // so caches tagged with the current epoch stay exact.
        self.install_log.push(self.envs.env(ngid).clone());
        self.epoch += 1;
        // Drop existing nogoods this one dominates (order-preserving).
        let mut w = 0;
        for r in 0..self.nogoods.len() {
            let dominated = degree >= self.nogoods[r].degree
                && self
                    .envs
                    .is_subset_counted(ngid, self.nogood_ids[r], &mut stats);
            if !dominated {
                self.nogoods.swap(w, r);
                self.nogood_ids.swap(w, r);
                w += 1;
            }
        }
        self.nogoods.truncate(w);
        self.nogood_ids.truncate(w);
        self.nogoods.push(Nogood {
            env: self.envs.env(ngid).clone(),
            degree,
        });
        self.nogood_ids.push(ngid);
        // A strong nogood erases the label environments it is contained in.
        if degree >= self.kill_threshold {
            let envs = &self.envs;
            for node in &mut self.nodes {
                node.label
                    .retain(|&(eid, _)| !envs.is_subset_counted(ngid, eid, &mut stats));
            }
        }
        stats.flush();
    }
}

/// Pareto minimization of weighted environments: keep `(E, d)` unless some
/// other `(E′, d′)` has `E′ ⊆ E` and `d′ ≥ d`. Subset tests are prefiltered
/// by the cached word signatures of the kept front.
fn pareto_minimize_raw(mut envs: Vec<(Env, f64)>) -> Vec<(Env, f64)> {
    envs.sort_by(|a, b| {
        a.0.len()
            .cmp(&b.0.len())
            .then_with(|| b.1.partial_cmp(&a.1).expect("finite"))
    });
    let mut keep: Vec<(Env, f64)> = Vec::with_capacity(envs.len());
    let mut keep_sigs: Vec<u64> = Vec::with_capacity(envs.len());
    for (env, degree) in envs {
        let sig = env.signature();
        let dominated = keep.iter().zip(&keep_sigs).any(|((kenv, kdeg), &ksig)| {
            *kdeg >= degree && ksig & !sig == 0 && kenv.is_subset_of(&env)
        });
        if !dominated {
            keep.push((env, degree));
            keep_sigs.push(sig);
        }
    }
    keep
}

/// Pareto minimization of [`WeightedEnv`]s (kept for tests and callers
/// working with materialized labels; same dominance rule as the kernel's
/// interned path).
#[cfg(test)]
fn pareto_minimize(envs: Vec<WeightedEnv>) -> Vec<WeightedEnv> {
    pareto_minimize_raw(envs.into_iter().map(|we| (we.env, we.degree)).collect())
        .into_iter()
        .map(|(env, degree)| WeightedEnv { env, degree })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tnorm_combines() {
        assert_eq!(TNorm::Min.combine(0.4, 0.8), 0.4);
        assert_eq!(TNorm::Product.combine(0.4, 0.8), 0.32000000000000006);
        assert_eq!(TNorm::default(), TNorm::Min);
    }

    #[test]
    fn weighted_derivation_uses_tnorm() {
        let mut atms = FuzzyAtms::new();
        let a = atms.add_assumption("a");
        let na = atms.assumption_node(a);
        let mid = atms.add_node("mid");
        let out = atms.add_node("out");
        atms.justify_weighted([na], mid, 0.8, "soft rule").unwrap();
        atms.justify_weighted([mid], out, 0.6, "softer rule")
            .unwrap();
        let label = atms.label(out).unwrap();
        assert_eq!(label.len(), 1);
        assert_eq!(label[0].env, Env::singleton(a));
        assert!((label[0].degree - 0.6).abs() < 1e-12); // min(0.8, 0.6)
    }

    #[test]
    fn product_tnorm_compounds() {
        let mut atms = FuzzyAtms::new().with_tnorm(TNorm::Product);
        let a = atms.add_assumption("a");
        let na = atms.assumption_node(a);
        let mid = atms.add_node("mid");
        let out = atms.add_node("out");
        atms.justify_weighted([na], mid, 0.8, "r1").unwrap();
        atms.justify_weighted([mid], out, 0.5, "r2").unwrap();
        let label = atms.label(out).unwrap();
        assert!((label[0].degree - 0.4).abs() < 1e-12);
    }

    #[test]
    fn stronger_rederivation_upgrades_label() {
        let mut atms = FuzzyAtms::new();
        let a = atms.add_assumption("a");
        let na = atms.assumption_node(a);
        let g = atms.add_node("g");
        atms.justify_weighted([na], g, 0.5, "weak").unwrap();
        assert!((atms.label(g).unwrap()[0].degree - 0.5).abs() < 1e-12);
        atms.justify_weighted([na], g, 0.9, "strong").unwrap();
        let label = atms.label(g).unwrap();
        assert_eq!(label.len(), 1);
        assert!((label[0].degree - 0.9).abs() < 1e-12);
    }

    #[test]
    fn pareto_label_keeps_weaker_smaller_env() {
        let mut atms = FuzzyAtms::new();
        let a = atms.add_assumption("a");
        let b = atms.add_assumption("b");
        let (na, nb) = (atms.assumption_node(a), atms.assumption_node(b));
        let g = atms.add_node("g");
        // {a} proves g weakly; {a, b} proves it strongly — both are
        // Pareto-optimal and must both survive.
        atms.justify_weighted([na], g, 0.5, "weak single").unwrap();
        atms.justify_weighted([na, nb], g, 1.0, "strong pair")
            .unwrap();
        let label = atms.label(g).unwrap();
        assert_eq!(label.len(), 2);
        // But {a}@0.5 + {a,b}@0.4 keeps only {a}@0.5.
        let mut atms2 = FuzzyAtms::new();
        let a2 = atms2.add_assumption("a");
        let b2 = atms2.add_assumption("b");
        let (na2, nb2) = (atms2.assumption_node(a2), atms2.assumption_node(b2));
        let g2 = atms2.add_node("g");
        atms2
            .justify_weighted([na2], g2, 0.5, "weak single")
            .unwrap();
        atms2
            .justify_weighted([na2, nb2], g2, 0.4, "weaker pair")
            .unwrap();
        assert_eq!(atms2.label(g2).unwrap().len(), 1);
    }

    #[test]
    fn rejects_bad_degrees_and_nodes() {
        let mut atms = FuzzyAtms::new();
        let g = atms.add_node("g");
        let a = atms.add_assumption("a");
        let na = atms.assumption_node(a);
        assert!(matches!(
            atms.justify_weighted([na], g, 0.0, "zero"),
            Err(AtmsError::InvalidDegree { .. })
        ));
        assert!(atms.justify_weighted([na], g, 1.5, "big").is_err());
        assert!(atms.justify([NodeRef(99)], g, "foreign").is_err());
        assert!(atms.justify([g], g, "self").is_err());
        assert!(atms.label(NodeRef(99)).is_err());
    }

    #[test]
    fn total_conflict_erases_partial_conflict_grades() {
        let mut atms = FuzzyAtms::new();
        let a = atms.add_assumption("a");
        let b = atms.add_assumption("b");
        let (na, nb) = (atms.assumption_node(a), atms.assumption_node(b));
        let g = atms.add_node("g");
        atms.justify([na, nb], g, "and").unwrap();
        // Partial conflict on {a}: label survives, plausibility drops.
        atms.add_nogood(Env::singleton(a), 0.4);
        assert_eq!(atms.label(g).unwrap().len(), 1);
        let env_ab = Env::from_assumptions([a, b]);
        assert!((atms.plausibility(&env_ab) - 0.6).abs() < 1e-12);
        assert!((atms.holds_degree(g, &env_ab).unwrap() - 0.6).abs() < 1e-12);
        // Total conflict: label is erased.
        atms.add_nogood(Env::singleton(a), 1.0);
        assert!(atms.label(g).unwrap().is_empty());
        assert_eq!(atms.plausibility(&env_ab), 0.0);
    }

    #[test]
    fn nogood_store_is_pareto_minimal() {
        let mut atms = FuzzyAtms::new();
        let a = atms.add_assumption("a");
        let b = atms.add_assumption("b");
        let ab = Env::from_assumptions([a, b]);
        atms.add_nogood(ab.clone(), 0.5);
        // Weaker superset information is subsumed.
        atms.add_nogood(ab.clone(), 0.3);
        assert_eq!(atms.nogoods().len(), 1);
        assert!((atms.nogoods()[0].degree - 0.5).abs() < 1e-12);
        // A stronger subset wipes the pair nogood.
        atms.add_nogood(Env::singleton(a), 0.9);
        assert_eq!(atms.nogoods().len(), 1);
        assert_eq!(atms.nogoods()[0].env, Env::singleton(a));
        // But a *weaker* subset coexists with a stronger superset.
        atms.add_nogood(ab, 1.0);
        assert_eq!(atms.nogoods().len(), 2);
        // Zero-degree nogoods are ignored.
        atms.add_nogood(Env::singleton(b), 0.0);
        assert_eq!(atms.nogoods().len(), 2);
    }

    #[test]
    fn fig5_ranked_diagnoses() {
        let mut atms = FuzzyAtms::new();
        let d1 = atms.add_assumption("d1");
        let r1 = atms.add_assumption("r1");
        let r2 = atms.add_assumption("r2");
        atms.add_nogood(Env::from_assumptions([r1, d1]), 0.5);
        atms.add_nogood(Env::from_assumptions([r2, d1]), 1.0);

        let sorted = atms.sorted_nogoods();
        assert!((sorted[0].degree - 1.0).abs() < 1e-12);
        assert!((sorted[1].degree - 0.5).abs() < 1e-12);

        assert_eq!(atms.suspicion(d1), 1.0);
        assert_eq!(atms.suspicion(r1), 0.5);
        assert_eq!(atms.suspicion(r2), 1.0);

        let diags = atms.ranked_diagnoses(usize::MAX, 100);
        assert_eq!(diags.len(), 2);
        assert_eq!(diags[0].env, Env::singleton(d1));
        assert_eq!(diags[0].degree, 1.0);
        assert_eq!(diags[1].env, Env::from_assumptions([r1, r2]));
        assert_eq!(diags[1].degree, 0.5);
    }

    #[test]
    fn kill_threshold_controls_explosion() {
        let mut strict = FuzzyAtms::new().with_kill_threshold(0.3);
        let a = strict.add_assumption("a");
        let b = strict.add_assumption("b");
        let (na, nb) = (strict.assumption_node(a), strict.assumption_node(b));
        let g = strict.add_node("g");
        strict.justify([na, nb], g, "and").unwrap();
        // A 0.4-degree conflict now kills (threshold 0.3).
        strict.add_nogood(Env::from_assumptions([a, b]), 0.4);
        assert!(strict.label(g).unwrap().is_empty());
        assert!((strict.kill_threshold() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn lowering_threshold_resweeps_labels() {
        let mut atms = FuzzyAtms::new();
        let a = atms.add_assumption("a");
        let na = atms.assumption_node(a);
        let g = atms.add_node("g");
        atms.justify([na], g, "a=>g").unwrap();
        atms.add_nogood(Env::singleton(a), 0.4);
        assert_eq!(atms.label(g).unwrap().len(), 1);
        // Dropping the threshold below the partial conflict kills the label.
        let atms = atms.with_kill_threshold(0.3);
        assert!(atms.label(g).unwrap().is_empty());
    }

    #[test]
    fn holds_degree_accounts_for_plausibility() {
        let mut atms = FuzzyAtms::new();
        let a = atms.add_assumption("a");
        let na = atms.assumption_node(a);
        let g = atms.add_node("g");
        atms.justify_weighted([na], g, 0.9, "rule").unwrap();
        let env = Env::singleton(a);
        assert!((atms.holds_degree(g, &env).unwrap() - 0.9).abs() < 1e-12);
        atms.add_nogood(env.clone(), 0.5);
        // min(0.9 derivation, 0.5 plausibility).
        assert!((atms.holds_degree(g, &env).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn premise_and_contradiction_nodes() {
        let mut atms = FuzzyAtms::new();
        let p = atms.add_premise("law");
        let a = atms.add_assumption("a");
        let na = atms.assumption_node(a);
        let bottom = atms.add_contradiction("⊥");
        atms.justify_weighted([p, na], bottom, 0.7, "soft conflict")
            .unwrap();
        assert_eq!(atms.nogoods().len(), 1);
        assert_eq!(atms.nogoods()[0].env, Env::singleton(a));
        assert!((atms.nogoods()[0].degree - 0.7).abs() < 1e-12);
        // Soft conflict does not kill the assumption's own label.
        assert_eq!(atms.label(na).unwrap().len(), 1);
    }

    #[test]
    fn informants_are_retained_in_order() {
        let mut atms = FuzzyAtms::new();
        let a = atms.add_assumption("a");
        let na = atms.assumption_node(a);
        let g = atms.add_node("g");
        let h = atms.add_node("h");
        atms.justify_weighted([na], g, 0.9, "first rule").unwrap();
        atms.justify([g], h, "second rule").unwrap();
        let informants: Vec<&str> = atms.informants().collect();
        assert_eq!(informants, vec!["first rule", "second rule"]);
        assert_eq!(atms.node_name(g).unwrap(), "g");
    }

    #[test]
    fn reset_restores_the_fresh_vocabulary_state() {
        let mut atms = FuzzyAtms::new().with_kill_threshold(0.8);
        let a = atms.add_assumption("a");
        let b = atms.add_assumption("b");
        let (na, nb) = (atms.assumption_node(a), atms.assumption_node(b));
        let law = atms.add_premise("law");
        let g = atms.add_node("g");
        let bottom = atms.add_contradiction("⊥");

        // Reference state: labels/nogoods of a fresh board.
        let run = |atms: &mut FuzzyAtms| {
            atms.justify_weighted([na, nb, law], g, 0.9, "and").unwrap();
            atms.justify_weighted([g], bottom, 0.6, "conflict").unwrap();
            atms.add_nogood(Env::singleton(b), 0.3);
            (
                atms.label(g).unwrap(),
                atms.sorted_nogoods(),
                atms.plausibility(&Env::from_assumptions([a, b])),
            )
        };
        let first = run(&mut atms);

        atms.reset();
        // Vocabulary survives: same assumptions, singleton labels back,
        // premise label back, derived labels and nogoods gone.
        assert_eq!(atms.assumption_count(), 2);
        assert_eq!(atms.label(na).unwrap().len(), 1);
        assert_eq!(atms.label(na).unwrap()[0].env, Env::singleton(a));
        assert_eq!(atms.label(law).unwrap()[0].env, Env::empty());
        assert!(atms.label(g).unwrap().is_empty());
        assert!(atms.nogoods().is_empty());
        assert_eq!(atms.informants().count(), 0);
        assert_eq!(atms.kill_threshold(), 0.8);

        // Replaying the same board reproduces the same state exactly.
        let second = run(&mut atms);
        assert_eq!(first, second);
    }

    #[test]
    fn reset_is_idempotent_on_a_fresh_engine() {
        let mut atms = FuzzyAtms::new();
        let a = atms.add_assumption("a");
        atms.reset();
        atms.reset();
        let na = atms.assumption_node(a);
        assert_eq!(atms.label(na).unwrap().len(), 1);
        assert!(atms.nogoods().is_empty());
    }

    #[test]
    fn diagnoses_empty_when_no_conflicts() {
        let atms = FuzzyAtms::new();
        assert!(atms.ranked_diagnoses(usize::MAX, 10).is_empty());
    }

    // ----- pareto_minimize algebra (satellite: idempotence/orders) ----

    fn we(ids: &[u32], degree: f64) -> WeightedEnv {
        WeightedEnv {
            env: Env::from_ids(ids.iter().copied()),
            degree,
        }
    }

    #[test]
    fn pareto_minimize_is_idempotent() {
        let input = vec![
            we(&[0], 0.5),
            we(&[0, 1], 1.0),
            we(&[0, 1], 0.4), // dominated by {0}@0.5 (and {0,1}@1.0)
            we(&[2], 0.3),
            we(&[0, 2], 0.3), // dominated by {2}@0.3
        ];
        let once = pareto_minimize(input);
        let twice = pareto_minimize(once.clone());
        assert_eq!(once, twice);
        assert_eq!(once.len(), 3);
    }

    #[test]
    fn pareto_minimize_is_order_insensitive() {
        let items = vec![
            we(&[0], 0.5),
            we(&[1], 0.9),
            we(&[0, 1], 0.7),
            we(&[0, 1, 2], 0.7),
            we(&[2], 0.2),
            we(&[0], 0.5), // duplicate
        ];
        let forward = pareto_minimize(items.clone());
        let mut reversed = items.clone();
        reversed.reverse();
        let backward = pareto_minimize(reversed);
        let mut rotated = items;
        rotated.rotate_left(3);
        let rotated = pareto_minimize(rotated);
        assert_eq!(forward, backward);
        assert_eq!(forward, rotated);
    }

    #[test]
    fn incremental_merge_matches_batch_pareto() {
        // Drive the engine through many merges and check the final label is
        // exactly the batch Pareto front of all derivations.
        let mut atms = FuzzyAtms::new();
        let ids: Vec<Assumption> = (0..6)
            .map(|i| atms.add_assumption(format!("a{i}")))
            .collect();
        let g = atms.add_node("g");
        let derivations = [
            (vec![0usize, 1], 0.8),
            (vec![0], 0.4),
            (vec![1, 2], 0.9),
            (vec![0, 1, 2], 1.0),
            (vec![3], 0.6),
            (vec![3, 4], 0.5),
            (vec![5], 1.0),
        ];
        for (members, degree) in &derivations {
            let nodes: Vec<NodeRef> = members
                .iter()
                .map(|&i| atms.assumption_node(ids[i]))
                .collect();
            atms.justify_weighted(nodes, g, *degree, "derivation")
                .unwrap();
        }
        let batch = pareto_minimize(
            derivations
                .iter()
                .map(|(members, degree)| WeightedEnv {
                    env: Env::from_assumptions(members.iter().map(|&i| ids[i])),
                    degree: *degree,
                })
                .collect(),
        );
        let label = atms.label(g).unwrap();
        assert_eq!(label.len(), batch.len());
        for we in &batch {
            assert!(
                label
                    .iter()
                    .any(|l| l.env == we.env && (l.degree - we.degree).abs() < 1e-12),
                "missing {}@{}",
                we.env,
                we.degree
            );
        }
    }
}
