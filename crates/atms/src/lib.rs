//! Assumption-based truth maintenance for the FLAMES analog-diagnosis
//! system.
//!
//! Two engines live here:
//!
//! * [`Atms`] — a classic de Kleer ATMS (the paper's ref \[14\]): nodes carry
//!   *labels* (minimal sets of assumption [`Env`]ironments under which they
//!   hold), justifications propagate environments, and environments derived
//!   for the contradiction node become *nogoods* that prune every label.
//! * [`FuzzyAtms`] — the paper's §6 extension: justifications carry
//!   certainty degrees (possibilistic clauses, after the paper's ref \[13\]),
//!   environments carry the t-norm-combined degree of their derivation, and
//!   nogoods are *graded* — a partial conflict (degree < 1) does not erase
//!   an environment, it lowers its plausibility. This is what lets FLAMES
//!   rank candidate sets instead of drowning in them.
//!
//! Diagnosis candidates are minimal hitting sets of the nogood collection
//! ([`hitting::minimal_hitting_sets`]), ranked by the suspicion degrees the
//! graded nogoods induce ([`FuzzyAtms::ranked_diagnoses`]).
//!
//! # Example
//!
//! The paper's Fig. 5 nogoods and candidates:
//!
//! ```
//! use flames_atms::{hitting::minimal_hitting_sets, Env};
//!
//! // Nogood {r1, d1} and nogood {r2, d1} (assumption ids 0 = d1, 1 = r1, 2 = r2).
//! let nogoods = vec![Env::from_ids([1, 0]), Env::from_ids([2, 0])];
//! let mut candidates = minimal_hitting_sets(&nogoods, usize::MAX, 64);
//! candidates.sort_by_key(Env::len);
//! assert_eq!(candidates, vec![Env::from_ids([0]), Env::from_ids([1, 2])]);
//! // "CANDIDATES: [d1] or [r1, r2]".
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod assumptions;
mod atms;
mod candidates;
mod env;
mod error;
mod fuzzy_atms;
mod interner;
mod shard;

pub mod hitting;
pub mod possibilistic;

pub use assumptions::{Assumption, AssumptionPool};
pub use atms::{Atms, JustificationId, NodeId};
pub use candidates::CandidateSet;
pub use env::{minimize, Env, EnvIter};
pub use error::AtmsError;
pub use fuzzy_atms::{FuzzyAtms, NodeRef, Nogood, RankedDiagnosis, TNorm, WeightedEnv};
pub use interner::{EnvId, EnvTable, SubsetStats};
pub use shard::{ShardMap, ShardedAtms};

/// Convenient result alias for fallible ATMS operations.
pub type Result<T, E = AtmsError> = std::result::Result<T, E>;

// ---------------------------------------------------------------------
// Static thread-safety audit: the compile-once/serve-many split shares
// one compiled model (and thus the interned environment vocabulary)
// across worker threads, so every per-model type must be `Send + Sync`.
// All crates forbid `unsafe`, so these hold by construction; the
// assertions turn an accidental `Rc`/`RefCell` regression into a compile
// error instead of a distant build break in `flames-core`.
// ---------------------------------------------------------------------

const fn assert_send_sync<T: Send + Sync>() {}
const _: () = {
    assert_send_sync::<Env>();
    assert_send_sync::<EnvTable>();
    assert_send_sync::<Assumption>();
    assert_send_sync::<AssumptionPool>();
    assert_send_sync::<Atms>();
    assert_send_sync::<FuzzyAtms>();
    assert_send_sync::<Nogood>();
    assert_send_sync::<RankedDiagnosis>();
    assert_send_sync::<CandidateSet>();
    assert_send_sync::<ShardMap>();
    assert_send_sync::<ShardedAtms>();
};
