//! Incremental diagnosis-candidate maintenance (de Kleer's candidate
//! update).
//!
//! [`crate::hitting::minimal_hitting_sets`] re-enumerates Reiter's HS-tree
//! from the full conflict list on every call. De Kleer's ATMS instead
//! *maintains* the candidate set as conflicts arrive: a new conflict `N`
//! leaves every candidate that already hits it untouched, and each
//! candidate that misses `N` is split into its extensions by one element
//! of `N`. [`CandidateSet`] implements that update over the bitset
//! [`Env`] kernel, bounded by a maximum candidate cardinality (the
//! paper's "number of faults under consideration").
//!
//! The invariant, maintained install by install: `sets()` is exactly the
//! antichain of ⊆-minimal hitting sets of cardinality ≤ `max_size` of
//! every conflict installed so far — byte-for-byte the result of the
//! batch [`crate::hitting::minimal_hitting_sets`] oracle on the same
//! conflicts (up to ordering), which the property suite checks after
//! every single install.
//!
//! Why the update is this cheap: with `M` the current antichain and `N`
//! the new conflict,
//!
//! * candidates hitting `N` remain minimal hitting sets (*retained*);
//! * a candidate `c` missing `N` yields extensions `c ∪ {a}`, `a ∈ N`.
//!   Because `c ∩ N = ∅`, distinct `(c, a)` pairs yield distinct,
//!   pairwise-⊆-incomparable extensions — no cross-extension pruning is
//!   ever needed;
//! * an extension is non-minimal **iff** some retained candidate is a
//!   subset of it (a missing candidate can never dominate an extension of
//!   another missing candidate), so one subset sweep against the retained
//!   half — signature-prefiltered — completes the update.

use crate::env::Env;

/// Incrementally maintained minimal hitting sets of a conflict stream.
///
/// Starts from the single empty candidate ("nothing is broken"), exactly
/// like the batch oracle on an empty conflict list. Conflicts are
/// installed one at a time; empty conflicts are ignored (they would be
/// unhittable), matching the oracle's filter.
///
/// # Example
///
/// The paper's Fig. 5 candidates, maintained incrementally:
///
/// ```
/// use flames_atms::{CandidateSet, Env};
///
/// let mut cs = CandidateSet::new(usize::MAX);
/// cs.install(&Env::from_ids([1, 0])); // nogood {r1, d1}
/// cs.install(&Env::from_ids([2, 0])); // nogood {r2, d1}
/// let mut sets = cs.sets().to_vec();
/// sets.sort();
/// assert_eq!(sets, vec![Env::from_ids([0]), Env::from_ids([1, 2])]);
/// ```
#[derive(Debug, Clone)]
pub struct CandidateSet {
    max_size: usize,
    sets: Vec<Env>,
    /// Word signatures parallel to `sets` — the subset prefilter.
    sigs: Vec<u64>,
}

impl CandidateSet {
    /// An empty-conflict candidate set: the sole candidate is the empty
    /// environment. `max_size` bounds candidate cardinality.
    #[must_use]
    pub fn new(max_size: usize) -> Self {
        Self {
            max_size,
            sets: vec![Env::empty()],
            sigs: vec![0],
        }
    }

    /// The cardinality bound candidates are maintained under.
    #[must_use]
    pub fn max_size(&self) -> usize {
        self.max_size
    }

    /// The current candidates: the ⊆-minimal hitting sets (size ≤
    /// `max_size`) of every conflict installed so far. Unordered — sort
    /// before comparing against the batch oracle.
    #[must_use]
    pub fn sets(&self) -> &[Env] {
        &self.sets
    }

    /// Number of current candidates.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// True when no candidate of size ≤ `max_size` explains the conflicts.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// Forgets every installed conflict, restoring the fresh state.
    pub fn reset(&mut self) {
        self.sets.clear();
        self.sigs.clear();
        self.sets.push(Env::empty());
        self.sigs.push(0);
    }

    /// De Kleer's candidate-update step for one new conflict.
    ///
    /// Candidates intersecting `conflict` are retained; each candidate
    /// missing it (below the size bound) is split into its one-element
    /// extensions by members of `conflict`, and an extension survives
    /// unless a retained candidate is a subset of it. Empty conflicts are
    /// ignored.
    pub fn install(&mut self, conflict: &Env) {
        if conflict.is_empty() {
            return;
        }
        flames_obs::metrics().candidates_incremental.incr();
        let csig = conflict.signature();
        // Partition in place: retained candidates keep their slots at the
        // front, missing ones are moved out for splitting.
        let mut missing: Vec<Env> = Vec::new();
        let mut w = 0;
        for r in 0..self.sets.len() {
            // Signature prefilter: disjoint signatures prove a miss.
            if self.sigs[r] & csig != 0 && self.sets[r].intersects(conflict) {
                self.sets.swap(w, r);
                self.sigs.swap(w, r);
                w += 1;
            } else {
                missing.push(std::mem::take(&mut self.sets[r]));
            }
        }
        self.sets.truncate(w);
        self.sigs.truncate(w);
        if missing.is_empty() {
            return;
        }
        let retained = w;
        for c in &missing {
            if c.len() >= self.max_size {
                continue;
            }
            for a in conflict.iter() {
                let ext = c.with(a);
                let esig = ext.signature();
                // Only an (old) retained candidate can dominate an
                // extension; extensions are pairwise incomparable.
                let dominated = self.sets[..retained]
                    .iter()
                    .zip(&self.sigs[..retained])
                    .any(|(r, &rsig)| rsig & !esig == 0 && r.is_subset_of(&ext));
                if !dominated {
                    self.sets.push(ext);
                    self.sigs.push(esig);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hitting::minimal_hitting_sets;

    fn env(ids: &[u32]) -> Env {
        Env::from_ids(ids.iter().copied())
    }

    /// Sorted view for oracle comparisons.
    fn sorted(cs: &CandidateSet) -> Vec<Env> {
        let mut v = cs.sets().to_vec();
        v.sort();
        v
    }

    fn oracle(conflicts: &[Env], max_size: usize) -> Vec<Env> {
        let mut v = minimal_hitting_sets(conflicts, max_size, usize::MAX);
        v.sort();
        v
    }

    #[test]
    fn fresh_set_is_the_empty_candidate() {
        let cs = CandidateSet::new(3);
        assert_eq!(cs.sets(), &[Env::empty()]);
        assert_eq!(cs.len(), 1);
        assert!(!cs.is_empty());
        assert_eq!(cs.max_size(), 3);
        assert_eq!(sorted(&cs), oracle(&[], 3));
    }

    #[test]
    fn fig5_matches_oracle_after_every_install() {
        let conflicts = [env(&[1, 0]), env(&[2, 0])];
        let mut cs = CandidateSet::new(usize::MAX);
        for i in 0..conflicts.len() {
            cs.install(&conflicts[i]);
            assert_eq!(sorted(&cs), oracle(&conflicts[..=i], usize::MAX));
        }
        assert_eq!(sorted(&cs), vec![env(&[0]), env(&[1, 2])]);
    }

    #[test]
    fn empty_conflicts_are_ignored() {
        let mut cs = CandidateSet::new(2);
        cs.install(&Env::empty());
        assert_eq!(cs.sets(), &[Env::empty()]);
        cs.install(&env(&[1, 2]));
        let snapshot = sorted(&cs);
        cs.install(&Env::empty());
        assert_eq!(sorted(&cs), snapshot);
    }

    #[test]
    fn duplicate_and_superset_conflicts_are_no_ops() {
        let mut cs = CandidateSet::new(2);
        cs.install(&env(&[1, 2]));
        let snapshot = sorted(&cs);
        cs.install(&env(&[1, 2]));
        assert_eq!(sorted(&cs), snapshot);
        // Every candidate hitting {1,2} also hits its supersets.
        cs.install(&env(&[1, 2, 9]));
        assert_eq!(sorted(&cs), snapshot);
    }

    #[test]
    fn size_bound_prunes_like_the_oracle() {
        // Disjoint conflicts force pairs; a bound of 1 leaves nothing.
        let conflicts = [env(&[1, 2]), env(&[3, 4])];
        let mut cs = CandidateSet::new(1);
        for c in &conflicts {
            cs.install(c);
        }
        assert!(cs.is_empty());
        assert_eq!(sorted(&cs), oracle(&conflicts, 1));
        // A shared element survives a bound of 1.
        let shared = [env(&[1, 2]), env(&[1, 3])];
        let mut cs = CandidateSet::new(1);
        for c in &shared {
            cs.install(c);
        }
        assert_eq!(sorted(&cs), vec![env(&[1])]);
    }

    #[test]
    fn zero_size_bound_empties_on_first_conflict() {
        let mut cs = CandidateSet::new(0);
        cs.install(&env(&[1]));
        assert!(cs.is_empty());
        assert_eq!(sorted(&cs), oracle(&[env(&[1])], 0));
    }

    #[test]
    fn reset_restores_the_fresh_state() {
        let mut cs = CandidateSet::new(2);
        cs.install(&env(&[1, 2]));
        cs.install(&env(&[3]));
        cs.reset();
        assert_eq!(cs.sets(), &[Env::empty()]);
        cs.install(&env(&[4, 5]));
        assert_eq!(sorted(&cs), oracle(&[env(&[4, 5])], 2));
    }

    #[test]
    fn random_streams_match_oracle_at_every_step() {
        // Deterministic xorshift so the test is reproducible.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for max_size in [1, 2, 3, usize::MAX] {
            let mut conflicts: Vec<Env> = Vec::new();
            let mut cs = CandidateSet::new(max_size);
            for _ in 0..60 {
                let len = 1 + (next() % 4) as usize;
                let ids: Vec<u32> = (0..len).map(|_| (next() % 12) as u32).collect();
                let c = Env::from_ids(ids);
                conflicts.push(c.clone());
                cs.install(&c);
                assert_eq!(
                    sorted(&cs),
                    oracle(&conflicts, max_size),
                    "divergence at {} conflicts, max_size {max_size}",
                    conflicts.len()
                );
            }
        }
    }

    #[test]
    fn candidates_are_minimal_hitting_sets() {
        let conflicts = [env(&[1, 2, 3]), env(&[2, 4]), env(&[3, 4, 5]), env(&[1, 5])];
        let mut cs = CandidateSet::new(usize::MAX);
        for c in &conflicts {
            cs.install(c);
        }
        for s in cs.sets() {
            assert!(crate::hitting::is_hitting_set(s, &conflicts));
            for a in s.iter() {
                assert!(!crate::hitting::is_hitting_set(&s.without(a), &conflicts));
            }
        }
        // Pairwise incomparable, duplicate-free.
        for (i, p) in cs.sets().iter().enumerate() {
            for (j, q) in cs.sets().iter().enumerate() {
                if i != j {
                    assert!(!p.is_subset_of(q));
                }
            }
        }
    }
}
