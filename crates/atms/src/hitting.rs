//! Minimal hitting sets of conflict collections (Reiter's diagnosis
//! lattice).
//!
//! The ATMS turns discrepancies into *nogoods* — sets of assumptions that
//! cannot all hold. A **diagnosis candidate** is a set of components whose
//! failure explains every conflict, i.e. a set of assumptions hitting every
//! nogood; the interesting candidates are the ⊆-minimal ones (the paper's
//! Fig. 5: nogoods `{r1,d1}` and `{r2,d1}` yield candidates `[d1]` and
//! `[r1,r2]`).
//!
//! The search below is a depth-first tree construction in the spirit of
//! Reiter's HS-tree. Each branch carries a word-packed **hit mask** over
//! the conflict list, updated by OR-ing the chosen assumption's
//! precomputed conflict-occurrence mask — so "which conflict is still
//! unhit?" is a word scan instead of a set-intersection sweep, and the
//! found-set subsumption prune is prefiltered by cardinality and word
//! signature. Exponential in the worst case — which is exactly the
//! "explosion" the paper's graded nogoods are designed to curb; the `E6`
//! experiment measures this.

use crate::env::{minimize, Env};
use std::collections::HashMap;

/// Computes the ⊆-minimal hitting sets of `conflicts`.
///
/// * `max_size` bounds the cardinality of returned sets (the paper's
///   "number of faults under consideration"); use `usize::MAX` for all.
/// * `max_count` caps how many sets are produced (the search stops early);
///   use a generous cap for exact results.
///
/// Empty conflicts are ignored (they would be unhittable); with no
/// non-empty conflicts the unique minimal hitting set is the empty set.
#[must_use]
pub fn minimal_hitting_sets(conflicts: &[Env], max_size: usize, max_count: usize) -> Vec<Env> {
    minimal_hitting_sets_iter(conflicts, max_size, max_count)
}

/// Borrowing variant of [`minimal_hitting_sets`]: works directly on
/// references so callers holding environments inside larger records (e.g.
/// graded nogoods) need not clone them into a temporary slice.
#[must_use]
pub fn minimal_hitting_sets_iter<'a>(
    conflicts: impl IntoIterator<Item = &'a Env>,
    max_size: usize,
    max_count: usize,
) -> Vec<Env> {
    let mut conflicts: Vec<&Env> = conflicts.into_iter().filter(|c| !c.is_empty()).collect();
    if conflicts.is_empty() {
        return vec![Env::empty()];
    }
    // Smaller conflicts first: they branch less.
    conflicts.sort_by_key(|c| c.len());
    let n = conflicts.len();
    let mask_words = n.div_ceil(64);
    // Per-assumption occurrence mask: bit `i` set when the assumption
    // appears in conflict `i`. Choosing an assumption hits exactly the
    // conflicts in its mask.
    let mut occurrence: HashMap<u32, Vec<u64>> = HashMap::new();
    for (ci, c) in conflicts.iter().enumerate() {
        for a in c.iter() {
            let mask = occurrence
                .entry(a.index() as u32)
                .or_insert_with(|| vec![0u64; mask_words]);
            mask[ci / 64] |= 1u64 << (ci % 64);
        }
    }
    // All-ones over the `n` valid bits, for the word-level unhit scan.
    let mut full = vec![u64::MAX; mask_words];
    if !n.is_multiple_of(64) {
        full[mask_words - 1] = (1u64 << (n % 64)) - 1;
    }
    let mut found: Vec<Env> = Vec::new();
    let mut found_meta: Vec<(usize, u64)> = Vec::new(); // (len, sig)
    let mut stack: Vec<(Env, Vec<u64>)> = vec![(Env::empty(), vec![0u64; mask_words])];
    while let Some((partial, hit)) = stack.pop() {
        if found.len() >= max_count {
            break;
        }
        // Subsumption prune: a found hitting set inside `partial` makes
        // every extension non-minimal.
        let plen = partial.len();
        let psig = partial.signature();
        if found
            .iter()
            .zip(&found_meta)
            .any(|(f, &(flen, fsig))| flen <= plen && fsig & !psig == 0 && f.is_subset_of(&partial))
        {
            continue;
        }
        // First conflict not yet hit: first zero bit among the n valid ones.
        let unhit = hit.iter().zip(&full).enumerate().find_map(|(w, (&h, &f))| {
            let miss = !h & f;
            (miss != 0).then(|| w * 64 + miss.trailing_zeros() as usize)
        });
        match unhit {
            None => {
                found_meta.push((plen, psig));
                found.push(partial);
            }
            Some(ci) => {
                if plen >= max_size {
                    continue;
                }
                flames_obs::metrics().hitting_expansions.incr();
                for a in conflicts[ci].iter() {
                    let mut next_hit = hit.clone();
                    if let Some(mask) = occurrence.get(&(a.index() as u32)) {
                        for (nh, m) in next_hit.iter_mut().zip(mask) {
                            *nh |= m;
                        }
                    }
                    stack.push((partial.with(a), next_hit));
                }
            }
        }
    }
    minimize(found)
}

/// True if `candidate` hits every non-empty conflict.
#[must_use]
pub fn is_hitting_set(candidate: &Env, conflicts: &[Env]) -> bool {
    conflicts
        .iter()
        .filter(|c| !c.is_empty())
        .all(|c| candidate.intersects(c))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(ids: &[u32]) -> Env {
        Env::from_ids(ids.iter().copied())
    }

    #[test]
    fn fig5_candidates() {
        // Nogood {r1, d1}, nogood {r2, d1} with d1=0, r1=1, r2=2.
        let nogoods = vec![env(&[1, 0]), env(&[2, 0])];
        let mut hs = minimal_hitting_sets(&nogoods, usize::MAX, 1000);
        hs.sort();
        assert_eq!(hs, vec![env(&[0]), env(&[1, 2])]);
    }

    #[test]
    fn empty_conflict_list() {
        assert_eq!(minimal_hitting_sets(&[], 5, 5), vec![Env::empty()]);
        // Empty conflicts are skipped.
        assert_eq!(
            minimal_hitting_sets(&[Env::empty()], 5, 5),
            vec![Env::empty()]
        );
    }

    #[test]
    fn single_conflict_gives_singletons() {
        let hs = minimal_hitting_sets(&[env(&[3, 7, 9])], usize::MAX, 100);
        assert_eq!(hs.len(), 3);
        assert!(hs.contains(&env(&[3])));
        assert!(hs.contains(&env(&[7])));
        assert!(hs.contains(&env(&[9])));
    }

    #[test]
    fn disjoint_conflicts_cross_product() {
        let hs = minimal_hitting_sets(&[env(&[1, 2]), env(&[3, 4])], usize::MAX, 100);
        assert_eq!(hs.len(), 4);
        for s in &hs {
            assert_eq!(s.len(), 2);
            assert!(is_hitting_set(s, &[env(&[1, 2]), env(&[3, 4])]));
        }
    }

    #[test]
    fn shared_element_dominates() {
        // {1,2}, {1,3}, {1,4}: minimal sets are {1} and {2,3,4}.
        let conflicts = vec![env(&[1, 2]), env(&[1, 3]), env(&[1, 4])];
        let mut hs = minimal_hitting_sets(&conflicts, usize::MAX, 1000);
        hs.sort();
        assert_eq!(hs, vec![env(&[1]), env(&[2, 3, 4])]);
    }

    #[test]
    fn results_are_minimal_and_hitting() {
        let conflicts = vec![env(&[1, 2, 3]), env(&[2, 4]), env(&[3, 4, 5]), env(&[1, 5])];
        let hs = minimal_hitting_sets(&conflicts, usize::MAX, 10_000);
        for s in &hs {
            assert!(is_hitting_set(s, &conflicts), "{s} must hit all");
            for a in s.iter() {
                assert!(
                    !is_hitting_set(&s.without(a), &conflicts),
                    "{s} must be minimal"
                );
            }
        }
        // No duplicates, pairwise incomparable.
        for (i, p) in hs.iter().enumerate() {
            for (j, q) in hs.iter().enumerate() {
                if i != j {
                    assert!(!p.is_subset_of(q));
                }
            }
        }
    }

    #[test]
    fn size_bound_restricts_cardinality() {
        let conflicts = vec![env(&[1, 2]), env(&[3, 4])];
        let hs = minimal_hitting_sets(&conflicts, 1, 100);
        // No single assumption hits both conflicts.
        assert!(hs.is_empty());
        let hs = minimal_hitting_sets(&[env(&[1, 2]), env(&[1, 3])], 1, 100);
        assert_eq!(hs, vec![env(&[1])]);
    }

    #[test]
    fn count_cap_stops_early() {
        let conflicts = vec![env(&[1, 2, 3, 4, 5, 6, 7, 8])];
        let hs = minimal_hitting_sets(&conflicts, usize::MAX, 3);
        assert!(hs.len() <= 3);
        assert!(!hs.is_empty());
    }

    #[test]
    fn duplicate_conflicts_are_harmless() {
        let conflicts = vec![env(&[1, 2]), env(&[1, 2]), env(&[1, 2])];
        let mut hs = minimal_hitting_sets(&conflicts, usize::MAX, 100);
        hs.sort();
        assert_eq!(hs, vec![env(&[1]), env(&[2])]);
    }

    #[test]
    fn many_conflicts_cross_word_boundary() {
        // More than 64 conflicts exercises the multi-word hit masks.
        let conflicts: Vec<Env> = (0..70u32).map(|i| env(&[2 * i, 2 * i + 1])).collect();
        let hs = minimal_hitting_sets(&conflicts, usize::MAX, 4);
        assert!(!hs.is_empty());
        for s in &hs {
            assert!(is_hitting_set(s, &conflicts));
        }
        // The all-even choice is one minimal hitting set.
        let evens = Env::from_ids((0..70u32).map(|i| 2 * i));
        assert!(is_hitting_set(&evens, &conflicts));
    }

    #[test]
    fn iter_variant_borrows() {
        struct Holder {
            env: Env,
        }
        let hold = [Holder { env: env(&[1, 0]) }, Holder { env: env(&[2, 0]) }];
        let mut hs = minimal_hitting_sets_iter(hold.iter().map(|h| &h.env), usize::MAX, 1000);
        hs.sort();
        assert_eq!(hs, vec![env(&[0]), env(&[1, 2])]);
    }
}
