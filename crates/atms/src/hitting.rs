//! Minimal hitting sets of conflict collections (Reiter's diagnosis
//! lattice).
//!
//! The ATMS turns discrepancies into *nogoods* — sets of assumptions that
//! cannot all hold. A **diagnosis candidate** is a set of components whose
//! failure explains every conflict, i.e. a set of assumptions hitting every
//! nogood; the interesting candidates are the ⊆-minimal ones (the paper's
//! Fig. 5: nogoods `{r1,d1}` and `{r2,d1}` yield candidates `[d1]` and
//! `[r1,r2]`).
//!
//! The search below is a depth-first tree construction in the spirit of
//! Reiter's HS-tree with two standard prunings (skip elements already
//! hitting, discard branches subsumed by found sets), followed by a final
//! minimization pass. Exponential in the worst case — which is exactly the
//! "explosion" the paper's graded nogoods are designed to curb; the `E6`
//! experiment measures this.

use crate::env::{minimize, Env};

/// Computes the ⊆-minimal hitting sets of `conflicts`.
///
/// * `max_size` bounds the cardinality of returned sets (the paper's
///   "number of faults under consideration"); use `usize::MAX` for all.
/// * `max_count` caps how many sets are produced (the search stops early);
///   use a generous cap for exact results.
///
/// Empty conflicts are ignored (they would be unhittable); with no
/// non-empty conflicts the unique minimal hitting set is the empty set.
#[must_use]
pub fn minimal_hitting_sets(conflicts: &[Env], max_size: usize, max_count: usize) -> Vec<Env> {
    let mut conflicts: Vec<&Env> = conflicts.iter().filter(|c| !c.is_empty()).collect();
    if conflicts.is_empty() {
        return vec![Env::empty()];
    }
    // Smaller conflicts first: they branch less.
    conflicts.sort_by_key(|c| c.len());
    let mut found: Vec<Env> = Vec::new();
    let mut stack: Vec<Env> = vec![Env::empty()];
    while let Some(partial) = stack.pop() {
        if found.len() >= max_count {
            break;
        }
        // Subsumption prune: a found hitting set inside `partial` makes
        // every extension non-minimal.
        if found.iter().any(|f| f.is_subset_of(&partial)) {
            continue;
        }
        match conflicts.iter().find(|c| !partial.intersects(c)) {
            None => found.push(partial),
            Some(unhit) => {
                if partial.len() >= max_size {
                    continue;
                }
                for a in unhit.iter() {
                    stack.push(partial.with(a));
                }
            }
        }
    }
    minimize(found)
}

/// True if `candidate` hits every non-empty conflict.
#[must_use]
pub fn is_hitting_set(candidate: &Env, conflicts: &[Env]) -> bool {
    conflicts
        .iter()
        .filter(|c| !c.is_empty())
        .all(|c| candidate.intersects(c))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(ids: &[u32]) -> Env {
        Env::from_ids(ids.iter().copied())
    }

    #[test]
    fn fig5_candidates() {
        // Nogood {r1, d1}, nogood {r2, d1} with d1=0, r1=1, r2=2.
        let nogoods = vec![env(&[1, 0]), env(&[2, 0])];
        let mut hs = minimal_hitting_sets(&nogoods, usize::MAX, 1000);
        hs.sort();
        assert_eq!(hs, vec![env(&[0]), env(&[1, 2])]);
    }

    #[test]
    fn empty_conflict_list() {
        assert_eq!(minimal_hitting_sets(&[], 5, 5), vec![Env::empty()]);
        // Empty conflicts are skipped.
        assert_eq!(
            minimal_hitting_sets(&[Env::empty()], 5, 5),
            vec![Env::empty()]
        );
    }

    #[test]
    fn single_conflict_gives_singletons() {
        let hs = minimal_hitting_sets(&[env(&[3, 7, 9])], usize::MAX, 100);
        assert_eq!(hs.len(), 3);
        assert!(hs.contains(&env(&[3])));
        assert!(hs.contains(&env(&[7])));
        assert!(hs.contains(&env(&[9])));
    }

    #[test]
    fn disjoint_conflicts_cross_product() {
        let hs = minimal_hitting_sets(&[env(&[1, 2]), env(&[3, 4])], usize::MAX, 100);
        assert_eq!(hs.len(), 4);
        for s in &hs {
            assert_eq!(s.len(), 2);
            assert!(is_hitting_set(s, &[env(&[1, 2]), env(&[3, 4])]));
        }
    }

    #[test]
    fn shared_element_dominates() {
        // {1,2}, {1,3}, {1,4}: minimal sets are {1} and {2,3,4}.
        let conflicts = vec![env(&[1, 2]), env(&[1, 3]), env(&[1, 4])];
        let mut hs = minimal_hitting_sets(&conflicts, usize::MAX, 1000);
        hs.sort();
        assert_eq!(hs, vec![env(&[1]), env(&[2, 3, 4])]);
    }

    #[test]
    fn results_are_minimal_and_hitting() {
        let conflicts = vec![
            env(&[1, 2, 3]),
            env(&[2, 4]),
            env(&[3, 4, 5]),
            env(&[1, 5]),
        ];
        let hs = minimal_hitting_sets(&conflicts, usize::MAX, 10_000);
        for s in &hs {
            assert!(is_hitting_set(s, &conflicts), "{s} must hit all");
            for a in s.iter() {
                assert!(
                    !is_hitting_set(&s.without(a), &conflicts),
                    "{s} must be minimal"
                );
            }
        }
        // No duplicates, pairwise incomparable.
        for (i, p) in hs.iter().enumerate() {
            for (j, q) in hs.iter().enumerate() {
                if i != j {
                    assert!(!p.is_subset_of(q));
                }
            }
        }
    }

    #[test]
    fn size_bound_restricts_cardinality() {
        let conflicts = vec![env(&[1, 2]), env(&[3, 4])];
        let hs = minimal_hitting_sets(&conflicts, 1, 100);
        // No single assumption hits both conflicts.
        assert!(hs.is_empty());
        let hs = minimal_hitting_sets(&[env(&[1, 2]), env(&[1, 3])], 1, 100);
        assert_eq!(hs, vec![env(&[1])]);
    }

    #[test]
    fn count_cap_stops_early() {
        let conflicts = vec![env(&[1, 2, 3, 4, 5, 6, 7, 8])];
        let hs = minimal_hitting_sets(&conflicts, usize::MAX, 3);
        assert!(hs.len() <= 3);
        assert!(!hs.is_empty());
    }

    #[test]
    fn duplicate_conflicts_are_harmless() {
        let conflicts = vec![env(&[1, 2]), env(&[1, 2]), env(&[1, 2])];
        let mut hs = minimal_hitting_sets(&conflicts, usize::MAX, 100);
        hs.sort();
        assert_eq!(hs, vec![env(&[1]), env(&[2])]);
    }
}
