use std::fmt;

/// Errors produced by the truth-maintenance engines.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AtmsError {
    /// A node id did not belong to this ATMS instance.
    UnknownNode {
        /// The out-of-range node index.
        index: usize,
    },
    /// A justification referenced its own consequent among its antecedents.
    SelfJustification {
        /// The offending node index.
        index: usize,
    },
    /// A degree outside `[0, 1]` was supplied for a clause or nogood.
    InvalidDegree {
        /// The offending degree.
        degree_millis: i64,
    },
}

impl AtmsError {
    pub(crate) fn invalid_degree(degree: f64) -> Self {
        AtmsError::InvalidDegree {
            degree_millis: (degree * 1000.0) as i64,
        }
    }
}

impl fmt::Display for AtmsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AtmsError::UnknownNode { index } => write!(f, "unknown node index {index}"),
            AtmsError::SelfJustification { index } => {
                write!(f, "node {index} cannot justify itself")
            }
            AtmsError::InvalidDegree { degree_millis } => write!(
                f,
                "degree {} is outside the unit interval",
                *degree_millis as f64 / 1000.0
            ),
        }
    }
}

impl std::error::Error for AtmsError {}
