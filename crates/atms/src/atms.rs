use crate::assumptions::Assumption;
use crate::env::Env;
use crate::error::AtmsError;
use crate::interner::{DirtyQueue, EnvId, EnvTable};
use crate::Result;
use std::fmt;

/// Identifier of an ATMS node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The raw index of the node.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a justification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JustificationId(u32);

#[derive(Debug, Clone)]
struct Justification {
    antecedents: Vec<NodeId>,
    consequent: NodeId,
    informant: String,
}

#[derive(Debug, Clone)]
struct NodeData {
    /// Minimal consistent label as interned environment ids.
    label: Vec<EnvId>,
    /// Justifications in which this node is an antecedent.
    consumers: Vec<JustificationId>,
    is_contradiction: bool,
    name: String,
}

/// A classic assumption-based truth maintenance system (de Kleer, 1986 —
/// the paper's ref \[14\]).
///
/// * Nodes represent propositions; their *label* is the ⊆-minimal set of
///   consistent assumption environments under which they hold.
/// * [`Atms::justify`] records a Horn clause `antecedents ⇒ consequent` and
///   incrementally updates every affected label.
/// * Environments derived for a *contradiction node* become **nogoods**;
///   every label is pruned of environments that contain a nogood.
///
/// Labels are kept *sound* (every environment derives the node), *minimal*
/// (no environment contains another), and *consistent* (no environment
/// contains a nogood) — the classical invariants. Environments are
/// hash-consed through an [`EnvTable`], so labels are flat id vectors and
/// every subset test goes through the cached length/signature subsumption
/// index; installing a nogood prunes labels against the new nogood only.
///
/// # Example
///
/// ```
/// use flames_atms::{Atms, Env};
///
/// # fn main() -> Result<(), flames_atms::AtmsError> {
/// let mut atms = Atms::new();
/// let a = atms.add_assumption("a");
/// let b = atms.add_assumption("b");
/// let (na, _) = (atms.assumption_node(a), atms.assumption_node(b));
/// let goal = atms.add_node("goal");
/// atms.justify([na], goal, "a alone proves goal")?;
/// assert!(atms.holds_under(goal, &Env::singleton(a))?);
/// assert!(!atms.holds_under(goal, &Env::singleton(b))?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Atms {
    nodes: Vec<NodeData>,
    justifications: Vec<Justification>,
    /// Minimal nogood store, materialized for [`Atms::nogoods`].
    nogoods: Vec<Env>,
    /// Interned ids parallel to `nogoods`.
    nogood_ids: Vec<EnvId>,
    envs: EnvTable,
    assumption_nodes: Vec<NodeId>,
}

impl Atms {
    /// Creates an empty ATMS.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an ordinary node (initially labelled `{}` — not believed).
    pub fn add_node(&mut self, name: impl Into<String>) -> NodeId {
        self.push_node(name.into(), Vec::new(), false)
    }

    /// Adds a *premise* node: true in every environment (label `{{}}`).
    pub fn add_premise(&mut self, name: impl Into<String>) -> NodeId {
        let empty = self.envs.intern_owned(Env::empty());
        self.push_node(name.into(), vec![empty], false)
    }

    /// Adds a contradiction node: environments derived for it become
    /// nogoods.
    pub fn add_contradiction(&mut self, name: impl Into<String>) -> NodeId {
        let id = self.push_node(name.into(), Vec::new(), false);
        self.nodes[id.index()].is_contradiction = true;
        id
    }

    /// Creates a fresh assumption together with its node (labelled with the
    /// singleton environment).
    pub fn add_assumption(&mut self, name: impl Into<String>) -> Assumption {
        let a = Assumption(u32::try_from(self.assumption_nodes.len()).expect("< 2^32 assumptions"));
        let singleton = self.envs.intern_owned(Env::singleton(a));
        let node = self.push_node(name.into(), vec![singleton], false);
        self.assumption_nodes.push(node);
        a
    }

    /// The node asserting an assumption.
    ///
    /// # Panics
    ///
    /// Panics if the assumption does not belong to this ATMS.
    #[must_use]
    pub fn assumption_node(&self, a: Assumption) -> NodeId {
        self.assumption_nodes[a.index()]
    }

    /// Number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The name a node was created with.
    ///
    /// # Errors
    ///
    /// Returns [`AtmsError::UnknownNode`] for a foreign node id.
    pub fn node_name(&self, node: NodeId) -> Result<&str> {
        self.node(node).map(|n| n.name.as_str())
    }

    /// Records the Horn justification `antecedents ⇒ consequent` and
    /// propagates labels.
    ///
    /// # Errors
    ///
    /// Returns [`AtmsError::UnknownNode`] for a foreign node id, or
    /// [`AtmsError::SelfJustification`] when the consequent appears among
    /// its own antecedents.
    pub fn justify(
        &mut self,
        antecedents: impl IntoIterator<Item = NodeId>,
        consequent: NodeId,
        informant: impl Into<String>,
    ) -> Result<JustificationId> {
        let antecedents: Vec<NodeId> = antecedents.into_iter().collect();
        self.node(consequent)?;
        for &a in &antecedents {
            self.node(a)?;
            if a == consequent {
                return Err(AtmsError::SelfJustification {
                    index: consequent.index(),
                });
            }
        }
        let jid = JustificationId(u32::try_from(self.justifications.len()).expect("< 2^32"));
        for &a in &antecedents {
            self.nodes[a.index()].consumers.push(jid);
        }
        self.justifications.push(Justification {
            antecedents,
            consequent,
            informant: informant.into(),
        });
        self.propagate_from(jid);
        Ok(jid)
    }

    /// The informant string recorded with a justification.
    #[must_use]
    pub fn informant(&self, jid: JustificationId) -> &str {
        &self.justifications[jid.0 as usize].informant
    }

    /// The current label of a node: the minimal consistent environments
    /// under which it holds, materialized from the interned store (sorted
    /// by cardinality, then lexicographically).
    ///
    /// # Errors
    ///
    /// Returns [`AtmsError::UnknownNode`] for a foreign node id.
    pub fn label(&self, node: NodeId) -> Result<Vec<Env>> {
        Ok(self
            .node(node)?
            .label
            .iter()
            .map(|&id| self.envs.env(id).clone())
            .collect())
    }

    /// True if the node holds under the given environment (some label
    /// environment is a subset of `env`).
    ///
    /// # Errors
    ///
    /// Returns [`AtmsError::UnknownNode`] for a foreign node id.
    pub fn holds_under(&self, node: NodeId, env: &Env) -> Result<bool> {
        let sig = env.signature();
        Ok(self
            .node(node)?
            .label
            .iter()
            .any(|&id| self.envs.is_subset_of_raw(id, env, sig)))
    }

    /// The minimal nogoods discovered so far.
    #[must_use]
    pub fn nogoods(&self) -> &[Env] {
        &self.nogoods
    }

    /// True if `env` contains no nogood.
    #[must_use]
    pub fn is_consistent(&self, env: &Env) -> bool {
        let sig = env.signature();
        !self
            .nogood_ids
            .iter()
            .any(|&id| self.envs.is_subset_of_raw(id, env, sig))
    }

    /// Directly asserts an environment as contradictory (used when the
    /// conflict is detected outside the network, e.g. by the coincidence
    /// engine).
    pub fn add_nogood(&mut self, env: Env) {
        self.install_nogood(env);
    }

    /// De Kleer's *interpretation construction*: the maximal consistent
    /// assumption environments. By hitting-set duality an interpretation
    /// is exactly the complement of a minimal hitting set (diagnosis) of
    /// the nogoods; with no nogoods the sole interpretation is the full
    /// assumption set.
    ///
    /// `max_count` caps the enumeration.
    #[must_use]
    pub fn interpretations(&self, max_count: usize) -> Vec<Env> {
        let universe: Vec<Assumption> = (0..self.assumption_nodes.len() as u32)
            .map(Assumption)
            .collect();
        crate::hitting::minimal_hitting_sets(&self.nogoods, usize::MAX, max_count)
            .into_iter()
            .take(max_count)
            .map(|hs| Env::from_assumptions(universe.iter().copied().filter(|a| !hs.contains(*a))))
            .collect()
    }

    // ----- internals -------------------------------------------------

    fn node(&self, id: NodeId) -> Result<&NodeData> {
        self.nodes
            .get(id.index())
            .ok_or(AtmsError::UnknownNode { index: id.index() })
    }

    fn push_node(&mut self, name: String, label: Vec<EnvId>, is_contradiction: bool) -> NodeId {
        let id = NodeId(u32::try_from(self.nodes.len()).expect("< 2^32 nodes"));
        self.nodes.push(NodeData {
            label,
            consumers: Vec::new(),
            is_contradiction,
            name,
        });
        id
    }

    /// Label-update loop: recompute the consequent of `start` and ripple
    /// through consumers until a fixpoint. The dirty queue deduplicates
    /// pending justifications with a bitmask instead of scanning.
    fn propagate_from(&mut self, start: JustificationId) {
        let mut queue = DirtyQueue::new();
        queue.push(start.0);
        while let Some(jid) = queue.pop() {
            let (antecedents, consequent) = {
                let j = &self.justifications[jid as usize];
                (j.antecedents.clone(), j.consequent)
            };
            // Candidate environments: minimal unions across antecedent labels.
            let mut candidates = vec![Env::empty()];
            let mut dead = false;
            for &a in &antecedents {
                let label = &self.nodes[a.index()].label;
                if label.is_empty() {
                    dead = true;
                    break;
                }
                let mut next = Vec::with_capacity(candidates.len() * label.len());
                for c in &candidates {
                    for &eid in label {
                        next.push(c.union(self.envs.env(eid)));
                    }
                }
                candidates = crate::env::minimize(next);
            }
            if dead {
                continue;
            }
            candidates.retain(|e| self.is_consistent(e));
            if candidates.is_empty() {
                continue;
            }
            if self.nodes[consequent.index()].is_contradiction {
                for env in candidates {
                    self.install_nogood(env);
                }
                continue;
            }
            let changed = self.merge_label(consequent, candidates);
            if changed {
                for &c in &self.nodes[consequent.index()].consumers {
                    queue.push(c.0);
                }
            }
        }
    }

    /// Incrementally merges candidate environments into a node's label,
    /// keeping it minimal; returns whether the label gained any
    /// environment. No snapshot of the previous label is taken — each
    /// candidate is checked against the interned entries through the
    /// subsumption index.
    fn merge_label(&mut self, node: NodeId, candidates: Vec<Env>) -> bool {
        let mut changed = false;
        for env in candidates {
            let id = self.envs.intern_owned(env);
            let envs = &self.envs;
            let label = &mut self.nodes[node.index()].label;
            if label.iter().any(|&kid| envs.is_subset(kid, id)) {
                continue;
            }
            label.retain(|&kid| !envs.is_subset(id, kid));
            label.push(id);
            changed = true;
        }
        if changed {
            let envs = &self.envs;
            self.nodes[node.index()].label.sort_by(|&a, &b| {
                envs.card(a)
                    .cmp(&envs.card(b))
                    .then_with(|| envs.env(a).cmp(envs.env(b)))
            });
        }
        changed
    }

    /// Installs a new nogood (if not subsumed), keeps the store minimal,
    /// and prunes every label **against the new nogood only** — labels are
    /// invariantly consistent with the older nogoods already.
    fn install_nogood(&mut self, env: Env) {
        let ngid = self.envs.intern_owned(env);
        if self
            .nogood_ids
            .iter()
            .any(|&id| self.envs.is_subset(id, ngid))
        {
            return;
        }
        // Drop nogoods the new one subsumes (order-preserving compaction).
        let mut w = 0;
        for r in 0..self.nogoods.len() {
            if !self.envs.is_subset(ngid, self.nogood_ids[r]) {
                self.nogoods.swap(w, r);
                self.nogood_ids.swap(w, r);
                w += 1;
            }
        }
        self.nogoods.truncate(w);
        self.nogood_ids.truncate(w);
        self.nogoods.push(self.envs.env(ngid).clone());
        self.nogood_ids.push(ngid);
        let envs = &self.envs;
        for node in &mut self.nodes {
            node.label.retain(|&eid| !envs.is_subset(ngid, eid));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// a ∧ b ⇒ g; the label of g is {{a, b}}.
    #[test]
    fn conjunction_label() {
        let mut atms = Atms::new();
        let a = atms.add_assumption("a");
        let b = atms.add_assumption("b");
        let g = atms.add_node("g");
        let (na, nb) = (atms.assumption_node(a), atms.assumption_node(b));
        atms.justify([na, nb], g, "and").unwrap();
        assert_eq!(atms.label(g).unwrap(), &[Env::from_assumptions([a, b])]);
    }

    /// Two independent derivations produce a two-environment label; a
    /// subsuming derivation collapses it.
    #[test]
    fn label_minimality() {
        let mut atms = Atms::new();
        let a = atms.add_assumption("a");
        let b = atms.add_assumption("b");
        let g = atms.add_node("g");
        let (na, nb) = (atms.assumption_node(a), atms.assumption_node(b));
        atms.justify([na, nb], g, "both").unwrap();
        assert_eq!(atms.label(g).unwrap().len(), 1);
        // Now a alone suffices: {a} subsumes {a, b}.
        atms.justify([na], g, "a alone").unwrap();
        assert_eq!(atms.label(g).unwrap(), &[Env::singleton(a)]);
    }

    /// Chained justifications ripple labels through intermediate nodes.
    #[test]
    fn chained_propagation() {
        let mut atms = Atms::new();
        let a = atms.add_assumption("a");
        let b = atms.add_assumption("b");
        let mid = atms.add_node("mid");
        let out = atms.add_node("out");
        let (na, nb) = (atms.assumption_node(a), atms.assumption_node(b));
        atms.justify([na], mid, "a=>mid").unwrap();
        atms.justify([mid, nb], out, "mid&b=>out").unwrap();
        assert_eq!(atms.label(out).unwrap(), &[Env::from_assumptions([a, b])]);
        // Adding a second route to mid extends out's label too.
        let c = atms.add_assumption("c");
        let nc = atms.assumption_node(c);
        atms.justify([nc], mid, "c=>mid").unwrap();
        let out_label = atms.label(out).unwrap();
        assert_eq!(out_label.len(), 2);
        assert!(out_label.contains(&Env::from_assumptions([a, b])));
        assert!(out_label.contains(&Env::from_assumptions([c, b])));
    }

    /// Premises hold everywhere and vanish from environments.
    #[test]
    fn premises_are_free() {
        let mut atms = Atms::new();
        let p = atms.add_premise("ohm's law");
        let a = atms.add_assumption("a");
        let na = atms.assumption_node(a);
        let g = atms.add_node("g");
        atms.justify([p, na], g, "premise & a").unwrap();
        assert_eq!(atms.label(g).unwrap(), &[Env::singleton(a)]);
    }

    /// Contradiction nodes yield nogoods and prune labels.
    #[test]
    fn nogood_pruning() {
        let mut atms = Atms::new();
        let a = atms.add_assumption("a");
        let b = atms.add_assumption("b");
        let g = atms.add_node("g");
        let bottom = atms.add_contradiction("⊥");
        let (na, nb) = (atms.assumption_node(a), atms.assumption_node(b));
        atms.justify([na, nb], g, "and").unwrap();
        assert_eq!(atms.label(g).unwrap().len(), 1);
        // a ∧ b is contradictory.
        atms.justify([na, nb], bottom, "conflict").unwrap();
        assert_eq!(atms.nogoods(), &[Env::from_assumptions([a, b])]);
        assert!(atms.label(g).unwrap().is_empty());
        assert!(!atms.is_consistent(&Env::from_assumptions([a, b])));
        assert!(atms.is_consistent(&Env::singleton(a)));
    }

    /// New derivations landing inside an existing nogood are stillborn.
    #[test]
    fn derivation_blocked_by_existing_nogood() {
        let mut atms = Atms::new();
        let a = atms.add_assumption("a");
        let b = atms.add_assumption("b");
        let (na, nb) = (atms.assumption_node(a), atms.assumption_node(b));
        let bottom = atms.add_contradiction("⊥");
        atms.justify([na, nb], bottom, "conflict").unwrap();
        let g = atms.add_node("g");
        atms.justify([na, nb], g, "and").unwrap();
        assert!(atms.label(g).unwrap().is_empty());
    }

    /// Nogood set stays minimal: a subset nogood subsumes a superset one.
    #[test]
    fn nogood_minimality() {
        let mut atms = Atms::new();
        let a = atms.add_assumption("a");
        let b = atms.add_assumption("b");
        atms.add_nogood(Env::from_assumptions([a, b]));
        atms.add_nogood(Env::singleton(a));
        assert_eq!(atms.nogoods(), &[Env::singleton(a)]);
        // Installing a superset later is a no-op.
        atms.add_nogood(Env::from_assumptions([a, b]));
        assert_eq!(atms.nogoods().len(), 1);
    }

    #[test]
    fn holds_under_queries() {
        let mut atms = Atms::new();
        let a = atms.add_assumption("a");
        let b = atms.add_assumption("b");
        let g = atms.add_node("g");
        let na = atms.assumption_node(a);
        atms.justify([na], g, "a=>g").unwrap();
        assert!(atms.holds_under(g, &Env::from_assumptions([a, b])).unwrap());
        assert!(!atms.holds_under(g, &Env::singleton(b)).unwrap());
    }

    #[test]
    fn rejects_foreign_and_self_referential() {
        let mut atms = Atms::new();
        let g = atms.add_node("g");
        let bogus = NodeId(99);
        assert!(matches!(
            atms.justify([bogus], g, "x"),
            Err(AtmsError::UnknownNode { .. })
        ));
        assert!(matches!(
            atms.justify([g], g, "loop"),
            Err(AtmsError::SelfJustification { .. })
        ));
        assert!(atms.label(bogus).is_err());
        assert!(atms.node_name(bogus).is_err());
    }

    /// The de Kleer two-inverter standard: with assumptions {i1 ok, i2 ok}
    /// and observed inconsistency, the candidate space behaves.
    #[test]
    fn diagnosis_flavoured_scenario() {
        let mut atms = Atms::new();
        let ok1 = atms.add_assumption("ok(inv1)");
        let ok2 = atms.add_assumption("ok(inv2)");
        let (n1, n2) = (atms.assumption_node(ok1), atms.assumption_node(ok2));
        let out_predicted = atms.add_node("out=1");
        atms.justify([n1, n2], out_predicted, "model").unwrap();
        // Observation contradicts the prediction.
        let bottom = atms.add_contradiction("⊥");
        atms.justify([out_predicted], bottom, "out measured 0")
            .unwrap();
        assert_eq!(atms.nogoods().len(), 1);
        assert_eq!(atms.nogoods()[0], Env::from_assumptions([ok1, ok2]));
    }

    #[test]
    fn interpretations_are_maximal_consistent() {
        let mut atms = Atms::new();
        let a = atms.add_assumption("a");
        let b = atms.add_assumption("b");
        let c = atms.add_assumption("c");
        // No conflicts: the full set is the unique interpretation.
        assert_eq!(
            atms.interpretations(10),
            vec![Env::from_assumptions([a, b, c])]
        );
        // a ∧ b contradictory: interpretations {a, c} and {b, c}.
        atms.add_nogood(Env::from_assumptions([a, b]));
        let mut interps = atms.interpretations(10);
        interps.sort();
        assert_eq!(interps.len(), 2);
        assert!(interps.contains(&Env::from_assumptions([a, c])));
        assert!(interps.contains(&Env::from_assumptions([b, c])));
        for i in &interps {
            assert!(atms.is_consistent(i));
            // Maximality: adding any missing assumption breaks consistency.
            for x in [a, b, c] {
                if !i.contains(x) {
                    assert!(!atms.is_consistent(&i.with(x)));
                }
            }
        }
        // Cap respected.
        assert_eq!(atms.interpretations(1).len(), 1);
    }

    #[test]
    fn informant_is_retained() {
        let mut atms = Atms::new();
        let a = atms.add_assumption("a");
        let g = atms.add_node("g");
        let na = atms.assumption_node(a);
        let j = atms.justify([na], g, "because physics").unwrap();
        assert_eq!(atms.informant(j), "because physics");
        assert_eq!(atms.node_name(g).unwrap(), "g");
        assert_eq!(atms.node_count(), 2);
    }
}
