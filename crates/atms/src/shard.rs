//! Cross-shard translation and merging for the region-sharded engine.
//!
//! The sharded diagnoser (flames-core's `shard` module) runs one
//! [`crate::FuzzyAtms`] per board region group. Each shard interns only
//! the assumptions its own constraints mention, so its [`Env`] bitsets
//! stay narrow — the point of sharding on a single core is that every
//! env operation touches a fraction of the global vocabulary. Two pieces
//! of glue make the per-shard stores compose into one global diagnosis:
//!
//! * [`ShardMap`] — a bidirectional local↔global assumption renaming.
//!   Boundary environments are *globalized* through the source shard's
//!   map and *localized* through the target's, lazily extending the
//!   target vocabulary the first time a foreign assumption crosses the
//!   cut (classic rename-on-import, as in distributed ATMS labelings).
//! * [`ShardedAtms`] — a Pareto-minimal store of globalized nogoods with
//!   the same dominance rule as [`crate::FuzzyAtms`]'s internal store,
//!   plus the suspicion/ranking queries diagnosis reports need. Because
//!   Pareto minimality over a *set* of graded nogoods is order-invariant,
//!   the merged store — and hence the ranked candidates — do not depend
//!   on how the board was sharded.

use crate::assumptions::Assumption;
use crate::candidates::CandidateSet;
use crate::env::Env;
use crate::fuzzy_atms::{Nogood, RankedDiagnosis};

const UNBOUND: u32 = u32::MAX;

/// A bidirectional renaming between one shard's local assumption ids and
/// the global assumption vocabulary.
///
/// The map is per-session mutable (localizing a foreign boundary env may
/// extend it); sessions clone a base map captured at model build time and
/// restore it by `clone_from`, mirroring how propagator state snapshots
/// work.
#[derive(Debug, Clone, Default)]
pub struct ShardMap {
    to_global: Vec<u32>,
    to_local: Vec<u32>,
}

impl ShardMap {
    /// An empty map over a global vocabulary of `global_len` assumptions.
    #[must_use]
    pub fn new(global_len: usize) -> Self {
        Self {
            to_global: Vec::new(),
            to_local: vec![UNBOUND; global_len],
        }
    }

    /// Number of bound local assumptions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.to_global.len()
    }

    /// Whether no local assumption is bound yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.to_global.is_empty()
    }

    /// Binds `local ↔ global`. Local ids must be bound densely in order
    /// (the shard's interner hands them out that way).
    ///
    /// # Panics
    ///
    /// Panics if `local` is not the next unbound local id, if `global`
    /// is outside the global vocabulary, or if `global` is already
    /// bound.
    pub fn bind(&mut self, local: Assumption, global: Assumption) {
        assert_eq!(
            local.index(),
            self.to_global.len(),
            "local assumptions bind densely"
        );
        assert!(
            self.to_local[global.index()] == UNBOUND,
            "global assumption bound twice"
        );
        self.to_global.push(global.0);
        self.to_local[global.index()] = local.0;
    }

    /// The global assumption a local one renames, if bound.
    #[must_use]
    pub fn global_of(&self, local: Assumption) -> Option<Assumption> {
        self.to_global.get(local.index()).map(|&g| Assumption(g))
    }

    /// The local rename of a global assumption, if this shard knows it.
    #[must_use]
    pub fn local_of(&self, global: Assumption) -> Option<Assumption> {
        match self.to_local.get(global.index()) {
            Some(&l) if l != UNBOUND => Some(Assumption(l)),
            _ => None,
        }
    }

    /// Renames a local environment into the global vocabulary.
    ///
    /// # Panics
    ///
    /// Panics if the environment mentions an unbound local assumption —
    /// shard engines only derive envs over assumptions they interned, so
    /// that would be a wiring bug.
    #[must_use]
    pub fn globalize(&self, env: &Env) -> Env {
        Env::from_ids(env.iter().map(|a| {
            *self
                .to_global
                .get(a.index())
                .expect("local assumption is bound")
        }))
    }

    /// Renames a global environment into this shard's vocabulary,
    /// calling `register` to intern any assumption the shard has not
    /// seen yet (the callback returns the fresh local id, which is bound
    /// here).
    pub fn localize(
        &mut self,
        env: &Env,
        mut register: impl FnMut(Assumption) -> Assumption,
    ) -> Env {
        Env::from_ids(env.iter().map(|global| match self.local_of(global) {
            Some(local) => local.0,
            None => {
                let local = register(global);
                self.bind(local, global);
                local.0
            }
        }))
    }
}

/// A Pareto-minimal store of **globalized** graded nogoods merged from
/// every shard, with the suspicion and candidate-ranking queries the
/// diagnosis report needs.
///
/// Install semantics mirror [`crate::FuzzyAtms`]: a nogood is dropped if
/// an existing subset nogood is at least as strong, and installing one
/// drops the existing nogoods it dominates. Both rules are symmetric
/// over arrival order, so the final store is a function of the nogood
/// *set* — the shard-count invariance gate rests on this.
#[derive(Debug, Clone, Default)]
pub struct ShardedAtms {
    nogoods: Vec<Nogood>,
}

impl ShardedAtms {
    /// An empty store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a graded nogood over **global** assumption ids. Degrees
    /// ≤ 0 are ignored; degrees are clamped to 1. Returns whether the
    /// store changed (false when subsumed).
    pub fn add_nogood(&mut self, env: Env, degree: f64) -> bool {
        if degree <= 0.0 {
            return false;
        }
        let degree = degree.min(1.0);
        let subsumed = self
            .nogoods
            .iter()
            .any(|n| n.degree >= degree && n.env.is_subset_of(&env));
        if subsumed {
            return false;
        }
        self.nogoods
            .retain(|n| !(degree >= n.degree && env.is_subset_of(&n.env)));
        self.nogoods.push(Nogood { env, degree });
        true
    }

    /// The merged Pareto-minimal store.
    #[must_use]
    pub fn nogoods(&self) -> &[Nogood] {
        &self.nogoods
    }

    /// Number of stored nogoods.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nogoods.len()
    }

    /// Whether the store is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nogoods.is_empty()
    }

    /// Clears the store (per-board reset).
    pub fn clear(&mut self) {
        self.nogoods.clear();
    }

    /// The nogoods sorted by decreasing conflict degree, then
    /// lexicographically — the same presentation order as
    /// [`crate::FuzzyAtms::sorted_nogoods`].
    #[must_use]
    pub fn sorted_nogoods(&self) -> Vec<Nogood> {
        let mut ns = self.nogoods.clone();
        ns.sort_by(|a, b| {
            b.degree
                .partial_cmp(&a.degree)
                .expect("degrees are finite")
                .then_with(|| a.env.cmp(&b.env))
        });
        ns
    }

    /// Suspicion of a global assumption: the strongest merged conflict
    /// implicating it (0 when none does).
    #[must_use]
    pub fn suspicion(&self, a: Assumption) -> f64 {
        self.nogoods
            .iter()
            .filter(|n| n.env.contains(a))
            .map(|n| n.degree)
            .fold(0.0, f64::max)
    }

    /// Diagnosis candidates over the merged store: minimal hitting sets
    /// ranked by decreasing degree, then size, then lexicographically —
    /// the same rule as [`crate::FuzzyAtms::ranked_diagnoses`], so a
    /// 1-shard run and the unsharded engine agree byte for byte.
    #[must_use]
    pub fn ranked_diagnoses(&self, max_size: usize, max_count: usize) -> Vec<RankedDiagnosis> {
        let mut set = CandidateSet::new(max_size);
        for n in &self.nogoods {
            set.install(&n.env);
        }
        let mut out: Vec<RankedDiagnosis> = set
            .sets()
            .iter()
            .filter(|env| !env.is_empty())
            .map(|env| {
                let degree = env.iter().map(|a| self.suspicion(a)).fold(1.0, f64::min);
                RankedDiagnosis {
                    env: env.clone(),
                    degree,
                }
            })
            .collect();
        out.sort_by(|p, q| {
            q.degree
                .partial_cmp(&p.degree)
                .expect("degrees are finite")
                .then_with(|| p.env.len().cmp(&q.env.len()))
                .then_with(|| p.env.cmp(&q.env))
        });
        out.truncate(max_count);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_round_trips_envs() {
        let mut map = ShardMap::new(10);
        map.bind(Assumption(0), Assumption(7));
        map.bind(Assumption(1), Assumption(3));
        let local = Env::from_ids([0, 1]);
        let global = map.globalize(&local);
        assert_eq!(global, Env::from_ids([3, 7]));
        let mut next = 2;
        let back = map.localize(&global, |_| {
            panic!("no registration needed: {next}");
        });
        assert_eq!(back, local);
        // A foreign global id triggers lazy registration.
        let foreign = Env::from_ids([5]);
        let localized = map.localize(&foreign, |g| {
            assert_eq!(g, Assumption(5));
            let l = Assumption(next);
            next += 1;
            l
        });
        assert_eq!(localized, Env::from_ids([2]));
        assert_eq!(map.global_of(Assumption(2)), Some(Assumption(5)));
        assert_eq!(map.local_of(Assumption(5)), Some(Assumption(2)));
    }

    #[test]
    fn store_is_pareto_minimal_and_order_invariant() {
        let a = (Env::from_ids([0, 1]), 0.6);
        let b = (Env::from_ids([0]), 0.8); // dominates a
        let c = (Env::from_ids([2]), 0.3);
        let mut orders = Vec::new();
        for perm in [[&a, &b, &c], [&b, &a, &c], [&c, &a, &b]] {
            let mut store = ShardedAtms::new();
            for (env, d) in perm {
                store.add_nogood(env.clone(), *d);
            }
            orders.push(store.sorted_nogoods());
        }
        assert_eq!(orders[0], orders[1]);
        assert_eq!(orders[1], orders[2]);
        assert_eq!(orders[0].len(), 2, "dominated nogood must be dropped");
    }

    #[test]
    fn duplicate_installs_are_subsumed() {
        let mut store = ShardedAtms::new();
        assert!(store.add_nogood(Env::from_ids([1, 2]), 0.5));
        assert!(!store.add_nogood(Env::from_ids([1, 2]), 0.5));
        assert!(!store.add_nogood(Env::from_ids([1, 2, 3]), 0.4));
        assert!(store.add_nogood(Env::from_ids([1, 2]), 0.9));
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn ranking_matches_the_fuzzy_engine_rule() {
        let mut store = ShardedAtms::new();
        store.add_nogood(Env::from_ids([1, 0]), 1.0);
        store.add_nogood(Env::from_ids([2, 0]), 0.5);
        let ranked = store.ranked_diagnoses(usize::MAX, 64);
        // Fig. 5: [d1]@1.0 outranks [r1, r2]@0.5.
        assert_eq!(ranked[0].env, Env::from_ids([0]));
        assert!((ranked[0].degree - 1.0).abs() < 1e-12);
        assert_eq!(ranked[1].env, Env::from_ids([1, 2]));
        assert!((ranked[1].degree - 0.5).abs() < 1e-12);
    }
}
