//! Tier-1 invariant suite for the fuzzy ATMS kernel: label soundness
//! and Pareto-minimality, nogood-store minimality, monotonicity of
//! plausibility/suspicion under nogood strengthening, and invariance of
//! every observable under the installation order of justifications and
//! nogoods.
//!
//! Unlike `props.rs` (the large randomized suite gated behind
//! `--features proptest`), these checks run on every `cargo test`: they
//! are the contracts the propagation engine and the serving layer lean
//! on, so regressions here must surface in tier-1.

use flames_atms::{Assumption, Env, FuzzyAtms, NodeRef};

/// SplitMix64 — the same mixer as `flames_bench::rng`, inlined because
/// integration tests cannot depend on the bench crate (it depends on
/// this one).
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }

    fn below(&mut self, bound: u64) -> u64 {
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// One deferred build step. All nodes are created up front, so the ops
/// can be applied in *any* order — late justifications re-propagate
/// through already-installed consumers, which is exactly the machinery
/// the interleaving tests exercise.
#[derive(Clone)]
enum Op {
    Justify {
        antecedents: Vec<NodeRef>,
        consequent: NodeRef,
        degree: f64,
    },
    Nogood(Env, f64),
}

/// A generated scenario: an assumption universe, pre-created derived
/// nodes, and a list of build ops referencing them.
struct Scenario {
    atms: FuzzyAtms,
    assumptions: Vec<Assumption>,
    nodes: Vec<NodeRef>,
    ops: Vec<Op>,
}

fn random_scenario(rng: &mut Rng) -> Scenario {
    let mut atms = FuzzyAtms::new();
    let n_assumptions = 4 + rng.below(5) as usize;
    let assumptions: Vec<Assumption> = (0..n_assumptions)
        .map(|i| atms.add_assumption(format!("a{i}")))
        .collect();
    let mut referable: Vec<NodeRef> = assumptions
        .iter()
        .map(|&a| atms.assumption_node(a))
        .collect();
    let mut nodes = Vec::new();
    let mut ops = Vec::new();
    let n_rules = 3 + rng.below(6) as usize;
    for j in 0..n_rules {
        let consequent = atms.add_node(format!("n{j}"));
        let n_ante = 1 + rng.below(3) as usize;
        let mut antecedents: Vec<NodeRef> = (0..n_ante)
            .map(|_| referable[rng.below(referable.len() as u64) as usize])
            .collect();
        antecedents.dedup();
        let degree = if rng.below(2) == 0 {
            1.0
        } else {
            rng.range(0.3, 1.0)
        };
        ops.push(Op::Justify {
            antecedents,
            consequent,
            degree,
        });
        referable.push(consequent);
        nodes.push(consequent);
    }
    let n_nogoods = 1 + rng.below(5) as usize;
    for _ in 0..n_nogoods {
        let len = 1 + rng.below(3) as usize;
        let env = Env::from_assumptions(
            (0..len).map(|_| assumptions[rng.below(n_assumptions as u64) as usize]),
        );
        let degree = if rng.below(2) == 0 {
            1.0
        } else {
            rng.range(0.2, 0.95)
        };
        ops.push(Op::Nogood(env, degree));
    }
    Scenario {
        atms,
        assumptions,
        nodes,
        ops,
    }
}

/// Applies the ops in the given index order.
fn apply(scenario: &mut Scenario, order: &[usize]) {
    for &i in order {
        match scenario.ops[i].clone() {
            Op::Justify {
                antecedents,
                consequent,
                degree,
            } => scenario
                .atms
                .justify_weighted(antecedents, consequent, degree, format!("op{i}"))
                .expect("well-formed rule"),
            Op::Nogood(env, degree) => scenario.atms.add_nogood(env, degree),
        }
    }
}

fn shuffled(rng: &mut Rng, n: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        order.swap(i, rng.below(i as u64 + 1) as usize);
    }
    order
}

/// Sorted `(env, degree)` view of a label, for structural comparison.
fn label_key(atms: &FuzzyAtms, node: NodeRef) -> Vec<(Env, u64)> {
    let mut key: Vec<(Env, u64)> = atms
        .label(node)
        .expect("known node")
        .into_iter()
        .map(|w| (w.env, w.degree.to_bits()))
        .collect();
    key.sort();
    key
}

const CASES: usize = 50;

/// After an arbitrary interleaving of justification and nogood
/// installs: every label is an antichain under (⊆, ≥ degree), every
/// label environment survives the kill threshold, and `holds_degree` is
/// positive on each of its own label environments.
#[test]
fn labels_stay_minimal_and_sound_under_interleaved_installs() {
    let mut rng = Rng(0x1A75_0001);
    for case in 0..CASES {
        let mut s = random_scenario(&mut rng);
        let order = shuffled(&mut rng, s.ops.len());
        apply(&mut s, &order);
        let kill = s.atms.kill_threshold();
        for &node in &s.nodes {
            let label = s.atms.label(node).expect("known node");
            for (i, a) in label.iter().enumerate() {
                // Soundness: the environment is alive (no killing nogood
                // inside it) and the node actually holds under it.
                for n in s.atms.nogoods() {
                    assert!(
                        !(n.degree >= kill && n.env.is_subset_of(&a.env)),
                        "case {case}: label env {} contains killing nogood {}",
                        a.env,
                        n.env
                    );
                }
                let holds = s.atms.holds_degree(node, &a.env).expect("known node");
                assert!(
                    holds > 0.0,
                    "case {case}: node does not hold under its own label env"
                );
                // Pareto-minimality: no other entry is at least as
                // general and at least as certain.
                for (j, b) in label.iter().enumerate() {
                    if i != j {
                        assert!(
                            !(b.env.is_subset_of(&a.env) && b.degree >= a.degree),
                            "case {case}: label entry ({}, {}) dominated by ({}, {})",
                            a.env,
                            a.degree,
                            b.env,
                            b.degree
                        );
                    }
                }
            }
        }
    }
}

/// The nogood store is Pareto-minimal: no recorded conflict has a
/// subset conflict that is at least as strong.
#[test]
fn nogood_store_is_an_antichain() {
    let mut rng = Rng(0x1A75_0002);
    for case in 0..CASES {
        let mut s = random_scenario(&mut rng);
        let order = shuffled(&mut rng, s.ops.len());
        apply(&mut s, &order);
        let nogoods = s.atms.nogoods();
        for (i, a) in nogoods.iter().enumerate() {
            for (j, b) in nogoods.iter().enumerate() {
                if i != j {
                    assert!(
                        !(b.env.is_subset_of(&a.env) && b.degree >= a.degree),
                        "case {case}: nogood ({}, {}) dominated by ({}, {})",
                        a.env,
                        a.degree,
                        b.env,
                        b.degree
                    );
                }
            }
        }
    }
}

/// Strengthening the nogood store — new conflicts, or higher degrees on
/// existing ones — can only lower plausibility and `holds_degree`, and
/// every previously recorded conflict stays entailed. (Raw `suspicion`
/// is deliberately *not* claimed monotone: a fresh `{a}`-nogood at
/// degree 1 subsumes a weaker `{a, b}` out of the Pareto-minimal store,
/// correctly dropping b's suspicion — the conflict is explained by `a`
/// alone, so `b` stops being a suspect.)
#[test]
fn degrees_are_monotone_under_nogood_strengthening() {
    let mut rng = Rng(0x1A75_0003);
    for case in 0..CASES {
        let mut s = random_scenario(&mut rng);
        let order: Vec<usize> = (0..s.ops.len()).collect();
        apply(&mut s, &order);

        // Probe envs: a sample of subsets of the assumption universe.
        let probes: Vec<Env> = (0..12)
            .map(|_| {
                let len = 1 + rng.below(4) as usize;
                Env::from_assumptions(
                    (0..len).map(|_| s.assumptions[rng.below(s.assumptions.len() as u64) as usize]),
                )
            })
            .collect();
        let plaus_before: Vec<f64> = probes.iter().map(|e| s.atms.plausibility(e)).collect();
        let nogoods_before: Vec<(Env, f64)> = s
            .atms
            .nogoods()
            .iter()
            .map(|n| (n.env.clone(), n.degree))
            .collect();
        let holds_before: Vec<f64> = s
            .nodes
            .iter()
            .flat_map(|&n| probes.iter().map(move |e| (n, e)).collect::<Vec<_>>())
            .map(|(n, e)| s.atms.holds_degree(n, e).expect("known node"))
            .collect();

        // Strengthen: re-install existing nogoods with higher degrees
        // and add a few fresh ones.
        let existing: Vec<Env> = s.atms.nogoods().iter().map(|n| n.env.clone()).collect();
        for env in existing {
            s.atms.add_nogood(env, 1.0);
        }
        for _ in 0..3 {
            let len = 1 + rng.below(3) as usize;
            let env = Env::from_assumptions(
                (0..len).map(|_| s.assumptions[rng.below(s.assumptions.len() as u64) as usize]),
            );
            s.atms.add_nogood(env, rng.range(0.5, 1.0));
        }

        for (probe, before) in probes.iter().zip(&plaus_before) {
            assert!(
                s.atms.plausibility(probe) <= before + 1e-12,
                "case {case}: plausibility increased under strengthening"
            );
        }
        for (env, degree) in &nogoods_before {
            // `1 − plausibility(env)` is the strongest conflict the
            // current store entails over `env` — strengthening (plus
            // Pareto re-minimization) must never forget a conflict.
            assert!(
                1.0 - s.atms.plausibility(env) >= degree - 1e-12,
                "case {case}: nogood ({env}, {degree}) no longer entailed"
            );
        }
        let mut k = 0;
        for &n in &s.nodes {
            for probe in &probes {
                assert!(
                    s.atms.holds_degree(n, probe).expect("known node") <= holds_before[k] + 1e-12,
                    "case {case}: holds_degree increased under strengthening"
                );
                k += 1;
            }
        }
    }
}

/// Every observable — the nogood store, each node's weighted label, and
/// plausibility over probe environments — is independent of the order
/// in which the same justifications and nogoods were installed.
#[test]
fn observables_are_invariant_under_install_order() {
    let mut rng = Rng(0x1A75_0004);
    for case in 0..CASES {
        let reference = random_scenario(&mut rng);
        // Rebuild the *same* scenario twice from the shared op list.
        // `random_scenario` consumed rng draws, so clone its structure
        // instead of regenerating.
        let build = |order: &[usize]| {
            let mut atms = FuzzyAtms::new();
            let assumptions: Vec<Assumption> = (0..reference.assumptions.len())
                .map(|i| atms.add_assumption(format!("a{i}")))
                .collect();
            assert_eq!(assumptions, reference.assumptions);
            let nodes: Vec<NodeRef> = (0..reference.nodes.len())
                .map(|j| atms.add_node(format!("n{j}")))
                .collect();
            assert_eq!(nodes, reference.nodes);
            let mut s = Scenario {
                atms,
                assumptions,
                nodes,
                ops: reference.ops.clone(),
            };
            apply(&mut s, order);
            s
        };
        let forward: Vec<usize> = (0..reference.ops.len()).collect();
        let a = build(&forward);
        let b = build(&shuffled(&mut rng, reference.ops.len()));

        let key = |atms: &FuzzyAtms| {
            let mut ns: Vec<(Env, u64)> = atms
                .nogoods()
                .iter()
                .map(|n| (n.env.clone(), n.degree.to_bits()))
                .collect();
            ns.sort();
            ns
        };
        assert_eq!(
            key(&a.atms),
            key(&b.atms),
            "case {case}: nogood stores diverge"
        );
        for (&na, &nb) in a.nodes.iter().zip(&b.nodes) {
            assert_eq!(
                label_key(&a.atms, na),
                label_key(&b.atms, nb),
                "case {case}: labels diverge"
            );
        }
        for _ in 0..12 {
            let len = rng.below(5) as usize;
            let probe = Env::from_assumptions(
                (0..len).map(|_| a.assumptions[rng.below(a.assumptions.len() as u64) as usize]),
            );
            assert_eq!(
                a.atms.plausibility(&probe).to_bits(),
                b.atms.plausibility(&probe).to_bits(),
                "case {case}: plausibility diverges on {probe}"
            );
        }
    }
}
