//! Property-based tests for the ATMS engines: label invariants (soundness,
//! minimality, consistency), hitting-set correctness, and the grading laws
//! of the fuzzy extension.

use flames_atms::hitting::{is_hitting_set, minimal_hitting_sets};
use flames_atms::possibilistic::{Literal, PossibilisticBase};
use flames_atms::{minimize, Atms, Env, FuzzyAtms};
use proptest::prelude::*;

fn env_strategy(universe: u32) -> impl Strategy<Value = Env> {
    prop::collection::btree_set(0..universe, 0..5)
        .prop_map(Env::from_ids)
}

fn conflicts_strategy(universe: u32, n: usize) -> impl Strategy<Value = Vec<Env>> {
    prop::collection::vec(
        prop::collection::btree_set(0..universe, 1..4).prop_map(Env::from_ids),
        0..n,
    )
}

proptest! {
    #[test]
    fn union_is_commutative_associative(a in env_strategy(12), b in env_strategy(12), c in env_strategy(12)) {
        prop_assert_eq!(a.union(&b), b.union(&a));
        prop_assert_eq!(a.union(&b).union(&c), a.union(&b.union(&c)));
        prop_assert_eq!(a.union(&a), a.clone());
    }

    #[test]
    fn subset_iff_union_absorbs(a in env_strategy(12), b in env_strategy(12)) {
        prop_assert_eq!(a.is_subset_of(&b), a.union(&b) == b);
    }

    #[test]
    fn minimize_yields_antichain(envs in prop::collection::vec(env_strategy(10), 0..12)) {
        let min = minimize(envs.clone());
        // Pairwise incomparable.
        for (i, p) in min.iter().enumerate() {
            for (j, q) in min.iter().enumerate() {
                if i != j {
                    prop_assert!(!p.is_subset_of(q));
                }
            }
        }
        // Every input is covered by some kept element.
        for e in &envs {
            prop_assert!(min.iter().any(|m| m.is_subset_of(e)));
        }
    }

    #[test]
    fn hitting_sets_hit_and_are_minimal(conflicts in conflicts_strategy(8, 6)) {
        let hs = minimal_hitting_sets(&conflicts, usize::MAX, 10_000);
        prop_assert!(!hs.is_empty() || conflicts.iter().any(|c| !c.is_empty()));
        for s in &hs {
            prop_assert!(is_hitting_set(s, &conflicts));
            for a in s.iter() {
                prop_assert!(!is_hitting_set(&s.without(a), &conflicts));
            }
        }
        // Antichain.
        for (i, p) in hs.iter().enumerate() {
            for (j, q) in hs.iter().enumerate() {
                if i != j {
                    prop_assert!(!p.is_subset_of(q));
                }
            }
        }
    }

    #[test]
    fn hitting_sets_complete_for_small_universes(conflicts in conflicts_strategy(5, 4)) {
        // Brute-force all subsets of the universe and compare.
        let hs = minimal_hitting_sets(&conflicts, usize::MAX, 100_000);
        let live: Vec<&Env> = conflicts.iter().filter(|c| !c.is_empty()).collect();
        for mask in 0u32..32 {
            let candidate = Env::from_ids((0..5).filter(|b| mask & (1 << b) != 0));
            let hits = live.iter().all(|c| candidate.intersects(c));
            if hits {
                // Some returned minimal set must be inside it.
                prop_assert!(hs.iter().any(|m| m.is_subset_of(&candidate)),
                    "missing cover for {candidate}");
            }
        }
    }

    #[test]
    fn atms_labels_stay_consistent_and_minimal(
        just_pairs in prop::collection::vec((0u32..6, 0u32..6), 1..8),
        nogood in prop::collection::btree_set(0u32..6, 1..3),
    ) {
        let mut atms = Atms::new();
        let assumptions: Vec<_> = (0..6).map(|i| atms.add_assumption(format!("a{i}"))).collect();
        let goal = atms.add_node("goal");
        let bottom = atms.add_contradiction("⊥");
        for (x, y) in &just_pairs {
            let nx = atms.assumption_node(assumptions[*x as usize]);
            let ny = atms.assumption_node(assumptions[*y as usize]);
            if nx == ny {
                atms.justify([nx], goal, "single").unwrap();
            } else {
                atms.justify([nx, ny], goal, "pair").unwrap();
            }
        }
        let ng: Vec<_> = nogood.iter().map(|&i| assumptions[i as usize]).collect();
        let ng_nodes: Vec<_> = ng.iter().map(|&a| atms.assumption_node(a)).collect();
        atms.justify(ng_nodes, bottom, "conflict").unwrap();

        let label = atms.label(goal).unwrap();
        // Consistency: no label environment contains a nogood.
        for e in label {
            prop_assert!(atms.is_consistent(e));
        }
        // Minimality: antichain.
        for (i, p) in label.iter().enumerate() {
            for (j, q) in label.iter().enumerate() {
                if i != j {
                    prop_assert!(!p.is_subset_of(q));
                }
            }
        }
    }

    #[test]
    fn fuzzy_degrees_never_leave_unit_interval(
        degrees in prop::collection::vec(0.05f64..1.0, 1..6),
    ) {
        let mut atms = FuzzyAtms::new();
        let a = atms.add_assumption("a");
        let mut prev = atms.assumption_node(a);
        for (i, d) in degrees.iter().enumerate() {
            let next = atms.add_node(format!("n{i}"));
            atms.justify_weighted([prev], next, *d, "chain").unwrap();
            prev = next;
        }
        let label = atms.label(prev).unwrap();
        prop_assert_eq!(label.len(), 1);
        let expected: f64 = degrees.iter().copied().fold(1.0, f64::min);
        prop_assert!((label[0].degree - expected).abs() < 1e-12);
    }

    #[test]
    fn plausibility_is_monotone_in_nogoods(
        base in prop::collection::btree_set(0u32..6, 1..4),
        d1 in 0.1f64..1.0,
        d2 in 0.1f64..1.0,
    ) {
        let mut atms = FuzzyAtms::new();
        for i in 0..6 {
            atms.add_assumption(format!("a{i}"));
        }
        let env = Env::from_ids(base.iter().copied());
        let before = atms.plausibility(&env);
        prop_assert_eq!(before, 1.0);
        atms.add_nogood(env.clone(), d1);
        let mid = atms.plausibility(&env);
        atms.add_nogood(env.clone(), d2);
        let after = atms.plausibility(&env);
        // More/stronger conflicts never raise plausibility.
        prop_assert!(mid <= before + 1e-12);
        prop_assert!(after <= mid + 1e-12);
        prop_assert!((after - (1.0 - d1.max(d2))).abs() < 1e-12);
    }

    #[test]
    fn ranked_diagnoses_are_hitting_sets(conflict_data in prop::collection::vec(
        (prop::collection::btree_set(0u32..6, 1..4), 0.1f64..1.0), 1..5)) {
        let mut atms = FuzzyAtms::new();
        for i in 0..6 {
            atms.add_assumption(format!("a{i}"));
        }
        let mut envs = Vec::new();
        for (ids, d) in &conflict_data {
            let env = Env::from_ids(ids.iter().copied());
            envs.push(env.clone());
            atms.add_nogood(env, *d);
        }
        let diags = atms.ranked_diagnoses(usize::MAX, 10_000);
        // Diagnoses hit all *retained* nogoods; the store is Pareto-minimal
        // so hitting the store hits every reported conflict.
        let store: Vec<Env> = atms.nogoods().iter().map(|n| n.env.clone()).collect();
        for d in &diags {
            prop_assert!(is_hitting_set(&d.env, &store));
            prop_assert!((0.0..=1.0).contains(&d.degree));
        }
        // Sorted by decreasing degree.
        for w in diags.windows(2) {
            prop_assert!(w[0].degree >= w[1].degree - 1e-12);
        }
    }

    #[test]
    fn positive_clause_bases_are_consistent(
        clauses in prop::collection::vec(prop::collection::btree_set(0u32..6, 1..4), 0..8),
        weights in prop::collection::vec(0.1f64..1.0, 8),
    ) {
        // All-positive clauses are satisfied by the all-true assignment:
        // the inconsistency degree must be zero.
        let mut base = PossibilisticBase::new();
        for (c, w) in clauses.iter().zip(&weights) {
            base.add_clause(c.iter().map(|&v| Literal::pos(v)), *w).unwrap();
        }
        prop_assert_eq!(base.inconsistency_degree(), 0.0);
    }

    #[test]
    fn unit_clause_entailment_at_least_its_necessity(
        var in 0u32..6,
        w in 0.1f64..1.0,
        noise in prop::collection::vec((prop::collection::btree_set(0u32..6, 1..3), 0.1f64..1.0), 0..4),
    ) {
        let mut base = PossibilisticBase::new();
        base.add_clause([Literal::pos(var)], w).unwrap();
        // Positive side clauses cannot reduce the entailment of x_var.
        for (c, cw) in &noise {
            base.add_clause(c.iter().map(|&v| Literal::pos(v)), *cw).unwrap();
        }
        let degree = base.entailment_degree(Literal::pos(var));
        prop_assert!(degree >= w - 1e-9, "{degree} < {w}");
    }

    #[test]
    fn inconsistency_bounded_by_weakest_contradiction(w1 in 0.1f64..1.0, w2 in 0.1f64..1.0) {
        let mut base = PossibilisticBase::new();
        base.add_clause([Literal::pos(0)], w1).unwrap();
        base.add_clause([Literal::neg(0)], w2).unwrap();
        let inc = base.inconsistency_degree();
        prop_assert!((inc - w1.min(w2)).abs() < 1e-9);
    }

    #[test]
    fn interpretations_complement_diagnoses(nogood_sets in prop::collection::vec(
        prop::collection::btree_set(0u32..5, 1..3), 0..4)) {
        let mut atms = Atms::new();
        let assumptions: Vec<_> = (0..5).map(|k| atms.add_assumption(format!("a{k}"))).collect();
        for ids in &nogood_sets {
            atms.add_nogood(Env::from_assumptions(ids.iter().map(|&i| assumptions[i as usize])));
        }
        for interp in atms.interpretations(10_000) {
            prop_assert!(atms.is_consistent(&interp));
            for &a in &assumptions {
                if !interp.contains(a) {
                    prop_assert!(!atms.is_consistent(&interp.with(a)),
                        "interpretation {interp} is not maximal (missing {a})");
                }
            }
        }
    }
}
