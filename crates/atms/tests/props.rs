//! Randomized property suites for the ATMS engines: observational
//! equivalence of the bitset [`Env`] against a sorted-set reference
//! model, label invariants (soundness, minimality, consistency),
//! hitting-set correctness, and the grading laws of the fuzzy extension.
//!
//! Dependency-free: cases are generated with an inline SplitMix64 and
//! checked with plain `assert!`. Gated behind `--features proptest`
//! (the historical feature name) because the suites are slow, not
//! because they need the external crate.

use flames_atms::hitting::{is_hitting_set, minimal_hitting_sets};
use flames_atms::possibilistic::{Literal, PossibilisticBase};
use flames_atms::{minimize, Assumption, Atms, CandidateSet, Env, FuzzyAtms};
use std::collections::BTreeSet;

/// SplitMix64 — the same mixer as `flames_bench::rng`, inlined because
/// integration tests cannot depend on the bench crate.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }

    fn below(&mut self, bound: u64) -> u64 {
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// A random id set of up to `max_len` ids below `universe`.
fn rand_ids(r: &mut Rng, universe: u32, max_len: usize) -> BTreeSet<u32> {
    let n = r.below(max_len as u64 + 1) as usize;
    (0..n)
        .map(|_| r.below(u64::from(universe)) as u32)
        .collect()
}

fn rand_env(r: &mut Rng, universe: u32, max_len: usize) -> Env {
    Env::from_ids(rand_ids(r, universe, max_len))
}

const CASES: usize = 300;

// ----- bitset Env vs sorted-set model ----------------------------------

/// The reference model: every Env operation restated over `BTreeSet<u32>`.
/// The bitset must agree observationally on every probe — including
/// across the inline→spill boundary (ids up to 300 force spilled words).
#[test]
fn env_is_observationally_a_sorted_set() {
    let mut r = Rng(0xE75);
    for case in 0..CASES {
        // Mix small and large universes so both inline and spilled
        // representations (and their interactions) are exercised.
        let universe = if case % 3 == 0 { 300 } else { 100 };
        let ma = rand_ids(&mut r, universe, 8);
        let mb = rand_ids(&mut r, universe, 8);
        let a = Env::from_ids(ma.iter().copied());
        let b = Env::from_ids(mb.iter().copied());

        // Cardinality, emptiness, membership.
        assert_eq!(a.len(), ma.len());
        assert_eq!(a.is_empty(), ma.is_empty());
        for id in 0..universe {
            assert_eq!(
                a.contains(Assumption(id)),
                ma.contains(&id),
                "contains {id}"
            );
        }

        // Iteration yields the sorted id sequence; `first` is its head.
        let ids: Vec<u32> = a.iter().map(|x| x.index() as u32).collect();
        let model_ids: Vec<u32> = ma.iter().copied().collect();
        assert_eq!(ids, model_ids);
        assert_eq!(a.first().map(|x| x.index() as u32), ma.first().copied());

        // Set algebra.
        let union: BTreeSet<u32> = ma.union(&mb).copied().collect();
        let inter: BTreeSet<u32> = ma.intersection(&mb).copied().collect();
        assert_eq!(a.union(&b), Env::from_ids(union.iter().copied()));
        assert_eq!(a.intersection(&b), Env::from_ids(inter.iter().copied()));
        assert_eq!(a.is_subset_of(&b), ma.is_subset(&mb));
        assert_eq!(a.intersects(&b), !inter.is_empty());

        // In-place union agrees with the pure one.
        let mut acc = a.clone();
        acc.union_with(&b);
        assert_eq!(acc, a.union(&b));

        // Ordering matches lexicographic comparison of sorted id vectors
        // (the old sorted-`Vec<u32>` derive order).
        let model_b: Vec<u32> = mb.iter().copied().collect();
        assert_eq!(a.cmp(&b), model_ids.cmp(&model_b));

        // Equality and hashing are structural.
        let a2 = Env::from_ids(model_ids.iter().rev().copied());
        assert_eq!(a, a2);
        let mut set = std::collections::HashSet::new();
        set.insert(a.clone());
        assert!(set.contains(&a2));

        // insert / with / without against model insert/remove.
        if let Some(&pick) = model_b.first() {
            let mut mi = ma.clone();
            mi.insert(pick);
            assert_eq!(a.with(Assumption(pick)), Env::from_ids(mi.iter().copied()));
            let mut mo = ma.clone();
            mo.remove(&pick);
            assert_eq!(
                a.without(Assumption(pick)),
                Env::from_ids(mo.iter().copied())
            );
        }

        // Signature prefilter soundness: subset ⇒ sig(a) ⊆ sig(b).
        if a.is_subset_of(&b) {
            assert_eq!(a.signature() & !b.signature(), 0);
        }
    }
}

#[test]
fn union_is_commutative_associative() {
    let mut r = Rng(1);
    for _ in 0..CASES {
        let a = rand_env(&mut r, 12, 5);
        let b = rand_env(&mut r, 12, 5);
        let c = rand_env(&mut r, 12, 5);
        assert_eq!(a.union(&b), b.union(&a));
        assert_eq!(a.union(&b).union(&c), a.union(&b.union(&c)));
        assert_eq!(a.union(&a), a.clone());
    }
}

#[test]
fn subset_iff_union_absorbs() {
    let mut r = Rng(2);
    for _ in 0..CASES {
        let a = rand_env(&mut r, 12, 5);
        let b = rand_env(&mut r, 12, 5);
        assert_eq!(a.is_subset_of(&b), a.union(&b) == b);
    }
}

#[test]
fn minimize_yields_antichain() {
    let mut r = Rng(3);
    for _ in 0..CASES {
        let envs: Vec<Env> = (0..r.below(12)).map(|_| rand_env(&mut r, 10, 5)).collect();
        let min = minimize(envs.clone());
        // Pairwise incomparable.
        for (i, p) in min.iter().enumerate() {
            for (j, q) in min.iter().enumerate() {
                if i != j {
                    assert!(!p.is_subset_of(q));
                }
            }
        }
        // Every input is covered by some kept element.
        for e in &envs {
            assert!(min.iter().any(|m| m.is_subset_of(e)));
        }
    }
}

fn rand_conflicts(r: &mut Rng, universe: u32, n: u64) -> Vec<Env> {
    (0..r.below(n))
        .map(|_| {
            let mut ids = rand_ids(r, universe, 3);
            ids.insert(r.below(u64::from(universe)) as u32); // non-empty
            Env::from_ids(ids)
        })
        .collect()
}

#[test]
fn hitting_sets_hit_and_are_minimal() {
    let mut r = Rng(4);
    for _ in 0..CASES {
        let conflicts = rand_conflicts(&mut r, 8, 6);
        let hs = minimal_hitting_sets(&conflicts, usize::MAX, 10_000);
        assert!(!hs.is_empty() || conflicts.iter().any(|c| !c.is_empty()));
        for s in &hs {
            assert!(is_hitting_set(s, &conflicts));
            for a in s.iter() {
                assert!(!is_hitting_set(&s.without(a), &conflicts));
            }
        }
        // Antichain.
        for (i, p) in hs.iter().enumerate() {
            for (j, q) in hs.iter().enumerate() {
                if i != j {
                    assert!(!p.is_subset_of(q));
                }
            }
        }
    }
}

#[test]
fn hitting_sets_complete_for_small_universes() {
    let mut r = Rng(5);
    for _ in 0..CASES {
        let conflicts = rand_conflicts(&mut r, 5, 4);
        // Brute-force all subsets of the universe and compare.
        let hs = minimal_hitting_sets(&conflicts, usize::MAX, 100_000);
        let live: Vec<&Env> = conflicts.iter().filter(|c| !c.is_empty()).collect();
        for mask in 0u32..32 {
            let candidate = Env::from_ids((0..5).filter(|b| mask & (1 << b) != 0));
            let hits = live.iter().all(|c| candidate.intersects(c));
            if hits {
                // Some returned minimal set must be inside it.
                assert!(
                    hs.iter().any(|m| m.is_subset_of(&candidate)),
                    "missing cover for {candidate}"
                );
            }
        }
    }
}

/// De Kleer's candidate-update step against the batch HS-tree oracle:
/// on seeded random conflict streams, the incrementally maintained
/// [`CandidateSet`] must equal `minimal_hitting_sets` over the prefix
/// after *every single install*, for every cardinality bound — and the
/// final candidates must not depend on installation order. Well over
/// 10k installs total, each one cross-checked.
#[test]
fn candidate_set_matches_batch_oracle_on_shuffled_streams() {
    fn check(cs: &CandidateSet, conflicts: &[Env], max_size: usize) -> Vec<Env> {
        let mut got = cs.sets().to_vec();
        got.sort();
        let mut want = minimal_hitting_sets(conflicts, max_size, usize::MAX);
        want.sort();
        assert_eq!(
            got,
            want,
            "divergence at {} conflicts, max_size {max_size}",
            conflicts.len()
        );
        got
    }

    let mut r = Rng(14);
    let mut installs = 0usize;
    for max_size in [1, 2, 3, usize::MAX] {
        for _ in 0..45 {
            let stream: Vec<Env> = (0..60)
                .map(|_| {
                    let mut ids = rand_ids(&mut r, 10, 3);
                    ids.insert(r.below(10) as u32); // non-empty
                    Env::from_ids(ids)
                })
                .collect();

            // Forward pass: oracle equality after every install.
            let mut cs = CandidateSet::new(max_size);
            let mut prefix = Vec::new();
            let mut last = Vec::new();
            for c in &stream {
                cs.install(c);
                prefix.push(c.clone());
                installs += 1;
                last = check(&cs, &prefix, max_size);
            }

            // Shuffled replay (Fisher–Yates): same per-step oracle
            // equality, and the same final antichain as the forward
            // pass — installation order must not matter.
            let mut shuffled = stream.clone();
            for i in (1..shuffled.len()).rev() {
                let j = r.below(i as u64 + 1) as usize;
                shuffled.swap(i, j);
            }
            let mut cs2 = CandidateSet::new(max_size);
            let mut prefix2 = Vec::new();
            let mut last2 = Vec::new();
            for c in &shuffled {
                cs2.install(c);
                prefix2.push(c.clone());
                installs += 1;
                last2 = check(&cs2, &prefix2, max_size);
            }
            assert_eq!(last, last2, "final candidates depend on install order");
        }
    }
    assert!(installs >= 10_000, "only {installs} installs exercised");
}

#[test]
fn atms_labels_stay_consistent_and_minimal() {
    let mut r = Rng(6);
    for _ in 0..CASES {
        let just_pairs: Vec<(u32, u32)> = (0..1 + r.below(7))
            .map(|_| (r.below(6) as u32, r.below(6) as u32))
            .collect();
        let mut nogood = rand_ids(&mut r, 6, 2);
        nogood.insert(r.below(6) as u32);

        let mut atms = Atms::new();
        let assumptions: Vec<_> = (0..6)
            .map(|i| atms.add_assumption(format!("a{i}")))
            .collect();
        let goal = atms.add_node("goal");
        let bottom = atms.add_contradiction("⊥");
        for (x, y) in &just_pairs {
            let nx = atms.assumption_node(assumptions[*x as usize]);
            let ny = atms.assumption_node(assumptions[*y as usize]);
            if nx == ny {
                atms.justify([nx], goal, "single").unwrap();
            } else {
                atms.justify([nx, ny], goal, "pair").unwrap();
            }
        }
        let ng: Vec<_> = nogood.iter().map(|&i| assumptions[i as usize]).collect();
        let ng_nodes: Vec<_> = ng.iter().map(|&a| atms.assumption_node(a)).collect();
        atms.justify(ng_nodes, bottom, "conflict").unwrap();

        let label = atms.label(goal).unwrap();
        // Consistency: no label environment contains a nogood.
        for e in &label {
            assert!(atms.is_consistent(e));
        }
        // Minimality: antichain.
        for (i, p) in label.iter().enumerate() {
            for (j, q) in label.iter().enumerate() {
                if i != j {
                    assert!(!p.is_subset_of(q));
                }
            }
        }
    }
}

#[test]
fn fuzzy_degrees_never_leave_unit_interval() {
    let mut r = Rng(7);
    for _ in 0..CASES {
        let degrees: Vec<f64> = (0..1 + r.below(5)).map(|_| r.range(0.05, 1.0)).collect();
        let mut atms = FuzzyAtms::new();
        let a = atms.add_assumption("a");
        let mut prev = atms.assumption_node(a);
        for (i, d) in degrees.iter().enumerate() {
            let next = atms.add_node(format!("n{i}"));
            atms.justify_weighted([prev], next, *d, "chain").unwrap();
            prev = next;
        }
        let label = atms.label(prev).unwrap();
        assert_eq!(label.len(), 1);
        let expected: f64 = degrees.iter().copied().fold(1.0, f64::min);
        assert!((label[0].degree - expected).abs() < 1e-12);
    }
}

#[test]
fn plausibility_is_monotone_in_nogoods() {
    let mut r = Rng(8);
    for _ in 0..CASES {
        let mut base = rand_ids(&mut r, 6, 3);
        base.insert(r.below(6) as u32);
        let d1 = r.range(0.1, 1.0);
        let d2 = r.range(0.1, 1.0);
        let mut atms = FuzzyAtms::new();
        for i in 0..6 {
            atms.add_assumption(format!("a{i}"));
        }
        let env = Env::from_ids(base.iter().copied());
        let before = atms.plausibility(&env);
        assert_eq!(before, 1.0);
        atms.add_nogood(env.clone(), d1);
        let mid = atms.plausibility(&env);
        atms.add_nogood(env.clone(), d2);
        let after = atms.plausibility(&env);
        // More/stronger conflicts never raise plausibility.
        assert!(mid <= before + 1e-12);
        assert!(after <= mid + 1e-12);
        assert!((after - (1.0 - d1.max(d2))).abs() < 1e-12);
    }
}

#[test]
fn ranked_diagnoses_are_hitting_sets() {
    let mut r = Rng(9);
    for _ in 0..CASES {
        let conflict_data: Vec<(BTreeSet<u32>, f64)> = (0..1 + r.below(4))
            .map(|_| {
                let mut ids = rand_ids(&mut r, 6, 3);
                ids.insert(r.below(6) as u32);
                (ids, r.range(0.1, 1.0))
            })
            .collect();
        let mut atms = FuzzyAtms::new();
        for i in 0..6 {
            atms.add_assumption(format!("a{i}"));
        }
        for (ids, d) in &conflict_data {
            atms.add_nogood(Env::from_ids(ids.iter().copied()), *d);
        }
        let diags = atms.ranked_diagnoses(usize::MAX, 10_000);
        // Diagnoses hit all *retained* nogoods; the store is Pareto-minimal
        // so hitting the store hits every reported conflict.
        let store: Vec<Env> = atms.nogoods().iter().map(|n| n.env.clone()).collect();
        for d in &diags {
            assert!(is_hitting_set(&d.env, &store));
            assert!((0.0..=1.0).contains(&d.degree));
        }
        // Sorted by decreasing degree.
        for w in diags.windows(2) {
            assert!(w[0].degree >= w[1].degree - 1e-12);
        }
    }
}

#[test]
fn positive_clause_bases_are_consistent() {
    let mut r = Rng(10);
    for _ in 0..CASES {
        // All-positive clauses are satisfied by the all-true assignment:
        // the inconsistency degree must be zero.
        let mut base = PossibilisticBase::new();
        for _ in 0..r.below(8) {
            let mut ids = rand_ids(&mut r, 6, 3);
            ids.insert(r.below(6) as u32);
            let w = r.range(0.1, 1.0);
            base.add_clause(ids.iter().map(|&v| Literal::pos(v)), w)
                .unwrap();
        }
        assert_eq!(base.inconsistency_degree(), 0.0);
    }
}

#[test]
fn unit_clause_entailment_at_least_its_necessity() {
    let mut r = Rng(11);
    for _ in 0..CASES {
        let var = r.below(6) as u32;
        let w = r.range(0.1, 1.0);
        let mut base = PossibilisticBase::new();
        base.add_clause([Literal::pos(var)], w).unwrap();
        // Positive side clauses cannot reduce the entailment of x_var.
        for _ in 0..r.below(4) {
            let mut ids = rand_ids(&mut r, 6, 2);
            ids.insert(r.below(6) as u32);
            let cw = r.range(0.1, 1.0);
            base.add_clause(ids.iter().map(|&v| Literal::pos(v)), cw)
                .unwrap();
        }
        let degree = base.entailment_degree(Literal::pos(var));
        assert!(degree >= w - 1e-9, "{degree} < {w}");
    }
}

#[test]
fn inconsistency_bounded_by_weakest_contradiction() {
    let mut r = Rng(12);
    for _ in 0..CASES {
        let w1 = r.range(0.1, 1.0);
        let w2 = r.range(0.1, 1.0);
        let mut base = PossibilisticBase::new();
        base.add_clause([Literal::pos(0)], w1).unwrap();
        base.add_clause([Literal::neg(0)], w2).unwrap();
        let inc = base.inconsistency_degree();
        assert!((inc - w1.min(w2)).abs() < 1e-9);
    }
}

#[test]
fn interpretations_complement_diagnoses() {
    let mut r = Rng(13);
    for _ in 0..CASES {
        let nogood_sets: Vec<BTreeSet<u32>> = (0..r.below(4))
            .map(|_| {
                let mut ids = rand_ids(&mut r, 5, 2);
                ids.insert(r.below(5) as u32);
                ids
            })
            .collect();
        let mut atms = Atms::new();
        let assumptions: Vec<_> = (0..5)
            .map(|k| atms.add_assumption(format!("a{k}")))
            .collect();
        for ids in &nogood_sets {
            atms.add_nogood(Env::from_assumptions(
                ids.iter().map(|&i| assumptions[i as usize]),
            ));
        }
        for interp in atms.interpretations(10_000) {
            assert!(atms.is_consistent(&interp));
            for &a in &assumptions {
                if !interp.contains(a) {
                    assert!(
                        !atms.is_consistent(&interp.with(a)),
                        "interpretation {interp} is not maximal (missing {a})"
                    );
                }
            }
        }
    }
}
