//! Property-based tests for the crisp baseline: interval-arithmetic laws
//! and the boolean nature of its conflict recognition.

use flames_circuit::constraint::{extract, ExtractOptions};
use flames_circuit::{Net, Netlist};
use flames_crisp::{CrispConfig, CrispPropagator, Interval};
use proptest::prelude::*;

fn interval() -> impl Strategy<Value = Interval> {
    (-50.0..50.0f64, 0.0..20.0f64).prop_map(|(lo, w)| Interval::new(lo, lo + w))
}

fn positive_interval() -> impl Strategy<Value = Interval> {
    (0.5..50.0f64, 0.0..10.0f64).prop_map(|(lo, w)| Interval::new(lo, lo + w))
}

proptest! {
    #[test]
    fn addition_commutes(a in interval(), b in interval()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn multiplication_commutes(a in interval(), b in interval()) {
        let ab = a.mul(b);
        let ba = b.mul(a);
        prop_assert!((ab.lo() - ba.lo()).abs() < 1e-9);
        prop_assert!((ab.hi() - ba.hi()).abs() < 1e-9);
    }

    #[test]
    fn contains_all_pointwise_products(a in interval(), b in interval(),
                                       ta in 0.0..1.0f64, tb in 0.0..1.0f64) {
        let xa = a.lo() + ta * a.width();
        let xb = b.lo() + tb * b.width();
        let p = a.mul(b);
        prop_assert!(p.contains(xa * xb) || (xa * xb - p.lo()).abs() < 1e-9
            || (xa * xb - p.hi()).abs() < 1e-9);
    }

    #[test]
    fn division_round_trip_includes(a in positive_interval(), b in positive_interval()) {
        let q = a.div(b).expect("positive divisor");
        let rt = q.mul(b);
        prop_assert!(a.lo() >= rt.lo() - 1e-9);
        prop_assert!(a.hi() <= rt.hi() + 1e-9);
    }

    #[test]
    fn intersection_is_commutative_and_subset(a in interval(), b in interval()) {
        match (a.intersect(b), b.intersect(a)) {
            (Some(x), Some(y)) => {
                prop_assert_eq!(x, y);
                prop_assert!(x.is_subset_of(a));
                prop_assert!(x.is_subset_of(b));
            }
            (None, None) => {}
            _ => prop_assert!(false, "intersection must be symmetric"),
        }
    }

    #[test]
    fn negation_is_involutive(a in interval()) {
        prop_assert_eq!(-(-a), a);
    }

    #[test]
    fn conflicts_are_boolean(offset in 0.0..6.0f64) {
        // The crisp engine either stays silent or fires a full nogood —
        // there is no grading, whatever the deviation magnitude.
        let mut nl = Netlist::new();
        let vin = nl.add_net("vin");
        let mid = nl.add_net("mid");
        nl.add_voltage_source("V", vin, Net::GROUND, 10.0).unwrap();
        nl.add_resistor("R1", vin, mid, 1000.0, 0.05).unwrap();
        nl.add_resistor("R2", mid, Net::GROUND, 1000.0, 0.05).unwrap();
        let network = extract(&nl, ExtractOptions::default());
        let mut prop = CrispPropagator::new(&nl, &network, CrispConfig::default());
        let reading = 5.0 + offset.min(4.9);
        prop.observe(
            network.voltage_quantity(mid),
            Interval::new(reading - 0.01, reading + 0.01),
        );
        prop.run();
        // Either no nogoods, or nogoods — and candidates appear exactly
        // when nogoods do.
        let nogoods = prop.atms().nogoods().len();
        let candidates = prop.candidates(2, 64).len();
        prop_assert_eq!(nogoods == 0, candidates == 0);
    }
}
