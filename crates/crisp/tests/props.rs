//! Randomized property tests for the crisp baseline: interval-arithmetic
//! laws and the boolean nature of its conflict recognition.
//!
//! Dependency-free: cases are generated with an inline SplitMix64 and
//! checked with plain `assert!`. Gated behind `--features proptest`
//! (the historical feature name) because the suites are slow, not
//! because they need the external crate.

use flames_circuit::constraint::{extract, ExtractOptions};
use flames_circuit::{Net, Netlist};
use flames_crisp::{CrispConfig, CrispPropagator, Interval};

/// SplitMix64 — the same mixer as `flames_bench::rng`, inlined because
/// integration tests cannot depend on the bench crate.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }
}

fn interval(r: &mut Rng) -> Interval {
    let lo = r.range(-50.0, 50.0);
    let w = r.range(0.0, 20.0);
    Interval::new(lo, lo + w)
}

fn positive_interval(r: &mut Rng) -> Interval {
    let lo = r.range(0.5, 50.0);
    let w = r.range(0.0, 10.0);
    Interval::new(lo, lo + w)
}

const CASES: usize = 300;

#[test]
fn addition_commutes() {
    let mut r = Rng(1);
    for _ in 0..CASES {
        let a = interval(&mut r);
        let b = interval(&mut r);
        assert_eq!(a + b, b + a);
    }
}

#[test]
fn multiplication_commutes() {
    let mut r = Rng(2);
    for _ in 0..CASES {
        let a = interval(&mut r);
        let b = interval(&mut r);
        let ab = a.mul(b);
        let ba = b.mul(a);
        assert!((ab.lo() - ba.lo()).abs() < 1e-9);
        assert!((ab.hi() - ba.hi()).abs() < 1e-9);
    }
}

#[test]
fn contains_all_pointwise_products() {
    let mut r = Rng(3);
    for _ in 0..CASES {
        let a = interval(&mut r);
        let b = interval(&mut r);
        let ta = r.f64();
        let tb = r.f64();
        let xa = a.lo() + ta * a.width();
        let xb = b.lo() + tb * b.width();
        let p = a.mul(b);
        assert!(
            p.contains(xa * xb)
                || (xa * xb - p.lo()).abs() < 1e-9
                || (xa * xb - p.hi()).abs() < 1e-9
        );
    }
}

#[test]
fn division_round_trip_includes() {
    let mut r = Rng(4);
    for _ in 0..CASES {
        let a = positive_interval(&mut r);
        let b = positive_interval(&mut r);
        let q = a.div(b).expect("positive divisor");
        let rt = q.mul(b);
        assert!(a.lo() >= rt.lo() - 1e-9);
        assert!(a.hi() <= rt.hi() + 1e-9);
    }
}

#[test]
fn intersection_is_commutative_and_subset() {
    let mut r = Rng(5);
    for _ in 0..CASES {
        let a = interval(&mut r);
        let b = interval(&mut r);
        match (a.intersect(b), b.intersect(a)) {
            (Some(x), Some(y)) => {
                assert_eq!(x, y);
                assert!(x.is_subset_of(a));
                assert!(x.is_subset_of(b));
            }
            (None, None) => {}
            _ => panic!("intersection must be symmetric"),
        }
    }
}

#[test]
fn negation_is_involutive() {
    let mut r = Rng(6);
    for _ in 0..CASES {
        let a = interval(&mut r);
        assert_eq!(-(-a), a);
    }
}

#[test]
fn conflicts_are_boolean() {
    let mut r = Rng(7);
    for _ in 0..CASES {
        let offset = r.range(0.0, 6.0);
        // The crisp engine either stays silent or fires a full nogood —
        // there is no grading, whatever the deviation magnitude.
        let mut nl = Netlist::new();
        let vin = nl.add_net("vin");
        let mid = nl.add_net("mid");
        nl.add_voltage_source("V", vin, Net::GROUND, 10.0).unwrap();
        nl.add_resistor("R1", vin, mid, 1000.0, 0.05).unwrap();
        nl.add_resistor("R2", mid, Net::GROUND, 1000.0, 0.05)
            .unwrap();
        let network = extract(&nl, ExtractOptions::default());
        let mut prop = CrispPropagator::new(&nl, &network, CrispConfig::default());
        let reading = 5.0 + offset.min(4.9);
        prop.observe(
            network.voltage_quantity(mid),
            Interval::new(reading - 0.01, reading + 0.01),
        );
        prop.run();
        // Either no nogoods, or nogoods — and candidates appear exactly
        // when nogoods do.
        let nogoods = prop.atms().nogoods().len();
        let candidates = prop.candidates(2, 64).len();
        assert_eq!(nogoods == 0, candidates == 0);
    }
}
