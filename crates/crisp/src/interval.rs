use std::fmt;
use std::ops::{Add, Neg, Sub};

/// A crisp closed interval `[lo, hi]` — the value representation of the
/// DIANA-style baseline the FLAMES paper argues against (§2.1, §4.2):
/// "crisp intervals contain all sorts of inaccuracy without any
/// distinction, which can cause an explosion in the value propagation".
///
/// # Example
///
/// ```
/// use flames_crisp::Interval;
///
/// let va = Interval::new(2.95, 3.05);
/// let amp1 = Interval::new(0.95, 1.05);
/// let vb = va.mul(amp1);
/// assert!((vb.lo() - 2.8025).abs() < 1e-9);
/// assert!((vb.hi() - 3.2025).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    lo: f64,
    hi: f64,
}

impl Interval {
    /// Creates `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or a bound is not finite (crisp intervals are
    /// plain data; invalid bounds are programming errors).
    #[must_use]
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "invalid interval [{lo}, {hi}]"
        );
        Self { lo, hi }
    }

    /// The degenerate interval `[x, x]`.
    #[must_use]
    pub fn point(x: f64) -> Self {
        Self::new(x, x)
    }

    /// Lower bound.
    #[must_use]
    pub fn lo(self) -> f64 {
        self.lo
    }

    /// Upper bound.
    #[must_use]
    pub fn hi(self) -> f64 {
        self.hi
    }

    /// Width `hi − lo`.
    #[must_use]
    pub fn width(self) -> f64 {
        self.hi - self.lo
    }

    /// Midpoint.
    #[must_use]
    pub fn midpoint(self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    /// True if `x` lies inside the interval.
    #[must_use]
    pub fn contains(self, x: f64) -> bool {
        x >= self.lo && x <= self.hi
    }

    /// True if `self ⊆ other`.
    #[must_use]
    pub fn is_subset_of(self, other: Self) -> bool {
        self.lo >= other.lo && self.hi <= other.hi
    }

    /// Intersection, or `None` when the intervals are disjoint — the
    /// baseline's (boolean) conflict test.
    #[must_use]
    pub fn intersect(self, other: Self) -> Option<Self> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (lo <= hi).then(|| Self::new(lo, hi))
    }

    /// Interval product (exact).
    ///
    /// Named `mul`/`div` (rather than implementing `Mul`/`Div`) to mirror
    /// the fuzzy API, where division is fallible.
    #[allow(clippy::should_implement_trait)]
    #[must_use]
    pub fn mul(self, other: Self) -> Self {
        let ps = [
            self.lo * other.lo,
            self.lo * other.hi,
            self.hi * other.lo,
            self.hi * other.hi,
        ];
        let mut lo = ps[0];
        let mut hi = ps[0];
        for &p in &ps[1..] {
            lo = lo.min(p);
            hi = hi.max(p);
        }
        Self::new(lo, hi)
    }

    /// Interval quotient; `None` when the divisor spans zero.
    #[allow(clippy::should_implement_trait)]
    #[must_use]
    pub fn div(self, other: Self) -> Option<Self> {
        if other.lo <= 0.0 && other.hi >= 0.0 {
            return None;
        }
        let qs = [
            self.lo / other.lo,
            self.lo / other.hi,
            self.hi / other.lo,
            self.hi / other.hi,
        ];
        let mut lo = qs[0];
        let mut hi = qs[0];
        for &q in &qs[1..] {
            lo = lo.min(q);
            hi = hi.max(q);
        }
        Some(Self::new(lo, hi))
    }

    /// Rectangular consistency degree `|self ∩ other| / |self|` — the
    /// crisp specialization of the paper's §6.1.2 area ratio
    /// `Dc = area(Vm ⊓ Vn) / area(Vm)`: on rectangles of height 1 every
    /// area is a width. A zero-width (point) measurement falls back to
    /// membership: 1 when the point lies in `other`, 0 otherwise.
    ///
    /// This is diagnostic metadata only — the baseline's conflict *test*
    /// stays the boolean empty-intersection check in
    /// [`Interval::intersect`], exactly as the paper's DIANA critique
    /// describes it.
    #[must_use]
    pub fn consistency_degree(self, other: Self) -> f64 {
        let width = self.width();
        if width == 0.0 {
            return if other.contains(self.midpoint()) {
                1.0
            } else {
                0.0
            };
        }
        let overlap = (self.hi.min(other.hi) - self.lo.max(other.lo)).max(0.0);
        (overlap / width).clamp(0.0, 1.0)
    }

    /// Scaling by a crisp factor.
    #[must_use]
    pub fn scaled(self, k: f64) -> Self {
        if k >= 0.0 {
            Self::new(k * self.lo, k * self.hi)
        } else {
            Self::new(k * self.hi, k * self.lo)
        }
    }
}

impl Add for Interval {
    type Output = Interval;
    fn add(self, rhs: Interval) -> Interval {
        Interval::new(self.lo + rhs.lo, self.hi + rhs.hi)
    }
}

impl Sub for Interval {
    type Output = Interval;
    fn sub(self, rhs: Interval) -> Interval {
        Interval::new(self.lo - rhs.hi, self.hi - rhs.lo)
    }
}

impl Neg for Interval {
    type Output = Interval;
    fn neg(self) -> Interval {
        Interval::new(-self.hi, -self.lo)
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let p = f.precision().unwrap_or(3);
        write!(f, "[{:.p$}, {:.p$}]", self.lo, self.hi, p = p)
    }
}

impl From<flames_fuzzy::FuzzyInterval> for Interval {
    /// Flattens a fuzzy interval to its support — exactly the information
    /// loss the paper criticizes in §4.2.
    fn from(fi: flames_fuzzy::FuzzyInterval) -> Self {
        Interval::new(fi.support_lo(), fi.support_hi())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let i = Interval::new(1.0, 3.0);
        assert_eq!(i.lo(), 1.0);
        assert_eq!(i.hi(), 3.0);
        assert_eq!(i.width(), 2.0);
        assert_eq!(i.midpoint(), 2.0);
        assert!(i.contains(2.0));
        assert!(!i.contains(3.1));
        assert!(Interval::point(5.0).contains(5.0));
    }

    #[test]
    #[should_panic(expected = "invalid interval")]
    fn inverted_bounds_panic() {
        let _ = Interval::new(2.0, 1.0);
    }

    #[test]
    fn arithmetic() {
        let a = Interval::new(1.0, 2.0);
        let b = Interval::new(3.0, 5.0);
        assert_eq!(a + b, Interval::new(4.0, 7.0));
        assert_eq!(a - b, Interval::new(-4.0, -1.0));
        assert_eq!(-a, Interval::new(-2.0, -1.0));
        assert_eq!(a.mul(b), Interval::new(3.0, 10.0));
        assert_eq!(b.div(a), Some(Interval::new(1.5, 5.0)));
        assert_eq!(a.scaled(2.0), Interval::new(2.0, 4.0));
        assert_eq!(a.scaled(-1.0), Interval::new(-2.0, -1.0));
    }

    #[test]
    fn division_by_zero_spanning_interval() {
        let a = Interval::new(1.0, 2.0);
        assert_eq!(a.div(Interval::new(-1.0, 1.0)), None);
        assert_eq!(a.div(Interval::point(0.0)), None);
        assert!(a.div(Interval::new(-2.0, -1.0)).is_some());
    }

    #[test]
    fn negative_operand_multiplication() {
        let a = Interval::new(-2.0, 1.0);
        let b = Interval::new(3.0, 4.0);
        assert_eq!(a.mul(b), Interval::new(-8.0, 4.0));
    }

    #[test]
    fn intersection_and_subset() {
        let a = Interval::new(1.0, 3.0);
        let b = Interval::new(2.0, 5.0);
        assert_eq!(a.intersect(b), Some(Interval::new(2.0, 3.0)));
        assert_eq!(a.intersect(Interval::new(4.0, 5.0)), None);
        assert!(Interval::new(1.5, 2.0).is_subset_of(a));
        assert!(!b.is_subset_of(a));
    }

    #[test]
    fn fig2_crisp_columns() {
        // The paper's Fig. 2 crisp-interval propagation.
        let va = Interval::new(2.95, 3.05);
        let amp1 = Interval::new(0.95, 1.05);
        let amp2 = Interval::new(1.95, 2.05);
        let amp3 = Interval::new(2.95, 3.05);
        let vb = va.mul(amp1);
        let vc = vb.mul(amp2);
        let vd = vb.mul(amp3);
        assert!((vc.lo() - 5.46).abs() < 0.01);
        assert!((vc.hi() - 6.56).abs() < 0.01);
        assert!((vd.lo() - 8.26).abs() < 0.01);
        assert!((vd.hi() - 9.76).abs() < 0.01);
    }

    #[test]
    fn consistency_degree_basics() {
        let m = Interval::new(4.0, 6.0);
        assert_eq!(m.consistency_degree(Interval::new(5.0, 9.0)), 0.5);
        assert_eq!(m.consistency_degree(Interval::new(3.0, 7.0)), 1.0);
        assert_eq!(m.consistency_degree(Interval::new(7.0, 9.0)), 0.0);
        // Point measurement: membership, not an area ratio.
        assert_eq!(Interval::point(5.0).consistency_degree(m), 1.0);
        assert_eq!(Interval::point(7.0).consistency_degree(m), 0.0);
    }

    /// On rectangles the crisp helper must agree exactly with the fuzzy
    /// engine's closed-form area `Dc` evaluated on crisp trapezoids —
    /// same §6.1.2 formula, two representations.
    #[test]
    fn consistency_degree_matches_fuzzy_dc_on_rectangles() {
        use flames_fuzzy::{Consistency, FuzzyInterval};
        let cases = [
            ((4.0, 6.0), (5.0, 9.0)),
            ((4.0, 6.0), (3.0, 7.0)),
            ((4.0, 6.0), (7.0, 9.0)),
            ((4.0, 6.0), (5.5, 5.75)),
            ((0.0, 10.0), (2.5, 5.0)),
            ((5.0, 5.0), (4.0, 6.0)),
            ((5.0, 5.0), (6.0, 7.0)),
            ((-3.0, -1.0), (-2.0, 0.0)),
        ];
        for ((a, b), (c, d)) in cases {
            let vm = FuzzyInterval::crisp_interval(a, b).unwrap();
            let vn = FuzzyInterval::crisp_interval(c, d).unwrap();
            let fuzzy = Consistency::between(&vm, &vn).degree();
            let crisp = Interval::new(a, b).consistency_degree(Interval::new(c, d));
            assert!(
                (fuzzy - crisp).abs() < 1e-12,
                "[{a}, {b}] vs [{c}, {d}]: fuzzy Dc {fuzzy} != crisp {crisp}"
            );
        }
    }

    #[test]
    fn from_fuzzy_takes_support() {
        let fi = flames_fuzzy::FuzzyInterval::new(1.0, 2.0, 0.5, 0.5).unwrap();
        let i = Interval::from(fi);
        assert_eq!(i, Interval::new(0.5, 2.5));
    }

    #[test]
    fn display() {
        assert_eq!(format!("{:.2}", Interval::new(1.0, 2.0)), "[1.00, 2.00]");
    }
}
