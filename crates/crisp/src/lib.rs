//! DIANA-style crisp interval propagation — the baseline the FLAMES paper
//! compares its fuzzy approach against.
//!
//! DIANA (the paper's ref \[5\]) processes imprecision "by means of
//! numerical (crisp) intervals; the management of intervals is done by an
//! ATMS extension". This crate reproduces that behaviour over the same
//! constraint networks as the fuzzy engine:
//!
//! * [`Interval`] — plain closed intervals with exact interval
//!   arithmetic;
//! * [`CrispPropagator`] — constraint propagation with assumption
//!   tracking and **boolean** conflict recognition (empty intersection ⇒
//!   nogood, any overlap ⇒ consistent).
//!
//! The experiments use it to demonstrate the paper's two criticisms:
//! slight soft faults are *masked* (§4.2 — `soft_fault_is_masked` in the
//! tests), and every conflict/candidate ties at full strength, so nothing
//! restricts the candidate explosion (§6.1.3, experiment E6).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod interval;

pub use engine::{CrispConfig, CrispEntry, CrispPropagator};
pub use interval::Interval;
