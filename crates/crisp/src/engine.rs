//! DIANA-style crisp propagation and conflict recognition.
//!
//! The baseline engine mirrors the fuzzy propagator of `flames-core`, but
//! values are plain intervals and conflicts are **boolean**: a coincidence
//! either has a non-empty intersection (consistent — no matter how thin
//! the overlap) or an empty one (a nogood with no degree). This is the
//! behaviour the FLAMES paper demonstrates against in §4.2: slight
//! parametric faults whose effects stay inside the propagated interval
//! walls are silently masked.

use crate::interval::Interval;
use flames_atms::{Assumption, AssumptionPool, Atms, Env};
use flames_circuit::constraint::{Network, QuantityId, Relation};
use flames_circuit::{Net, Netlist};
use std::collections::VecDeque;

/// A crisp value for a quantity with its assumption environment.
#[derive(Debug, Clone, PartialEq)]
pub struct CrispEntry {
    /// The interval value.
    pub value: Interval,
    /// Assumptions the derivation rests on.
    pub env: Env,
}

/// Tuning knobs of the crisp engine (a subset of the fuzzy engine's).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrispConfig {
    /// Maximum value entries kept per quantity.
    pub max_entries: usize,
    /// Minimum relative width tightening for a refined value to count.
    pub min_tightening: f64,
    /// Upper bound on constraint applications per [`CrispPropagator::run`].
    pub max_steps: usize,
}

impl Default for CrispConfig {
    fn default() -> Self {
        Self {
            max_entries: 8,
            min_tightening: 0.01,
            max_steps: 20_000,
        }
    }
}

/// The crisp (DIANA-style) propagation engine.
///
/// # Example
///
/// ```
/// use flames_circuit::constraint::{extract, ExtractOptions};
/// use flames_circuit::{Net, Netlist};
/// use flames_crisp::{CrispConfig, CrispPropagator, Interval};
///
/// # fn main() {
/// let mut nl = Netlist::new();
/// let vin = nl.add_net("vin");
/// let mid = nl.add_net("mid");
/// nl.add_voltage_source("V", vin, Net::GROUND, 10.0).unwrap();
/// nl.add_resistor("R1", vin, mid, 1000.0, 0.05).unwrap();
/// nl.add_resistor("R2", mid, Net::GROUND, 1000.0, 0.05).unwrap();
/// let network = extract(&nl, ExtractOptions::default());
/// let mut prop = CrispPropagator::new(&nl, &network, CrispConfig::default());
/// // A mildly shifted reading stays inside the interval walls: masked.
/// prop.observe(network.voltage_quantity(mid), Interval::new(5.2, 5.3));
/// prop.run();
/// assert!(prop.atms().nogoods().is_empty());
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CrispPropagator<'n> {
    network: &'n Network,
    config: CrispConfig,
    entries: Vec<Vec<CrispEntry>>,
    atms: Atms,
    pool: AssumptionPool,
    comp_assumptions: Vec<Assumption>,
    conn_assumptions: Vec<Option<Assumption>>,
    conflicts: usize,
}

impl<'n> CrispPropagator<'n> {
    /// Builds the engine over an extracted network, flattening every
    /// fuzzy seed to its support interval.
    #[must_use]
    pub fn new(netlist: &Netlist, network: &'n Network, config: CrispConfig) -> Self {
        let mut atms = Atms::new();
        let mut pool = AssumptionPool::new();
        let mut comp_assumptions = Vec::with_capacity(netlist.component_count());
        for (_, comp) in netlist.components() {
            let a = atms.add_assumption(comp.name());
            debug_assert_eq!(a, pool.intern(comp.name()));
            comp_assumptions.push(a);
        }
        let mut conn_assumptions = vec![None; netlist.net_count()];
        for constraint in network.constraints() {
            if let Some(net) = constraint.conn {
                if conn_assumptions[net.index()].is_none() {
                    let name = format!("conn:{}", netlist.net_name(net));
                    let a = atms.add_assumption(&name);
                    debug_assert_eq!(a, pool.intern(&name));
                    conn_assumptions[net.index()] = Some(a);
                }
            }
        }
        let mut prop = Self {
            network,
            config,
            entries: vec![Vec::new(); network.quantity_count()],
            atms,
            pool,
            comp_assumptions,
            conn_assumptions,
            conflicts: 0,
        };
        for seed in network.seeds() {
            let env = Env::from_assumptions(
                seed.support
                    .iter()
                    .map(|c| prop.comp_assumptions[c.index()]),
            );
            prop.insert(seed.quantity, Interval::from(seed.value), env);
        }
        prop
    }

    /// The classic ATMS holding the (boolean) nogoods.
    #[must_use]
    pub fn atms(&self) -> &Atms {
        &self.atms
    }

    /// The assumption vocabulary.
    #[must_use]
    pub fn pool(&self) -> &AssumptionPool {
        &self.pool
    }

    /// The assumption standing for a component (by netlist index).
    ///
    /// # Panics
    ///
    /// Panics for an out-of-range component index.
    #[must_use]
    pub fn component_assumption(&self, comp_index: usize) -> Assumption {
        self.comp_assumptions[comp_index]
    }

    /// The connection assumption of a net, when it has a Kirchhoff
    /// constraint.
    #[must_use]
    pub fn connection_assumption(&self, net: Net) -> Option<Assumption> {
        self.conn_assumptions.get(net.index()).copied().flatten()
    }

    /// Number of empty-intersection conflicts detected so far.
    #[must_use]
    pub fn conflict_count(&self) -> usize {
        self.conflicts
    }

    /// Current value entries of a quantity (empty slice for foreign ids).
    #[must_use]
    pub fn entries(&self, q: QuantityId) -> &[CrispEntry] {
        self.entries
            .get(q.index())
            .map_or(&[], Vec::as_slice)
    }

    /// The tightest value of a quantity, if any.
    #[must_use]
    pub fn best_value(&self, q: QuantityId) -> Option<&CrispEntry> {
        self.entries.get(q.index())?.iter().min_by(|a, b| {
            a.value
                .width()
                .partial_cmp(&b.value.width())
                .expect("finite widths")
        })
    }

    /// Enters a measurement (premise environment).
    pub fn observe(&mut self, q: QuantityId, value: Interval) {
        if q.index() < self.entries.len() {
            self.insert(q, value, Env::empty());
        }
    }

    /// Enters a predicted value under component-correctness assumptions.
    pub fn predict(&mut self, q: QuantityId, value: Interval, support: &[flames_circuit::CompId]) {
        if q.index() < self.entries.len() {
            let env = Env::from_assumptions(
                support.iter().map(|c| self.comp_assumptions[c.index()]),
            );
            self.insert(q, value, env);
        }
    }

    /// Candidate diagnoses: minimal hitting sets of the boolean nogoods
    /// (all tied at full strength — the baseline cannot rank them).
    #[must_use]
    pub fn candidates(&self, max_size: usize, max_count: usize) -> Vec<Env> {
        flames_atms::hitting::minimal_hitting_sets(self.atms.nogoods(), max_size, max_count)
            .into_iter()
            .filter(|env| !env.is_empty())
            .collect()
    }

    /// Runs propagation to quiescence; returns the number of constraint
    /// applications. Spec conditions are checked crisply: only a value
    /// entirely outside the condition's support raises a nogood.
    pub fn run(&mut self) -> usize {
        let mut steps = 0usize;
        let mut queue: VecDeque<usize> = (0..self.network.constraints().len()).collect();
        let mut queued: Vec<bool> = vec![true; self.network.constraints().len()];
        while let Some(ci) = queue.pop_front() {
            queued[ci] = false;
            if steps >= self.config.max_steps {
                break;
            }
            steps += 1;
            let changed = self.apply_constraint(ci);
            if !changed.is_empty() {
                for (cj, constraint) in self.network.constraints().iter().enumerate() {
                    if queued[cj] {
                        continue;
                    }
                    if constraint
                        .relation
                        .quantities()
                        .iter()
                        .any(|q| changed.contains(&q.index()))
                    {
                        queue.push_back(cj);
                        queued[cj] = true;
                    }
                }
            }
        }
        self.check_specs();
        steps
    }

    // ----- internals -------------------------------------------------

    fn constraint_env(&self, ci: usize) -> Env {
        let c = &self.network.constraints()[ci];
        let mut env = Env::from_assumptions(
            c.support.iter().map(|s| self.comp_assumptions[s.index()]),
        );
        if let Some(net) = c.conn {
            if let Some(a) = self.conn_assumptions[net.index()] {
                env = env.with(a);
            }
        }
        env
    }

    fn apply_constraint(&mut self, ci: usize) -> Vec<usize> {
        let relation = self.network.constraints()[ci].relation.clone();
        let base_env = self.constraint_env(ci);
        let mut changed = Vec::new();
        match relation {
            Relation::Linear { ref terms, bias } => {
                for (target_idx, &(target_coef, target_q)) in terms.iter().enumerate() {
                    let others: Vec<(f64, QuantityId)> = terms
                        .iter()
                        .enumerate()
                        .filter(|&(j, _)| j != target_idx)
                        .map(|(_, &t)| t)
                        .collect();
                    if others.iter().any(|&(_, q)| self.entries[q.index()].is_empty()) {
                        continue;
                    }
                    for combo in self.combos(&others.iter().map(|&(_, q)| q).collect::<Vec<_>>()) {
                        let mut sum = Interval::point(bias);
                        let mut env = base_env.clone();
                        for (&(coef, _), entry) in others.iter().zip(&combo) {
                            sum = sum + entry.value.scaled(coef);
                            env = env.union(&entry.env);
                        }
                        let value = sum.scaled(-1.0 / target_coef);
                        if self.insert(target_q, value, env) {
                            changed.push(target_q.index());
                        }
                    }
                }
            }
            Relation::Product { p, x, y } => {
                for combo in self.combos(&[x, y]) {
                    let value = combo[0].value.mul(combo[1].value);
                    let env = base_env.union(&combo[0].env).union(&combo[1].env);
                    if self.insert(p, value, env) {
                        changed.push(p.index());
                    }
                }
                for (target, divisor) in [(x, y), (y, x)] {
                    for combo in self.combos(&[p, divisor]) {
                        if let Some(value) = combo[0].value.div(combo[1].value) {
                            let env = base_env.union(&combo[0].env).union(&combo[1].env);
                            if self.insert(target, value, env) {
                                changed.push(target.index());
                            }
                        }
                    }
                }
            }
        }
        changed.sort_unstable();
        changed.dedup();
        changed
    }

    fn combos(&self, qs: &[QuantityId]) -> Vec<Vec<CrispEntry>> {
        const COMBO_CAP: usize = 64;
        let mut acc: Vec<Vec<CrispEntry>> = vec![Vec::new()];
        for &q in qs {
            let list = &self.entries[q.index()];
            if list.is_empty() {
                return Vec::new();
            }
            let mut next = Vec::with_capacity(acc.len() * list.len());
            'outer: for prefix in &acc {
                for e in list {
                    let mut row = prefix.clone();
                    row.push(e.clone());
                    next.push(row);
                    if next.len() >= COMBO_CAP {
                        break 'outer;
                    }
                }
            }
            acc = next;
        }
        acc
    }

    fn insert(&mut self, q: QuantityId, value: Interval, env: Env) -> bool {
        if !self.atms.is_consistent(&env) {
            return false;
        }
        let incoming = CrispEntry { value, env };
        let list = &self.entries[q.index()];
        let mut dominated = false;
        for existing in list {
            if existing.value.intersect(incoming.value).is_none() {
                // Boolean conflict: the union of the environments is a
                // (degree-less) nogood.
                self.conflicts += 1;
                self.atms.add_nogood(incoming.env.union(&existing.env));
            }
            if existing.env.is_subset_of(&incoming.env) {
                let meaningful = incoming.value.width()
                    <= existing.value.width() * (1.0 - self.config.min_tightening);
                if existing.value.is_subset_of(incoming.value)
                    || (!meaningful && incoming.value.is_subset_of(existing.value))
                {
                    dominated = true;
                }
            }
        }
        if dominated {
            return false;
        }
        let min_tightening = self.config.min_tightening;
        let list = &mut self.entries[q.index()];
        let before = list.len();
        list.retain(|e| {
            !(incoming.env.is_subset_of(&e.env)
                && incoming.value.is_subset_of(e.value)
                && incoming.value.width() <= e.value.width() * (1.0 - min_tightening))
        });
        let dropped = before - list.len();
        if list.len() >= self.config.max_entries {
            return dropped > 0;
        }
        list.push(incoming);
        true
    }

    /// Crisp spec checking: a nogood only when the derived value lies
    /// fully outside the condition's support.
    fn check_specs(&mut self) {
        let specs: Vec<_> = self.network.specs().to_vec();
        for spec in specs {
            let Some(best) = self.best_value(spec.quantity).cloned() else {
                continue;
            };
            let cond = Interval::from(spec.condition);
            if best.value.intersect(cond).is_none() {
                self.conflicts += 1;
                let env = best.env.union(&Env::from_assumptions(
                    spec.support
                        .iter()
                        .map(|c| self.comp_assumptions[c.index()]),
                ));
                self.atms.add_nogood(env);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flames_circuit::constraint::{extract, ExtractOptions};

    fn divider(tol: f64) -> (Netlist, Network) {
        let mut nl = Netlist::new();
        let vin = nl.add_net("vin");
        let mid = nl.add_net("mid");
        nl.add_voltage_source("V", vin, Net::GROUND, 10.0).unwrap();
        nl.add_resistor("R1", vin, mid, 1000.0, tol).unwrap();
        nl.add_resistor("R2", mid, Net::GROUND, 1000.0, tol).unwrap();
        let network = extract(&nl, ExtractOptions::default());
        (nl, network)
    }

    #[test]
    fn healthy_reading_is_consistent() {
        let (nl, network) = divider(0.05);
        let mut prop = CrispPropagator::new(&nl, &network, CrispConfig::default());
        let mid = nl.net_by_name("mid").unwrap();
        prop.observe(network.voltage_quantity(mid), Interval::new(4.95, 5.05));
        prop.run();
        assert!(prop.atms().nogoods().is_empty());
        assert_eq!(prop.conflict_count(), 0);
        assert!(prop.candidates(2, 16).is_empty());
    }

    #[test]
    fn soft_fault_is_masked() {
        // The paper's §4.2 point: a slight deviation that stays inside the
        // crisp interval walls raises NO conflict.
        let (nl, network) = divider(0.05);
        let mut prop = CrispPropagator::new(&nl, &network, CrispConfig::default());
        let mid = nl.net_by_name("mid").unwrap();
        // True value 5.0; reading 5.2 (a ~4 % divider drift). Every crisp
        // derivation keeps a non-empty intersection (the resistor ratio
        // 0.923 sits inside the tolerance box [0.905, 1.105]), so the
        // baseline reports a healthy board. The fuzzy engine grades this
        // same reading as a partial conflict (see flames-core tests).
        prop.observe(network.voltage_quantity(mid), Interval::new(5.15, 5.25));
        prop.run();
        assert!(
            prop.atms().nogoods().is_empty(),
            "crisp engine masks the soft fault"
        );
    }

    #[test]
    fn hard_fault_is_detected() {
        let (nl, network) = divider(0.05);
        let mut prop = CrispPropagator::new(&nl, &network, CrispConfig::default());
        let mid = nl.net_by_name("mid").unwrap();
        prop.observe(network.voltage_quantity(mid), Interval::new(8.0, 8.1));
        prop.run();
        assert!(!prop.atms().nogoods().is_empty());
        let candidates = prop.candidates(2, 32);
        assert!(!candidates.is_empty());
        let r1 = prop.component_assumption(nl.component_by_name("R1").unwrap().index());
        let r2 = prop.component_assumption(nl.component_by_name("R2").unwrap().index());
        assert!(candidates
            .iter()
            .any(|env| env.contains(r1) || env.contains(r2)));
    }

    #[test]
    fn seeds_flatten_to_supports() {
        let (nl, network) = divider(0.05);
        let prop = CrispPropagator::new(&nl, &network, CrispConfig::default());
        let r1 = nl.component_by_name("R1").unwrap();
        let rq = network
            .find(flames_circuit::constraint::QuantityKind::Param(r1))
            .unwrap();
        let entry = &prop.entries(rq)[0];
        assert_eq!(entry.value, Interval::new(950.0, 1050.0));
    }

    #[test]
    fn connection_assumptions_exist() {
        let (nl, network) = divider(0.05);
        let prop = CrispPropagator::new(&nl, &network, CrispConfig::default());
        let mid = nl.net_by_name("mid").unwrap();
        assert!(prop.connection_assumption(mid).is_some());
        assert!(prop.connection_assumption(Net::GROUND).is_none());
        assert!(prop.pool().len() >= 3);
    }

    #[test]
    fn best_value_prefers_tightest() {
        let (nl, network) = divider(0.05);
        let mut prop = CrispPropagator::new(&nl, &network, CrispConfig::default());
        let mid = nl.net_by_name("mid").unwrap();
        let q = network.voltage_quantity(mid);
        prop.observe(q, Interval::new(4.0, 6.0));
        prop.observe(q, Interval::new(4.9, 5.1));
        let best = prop.best_value(q).unwrap();
        assert_eq!(best.value, Interval::new(4.9, 5.1));
        // Foreign ids yield empty entry lists, not panics.
        let foreign = flames_circuit::constraint::QuantityId::from_raw(9999);
        assert!(prop.entries(foreign).is_empty());
        assert!(prop.best_value(foreign).is_none());
    }
}
