//! DIANA-style crisp propagation and conflict recognition.
//!
//! The baseline engine mirrors the fuzzy propagator of `flames-core`, but
//! values are plain intervals and conflicts are **boolean**: a coincidence
//! either has a non-empty intersection (consistent — no matter how thin
//! the overlap) or an empty one (a nogood with no degree). This is the
//! behaviour the FLAMES paper demonstrates against in §4.2: slight
//! parametric faults whose effects stay inside the propagated interval
//! walls are silently masked.

use crate::interval::Interval;
use flames_atms::{Assumption, AssumptionPool, Atms, Env};
use flames_circuit::compile::{CompiledNetwork, CompiledRelation};
use flames_circuit::constraint::{Network, QuantityId};
use flames_circuit::{Net, Netlist};
use std::collections::VecDeque;

/// A crisp value for a quantity with its assumption environment.
#[derive(Debug, Clone, PartialEq)]
pub struct CrispEntry {
    /// The interval value.
    pub value: Interval,
    /// Assumptions the derivation rests on.
    pub env: Env,
}

/// Tuning knobs of the crisp engine (a subset of the fuzzy engine's).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrispConfig {
    /// Maximum value entries kept per quantity.
    pub max_entries: usize,
    /// Minimum relative width tightening for a refined value to count.
    pub min_tightening: f64,
    /// Upper bound on constraint applications per [`CrispPropagator::run`].
    pub max_steps: usize,
}

impl Default for CrispConfig {
    fn default() -> Self {
        Self {
            max_entries: 8,
            min_tightening: 0.01,
            max_steps: 20_000,
        }
    }
}

/// The crisp (DIANA-style) propagation engine.
///
/// # Example
///
/// ```
/// use flames_circuit::constraint::{extract, ExtractOptions};
/// use flames_circuit::{Net, Netlist};
/// use flames_crisp::{CrispConfig, CrispPropagator, Interval};
///
/// # fn main() {
/// let mut nl = Netlist::new();
/// let vin = nl.add_net("vin");
/// let mid = nl.add_net("mid");
/// nl.add_voltage_source("V", vin, Net::GROUND, 10.0).unwrap();
/// nl.add_resistor("R1", vin, mid, 1000.0, 0.05).unwrap();
/// nl.add_resistor("R2", mid, Net::GROUND, 1000.0, 0.05).unwrap();
/// let network = extract(&nl, ExtractOptions::default());
/// let mut prop = CrispPropagator::new(&nl, &network, CrispConfig::default());
/// // A mildly shifted reading stays inside the interval walls: masked.
/// prop.observe(network.voltage_quantity(mid), Interval::new(5.2, 5.3));
/// prop.run();
/// assert!(prop.atms().nogoods().is_empty());
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CrispPropagator<'n> {
    network: &'n Network,
    config: CrispConfig,
    entries: Vec<Vec<CrispEntry>>,
    atms: Atms,
    pool: AssumptionPool,
    comp_assumptions: Vec<Assumption>,
    conn_assumptions: Vec<Option<Assumption>>,
    conflicts: usize,
    /// Per-constraint support environment, built once at construction.
    constraint_envs: Vec<Env>,
    /// The compiled application schedule (inversion directions, fanout
    /// adjacency, connection-net order) — the same schedule the fuzzy
    /// engine runs on, so the two baselines cannot drift apart.
    compiled: CompiledNetwork,
}

impl<'n> CrispPropagator<'n> {
    /// Builds the engine over an extracted network, flattening every
    /// fuzzy seed to its support interval.
    #[must_use]
    pub fn new(netlist: &Netlist, network: &'n Network, config: CrispConfig) -> Self {
        let compiled = CompiledNetwork::compile(network);
        let mut atms = Atms::new();
        let mut pool = AssumptionPool::new();
        let mut comp_assumptions = Vec::with_capacity(netlist.component_count());
        for (_, comp) in netlist.components() {
            let a = atms.add_assumption(comp.name());
            // The intern must run in release builds too — the pool is what
            // names every env in reports.
            let interned = pool.intern(comp.name());
            debug_assert_eq!(a, interned);
            comp_assumptions.push(a);
        }
        let mut conn_assumptions = vec![None; netlist.net_count()];
        for &net in compiled.conn_nets() {
            let name = format!("conn:{}", netlist.net_name(net));
            let a = atms.add_assumption(&name);
            let interned = pool.intern(&name);
            debug_assert_eq!(a, interned);
            conn_assumptions[net.index()] = Some(a);
        }
        let constraint_envs: Vec<Env> = network
            .constraints()
            .iter()
            .map(|c| {
                let mut env =
                    Env::from_assumptions(c.support.iter().map(|s| comp_assumptions[s.index()]));
                if let Some(net) = c.conn {
                    if let Some(a) = conn_assumptions[net.index()] {
                        env = env.with(a);
                    }
                }
                env
            })
            .collect();
        let mut prop = Self {
            network,
            config,
            entries: vec![Vec::new(); network.quantity_count()],
            atms,
            pool,
            comp_assumptions,
            conn_assumptions,
            conflicts: 0,
            constraint_envs,
            compiled,
        };
        for seed in network.seeds() {
            let env = Env::from_assumptions(
                seed.support
                    .iter()
                    .map(|c| prop.comp_assumptions[c.index()]),
            );
            prop.insert(seed.quantity, Interval::from(seed.value), env);
        }
        prop
    }

    /// The classic ATMS holding the (boolean) nogoods.
    #[must_use]
    pub fn atms(&self) -> &Atms {
        &self.atms
    }

    /// The assumption vocabulary.
    #[must_use]
    pub fn pool(&self) -> &AssumptionPool {
        &self.pool
    }

    /// The assumption standing for a component (by netlist index).
    ///
    /// # Panics
    ///
    /// Panics for an out-of-range component index.
    #[must_use]
    pub fn component_assumption(&self, comp_index: usize) -> Assumption {
        self.comp_assumptions[comp_index]
    }

    /// The connection assumption of a net, when it has a Kirchhoff
    /// constraint.
    #[must_use]
    pub fn connection_assumption(&self, net: Net) -> Option<Assumption> {
        self.conn_assumptions.get(net.index()).copied().flatten()
    }

    /// Number of empty-intersection conflicts detected so far.
    #[must_use]
    pub fn conflict_count(&self) -> usize {
        self.conflicts
    }

    /// Current value entries of a quantity (empty slice for foreign ids).
    #[must_use]
    pub fn entries(&self, q: QuantityId) -> &[CrispEntry] {
        self.entries.get(q.index()).map_or(&[], Vec::as_slice)
    }

    /// The tightest value of a quantity, if any.
    #[must_use]
    pub fn best_value(&self, q: QuantityId) -> Option<&CrispEntry> {
        self.entries.get(q.index())?.iter().min_by(|a, b| {
            a.value
                .width()
                .partial_cmp(&b.value.width())
                .expect("finite widths")
        })
    }

    /// Enters a measurement (premise environment).
    pub fn observe(&mut self, q: QuantityId, value: Interval) {
        if q.index() < self.entries.len() {
            self.insert(q, value, Env::empty());
        }
    }

    /// Enters a predicted value under component-correctness assumptions.
    pub fn predict(&mut self, q: QuantityId, value: Interval, support: &[flames_circuit::CompId]) {
        if q.index() < self.entries.len() {
            let env =
                Env::from_assumptions(support.iter().map(|c| self.comp_assumptions[c.index()]));
            self.insert(q, value, env);
        }
    }

    /// Candidate diagnoses: minimal hitting sets of the boolean nogoods
    /// (all tied at full strength — the baseline cannot rank them).
    #[must_use]
    pub fn candidates(&self, max_size: usize, max_count: usize) -> Vec<Env> {
        flames_atms::hitting::minimal_hitting_sets(self.atms.nogoods(), max_size, max_count)
            .into_iter()
            .filter(|env| !env.is_empty())
            .collect()
    }

    /// Runs propagation to quiescence; returns the number of constraint
    /// applications. Spec conditions are checked crisply: only a value
    /// entirely outside the condition's support raises a nogood.
    pub fn run(&mut self) -> usize {
        let mut steps = 0usize;
        let n = self.compiled.constraint_count();
        let mut queue: VecDeque<usize> = (0..n).collect();
        let mut queued: Vec<bool> = vec![true; n];
        let mut wake: Vec<u32> = Vec::new();
        while let Some(ci) = queue.pop_front() {
            queued[ci] = false;
            if steps >= self.config.max_steps {
                break;
            }
            steps += 1;
            let changed = self.apply_constraint(ci);
            if !changed.is_empty() {
                // Requeue exactly the consumers of the changed quantities,
                // in constraint-index order (matching a full rescan).
                wake.clear();
                for &qi in &changed {
                    wake.extend_from_slice(&self.compiled.consumers()[qi]);
                }
                wake.sort_unstable();
                wake.dedup();
                for &cj in &wake {
                    let cj = cj as usize;
                    if !queued[cj] {
                        queue.push_back(cj);
                        queued[cj] = true;
                    }
                }
            }
        }
        self.check_specs();
        steps
    }

    // ----- internals -------------------------------------------------

    fn apply_constraint(&mut self, ci: usize) -> Vec<usize> {
        // Disjoint field borrows: the compiled schedule and cached
        // environments are read while the label stores, the ATMS, and the
        // conflict counter mutate.
        let Self {
            ref compiled,
            ref constraint_envs,
            ref mut entries,
            ref mut atms,
            ref mut conflicts,
            config,
            ..
        } = *self;
        let base_env = &constraint_envs[ci];
        let mut changed = Vec::new();
        match *compiled.relation(ci) {
            CompiledRelation::Linear {
                bias,
                ref directions,
            } => {
                let mut derived: Vec<(Interval, Env)> = Vec::new();
                for dir in directions {
                    derived.clear();
                    {
                        let out = &mut derived;
                        Self::each_combo(entries, &dir.quantities, |row| {
                            let mut sum = Interval::point(bias);
                            let mut env = base_env.clone();
                            for (&(coef, _), entry) in dir.others.iter().zip(row) {
                                sum = sum + entry.value.scaled(coef);
                                env.union_with(&entry.env);
                            }
                            out.push((sum.scaled(dir.neg_inv_coef), env));
                        });
                    }
                    for (value, env) in derived.drain(..) {
                        if Self::insert_entry(
                            entries, atms, conflicts, config, dir.target, value, env,
                        ) {
                            changed.push(dir.target.index());
                        }
                    }
                }
            }
            CompiledRelation::Product { p, x, y } => {
                // p = x · y, x = p / y and y = p / x.
                let mut derive =
                    |target: QuantityId,
                     a: QuantityId,
                     b: QuantityId,
                     op: &dyn Fn(Interval, Interval) -> Option<Interval>| {
                        let mut derived: Vec<(Interval, Env)> = Vec::new();
                        Self::each_combo(entries, &[a, b], |row| {
                            if let Some(value) = op(row[0].value, row[1].value) {
                                let mut env = base_env.clone();
                                env.union_with(&row[0].env);
                                env.union_with(&row[1].env);
                                derived.push((value, env));
                            }
                        });
                        for (value, env) in derived {
                            if Self::insert_entry(
                                entries, atms, conflicts, config, target, value, env,
                            ) {
                                changed.push(target.index());
                            }
                        }
                    };
                derive(p, x, y, &|a, b| Some(a.mul(b)));
                derive(x, p, y, &|a, b| a.div(b));
                derive(y, p, x, &|a, b| a.div(b));
            }
        }
        changed.sort_unstable();
        changed.dedup();
        changed
    }

    /// Invokes `f` on each cartesian combination of the current entries of
    /// `qs` — by reference, no entry cloning. Combinations enumerate in
    /// lexicographic order with the last quantity varying fastest, capped
    /// at `COMBO_CAP` rows. With `qs` empty, `f` sees one empty row.
    fn each_combo<'s>(
        entries: &'s [Vec<CrispEntry>],
        qs: &[QuantityId],
        mut f: impl FnMut(&[&'s CrispEntry]),
    ) {
        const COMBO_CAP: usize = 64;
        let lists: Vec<&[CrispEntry]> = qs.iter().map(|q| entries[q.index()].as_slice()).collect();
        if lists.iter().any(|l| l.is_empty()) {
            return;
        }
        let mut idx = vec![0usize; lists.len()];
        let mut row: Vec<&CrispEntry> = lists.iter().map(|l| &l[0]).collect();
        for _ in 0..COMBO_CAP {
            f(&row);
            // Odometer increment, last position fastest.
            let mut k = lists.len();
            loop {
                if k == 0 {
                    return;
                }
                k -= 1;
                idx[k] += 1;
                if idx[k] < lists[k].len() {
                    row[k] = &lists[k][idx[k]];
                    break;
                }
                idx[k] = 0;
                row[k] = &lists[k][0];
            }
        }
    }

    fn insert(&mut self, q: QuantityId, value: Interval, env: Env) -> bool {
        Self::insert_entry(
            &mut self.entries,
            &mut self.atms,
            &mut self.conflicts,
            self.config,
            q,
            value,
            env,
        )
    }

    fn insert_entry(
        entries: &mut [Vec<CrispEntry>],
        atms: &mut Atms,
        conflicts: &mut usize,
        config: CrispConfig,
        q: QuantityId,
        value: Interval,
        env: Env,
    ) -> bool {
        if !atms.is_consistent(&env) {
            return false;
        }
        let incoming = CrispEntry { value, env };
        let list = &entries[q.index()];
        let mut dominated = false;
        for existing in list {
            if existing.value.intersect(incoming.value).is_none() {
                // Boolean conflict: the union of the environments is a
                // (degree-less) nogood.
                *conflicts += 1;
                atms.add_nogood(incoming.env.union(&existing.env));
            }
            if existing.env.is_subset_of(&incoming.env) {
                let meaningful = incoming.value.width()
                    <= existing.value.width() * (1.0 - config.min_tightening);
                if existing.value.is_subset_of(incoming.value)
                    || (!meaningful && incoming.value.is_subset_of(existing.value))
                {
                    dominated = true;
                }
            }
        }
        if dominated {
            return false;
        }
        let min_tightening = config.min_tightening;
        let list = &mut entries[q.index()];
        let before = list.len();
        list.retain(|e| {
            !(incoming.env.is_subset_of(&e.env)
                && incoming.value.is_subset_of(e.value)
                && incoming.value.width() <= e.value.width() * (1.0 - min_tightening))
        });
        let dropped = before - list.len();
        if list.len() >= config.max_entries {
            // The label is full: the incoming value may still replace
            // the widest held entry if it is strictly tighter — the same
            // policy as the fuzzy engine, and for the same reason: the
            // cap must not make results order-dependent (a late probe or
            // a tight conditional derivation must never bounce off stale
            // wide values).
            let widest = list
                .iter()
                .enumerate()
                .max_by(|(_, a), (_, b)| {
                    a.value
                        .width()
                        .partial_cmp(&b.value.width())
                        .expect("finite widths")
                })
                .map(|(i, e)| (i, e.value.width()));
            match widest {
                Some((i, width)) if incoming.value.width() < width => {
                    list[i] = incoming;
                    return true;
                }
                _ => return dropped > 0,
            }
        }
        list.push(incoming);
        true
    }

    /// Crisp spec checking: a nogood only when the derived value lies
    /// fully outside the condition's support.
    fn check_specs(&mut self) {
        let network = self.network;
        for spec in network.specs() {
            let Some(best) = self.best_value(spec.quantity) else {
                continue;
            };
            let cond = Interval::from(spec.condition);
            if best.value.intersect(cond).is_none() {
                let mut env = best.env.clone();
                env.union_with(&Env::from_assumptions(
                    spec.support
                        .iter()
                        .map(|c| self.comp_assumptions[c.index()]),
                ));
                self.conflicts += 1;
                self.atms.add_nogood(env);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flames_circuit::constraint::{extract, ExtractOptions};

    fn divider(tol: f64) -> (Netlist, Network) {
        let mut nl = Netlist::new();
        let vin = nl.add_net("vin");
        let mid = nl.add_net("mid");
        nl.add_voltage_source("V", vin, Net::GROUND, 10.0).unwrap();
        nl.add_resistor("R1", vin, mid, 1000.0, tol).unwrap();
        nl.add_resistor("R2", mid, Net::GROUND, 1000.0, tol)
            .unwrap();
        let network = extract(&nl, ExtractOptions::default());
        (nl, network)
    }

    #[test]
    fn healthy_reading_is_consistent() {
        let (nl, network) = divider(0.05);
        let mut prop = CrispPropagator::new(&nl, &network, CrispConfig::default());
        let mid = nl.net_by_name("mid").unwrap();
        prop.observe(network.voltage_quantity(mid), Interval::new(4.95, 5.05));
        prop.run();
        assert!(prop.atms().nogoods().is_empty());
        assert_eq!(prop.conflict_count(), 0);
        assert!(prop.candidates(2, 16).is_empty());
    }

    #[test]
    fn soft_fault_is_masked() {
        // The paper's §4.2 point: a slight deviation that stays inside the
        // crisp interval walls raises NO conflict.
        let (nl, network) = divider(0.05);
        let mut prop = CrispPropagator::new(&nl, &network, CrispConfig::default());
        let mid = nl.net_by_name("mid").unwrap();
        // True value 5.0; reading 5.2 (a ~4 % divider drift). Every crisp
        // derivation keeps a non-empty intersection (the resistor ratio
        // 0.923 sits inside the tolerance box [0.905, 1.105]), so the
        // baseline reports a healthy board. The fuzzy engine grades this
        // same reading as a partial conflict (see flames-core tests).
        prop.observe(network.voltage_quantity(mid), Interval::new(5.15, 5.25));
        prop.run();
        assert!(
            prop.atms().nogoods().is_empty(),
            "crisp engine masks the soft fault"
        );
    }

    #[test]
    fn hard_fault_is_detected() {
        let (nl, network) = divider(0.05);
        let mut prop = CrispPropagator::new(&nl, &network, CrispConfig::default());
        let mid = nl.net_by_name("mid").unwrap();
        prop.observe(network.voltage_quantity(mid), Interval::new(8.0, 8.1));
        prop.run();
        assert!(!prop.atms().nogoods().is_empty());
        let candidates = prop.candidates(2, 32);
        assert!(!candidates.is_empty());
        let r1 = prop.component_assumption(nl.component_by_name("R1").unwrap().index());
        let r2 = prop.component_assumption(nl.component_by_name("R2").unwrap().index());
        assert!(candidates
            .iter()
            .any(|env| env.contains(r1) || env.contains(r2)));
    }

    #[test]
    fn seeds_flatten_to_supports() {
        let (nl, network) = divider(0.05);
        let prop = CrispPropagator::new(&nl, &network, CrispConfig::default());
        let r1 = nl.component_by_name("R1").unwrap();
        let rq = network
            .find(flames_circuit::constraint::QuantityKind::Param(r1))
            .unwrap();
        let entry = &prop.entries(rq)[0];
        assert_eq!(entry.value, Interval::new(950.0, 1050.0));
    }

    #[test]
    fn connection_assumptions_exist() {
        let (nl, network) = divider(0.05);
        let prop = CrispPropagator::new(&nl, &network, CrispConfig::default());
        let mid = nl.net_by_name("mid").unwrap();
        assert!(prop.connection_assumption(mid).is_some());
        assert!(prop.connection_assumption(Net::GROUND).is_none());
        assert!(prop.pool().len() >= 3);
    }

    #[test]
    fn best_value_prefers_tightest() {
        let (nl, network) = divider(0.05);
        let mut prop = CrispPropagator::new(&nl, &network, CrispConfig::default());
        let mid = nl.net_by_name("mid").unwrap();
        let q = network.voltage_quantity(mid);
        prop.observe(q, Interval::new(4.0, 6.0));
        prop.observe(q, Interval::new(4.9, 5.1));
        let best = prop.best_value(q).unwrap();
        assert_eq!(best.value, Interval::new(4.9, 5.1));
        // Foreign ids yield empty entry lists, not panics.
        let foreign = flames_circuit::constraint::QuantityId::from_raw(9999);
        assert!(prop.entries(foreign).is_empty());
        assert!(prop.best_value(foreign).is_none());
    }
}
