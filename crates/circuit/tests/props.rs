//! Randomized and metamorphic tests for the circuit substrate:
//! linear-circuit laws (superposition, scaling), solver self-consistency
//! (KCL at every net), analytic ladder checks, prediction soundness and
//! AC/DC coherence.
//!
//! Dependency-free: cases are generated with an inline SplitMix64 and
//! checked with plain `assert!`. Gated behind `--features proptest`
//! (the historical feature name) because the suites are slow, not
//! because they need the external crate.

use flames_circuit::ac::solve_ac;
use flames_circuit::fault::{inject_faults, Fault};
use flames_circuit::predict::nominal_predictions;
use flames_circuit::solve::{solve_dc, DeviceSolution};
use flames_circuit::{ComponentKind, Net, Netlist};

/// SplitMix64 — the same mixer as `flames_bench::rng`, inlined because
/// integration tests cannot depend on the bench crate.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }

    fn below(&mut self, bound: u64) -> u64 {
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// A random resistive ladder: source → R → node → R → node → … → gnd,
/// with shunt resistors to ground at every node.
fn ladder(series: &[f64], shunt: &[f64], volts: f64) -> (Netlist, Vec<Net>) {
    let mut nl = Netlist::new();
    let vin = nl.add_net("vin");
    nl.add_voltage_source("V", vin, Net::GROUND, volts).unwrap();
    let mut prev = vin;
    let mut nodes = Vec::new();
    for (k, (&rs, &rp)) in series.iter().zip(shunt).enumerate() {
        let node = nl.add_net(format!("n{k}"));
        nl.add_resistor(format!("Rs{k}"), prev, node, rs, 0.0)
            .unwrap();
        nl.add_resistor(format!("Rp{k}"), node, Net::GROUND, rp, 0.0)
            .unwrap();
        nodes.push(node);
        prev = node;
    }
    (nl, nodes)
}

/// 1–4 random resistances in [100, 100k).
fn resistances(r: &mut Rng) -> Vec<f64> {
    let n = 1 + r.below(4) as usize;
    (0..n).map(|_| r.range(100.0, 100_000.0)).collect()
}

const CASES: usize = 64;

#[test]
fn source_scaling_is_linear() {
    let mut r = Rng(1);
    for _ in 0..CASES {
        let series = resistances(&mut r);
        let shunt: Vec<f64> = (0..series.len())
            .map(|_| r.range(100.0, 100_000.0))
            .collect();
        let volts = r.range(1.0, 50.0);
        let k = r.range(1.1, 4.0);
        let (nl, nodes) = ladder(&series, &shunt, volts);
        let (nl2, _) = ladder(&series, &shunt, volts * k);
        let a = solve_dc(&nl).unwrap();
        let b = solve_dc(&nl2).unwrap();
        for &n in &nodes {
            assert!((b.voltage(n) - k * a.voltage(n)).abs() < 1e-6 * volts * k);
        }
    }
}

#[test]
fn kcl_holds_at_every_internal_node() {
    let mut r = Rng(2);
    for _ in 0..CASES {
        let series = resistances(&mut r);
        let shunt: Vec<f64> = (0..series.len())
            .map(|_| r.range(100.0, 100_000.0))
            .collect();
        let volts = r.range(1.0, 50.0);
        let (nl, nodes) = ladder(&series, &shunt, volts);
        let op = solve_dc(&nl).unwrap();
        // Currents: for node k, in through Rs_k, out through Rp_k and Rs_{k+1}.
        for (k, &node) in nodes.iter().enumerate() {
            let mut sum = 0.0;
            for (id, comp) in nl.components() {
                if let ComponentKind::Resistor { a, b, .. } = *comp.kind() {
                    if let DeviceSolution::Resistor { amps } = op.device(id) {
                        if a == node {
                            sum += amps; // current leaves node via a→b
                        }
                        if b == node {
                            sum -= amps; // current enters node
                        }
                    }
                }
            }
            assert!(sum.abs() < 1e-9, "KCL violated at node {k}: {sum}");
        }
    }
}

#[test]
fn ladder_matches_analytic_two_section() {
    let mut r = Rng(3);
    for _ in 0..CASES {
        let rs1 = r.range(100.0, 10_000.0);
        let rp1 = r.range(100.0, 10_000.0);
        let volts = r.range(1.0, 20.0);
        // Single-section ladder is the plain divider.
        let (nl, nodes) = ladder(&[rs1], &[rp1], volts);
        let op = solve_dc(&nl).unwrap();
        let expect = volts * rp1 / (rs1 + rp1);
        assert!((op.voltage(nodes[0]) - expect).abs() < 1e-6 * volts);
    }
}

#[test]
fn superposition_of_two_sources() {
    let mut r = Rng(4);
    for _ in 0..CASES {
        let r1 = r.range(100.0, 10_000.0);
        let r2 = r.range(100.0, 10_000.0);
        let r3 = r.range(100.0, 10_000.0);
        let v1 = r.range(1.0, 20.0);
        let v2 = r.range(1.0, 20.0);
        // Two sources driving a T-network: node voltage equals the sum of
        // the single-source responses.
        let build = |va: f64, vb: f64| {
            let mut nl = Netlist::new();
            let na = nl.add_net("a");
            let nb = nl.add_net("b");
            let mid = nl.add_net("mid");
            nl.add_voltage_source("Va", na, Net::GROUND, va).unwrap();
            nl.add_voltage_source("Vb", nb, Net::GROUND, vb).unwrap();
            nl.add_resistor("R1", na, mid, r1, 0.0).unwrap();
            nl.add_resistor("R2", nb, mid, r2, 0.0).unwrap();
            nl.add_resistor("R3", mid, Net::GROUND, r3, 0.0).unwrap();
            (nl, mid)
        };
        let (full, mid) = build(v1, v2);
        let (only_a, _) = build(v1, 0.0);
        let (only_b, _) = build(0.0, v2);
        let vfull = solve_dc(&full).unwrap().voltage(mid);
        let va = solve_dc(&only_a).unwrap().voltage(mid);
        let vb = solve_dc(&only_b).unwrap().voltage(mid);
        assert!((vfull - (va + vb)).abs() < 1e-6 * (v1 + v2));
    }
}

#[test]
fn predictions_contain_in_tolerance_boards() {
    let mut r = Rng(5);
    for _ in 0..CASES {
        let f1 = r.range(0.95, 1.05);
        let f2 = r.range(0.95, 1.05);
        let f3 = r.range(0.95, 1.05);
        let mut nl = Netlist::new();
        let vin = nl.add_net("vin");
        let mid = nl.add_net("mid");
        let out = nl.add_net("out");
        nl.add_voltage_source("V", vin, Net::GROUND, 12.0).unwrap();
        let r1 = nl.add_resistor("R1", vin, mid, 2_000.0, 0.05).unwrap();
        let r2 = nl.add_resistor("R2", mid, out, 1_000.0, 0.05).unwrap();
        let r3 = nl
            .add_resistor("R3", out, Net::GROUND, 3_000.0, 0.05)
            .unwrap();
        let preds = nominal_predictions(&nl, &[mid, out]).unwrap();
        let board = inject_faults(
            &nl,
            &[
                (r1, Fault::ParamFactor(f1)),
                (r2, Fault::ParamFactor(f2)),
                (r3, Fault::ParamFactor(f3)),
            ],
        )
        .unwrap();
        let op = solve_dc(&board).unwrap();
        for (pred, net) in preds.iter().zip([mid, out]) {
            let v = op.voltage(net);
            assert!(
                v >= pred.support_lo() - 1e-9 && v <= pred.support_hi() + 1e-9,
                "{v} escapes {pred} at {net}"
            );
        }
    }
}

#[test]
fn ac_amplitude_scales_with_stimulus() {
    let mut r = Rng(6);
    for _ in 0..CASES {
        let c = r.range(1e-9, 1e-6);
        let res = r.range(100.0, 100_000.0);
        let freq = r.range(10.0, 100_000.0);
        let amp = r.range(0.1, 10.0);
        let mut nl = Netlist::new();
        let vin = nl.add_net("vin");
        let out = nl.add_net("out");
        let src = nl.add_voltage_source("Vin", vin, Net::GROUND, 0.0).unwrap();
        nl.add_resistor("R", vin, out, res, 0.0).unwrap();
        nl.add_capacitor("C", out, Net::GROUND, c, 0.0).unwrap();
        let one = solve_ac(&nl, src, 1.0, freq).unwrap().amplitude(out);
        let scaled = solve_ac(&nl, src, amp, freq).unwrap().amplitude(out);
        assert!((scaled - amp * one).abs() < 1e-9 * amp.max(1.0));
        // The RC low-pass has the analytic magnitude 1/sqrt(1+(ωRC)²).
        let w = 2.0 * std::f64::consts::PI * freq;
        let expect = 1.0 / (1.0 + (w * res * c).powi(2)).sqrt();
        assert!((one - expect).abs() < 1e-6);
    }
}

#[test]
fn ac_low_frequency_approaches_resistive_divider() {
    let mut r = Rng(7);
    for _ in 0..CASES {
        let r1 = r.range(100.0, 10_000.0);
        let r2 = r.range(100.0, 10_000.0);
        // With no reactive parts, the AC response is frequency-flat and
        // equals the DC divider ratio.
        let mut nl = Netlist::new();
        let vin = nl.add_net("vin");
        let out = nl.add_net("out");
        let src = nl.add_voltage_source("Vin", vin, Net::GROUND, 0.0).unwrap();
        nl.add_resistor("R1", vin, out, r1, 0.0).unwrap();
        nl.add_resistor("R2", out, Net::GROUND, r2, 0.0).unwrap();
        let lo = solve_ac(&nl, src, 1.0, 1.0).unwrap().amplitude(out);
        let hi = solve_ac(&nl, src, 1.0, 1e6).unwrap().amplitude(out);
        let ratio = r2 / (r1 + r2);
        assert!((lo - ratio).abs() < 1e-6);
        assert!((hi - ratio).abs() < 1e-6);
    }
}
