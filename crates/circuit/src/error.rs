use std::fmt;

/// Errors produced by the circuit substrate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CircuitError {
    /// A component name was used twice in one netlist.
    DuplicateComponent {
        /// The duplicated name.
        name: String,
    },
    /// A net handle did not belong to the netlist.
    UnknownNet {
        /// The out-of-range net index.
        index: usize,
    },
    /// A component id did not belong to the netlist.
    UnknownComponent {
        /// The out-of-range component index.
        index: usize,
    },
    /// A component parameter was out of its physical range.
    InvalidParameter {
        /// The component being created.
        component: String,
        /// What was wrong.
        what: &'static str,
    },
    /// The DC operating-point solve failed (singular matrix — usually a
    /// floating net or a short loop of ideal sources).
    SingularSystem,
    /// The nonlinear device-state iteration did not converge.
    NoConvergence {
        /// The iteration budget that was exhausted.
        iterations: usize,
    },
    /// A fault was attached to a component kind that does not support it
    /// (e.g. shorting a current source).
    UnsupportedFault {
        /// The target component name.
        component: String,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::DuplicateComponent { name } => {
                write!(f, "duplicate component name {name:?}")
            }
            CircuitError::UnknownNet { index } => write!(f, "unknown net index {index}"),
            CircuitError::UnknownComponent { index } => {
                write!(f, "unknown component index {index}")
            }
            CircuitError::InvalidParameter { component, what } => {
                write!(f, "invalid parameter for {component:?}: {what}")
            }
            CircuitError::SingularSystem => {
                write!(f, "singular system: floating net or inconsistent sources")
            }
            CircuitError::NoConvergence { iterations } => {
                write!(
                    f,
                    "device-state iteration did not converge in {iterations} steps"
                )
            }
            CircuitError::UnsupportedFault { component } => {
                write!(f, "fault kind not supported by component {component:?}")
            }
        }
    }
}

impl std::error::Error for CircuitError {}
