use crate::error::CircuitError;
use crate::Result;
use std::collections::HashMap;
use std::fmt;

/// A circuit node (electrical net). Net 0 is always ground.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Net(pub(crate) u32);

impl Net {
    /// The ground net.
    pub const GROUND: Net = Net(0);

    /// Raw index of the net (0 = ground).
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// True for the ground net.
    #[must_use]
    pub fn is_ground(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Net {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_ground() {
            write!(f, "gnd")
        } else {
            write!(f, "net{}", self.0)
        }
    }
}

/// Identifier of a component inside a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CompId(pub(crate) u32);

impl CompId {
    /// Raw index of the component.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an id from a raw index; only meaningful against the
    /// netlist it indexes.
    #[doc(hidden)]
    #[must_use]
    pub fn from_raw_for_tests(index: usize) -> Self {
        CompId(u32::try_from(index).expect("< 2^32 components"))
    }
}

impl fmt::Display for CompId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// The electrical behaviour of a component.
///
/// The set covers what the paper's circuits need: passive resistors,
/// independent sources, the constant-drop diode of Fig. 5, the
/// `Vbe = 0.7 V`, `Ic = β·Ib` linear-region bipolar model of Fig. 6, and
/// the ideal gain blocks of Fig. 2.
#[derive(Debug, Clone, PartialEq)]
pub enum ComponentKind {
    /// Linear resistor between `a` and `b` with nominal resistance `ohms`.
    Resistor {
        /// First terminal.
        a: Net,
        /// Second terminal.
        b: Net,
        /// Nominal resistance in ohms.
        ohms: f64,
    },
    /// Linear capacitor (open at DC; admittance `jωC` in the dynamic
    /// mode).
    Capacitor {
        /// First terminal.
        a: Net,
        /// Second terminal.
        b: Net,
        /// Nominal capacitance in farads.
        farads: f64,
    },
    /// Linear inductor (a short at DC; impedance `jωL` in the dynamic
    /// mode).
    Inductor {
        /// First terminal.
        a: Net,
        /// Second terminal.
        b: Net,
        /// Nominal inductance in henries.
        henries: f64,
    },
    /// Independent voltage source: `V(plus) − V(minus) = volts`.
    VoltageSource {
        /// Positive terminal.
        plus: Net,
        /// Negative terminal.
        minus: Net,
        /// Source voltage in volts.
        volts: f64,
    },
    /// Independent current source driving `amps` from `from` into `to`.
    CurrentSource {
        /// Current leaves this net.
        from: Net,
        /// Current enters this net.
        to: Net,
        /// Source current in amperes.
        amps: f64,
    },
    /// Forward-drop diode: conducting it holds `V(anode) − V(cathode) =
    /// drop_volts`; blocking it carries no current.
    Diode {
        /// Anode.
        anode: Net,
        /// Cathode.
        cathode: Net,
        /// Forward drop in volts (the paper's Fig. 5 uses 0.2 V).
        drop_volts: f64,
    },
    /// NPN bipolar transistor in the paper's linear-region model:
    /// `V(base) − V(emitter) = vbe`, `Ic = beta · Ib`.
    Npn {
        /// Collector.
        collector: Net,
        /// Base.
        base: Net,
        /// Emitter.
        emitter: Net,
        /// Forward current gain β.
        beta: f64,
        /// Base-emitter drop in volts (0.7 V in Fig. 6).
        vbe: f64,
    },
    /// Ideal voltage gain block: `V(output) = gain · V(input)` with
    /// infinite input impedance (the Fig. 2 "amplifiers").
    Gain {
        /// Input net (no current drawn).
        input: Net,
        /// Output net (ideal source).
        output: Net,
        /// Voltage gain.
        gain: f64,
    },
}

/// A named component with a tolerance on its primary parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Component {
    name: String,
    kind: ComponentKind,
    tolerance: f64,
}

impl Component {
    /// The component's name (e.g. `"R2"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The component's electrical behaviour.
    #[must_use]
    pub fn kind(&self) -> &ComponentKind {
        &self.kind
    }

    /// Relative tolerance of the primary parameter (resistance, gain, β, …).
    #[must_use]
    pub fn tolerance(&self) -> f64 {
        self.tolerance
    }

    /// The nominal value of the primary parameter.
    #[must_use]
    pub fn primary_param(&self) -> f64 {
        match self.kind {
            ComponentKind::Resistor { ohms, .. } => ohms,
            ComponentKind::Capacitor { farads, .. } => farads,
            ComponentKind::Inductor { henries, .. } => henries,
            ComponentKind::VoltageSource { volts, .. } => volts,
            ComponentKind::CurrentSource { amps, .. } => amps,
            ComponentKind::Diode { drop_volts, .. } => drop_volts,
            ComponentKind::Npn { beta, .. } => beta,
            ComponentKind::Gain { gain, .. } => gain,
        }
    }

    /// The nets this component touches.
    #[must_use]
    pub fn nets(&self) -> Vec<Net> {
        match self.kind {
            ComponentKind::Resistor { a, b, .. }
            | ComponentKind::Capacitor { a, b, .. }
            | ComponentKind::Inductor { a, b, .. } => vec![a, b],
            ComponentKind::VoltageSource { plus, minus, .. } => vec![plus, minus],
            ComponentKind::CurrentSource { from, to, .. } => vec![from, to],
            ComponentKind::Diode { anode, cathode, .. } => vec![anode, cathode],
            ComponentKind::Npn {
                collector,
                base,
                emitter,
                ..
            } => vec![collector, base, emitter],
            ComponentKind::Gain { input, output, .. } => vec![input, output],
        }
    }
}

/// A flat netlist: named nets, named components, ground at net 0.
///
/// # Example
///
/// ```
/// use flames_circuit::{ComponentKind, Net, Netlist};
///
/// # fn main() -> Result<(), flames_circuit::CircuitError> {
/// let mut nl = Netlist::new();
/// let vin = nl.add_net("vin");
/// let out = nl.add_net("out");
/// nl.add_voltage_source("Vin", vin, Net::GROUND, 5.0)?;
/// let r = nl.add_resistor("R1", vin, out, 1000.0, 0.05)?;
/// nl.add_resistor("R2", out, Net::GROUND, 1000.0, 0.05)?;
/// assert_eq!(nl.component(r).name(), "R1");
/// assert_eq!(nl.net_count(), 3); // gnd, vin, out
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    net_names: Vec<String>,
    components: Vec<Component>,
    by_name: HashMap<String, CompId>,
}

impl Netlist {
    /// Creates a netlist containing only the ground net.
    #[must_use]
    pub fn new() -> Self {
        Self {
            net_names: vec!["gnd".to_owned()],
            components: Vec::new(),
            by_name: HashMap::new(),
        }
    }

    /// Adds a named net and returns its handle.
    pub fn add_net(&mut self, name: impl Into<String>) -> Net {
        let id = Net(u32::try_from(self.net_names.len()).expect("< 2^32 nets"));
        self.net_names.push(name.into());
        id
    }

    /// Number of nets including ground.
    #[must_use]
    pub fn net_count(&self) -> usize {
        self.net_names.len()
    }

    /// Number of components.
    #[must_use]
    pub fn component_count(&self) -> usize {
        self.components.len()
    }

    /// The name of a net.
    #[must_use]
    pub fn net_name(&self, net: Net) -> &str {
        &self.net_names[net.index()]
    }

    /// Looks up a net handle by name.
    #[must_use]
    pub fn net_by_name(&self, name: &str) -> Option<Net> {
        self.net_names
            .iter()
            .position(|n| n == name)
            .map(|i| Net(i as u32))
    }

    /// The component with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this netlist.
    #[must_use]
    pub fn component(&self, id: CompId) -> &Component {
        &self.components[id.index()]
    }

    /// Looks a component up by name.
    #[must_use]
    pub fn component_by_name(&self, name: &str) -> Option<CompId> {
        self.by_name.get(name).copied()
    }

    /// Iterates over `(CompId, &Component)` pairs.
    pub fn components(&self) -> impl Iterator<Item = (CompId, &Component)> {
        self.components
            .iter()
            .enumerate()
            .map(|(i, c)| (CompId(i as u32), c))
    }

    /// Iterates over all net handles (including ground).
    pub fn nets(&self) -> impl Iterator<Item = Net> {
        (0..self.net_names.len() as u32).map(Net)
    }

    /// Adds a resistor.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError`] on a non-positive resistance, an unknown
    /// net, or a duplicate component name.
    pub fn add_resistor(
        &mut self,
        name: impl Into<String>,
        a: Net,
        b: Net,
        ohms: f64,
        tolerance: f64,
    ) -> Result<CompId> {
        if !(ohms > 0.0 && ohms.is_finite()) {
            return Err(CircuitError::InvalidParameter {
                component: name.into(),
                what: "resistance must be positive and finite",
            });
        }
        self.push(
            name.into(),
            ComponentKind::Resistor { a, b, ohms },
            tolerance,
        )
    }

    /// Adds a capacitor (open at DC, `jωC` in the dynamic mode).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError`] on a non-positive capacitance, an unknown
    /// net, or a duplicate component name.
    pub fn add_capacitor(
        &mut self,
        name: impl Into<String>,
        a: Net,
        b: Net,
        farads: f64,
        tolerance: f64,
    ) -> Result<CompId> {
        if !(farads > 0.0 && farads.is_finite()) {
            return Err(CircuitError::InvalidParameter {
                component: name.into(),
                what: "capacitance must be positive and finite",
            });
        }
        self.push(
            name.into(),
            ComponentKind::Capacitor { a, b, farads },
            tolerance,
        )
    }

    /// Adds an inductor (a short at DC, `jωL` in the dynamic mode).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError`] on a non-positive inductance, an unknown
    /// net, or a duplicate component name.
    pub fn add_inductor(
        &mut self,
        name: impl Into<String>,
        a: Net,
        b: Net,
        henries: f64,
        tolerance: f64,
    ) -> Result<CompId> {
        if !(henries > 0.0 && henries.is_finite()) {
            return Err(CircuitError::InvalidParameter {
                component: name.into(),
                what: "inductance must be positive and finite",
            });
        }
        self.push(
            name.into(),
            ComponentKind::Inductor { a, b, henries },
            tolerance,
        )
    }

    /// Adds an independent voltage source (zero tolerance).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError`] on an unknown net or duplicate name.
    pub fn add_voltage_source(
        &mut self,
        name: impl Into<String>,
        plus: Net,
        minus: Net,
        volts: f64,
    ) -> Result<CompId> {
        self.push(
            name.into(),
            ComponentKind::VoltageSource { plus, minus, volts },
            0.0,
        )
    }

    /// Adds an independent current source (zero tolerance).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError`] on an unknown net or duplicate name.
    pub fn add_current_source(
        &mut self,
        name: impl Into<String>,
        from: Net,
        to: Net,
        amps: f64,
    ) -> Result<CompId> {
        self.push(
            name.into(),
            ComponentKind::CurrentSource { from, to, amps },
            0.0,
        )
    }

    /// Adds a constant-drop diode.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError`] on an unknown net or duplicate name.
    pub fn add_diode(
        &mut self,
        name: impl Into<String>,
        anode: Net,
        cathode: Net,
        drop_volts: f64,
        tolerance: f64,
    ) -> Result<CompId> {
        self.push(
            name.into(),
            ComponentKind::Diode {
                anode,
                cathode,
                drop_volts,
            },
            tolerance,
        )
    }

    /// Adds an NPN transistor (linear-region model).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError`] on a non-positive β, an unknown net, or a
    /// duplicate name.
    #[allow(clippy::too_many_arguments)] // three terminals + β + Vbe + tolerance is the device
    pub fn add_npn(
        &mut self,
        name: impl Into<String>,
        collector: Net,
        base: Net,
        emitter: Net,
        beta: f64,
        vbe: f64,
        tolerance: f64,
    ) -> Result<CompId> {
        if !(beta > 0.0 && beta.is_finite()) {
            return Err(CircuitError::InvalidParameter {
                component: name.into(),
                what: "beta must be positive and finite",
            });
        }
        self.push(
            name.into(),
            ComponentKind::Npn {
                collector,
                base,
                emitter,
                beta,
                vbe,
            },
            tolerance,
        )
    }

    /// Adds an ideal gain block.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError`] on an unknown net or duplicate name.
    pub fn add_gain(
        &mut self,
        name: impl Into<String>,
        input: Net,
        output: Net,
        gain: f64,
        tolerance: f64,
    ) -> Result<CompId> {
        self.push(
            name.into(),
            ComponentKind::Gain {
                input,
                output,
                gain,
            },
            tolerance,
        )
    }

    /// Replaces a component's electrical behaviour in place (fault
    /// injection); name, id and tolerance are preserved.
    pub(crate) fn replace_component_kind(&mut self, id: CompId, kind: ComponentKind) {
        self.components[id.index()].kind = kind;
    }

    fn push(&mut self, name: String, kind: ComponentKind, tolerance: f64) -> Result<CompId> {
        if self.by_name.contains_key(&name) {
            return Err(CircuitError::DuplicateComponent { name });
        }
        if !(0.0..1.0).contains(&tolerance) {
            return Err(CircuitError::InvalidParameter {
                component: name,
                what: "tolerance must lie in [0, 1)",
            });
        }
        let max = self.net_names.len() as u32;
        let comp = Component {
            name: name.clone(),
            kind,
            tolerance,
        };
        for net in comp.nets() {
            if net.0 >= max {
                return Err(CircuitError::UnknownNet { index: net.index() });
            }
        }
        let id = CompId(u32::try_from(self.components.len()).expect("< 2^32 components"));
        self.by_name.insert(name, id);
        self.components.push(comp);
        Ok(id)
    }
}

impl fmt::Display for Netlist {
    /// Renders a human-readable SPICE-flavoured listing.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "* netlist: {} nets, {} components",
            self.net_count(),
            self.component_count()
        )?;
        for (_, comp) in self.components() {
            let nets: Vec<&str> = comp.nets().iter().map(|&n| self.net_name(n)).collect();
            let kind = match comp.kind() {
                ComponentKind::Resistor { .. } => "R",
                ComponentKind::Capacitor { .. } => "C",
                ComponentKind::Inductor { .. } => "L",
                ComponentKind::VoltageSource { .. } => "V",
                ComponentKind::CurrentSource { .. } => "I",
                ComponentKind::Diode { .. } => "D",
                ComponentKind::Npn { .. } => "Q",
                ComponentKind::Gain { .. } => "E",
            };
            writeln!(
                f,
                "{kind} {:<8} {:<24} {:>12.4e}  tol {:.1}%",
                comp.name(),
                nets.join(" "),
                comp.primary_param(),
                100.0 * comp.tolerance()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_lists_components() {
        let mut nl = Netlist::new();
        let a = nl.add_net("a");
        nl.add_voltage_source("V1", a, Net::GROUND, 5.0).unwrap();
        nl.add_resistor("R1", a, Net::GROUND, 1e3, 0.05).unwrap();
        let text = format!("{nl}");
        assert!(text.contains("2 components"));
        assert!(text.contains("R R1"));
        assert!(text.contains("V V1"));
        assert!(text.contains("tol 5.0%"));
    }

    #[test]
    fn ground_is_always_present() {
        let nl = Netlist::new();
        assert_eq!(nl.net_count(), 1);
        assert_eq!(nl.net_name(Net::GROUND), "gnd");
        assert!(Net::GROUND.is_ground());
        assert_eq!(format!("{}", Net::GROUND), "gnd");
    }

    #[test]
    fn add_and_lookup_components() {
        let mut nl = Netlist::new();
        let a = nl.add_net("a");
        let r = nl.add_resistor("R1", a, Net::GROUND, 1e3, 0.05).unwrap();
        assert_eq!(nl.component_by_name("R1"), Some(r));
        assert_eq!(nl.component_by_name("R9"), None);
        assert_eq!(nl.component(r).primary_param(), 1e3);
        assert_eq!(nl.component(r).tolerance(), 0.05);
        assert_eq!(nl.component(r).nets(), vec![a, Net::GROUND]);
        assert_eq!(nl.net_by_name("a"), Some(a));
        assert_eq!(nl.net_by_name("zz"), None);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut nl = Netlist::new();
        let a = nl.add_net("a");
        nl.add_resistor("R1", a, Net::GROUND, 1.0, 0.0).unwrap();
        assert!(matches!(
            nl.add_resistor("R1", a, Net::GROUND, 2.0, 0.0),
            Err(CircuitError::DuplicateComponent { .. })
        ));
    }

    #[test]
    fn invalid_parameters_rejected() {
        let mut nl = Netlist::new();
        let a = nl.add_net("a");
        assert!(nl.add_resistor("R1", a, Net::GROUND, 0.0, 0.0).is_err());
        assert!(nl.add_resistor("R2", a, Net::GROUND, -5.0, 0.0).is_err());
        assert!(nl.add_resistor("R3", a, Net::GROUND, 1.0, 1.0).is_err());
        assert!(nl.add_npn("T1", a, a, Net::GROUND, 0.0, 0.7, 0.0).is_err());
    }

    #[test]
    fn unknown_net_rejected() {
        let mut nl = Netlist::new();
        let foreign = Net(42);
        assert!(matches!(
            nl.add_resistor("R1", foreign, Net::GROUND, 1.0, 0.0),
            Err(CircuitError::UnknownNet { .. })
        ));
    }

    #[test]
    fn npn_nets_and_params() {
        let mut nl = Netlist::new();
        let c = nl.add_net("c");
        let b = nl.add_net("b");
        let e = nl.add_net("e");
        let t = nl.add_npn("T1", c, b, e, 300.0, 0.7, 0.05).unwrap();
        let comp = nl.component(t);
        assert_eq!(comp.primary_param(), 300.0);
        assert_eq!(comp.nets(), vec![c, b, e]);
        match comp.kind() {
            ComponentKind::Npn { vbe, .. } => assert_eq!(*vbe, 0.7),
            _ => panic!("wrong kind"),
        }
    }

    #[test]
    fn iteration_covers_everything() {
        let mut nl = Netlist::new();
        let a = nl.add_net("a");
        nl.add_voltage_source("V1", a, Net::GROUND, 5.0).unwrap();
        nl.add_resistor("R1", a, Net::GROUND, 1e3, 0.01).unwrap();
        assert_eq!(nl.components().count(), 2);
        assert_eq!(nl.nets().count(), 2);
        assert_eq!(nl.component_count(), 2);
    }
}
