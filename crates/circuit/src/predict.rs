//! Tolerance-aware nominal predictions and simulated measurements.
//!
//! FLAMES compares *predicted* values (from the model, with component
//! tolerances) against *measured* values (from the bench, with instrument
//! imprecision). This module supplies both sides for the reproduction:
//!
//! * [`nominal_predictions`] solves the healthy netlist at its nominal
//!   parameters and at one-at-a-time tolerance corners, building a
//!   trapezoidal prediction per net: core at the nominal voltage, spreads
//!   from the accumulated (linearized, conservative) corner deviations.
//!   This stands in for the paper's "database of models … predicted
//!   values"; the assumption support of a prediction is the test point's
//!   declared dependency cone.
//! * [`measure`] solves a (possibly faulted) netlist and wraps the reading
//!   in the measurement-equipment imprecision — the paper's §4.2 fuzzy
//!   measured values.

use crate::error::CircuitError;
use crate::fault::inject_faults;
use crate::netlist::{CompId, Net, Netlist};
use crate::solve::solve_dc;
use crate::{Fault, Result};
use flames_fuzzy::FuzzyInterval;

/// A probe-able point of the circuit with the components its predicted
/// value depends on (the paper's per-point suspect sets, e.g. Fig. 7's
/// `{R1, R2, R3, T1}` for V1).
#[derive(Debug, Clone, PartialEq)]
pub struct TestPoint {
    /// The probed net.
    pub net: Net,
    /// Display name (`"V1"`).
    pub name: String,
    /// Components whose correctness the predicted value rests on.
    pub support: Vec<CompId>,
    /// Relative cost of probing this point (used by the best-test
    /// strategy; 1.0 = nominal effort).
    pub cost: f64,
}

impl TestPoint {
    /// Creates a test point with unit probing cost.
    #[must_use]
    pub fn new(net: Net, name: impl Into<String>, support: Vec<CompId>) -> Self {
        Self {
            net,
            name: name.into(),
            support,
            cost: 1.0,
        }
    }

    /// Sets a non-unit probing cost.
    #[must_use]
    pub fn with_cost(mut self, cost: f64) -> Self {
        self.cost = cost;
        self
    }
}

/// Fuzzy nominal predictions for the given nets of a healthy netlist.
///
/// The core of each prediction is the nominal solve; the spreads
/// accumulate, per component, the worst one-at-a-time deviation when that
/// component's primary parameter moves to its ±tolerance corner. Summing
/// per-component worst cases linearizes the joint tolerance region
/// conservatively — predictions *contain* the truth for any in-tolerance
/// board, which is the soundness the diagnosis needs.
///
/// # Errors
///
/// Propagates solver failures ([`CircuitError::SingularSystem`],
/// [`CircuitError::NoConvergence`]) from the nominal or corner solves.
pub fn nominal_predictions(netlist: &Netlist, nets: &[Net]) -> Result<Vec<FuzzyInterval>> {
    let nominal = solve_dc(netlist)?;
    let mut lo = vec![0.0f64; nets.len()];
    let mut hi = vec![0.0f64; nets.len()];
    for (id, comp) in netlist.components() {
        let tol = comp.tolerance();
        if tol <= 0.0 {
            continue;
        }
        let plus = solve_dc(&inject_faults(
            netlist,
            &[(id, Fault::ParamFactor(1.0 + tol))],
        )?)?;
        let minus = solve_dc(&inject_faults(
            netlist,
            &[(id, Fault::ParamFactor(1.0 - tol))],
        )?)?;
        for (k, &net) in nets.iter().enumerate() {
            let d1 = plus.voltage(net) - nominal.voltage(net);
            let d2 = minus.voltage(net) - nominal.voltage(net);
            let up = d1.max(d2).max(0.0);
            let down = (-d1).max(-d2).max(0.0);
            hi[k] += up;
            lo[k] += down;
        }
    }
    let mut out = Vec::with_capacity(nets.len());
    for (k, &net) in nets.iter().enumerate() {
        let v = nominal.voltage(net);
        out.push(
            FuzzyInterval::new(v, v, lo[k], hi[k])
                .expect("nominal prediction spreads are non-negative"),
        );
    }
    Ok(out)
}

/// Solves a (possibly faulted) netlist and returns the reading at `net`
/// as a fuzzy value with absolute instrument imprecision
/// `imprecision_volts` on both sides.
///
/// # Errors
///
/// Propagates solver failures.
pub fn measure(netlist: &Netlist, net: Net, imprecision_volts: f64) -> Result<FuzzyInterval> {
    let op = solve_dc(netlist)?;
    FuzzyInterval::crisp(op.voltage(net))
        .widened(imprecision_volts)
        .map_err(|_| CircuitError::InvalidParameter {
            component: "measurement".to_owned(),
            what: "imprecision must be non-negative",
        })
}

/// Measures several nets of the same (possibly faulted) netlist in one
/// solve.
///
/// # Errors
///
/// Propagates solver failures.
pub fn measure_all(
    netlist: &Netlist,
    nets: &[Net],
    imprecision_volts: f64,
) -> Result<Vec<FuzzyInterval>> {
    let op = solve_dc(netlist)?;
    nets.iter()
        .map(|&net| {
            FuzzyInterval::crisp(op.voltage(net))
                .widened(imprecision_volts)
                .map_err(|_| CircuitError::InvalidParameter {
                    component: "measurement".to_owned(),
                    what: "imprecision must be non-negative",
                })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn divider(tol: f64) -> (Netlist, Net) {
        let mut nl = Netlist::new();
        let vin = nl.add_net("vin");
        let mid = nl.add_net("mid");
        nl.add_voltage_source("V", vin, Net::GROUND, 10.0).unwrap();
        nl.add_resistor("R1", vin, mid, 1e3, tol).unwrap();
        nl.add_resistor("R2", mid, Net::GROUND, 1e3, tol).unwrap();
        (nl, mid)
    }

    #[test]
    fn prediction_core_is_nominal() {
        let (nl, mid) = divider(0.05);
        let preds = nominal_predictions(&nl, &[mid]).unwrap();
        assert!((preds[0].core_midpoint() - 5.0).abs() < 1e-6);
        assert!(preds[0].spread_left() > 0.0);
        assert!(preds[0].spread_right() > 0.0);
    }

    #[test]
    fn zero_tolerance_gives_crisp_prediction() {
        let (nl, mid) = divider(0.0);
        let preds = nominal_predictions(&nl, &[mid]).unwrap();
        assert!(preds[0].is_point());
    }

    #[test]
    fn prediction_contains_in_tolerance_boards() {
        let (nl, mid) = divider(0.05);
        let preds = nominal_predictions(&nl, &[mid]).unwrap();
        // Perturb both resistors inside tolerance; the actual voltage must
        // fall in the prediction's support.
        for (f1, f2) in [(1.04, 0.97), (0.96, 1.05), (1.05, 1.05), (0.95, 1.02)] {
            let r1 = nl.component_by_name("R1").unwrap();
            let r2 = nl.component_by_name("R2").unwrap();
            let board = inject_faults(
                &nl,
                &[(r1, Fault::ParamFactor(f1)), (r2, Fault::ParamFactor(f2))],
            )
            .unwrap();
            let v = solve_dc(&board).unwrap().voltage(mid);
            assert!(
                v >= preds[0].support_lo() - 1e-9 && v <= preds[0].support_hi() + 1e-9,
                "voltage {v} escapes prediction {}",
                preds[0]
            );
        }
    }

    #[test]
    fn wider_tolerance_widens_prediction() {
        let (nl5, mid) = divider(0.05);
        let (nl10, _) = divider(0.10);
        let p5 = nominal_predictions(&nl5, &[mid]).unwrap();
        let p10 = nominal_predictions(&nl10, &[mid]).unwrap();
        assert!(p10[0].support_width() > p5[0].support_width());
    }

    #[test]
    fn measurement_wraps_reading() {
        let (nl, mid) = divider(0.05);
        let m = measure(&nl, mid, 0.05).unwrap();
        assert!((m.core_midpoint() - 5.0).abs() < 1e-6);
        assert_eq!(m.spread_left(), 0.05);
        let ms = measure_all(&nl, &[mid, Net::GROUND], 0.01).unwrap();
        assert_eq!(ms.len(), 2);
        assert!((ms[1].core_midpoint()).abs() < 1e-12);
    }

    #[test]
    fn faulty_board_measurement_escapes_prediction() {
        let (nl, mid) = divider(0.05);
        let preds = nominal_predictions(&nl, &[mid]).unwrap();
        let r1 = nl.component_by_name("R1").unwrap();
        let bad = inject_faults(&nl, &[(r1, Fault::ParamFactor(2.0))]).unwrap();
        let m = measure(&bad, mid, 0.01).unwrap();
        // A 2× resistor pushes the reading clearly out of the prediction.
        assert!(m.core_midpoint() < preds[0].support_lo());
    }

    #[test]
    fn test_point_builder() {
        let (nl, mid) = divider(0.05);
        let r1 = nl.component_by_name("R1").unwrap();
        let tp = TestPoint::new(mid, "Vmid", vec![r1]).with_cost(2.5);
        assert_eq!(tp.cost, 2.5);
        assert_eq!(tp.name, "Vmid");
        assert_eq!(tp.support, vec![r1]);
    }
}
