//! Fault injection: the defect menu of the paper's Fig. 7 experiments.

use crate::error::CircuitError;
use crate::netlist::{CompId, ComponentKind, Net, Netlist};
use crate::Result;
use std::fmt;

/// A physical defect injected into a component — the paper's §7 "common
/// fault modes (such as open, short, high, or low for resistors)" plus the
/// parametric (*soft*) faults its Fig. 7 experiments revolve around.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// The component no longer conducts (open circuit).
    Open,
    /// The component is a near-perfect conductor (short circuit).
    Short,
    /// The primary parameter takes an absolute new value (e.g. the paper's
    /// `R2 = 12.18 kΩ`, `β2 = 194`).
    Param(f64),
    /// The primary parameter is scaled by a factor (e.g. `0.9` = 10 % low).
    ParamFactor(f64),
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::Open => write!(f, "open"),
            Fault::Short => write!(f, "short"),
            Fault::Param(v) => write!(f, "param={v}"),
            Fault::ParamFactor(k) => write!(f, "param×{k}"),
        }
    }
}

/// Resistance standing in for an open circuit (finite to keep the solver
/// well-conditioned; far above any circuit impedance).
pub const OPEN_OHMS: f64 = 1e12;

/// Resistance standing in for a short circuit.
pub const SHORT_OHMS: f64 = 1e-3;

/// Returns a copy of `netlist` with the given faults injected.
///
/// The faulty netlist keeps the same component ids and names; only the
/// electrical behaviour changes:
///
/// * resistors: open → [`OPEN_OHMS`], short → [`SHORT_OHMS`], `Param`
///   replaces the resistance;
/// * diodes: open → an [`OPEN_OHMS`] resistor, short → a [`SHORT_OHMS`]
///   resistor, `Param` changes the forward drop;
/// * transistors: open (dead device) → an [`OPEN_OHMS`]
///   collector-emitter resistor, `Param` changes β;
/// * gain blocks / sources: `Param` changes gain / level; an open current
///   source delivers zero.
///
/// # Errors
///
/// Returns [`CircuitError::UnknownComponent`] for a foreign id, or
/// [`CircuitError::UnsupportedFault`] for physically meaningless
/// combinations (e.g. shorting a current source).
pub fn inject_faults(netlist: &Netlist, faults: &[(CompId, Fault)]) -> Result<Netlist> {
    let mut out = netlist.clone();
    for &(id, fault) in faults {
        if id.index() >= netlist.component_count() {
            return Err(CircuitError::UnknownComponent { index: id.index() });
        }
        let comp = netlist.component(id);
        let name = comp.name().to_owned();
        let new_kind = match (comp.kind().clone(), fault) {
            (ComponentKind::Resistor { a, b, .. }, Fault::Open) => ComponentKind::Resistor {
                a,
                b,
                ohms: OPEN_OHMS,
            },
            (ComponentKind::Resistor { a, b, .. }, Fault::Short) => ComponentKind::Resistor {
                a,
                b,
                ohms: SHORT_OHMS,
            },
            (ComponentKind::Resistor { a, b, .. }, Fault::Param(v)) if v > 0.0 => {
                ComponentKind::Resistor { a, b, ohms: v }
            }
            (ComponentKind::Resistor { a, b, ohms }, Fault::ParamFactor(k)) if k > 0.0 => {
                ComponentKind::Resistor {
                    a,
                    b,
                    ohms: ohms * k,
                }
            }
            (ComponentKind::Capacitor { a, b, .. }, Fault::Open) => {
                // A cracked capacitor: vanishing capacitance.
                ComponentKind::Capacitor {
                    a,
                    b,
                    farads: 1e-18,
                }
            }
            (ComponentKind::Capacitor { a, b, .. }, Fault::Short) => ComponentKind::Resistor {
                a,
                b,
                ohms: SHORT_OHMS,
            },
            (ComponentKind::Capacitor { a, b, .. }, Fault::Param(v)) if v > 0.0 => {
                ComponentKind::Capacitor { a, b, farads: v }
            }
            (ComponentKind::Capacitor { a, b, farads }, Fault::ParamFactor(k)) if k > 0.0 => {
                ComponentKind::Capacitor {
                    a,
                    b,
                    farads: farads * k,
                }
            }
            (ComponentKind::Inductor { a, b, .. }, Fault::Open) => ComponentKind::Resistor {
                a,
                b,
                ohms: OPEN_OHMS,
            },
            (ComponentKind::Inductor { a, b, .. }, Fault::Short) => ComponentKind::Resistor {
                a,
                b,
                ohms: SHORT_OHMS,
            },
            (ComponentKind::Inductor { a, b, .. }, Fault::Param(v)) if v > 0.0 => {
                ComponentKind::Inductor { a, b, henries: v }
            }
            (ComponentKind::Inductor { a, b, henries }, Fault::ParamFactor(k)) if k > 0.0 => {
                ComponentKind::Inductor {
                    a,
                    b,
                    henries: henries * k,
                }
            }
            (ComponentKind::Diode { anode, cathode, .. }, Fault::Open) => ComponentKind::Resistor {
                a: anode,
                b: cathode,
                ohms: OPEN_OHMS,
            },
            (ComponentKind::Diode { anode, cathode, .. }, Fault::Short) => {
                ComponentKind::Resistor {
                    a: anode,
                    b: cathode,
                    ohms: SHORT_OHMS,
                }
            }
            (ComponentKind::Diode { anode, cathode, .. }, Fault::Param(v)) => {
                ComponentKind::Diode {
                    anode,
                    cathode,
                    drop_volts: v,
                }
            }
            (
                ComponentKind::Diode {
                    anode,
                    cathode,
                    drop_volts,
                },
                Fault::ParamFactor(k),
            ) => ComponentKind::Diode {
                anode,
                cathode,
                drop_volts: drop_volts * k,
            },
            (
                ComponentKind::Npn {
                    collector, emitter, ..
                },
                Fault::Open,
            ) => ComponentKind::Resistor {
                a: collector,
                b: emitter,
                ohms: OPEN_OHMS,
            },
            (
                ComponentKind::Npn {
                    collector, emitter, ..
                },
                Fault::Short,
            ) => ComponentKind::Resistor {
                a: collector,
                b: emitter,
                ohms: SHORT_OHMS,
            },
            (
                ComponentKind::Npn {
                    collector,
                    base,
                    emitter,
                    vbe,
                    ..
                },
                Fault::Param(v),
            ) if v > 0.0 => ComponentKind::Npn {
                collector,
                base,
                emitter,
                beta: v,
                vbe,
            },
            (
                ComponentKind::Npn {
                    collector,
                    base,
                    emitter,
                    beta,
                    vbe,
                },
                Fault::ParamFactor(k),
            ) if k > 0.0 => ComponentKind::Npn {
                collector,
                base,
                emitter,
                beta: beta * k,
                vbe,
            },
            (ComponentKind::Gain { input, output, .. }, Fault::Param(v)) => ComponentKind::Gain {
                input,
                output,
                gain: v,
            },
            (
                ComponentKind::Gain {
                    input,
                    output,
                    gain,
                },
                Fault::ParamFactor(k),
            ) => ComponentKind::Gain {
                input,
                output,
                gain: gain * k,
            },
            (ComponentKind::Gain { input, output, .. }, Fault::Open) => ComponentKind::Gain {
                input,
                output,
                gain: 0.0,
            },
            (ComponentKind::VoltageSource { plus, minus, .. }, Fault::Param(v)) => {
                ComponentKind::VoltageSource {
                    plus,
                    minus,
                    volts: v,
                }
            }
            (ComponentKind::VoltageSource { plus, minus, volts }, Fault::ParamFactor(k)) => {
                ComponentKind::VoltageSource {
                    plus,
                    minus,
                    volts: volts * k,
                }
            }
            (ComponentKind::CurrentSource { from, to, .. }, Fault::Open) => {
                ComponentKind::CurrentSource {
                    from,
                    to,
                    amps: 0.0,
                }
            }
            (ComponentKind::CurrentSource { from, to, .. }, Fault::Param(v)) => {
                ComponentKind::CurrentSource { from, to, amps: v }
            }
            (ComponentKind::CurrentSource { from, to, amps }, Fault::ParamFactor(k)) => {
                ComponentKind::CurrentSource {
                    from,
                    to,
                    amps: amps * k,
                }
            }
            _ => return Err(CircuitError::UnsupportedFault { component: name }),
        };
        out.replace_component_kind(id, new_kind);
    }
    Ok(out)
}

/// Detaches one terminal of a component from `net`, reconnecting it to a
/// fresh floating net — an **interconnect open** (the paper's Fig. 7
/// "open circuit in N1" defect).
///
/// # Errors
///
/// Returns [`CircuitError::UnknownComponent`] for a foreign id, or
/// [`CircuitError::UnknownNet`] if the component does not touch `net`.
pub fn open_connection(netlist: &Netlist, id: CompId, net: Net) -> Result<Netlist> {
    if id.index() >= netlist.component_count() {
        return Err(CircuitError::UnknownComponent { index: id.index() });
    }
    let comp = netlist.component(id);
    if !comp.nets().contains(&net) {
        return Err(CircuitError::UnknownNet { index: net.index() });
    }
    let mut out = netlist.clone();
    let floating = out.add_net(format!("float_{}_{}", comp.name(), netlist.net_name(net)));
    let remap = |n: Net| if n == net { floating } else { n };
    let new_kind = match *comp.kind() {
        ComponentKind::Resistor { a, b, ohms } => ComponentKind::Resistor {
            a: remap(a),
            b: remap(b),
            ohms,
        },
        ComponentKind::Capacitor { a, b, farads } => ComponentKind::Capacitor {
            a: remap(a),
            b: remap(b),
            farads,
        },
        ComponentKind::Inductor { a, b, henries } => ComponentKind::Inductor {
            a: remap(a),
            b: remap(b),
            henries,
        },
        ComponentKind::VoltageSource { plus, minus, volts } => ComponentKind::VoltageSource {
            plus: remap(plus),
            minus: remap(minus),
            volts,
        },
        ComponentKind::CurrentSource { from, to, amps } => ComponentKind::CurrentSource {
            from: remap(from),
            to: remap(to),
            amps,
        },
        ComponentKind::Diode {
            anode,
            cathode,
            drop_volts,
        } => ComponentKind::Diode {
            anode: remap(anode),
            cathode: remap(cathode),
            drop_volts,
        },
        ComponentKind::Npn {
            collector,
            base,
            emitter,
            beta,
            vbe,
        } => ComponentKind::Npn {
            collector: remap(collector),
            base: remap(base),
            emitter: remap(emitter),
            beta,
            vbe,
        },
        ComponentKind::Gain {
            input,
            output,
            gain,
        } => ComponentKind::Gain {
            input: remap(input),
            output: remap(output),
            gain,
        },
    };
    out.replace_component_kind(id, new_kind);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn divider() -> (Netlist, CompId, CompId, Net) {
        let mut nl = Netlist::new();
        let vin = nl.add_net("vin");
        let mid = nl.add_net("mid");
        nl.add_voltage_source("V", vin, Net::GROUND, 10.0).unwrap();
        let r1 = nl.add_resistor("R1", vin, mid, 1e3, 0.05).unwrap();
        let r2 = nl.add_resistor("R2", mid, Net::GROUND, 1e3, 0.05).unwrap();
        (nl, r1, r2, mid)
    }

    #[test]
    fn open_and_short_resistor() {
        let (nl, r1, r2, _) = divider();
        let f = inject_faults(&nl, &[(r1, Fault::Open)]).unwrap();
        match f.component(r1).kind() {
            ComponentKind::Resistor { ohms, .. } => assert_eq!(*ohms, OPEN_OHMS),
            _ => panic!("kind changed unexpectedly"),
        }
        let f = inject_faults(&nl, &[(r2, Fault::Short)]).unwrap();
        match f.component(r2).kind() {
            ComponentKind::Resistor { ohms, .. } => assert_eq!(*ohms, SHORT_OHMS),
            _ => panic!("kind changed unexpectedly"),
        }
        // Name and id survive.
        assert_eq!(f.component(r2).name(), "R2");
    }

    #[test]
    fn param_faults() {
        let (nl, r1, _, _) = divider();
        let f = inject_faults(&nl, &[(r1, Fault::Param(12_180.0))]).unwrap();
        assert_eq!(f.component(r1).primary_param(), 12_180.0);
        let f = inject_faults(&nl, &[(r1, Fault::ParamFactor(0.5))]).unwrap();
        assert_eq!(f.component(r1).primary_param(), 500.0);
        // Invalid new values are rejected.
        assert!(inject_faults(&nl, &[(r1, Fault::Param(-3.0))]).is_err());
    }

    #[test]
    fn diode_and_npn_hard_faults_degenerate_to_resistors() {
        let mut nl = Netlist::new();
        let a = nl.add_net("a");
        let k = nl.add_net("k");
        let d = nl.add_diode("D1", a, k, 0.2, 0.0).unwrap();
        let c = nl.add_net("c");
        let b = nl.add_net("b");
        let t = nl
            .add_npn("T1", c, b, Net::GROUND, 100.0, 0.7, 0.05)
            .unwrap();
        let f = inject_faults(&nl, &[(d, Fault::Open), (t, Fault::Open)]).unwrap();
        assert!(matches!(
            f.component(d).kind(),
            ComponentKind::Resistor { ohms, .. } if *ohms == OPEN_OHMS
        ));
        assert!(matches!(
            f.component(t).kind(),
            ComponentKind::Resistor { ohms, .. } if *ohms == OPEN_OHMS
        ));
        // Beta fault keeps the transistor a transistor.
        let f = inject_faults(&nl, &[(t, Fault::Param(194.0))]).unwrap();
        assert!(matches!(
            f.component(t).kind(),
            ComponentKind::Npn { beta, .. } if *beta == 194.0
        ));
    }

    #[test]
    fn unsupported_faults_rejected() {
        let mut nl = Netlist::new();
        let a = nl.add_net("a");
        nl.add_voltage_source("V", a, Net::GROUND, 5.0).unwrap();
        let v = nl.component_by_name("V").unwrap();
        assert!(matches!(
            inject_faults(&nl, &[(v, Fault::Short)]),
            Err(CircuitError::UnsupportedFault { .. })
        ));
        assert!(inject_faults(&nl, &[(CompId(99), Fault::Open)]).is_err());
    }

    #[test]
    fn open_connection_splits_net() {
        let (nl, _, r2, mid) = divider();
        let f = open_connection(&nl, r2, mid).unwrap();
        assert_eq!(f.net_count(), nl.net_count() + 1);
        // R2 no longer touches `mid`.
        assert!(!f.component(r2).nets().contains(&mid));
        // A net the component does not touch is rejected (R1 spans
        // vin–mid, not ground), as is a foreign component id.
        let r1 = nl.component_by_name("R1").unwrap();
        assert!(open_connection(&nl, r1, Net::GROUND).is_err());
        assert!(open_connection(&nl, CompId(99), mid).is_err());
    }

    #[test]
    fn fault_display() {
        assert_eq!(format!("{}", Fault::Open), "open");
        assert_eq!(format!("{}", Fault::Short), "short");
        assert_eq!(format!("{}", Fault::Param(2.0)), "param=2");
        assert_eq!(format!("{}", Fault::ParamFactor(0.5)), "param×0.5");
    }
}
