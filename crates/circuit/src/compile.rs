//! Model **compilation** — the compile-once half of the
//! compile-once/serve-many split.
//!
//! The FLAMES workflow is one-model/many-boards: the circuit's model
//! database is extracted once (§6.2 of the paper) and then board after
//! board is diagnosed against it. The propagation engines, however, used
//! to re-derive the same bookkeeping for every session: the application
//! schedule of each constraint (which term is solved for, in which
//! order, with which inverted coefficient), the quantity→constraint
//! fanout adjacency driving the dirty-constraint requeue, and the
//! first-appearance order of the Kirchhoff connection nets that fixes
//! the connection-assumption numbering.
//!
//! [`CompiledNetwork`] precomputes all of that, once per model. It is
//! immutable, `Send + Sync`, and engine-agnostic — both the fuzzy engine
//! (`flames-core`) and the crisp baseline (`flames-crisp`) drive their
//! traversals from the same compiled schedule.
//!
//! Determinism note: byte-identical diagnosis reports require the exact
//! f64 operation order of the uncompiled traversal, so every
//! [`LinearDirection`] preserves the original term order of the source
//! relation and caches `−1 / coef` as the very float the uncompiled
//! engine computed per application.

use crate::constraint::{Network, QuantityId, QuantityKind, Relation};
use crate::netlist::{CompId, Net, Netlist};

/// One inversion direction of a linear constraint: solve
/// `Σ coefⱼ·qⱼ + bias = 0` for the `target` term given the `others`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearDirection {
    /// The quantity being derived.
    pub target: QuantityId,
    /// `−1 / target_coef`, cached (the final scaling of the summed
    /// others — the same float the per-session engines computed).
    pub neg_inv_coef: f64,
    /// The remaining `(coefficient, quantity)` terms, in the source
    /// relation's order with the target removed (the f64 summation
    /// order).
    pub others: Vec<(f64, QuantityId)>,
    /// The quantities of `others` alone (the cartesian-combination axes,
    /// precomputed so engines stop rebuilding this list per
    /// application).
    pub quantities: Vec<QuantityId>,
}

/// The precomputed application schedule of one constraint.
#[derive(Debug, Clone, PartialEq)]
pub enum CompiledRelation {
    /// A linear relation with every single-unknown inversion direction
    /// materialized, in target-term order.
    Linear {
        /// Constant bias of the relation.
        bias: f64,
        /// One direction per term, in the source term order.
        directions: Vec<LinearDirection>,
    },
    /// `p = x · y` (the three directions `p = x·y`, `x = p/y`, `y = p/x`
    /// are fixed and cheap; engines keep them inline).
    Product {
        /// The product.
        p: QuantityId,
        /// First factor.
        x: QuantityId,
        /// Second factor.
        y: QuantityId,
    },
}

/// The compiled, immutable per-model schedule: everything the
/// propagation engines re-derived per session, computed once.
#[derive(Debug, Clone)]
pub struct CompiledNetwork {
    relations: Vec<CompiledRelation>,
    consumers: Vec<Vec<u32>>,
    conn_nets: Vec<Net>,
}

impl CompiledNetwork {
    /// Compiles a network's constraint schedule. Pure function of the
    /// network — compiling twice yields identical schedules.
    #[must_use]
    pub fn compile(network: &Network) -> Self {
        let relations = network
            .constraints()
            .iter()
            .map(|c| match c.relation {
                Relation::Linear { ref terms, bias } => {
                    let directions = terms
                        .iter()
                        .enumerate()
                        .map(|(target_idx, &(coef, target))| {
                            let others: Vec<(f64, QuantityId)> = terms
                                .iter()
                                .enumerate()
                                .filter(|&(j, _)| j != target_idx)
                                .map(|(_, &t)| t)
                                .collect();
                            let quantities = others.iter().map(|&(_, q)| q).collect();
                            LinearDirection {
                                target,
                                neg_inv_coef: -1.0 / coef,
                                others,
                                quantities,
                            }
                        })
                        .collect();
                    CompiledRelation::Linear { bias, directions }
                }
                Relation::Product { p, x, y } => CompiledRelation::Product { p, x, y },
            })
            .collect();
        let mut conn_nets = Vec::new();
        for c in network.constraints() {
            if let Some(net) = c.conn {
                if !conn_nets.contains(&net) {
                    conn_nets.push(net);
                }
            }
        }
        Self {
            relations,
            consumers: network.quantity_consumers(),
            conn_nets,
        }
    }

    /// The compiled application schedules, indexed like
    /// [`Network::constraints`].
    #[must_use]
    pub fn relations(&self) -> &[CompiledRelation] {
        &self.relations
    }

    /// The schedule of one constraint.
    ///
    /// # Panics
    ///
    /// Panics for a constraint index from a different network.
    #[must_use]
    pub fn relation(&self, ci: usize) -> &CompiledRelation {
        &self.relations[ci]
    }

    /// Quantity → constraint fanout adjacency (see
    /// [`Network::quantity_consumers`]), computed once per model.
    #[must_use]
    pub fn consumers(&self) -> &[Vec<u32>] {
        &self.consumers
    }

    /// Constraint indices whose relation mentions a quantity.
    #[must_use]
    pub fn consumers_of(&self, q: QuantityId) -> &[u32] {
        &self.consumers[q.index()]
    }

    /// Nets owning Kirchhoff constraints, in the first-appearance order
    /// of their constraints — the order that fixes the
    /// connection-assumption numbering in every engine.
    #[must_use]
    pub fn conn_nets(&self) -> &[Net] {
        &self.conn_nets
    }

    /// Number of compiled constraints.
    #[must_use]
    pub fn constraint_count(&self) -> usize {
        self.relations.len()
    }
}

/// A **region partition** of a constraint network: every constraint,
/// seed and spec is assigned to exactly one of `region_count` regions
/// (seeds with no component support are replicated into every region
/// that reads them), and the quantities read or written by more than one
/// region form the **boundary cut**.
///
/// The partition is purely structural — it is derived from the netlist
/// and the extracted network, never from values — so the same partition
/// serves every board diagnosed against the model. Regions are grouped
/// into *shards* contiguously; [`RegionPartition::shard_network`] builds
/// the filtered sub-network a shard propagates (full global quantity
/// list, so `QuantityId`s keep their meaning; only the shard's
/// constraints/seeds/specs, in global relative order).
///
/// Assignment rules, in precedence order per constraint:
/// 1. non-empty component `support` → the region of the first supporting
///    component (the component whose correctness the relation encodes);
/// 2. a Kirchhoff `conn` net → the region of that net;
/// 3. the first mentioned quantity owned by a component (`Param`,
///    branch/terminal currents, drops) → that component's region;
/// 4. the first mentioned node voltage → that net's region;
/// 5. region 0 (unreachable for extracted networks, kept total).
///
/// A net's region is the region of the first component (netlist order)
/// touching it; ground and untouched nets default to region 0.
#[derive(Debug, Clone)]
pub struct RegionPartition {
    region_count: usize,
    comp_region: Vec<u32>,
    constraint_region: Vec<u32>,
    seed_regions: Vec<Vec<u32>>,
    spec_region: Vec<u32>,
    quantity_regions: Vec<Vec<u32>>,
    boundary: Vec<QuantityId>,
}

impl RegionPartition {
    /// Derives the partition induced by a component→region map.
    ///
    /// # Panics
    ///
    /// Panics if `comp_region` does not map every component of
    /// `netlist`, if any region index is `>= region_count`, or if
    /// `region_count` is zero.
    #[must_use]
    pub fn new(
        netlist: &Netlist,
        network: &Network,
        comp_region: &[u32],
        region_count: usize,
    ) -> Self {
        assert!(region_count > 0, "need at least one region");
        assert_eq!(
            comp_region.len(),
            netlist.component_count(),
            "comp_region must map every component"
        );
        assert!(
            comp_region.iter().all(|&r| (r as usize) < region_count),
            "region index out of range"
        );

        // Region of each net: first component (netlist order) touching it.
        let mut net_region = vec![0u32; netlist.net_count()];
        let mut net_seen = vec![false; netlist.net_count()];
        for (ci, comp) in netlist.components() {
            for net in comp.nets() {
                let n = net.index();
                if !net_seen[n] {
                    net_seen[n] = true;
                    net_region[n] = comp_region[ci.index()];
                }
            }
        }

        let owner = |q: QuantityId| -> Option<CompId> {
            match network.quantities()[q.index()].kind {
                QuantityKind::BranchCurrent(c)
                | QuantityKind::BranchDrop(c)
                | QuantityKind::BaseCurrent(c)
                | QuantityKind::CollectorCurrent(c)
                | QuantityKind::EmitterCurrent(c)
                | QuantityKind::Param(c) => Some(c),
                QuantityKind::NodeVoltage(_) => None,
            }
        };

        let constraint_region: Vec<u32> = network
            .constraints()
            .iter()
            .map(|c| {
                if let Some(comp) = c.support.first() {
                    return comp_region[comp.index()];
                }
                if let Some(net) = c.conn {
                    return net_region[net.index()];
                }
                let qs = c.relation.quantities();
                if let Some(comp) = qs.iter().find_map(|&q| owner(q)) {
                    return comp_region[comp.index()];
                }
                qs.iter()
                    .find_map(|&q| match network.quantities()[q.index()].kind {
                        QuantityKind::NodeVoltage(net) => Some(net_region[net.index()]),
                        _ => None,
                    })
                    .unwrap_or(0)
            })
            .collect();

        // Regions reading/writing each quantity, via constraint usage.
        let mut quantity_regions: Vec<Vec<u32>> = vec![Vec::new(); network.quantity_count()];
        for (c, &region) in network.constraints().iter().zip(&constraint_region) {
            for q in c.relation.quantities() {
                let rs = &mut quantity_regions[q.index()];
                if !rs.contains(&region) {
                    rs.push(region);
                }
            }
        }
        for rs in &mut quantity_regions {
            rs.sort_unstable();
        }

        let boundary: Vec<QuantityId> = (0..network.quantity_count())
            .map(QuantityId::from_raw)
            .filter(|q| quantity_regions[q.index()].len() >= 2)
            .collect();

        // Supported seeds live with their component; support-free seeds
        // (the ground reference) are replicated into every region that
        // reads the quantity, so each shard starts from the same anchor.
        let seed_regions: Vec<Vec<u32>> = network
            .seeds()
            .iter()
            .map(|s| {
                if let Some(comp) = s.support.first() {
                    vec![comp_region[comp.index()]]
                } else if quantity_regions[s.quantity.index()].is_empty() {
                    vec![0]
                } else {
                    quantity_regions[s.quantity.index()].clone()
                }
            })
            .collect();

        let spec_region: Vec<u32> = network
            .specs()
            .iter()
            .map(|s| {
                if let Some(comp) = s.support.first() {
                    comp_region[comp.index()]
                } else {
                    quantity_regions[s.quantity.index()]
                        .first()
                        .copied()
                        .unwrap_or(0)
                }
            })
            .collect();

        Self {
            region_count,
            comp_region: comp_region.to_vec(),
            constraint_region,
            seed_regions,
            spec_region,
            quantity_regions,
            boundary,
        }
    }

    /// Number of regions.
    #[must_use]
    pub fn region_count(&self) -> usize {
        self.region_count
    }

    /// The component→region map the partition was derived from.
    #[must_use]
    pub fn comp_region(&self) -> &[u32] {
        &self.comp_region
    }

    /// Region each constraint is assigned to (indexed like
    /// `network.constraints()`).
    #[must_use]
    pub fn constraint_region(&self) -> &[u32] {
        &self.constraint_region
    }

    /// The boundary cut: quantities used by two or more regions,
    /// ascending.
    #[must_use]
    pub fn boundary(&self) -> &[QuantityId] {
        &self.boundary
    }

    /// The sorted distinct regions whose constraints mention `q`.
    #[must_use]
    pub fn quantity_regions(&self, q: QuantityId) -> &[u32] {
        &self.quantity_regions[q.index()]
    }

    /// Groups `region_count` regions into `shard_count` contiguous
    /// shards as evenly as possible; returns the region→shard map.
    ///
    /// # Panics
    ///
    /// Panics if `shard_count` is zero.
    #[must_use]
    pub fn shard_of_regions(region_count: usize, shard_count: usize) -> Vec<u32> {
        assert!(shard_count > 0, "need at least one shard");
        (0..region_count)
            .map(|r| {
                let s = r * shard_count / region_count;
                u32::try_from(s.min(shard_count - 1)).expect("shard fits u32")
            })
            .collect()
    }

    /// Per-region membership flags for one shard of
    /// [`Self::shard_of_regions`].
    #[must_use]
    pub fn shard_flags(region_count: usize, shard_count: usize, shard: u32) -> Vec<bool> {
        Self::shard_of_regions(region_count, shard_count)
            .into_iter()
            .map(|s| s == shard)
            .collect()
    }

    /// The filtered sub-network a shard propagates: the full global
    /// quantity list (ids keep their meaning) with only the shard's
    /// constraints, seeds and specs, in global relative order.
    ///
    /// # Panics
    ///
    /// Panics if `shard_regions` does not flag every region.
    #[must_use]
    pub fn shard_network(&self, network: &Network, shard_regions: &[bool]) -> Network {
        assert_eq!(shard_regions.len(), self.region_count);
        let keep_constraint: Vec<bool> = self
            .constraint_region
            .iter()
            .map(|&r| shard_regions[r as usize])
            .collect();
        let keep_seed: Vec<bool> = self
            .seed_regions
            .iter()
            .map(|rs| rs.iter().any(|&r| shard_regions[r as usize]))
            .collect();
        let keep_spec: Vec<bool> = self
            .spec_region
            .iter()
            .map(|&r| shard_regions[r as usize])
            .collect();
        network.restricted(&keep_constraint, &keep_seed, &keep_spec)
    }

    /// Which components belong to a shard (their correctness assumptions
    /// are interned by that shard's engine).
    #[must_use]
    pub fn comp_in_shard(&self, shard_regions: &[bool]) -> Vec<bool> {
        assert_eq!(shard_regions.len(), self.region_count);
        self.comp_region
            .iter()
            .map(|&r| shard_regions[r as usize])
            .collect()
    }

    /// The boundary quantities a shard shares with the outside: cut
    /// quantities mentioned by at least one in-shard region and at least
    /// one out-of-shard region.
    #[must_use]
    pub fn boundary_for(&self, shard_regions: &[bool]) -> Vec<QuantityId> {
        assert_eq!(shard_regions.len(), self.region_count);
        self.boundary
            .iter()
            .copied()
            .filter(|q| {
                let rs = &self.quantity_regions[q.index()];
                rs.iter().any(|&r| shard_regions[r as usize])
                    && rs.iter().any(|&r| !shard_regions[r as usize])
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::{extract, ExtractOptions};
    use crate::netlist::Netlist;

    fn divider() -> (Netlist, Network) {
        let mut nl = Netlist::new();
        let vin = nl.add_net("vin");
        let mid = nl.add_net("mid");
        nl.add_voltage_source("V", vin, Net::GROUND, 10.0).unwrap();
        nl.add_resistor("R1", vin, mid, 1e3, 0.05).unwrap();
        nl.add_resistor("R2", mid, Net::GROUND, 1e3, 0.05).unwrap();
        let network = extract(&nl, ExtractOptions::default());
        (nl, network)
    }

    #[test]
    fn directions_mirror_source_terms() {
        let (_, network) = divider();
        let compiled = CompiledNetwork::compile(&network);
        assert_eq!(compiled.constraint_count(), network.constraints().len());
        for (c, r) in network.constraints().iter().zip(compiled.relations()) {
            match (&c.relation, r) {
                (
                    Relation::Linear { terms, bias },
                    CompiledRelation::Linear {
                        bias: b,
                        directions,
                    },
                ) => {
                    assert_eq!(bias, b);
                    assert_eq!(directions.len(), terms.len());
                    for (k, d) in directions.iter().enumerate() {
                        assert_eq!(d.target, terms[k].1);
                        // Bitwise: the cached scaling is the same float the
                        // per-session engines computed.
                        assert_eq!(d.neg_inv_coef.to_bits(), (-1.0 / terms[k].0).to_bits());
                        assert_eq!(d.others.len(), terms.len() - 1);
                        // Others preserve source order with the target removed.
                        let expected: Vec<(f64, QuantityId)> = terms
                            .iter()
                            .enumerate()
                            .filter(|&(j, _)| j != k)
                            .map(|(_, &t)| t)
                            .collect();
                        assert_eq!(d.others, expected);
                        let qs: Vec<QuantityId> = d.others.iter().map(|&(_, q)| q).collect();
                        assert_eq!(d.quantities, qs);
                    }
                }
                (
                    Relation::Product { p, x, y },
                    &CompiledRelation::Product {
                        p: cp,
                        x: cx,
                        y: cy,
                    },
                ) => {
                    assert_eq!((*p, *x, *y), (cp, cx, cy));
                }
                (a, b) => panic!("relation kind mismatch: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn consumers_match_network_adjacency() {
        let (_, network) = divider();
        let compiled = CompiledNetwork::compile(&network);
        assert_eq!(
            compiled.consumers(),
            network.quantity_consumers().as_slice()
        );
        for qi in 0..network.quantity_count() {
            let q = QuantityId::from_raw(qi);
            for &ci in compiled.consumers_of(q) {
                assert!(network.constraints()[ci as usize]
                    .relation
                    .quantities()
                    .contains(&q));
            }
        }
    }

    #[test]
    fn conn_nets_in_first_appearance_order() {
        let (nl, network) = divider();
        let compiled = CompiledNetwork::compile(&network);
        // The KCL emission order is the net order (vin, mid); ground and
        // dangling nets own no KCL.
        let vin = nl.net_by_name("vin").unwrap();
        let mid = nl.net_by_name("mid").unwrap();
        assert_eq!(compiled.conn_nets(), &[vin, mid]);
        let mut seen = Vec::new();
        for c in network.constraints() {
            if let Some(net) = c.conn {
                if !seen.contains(&net) {
                    seen.push(net);
                }
            }
        }
        assert_eq!(compiled.conn_nets(), seen.as_slice());
    }

    #[test]
    fn compilation_is_deterministic() {
        let (_, network) = divider();
        let a = CompiledNetwork::compile(&network);
        let b = CompiledNetwork::compile(&network);
        assert_eq!(a.relations(), b.relations());
        assert_eq!(a.consumers(), b.consumers());
        assert_eq!(a.conn_nets(), b.conn_nets());
    }

    mod partition {
        use super::*;
        use crate::circuits::{hierarchy, HierarchySpec};
        use crate::constraint::QuantityKind;

        fn small() -> (crate::circuits::Hierarchy, Network) {
            let h = hierarchy(HierarchySpec::small(7));
            let network = extract(&h.netlist, ExtractOptions::default());
            (h, network)
        }

        #[test]
        fn every_constraint_seed_and_spec_is_assigned() {
            let (h, network) = small();
            let (regions, count) = h.sparse_regions();
            let part = RegionPartition::new(&h.netlist, &network, &regions, count);
            assert_eq!(part.constraint_region().len(), network.constraints().len());
            assert!(part
                .constraint_region()
                .iter()
                .all(|&r| (r as usize) < count));
            assert_eq!(part.region_count(), count);
        }

        #[test]
        fn sparse_boundary_is_taps_and_ground_only() {
            let (h, network) = small();
            let (regions, count) = h.sparse_regions();
            let part = RegionPartition::new(&h.netlist, &network, &regions, count);
            // Region 0 (source + backbone) meets each block region only
            // through the tap it drives — plus the ground reference,
            // which every shunt drop mentions.
            for &q in part.boundary() {
                match network.quantities()[q.index()].kind {
                    QuantityKind::NodeVoltage(net) => {
                        assert!(
                            net.is_ground() || h.taps.contains(&net),
                            "unexpected boundary quantity {}",
                            network.quantity_name(q)
                        );
                    }
                    other => panic!("non-voltage boundary quantity {other:?}"),
                }
            }
            // Every tap actually is in the cut.
            for &tap in &h.taps {
                let q = network.voltage_quantity(tap);
                assert!(part.boundary().contains(&q), "tap missing from cut");
                assert!(part.quantity_regions(q).len() == 2);
            }
            let _ = count;
        }

        #[test]
        fn dense_partition_cuts_the_backbone() {
            let (h, network) = small();
            let (regions, count) = h.dense_regions();
            let part = RegionPartition::new(&h.netlist, &network, &regions, count);
            // Consecutive backbone sections share their joint net, so the
            // dense cut is strictly larger than the sparse one.
            let (sparse, sparse_count) = h.sparse_regions();
            let sparse_part = RegionPartition::new(&h.netlist, &network, &sparse, sparse_count);
            assert!(part.boundary().len() >= sparse_part.boundary().len());
            // The backbone current through each series resistor crosses
            // between adjacent regions.
            let q = network
                .find(QuantityKind::BranchCurrent(h.backbone_series[1]))
                .unwrap();
            assert!(
                part.quantity_regions(q).len() >= 2,
                "series backbone current must cross the dense cut"
            );
        }

        #[test]
        fn one_shard_restriction_is_the_whole_network() {
            let (h, network) = small();
            let (regions, count) = h.sparse_regions();
            let part = RegionPartition::new(&h.netlist, &network, &regions, count);
            let flags = vec![true; count];
            let sub = part.shard_network(&network, &flags);
            assert_eq!(sub.constraints(), network.constraints());
            assert_eq!(sub.seeds(), network.seeds());
            assert_eq!(sub.specs(), network.specs());
            assert_eq!(sub.quantity_count(), network.quantity_count());
            assert!(part.boundary_for(&flags).is_empty());
            assert!(part.comp_in_shard(&flags).iter().all(|&b| b));
        }

        #[test]
        fn shard_networks_partition_the_constraints() {
            let (h, network) = small();
            let (regions, count) = h.sparse_regions();
            let part = RegionPartition::new(&h.netlist, &network, &regions, count);
            for shard_count in [2usize, 4] {
                let mut total = 0;
                for shard in 0..shard_count {
                    let flags = RegionPartition::shard_flags(
                        count,
                        shard_count,
                        u32::try_from(shard).unwrap(),
                    );
                    total += part.shard_network(&network, &flags).constraints().len();
                }
                assert_eq!(
                    total,
                    network.constraints().len(),
                    "constraints must split without overlap at {shard_count} shards"
                );
            }
        }

        #[test]
        fn shard_grouping_is_contiguous_and_even() {
            let map = RegionPartition::shard_of_regions(5, 2);
            assert_eq!(map, vec![0, 0, 0, 1, 1]);
            let map = RegionPartition::shard_of_regions(8, 4);
            assert_eq!(map, vec![0, 0, 1, 1, 2, 2, 3, 3]);
            let map = RegionPartition::shard_of_regions(3, 8);
            assert!(map.iter().all(|&s| s < 8));
        }
    }
}
