//! Model **compilation** — the compile-once half of the
//! compile-once/serve-many split.
//!
//! The FLAMES workflow is one-model/many-boards: the circuit's model
//! database is extracted once (§6.2 of the paper) and then board after
//! board is diagnosed against it. The propagation engines, however, used
//! to re-derive the same bookkeeping for every session: the application
//! schedule of each constraint (which term is solved for, in which
//! order, with which inverted coefficient), the quantity→constraint
//! fanout adjacency driving the dirty-constraint requeue, and the
//! first-appearance order of the Kirchhoff connection nets that fixes
//! the connection-assumption numbering.
//!
//! [`CompiledNetwork`] precomputes all of that, once per model. It is
//! immutable, `Send + Sync`, and engine-agnostic — both the fuzzy engine
//! (`flames-core`) and the crisp baseline (`flames-crisp`) drive their
//! traversals from the same compiled schedule.
//!
//! Determinism note: byte-identical diagnosis reports require the exact
//! f64 operation order of the uncompiled traversal, so every
//! [`LinearDirection`] preserves the original term order of the source
//! relation and caches `−1 / coef` as the very float the uncompiled
//! engine computed per application.

use crate::constraint::{Network, QuantityId, Relation};
use crate::netlist::Net;

/// One inversion direction of a linear constraint: solve
/// `Σ coefⱼ·qⱼ + bias = 0` for the `target` term given the `others`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearDirection {
    /// The quantity being derived.
    pub target: QuantityId,
    /// `−1 / target_coef`, cached (the final scaling of the summed
    /// others — the same float the per-session engines computed).
    pub neg_inv_coef: f64,
    /// The remaining `(coefficient, quantity)` terms, in the source
    /// relation's order with the target removed (the f64 summation
    /// order).
    pub others: Vec<(f64, QuantityId)>,
    /// The quantities of `others` alone (the cartesian-combination axes,
    /// precomputed so engines stop rebuilding this list per
    /// application).
    pub quantities: Vec<QuantityId>,
}

/// The precomputed application schedule of one constraint.
#[derive(Debug, Clone, PartialEq)]
pub enum CompiledRelation {
    /// A linear relation with every single-unknown inversion direction
    /// materialized, in target-term order.
    Linear {
        /// Constant bias of the relation.
        bias: f64,
        /// One direction per term, in the source term order.
        directions: Vec<LinearDirection>,
    },
    /// `p = x · y` (the three directions `p = x·y`, `x = p/y`, `y = p/x`
    /// are fixed and cheap; engines keep them inline).
    Product {
        /// The product.
        p: QuantityId,
        /// First factor.
        x: QuantityId,
        /// Second factor.
        y: QuantityId,
    },
}

/// The compiled, immutable per-model schedule: everything the
/// propagation engines re-derived per session, computed once.
#[derive(Debug, Clone)]
pub struct CompiledNetwork {
    relations: Vec<CompiledRelation>,
    consumers: Vec<Vec<u32>>,
    conn_nets: Vec<Net>,
}

impl CompiledNetwork {
    /// Compiles a network's constraint schedule. Pure function of the
    /// network — compiling twice yields identical schedules.
    #[must_use]
    pub fn compile(network: &Network) -> Self {
        let relations = network
            .constraints()
            .iter()
            .map(|c| match c.relation {
                Relation::Linear { ref terms, bias } => {
                    let directions = terms
                        .iter()
                        .enumerate()
                        .map(|(target_idx, &(coef, target))| {
                            let others: Vec<(f64, QuantityId)> = terms
                                .iter()
                                .enumerate()
                                .filter(|&(j, _)| j != target_idx)
                                .map(|(_, &t)| t)
                                .collect();
                            let quantities = others.iter().map(|&(_, q)| q).collect();
                            LinearDirection {
                                target,
                                neg_inv_coef: -1.0 / coef,
                                others,
                                quantities,
                            }
                        })
                        .collect();
                    CompiledRelation::Linear { bias, directions }
                }
                Relation::Product { p, x, y } => CompiledRelation::Product { p, x, y },
            })
            .collect();
        let mut conn_nets = Vec::new();
        for c in network.constraints() {
            if let Some(net) = c.conn {
                if !conn_nets.contains(&net) {
                    conn_nets.push(net);
                }
            }
        }
        Self {
            relations,
            consumers: network.quantity_consumers(),
            conn_nets,
        }
    }

    /// The compiled application schedules, indexed like
    /// [`Network::constraints`].
    #[must_use]
    pub fn relations(&self) -> &[CompiledRelation] {
        &self.relations
    }

    /// The schedule of one constraint.
    ///
    /// # Panics
    ///
    /// Panics for a constraint index from a different network.
    #[must_use]
    pub fn relation(&self, ci: usize) -> &CompiledRelation {
        &self.relations[ci]
    }

    /// Quantity → constraint fanout adjacency (see
    /// [`Network::quantity_consumers`]), computed once per model.
    #[must_use]
    pub fn consumers(&self) -> &[Vec<u32>] {
        &self.consumers
    }

    /// Constraint indices whose relation mentions a quantity.
    #[must_use]
    pub fn consumers_of(&self, q: QuantityId) -> &[u32] {
        &self.consumers[q.index()]
    }

    /// Nets owning Kirchhoff constraints, in the first-appearance order
    /// of their constraints — the order that fixes the
    /// connection-assumption numbering in every engine.
    #[must_use]
    pub fn conn_nets(&self) -> &[Net] {
        &self.conn_nets
    }

    /// Number of compiled constraints.
    #[must_use]
    pub fn constraint_count(&self) -> usize {
        self.relations.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::{extract, ExtractOptions};
    use crate::netlist::Netlist;

    fn divider() -> (Netlist, Network) {
        let mut nl = Netlist::new();
        let vin = nl.add_net("vin");
        let mid = nl.add_net("mid");
        nl.add_voltage_source("V", vin, Net::GROUND, 10.0).unwrap();
        nl.add_resistor("R1", vin, mid, 1e3, 0.05).unwrap();
        nl.add_resistor("R2", mid, Net::GROUND, 1e3, 0.05).unwrap();
        let network = extract(&nl, ExtractOptions::default());
        (nl, network)
    }

    #[test]
    fn directions_mirror_source_terms() {
        let (_, network) = divider();
        let compiled = CompiledNetwork::compile(&network);
        assert_eq!(compiled.constraint_count(), network.constraints().len());
        for (c, r) in network.constraints().iter().zip(compiled.relations()) {
            match (&c.relation, r) {
                (
                    Relation::Linear { terms, bias },
                    CompiledRelation::Linear {
                        bias: b,
                        directions,
                    },
                ) => {
                    assert_eq!(bias, b);
                    assert_eq!(directions.len(), terms.len());
                    for (k, d) in directions.iter().enumerate() {
                        assert_eq!(d.target, terms[k].1);
                        // Bitwise: the cached scaling is the same float the
                        // per-session engines computed.
                        assert_eq!(d.neg_inv_coef.to_bits(), (-1.0 / terms[k].0).to_bits());
                        assert_eq!(d.others.len(), terms.len() - 1);
                        // Others preserve source order with the target removed.
                        let expected: Vec<(f64, QuantityId)> = terms
                            .iter()
                            .enumerate()
                            .filter(|&(j, _)| j != k)
                            .map(|(_, &t)| t)
                            .collect();
                        assert_eq!(d.others, expected);
                        let qs: Vec<QuantityId> = d.others.iter().map(|&(_, q)| q).collect();
                        assert_eq!(d.quantities, qs);
                    }
                }
                (
                    Relation::Product { p, x, y },
                    &CompiledRelation::Product {
                        p: cp,
                        x: cx,
                        y: cy,
                    },
                ) => {
                    assert_eq!((*p, *x, *y), (cp, cx, cy));
                }
                (a, b) => panic!("relation kind mismatch: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn consumers_match_network_adjacency() {
        let (_, network) = divider();
        let compiled = CompiledNetwork::compile(&network);
        assert_eq!(
            compiled.consumers(),
            network.quantity_consumers().as_slice()
        );
        for qi in 0..network.quantity_count() {
            let q = QuantityId::from_raw(qi);
            for &ci in compiled.consumers_of(q) {
                assert!(network.constraints()[ci as usize]
                    .relation
                    .quantities()
                    .contains(&q));
            }
        }
    }

    #[test]
    fn conn_nets_in_first_appearance_order() {
        let (nl, network) = divider();
        let compiled = CompiledNetwork::compile(&network);
        // The KCL emission order is the net order (vin, mid); ground and
        // dangling nets own no KCL.
        let vin = nl.net_by_name("vin").unwrap();
        let mid = nl.net_by_name("mid").unwrap();
        assert_eq!(compiled.conn_nets(), &[vin, mid]);
        let mut seen = Vec::new();
        for c in network.constraints() {
            if let Some(net) = c.conn {
                if !seen.contains(&net) {
                    seen.push(net);
                }
            }
        }
        assert_eq!(compiled.conn_nets(), seen.as_slice());
    }

    #[test]
    fn compilation_is_deterministic() {
        let (_, network) = divider();
        let a = CompiledNetwork::compile(&network);
        let b = CompiledNetwork::compile(&network);
        assert_eq!(a.relations(), b.relations());
        assert_eq!(a.consumers(), b.consumers());
        assert_eq!(a.conn_nets(), b.conn_nets());
    }
}
